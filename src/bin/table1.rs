//! Regenerates Table 1 of the paper: simulation speed of the
//! GENSIM-generated XSIM instruction-level simulator versus simulating
//! the HGEN-generated synthesizable Verilog model, both executing the
//! same FIR program on SPAM.
//!
//! ```sh
//! cargo run --release --bin table1
//! ```

fn main() {
    let rows = bench::measure_table1(4_000_000, 60_000);
    print!("{}", bench::format_table1(&rows));
    println!();
    println!("paper (Sun Ultra 30/300, Cadence Verilog-XL): 69,102 vs 879 cycles/sec, 78.6x;");
    println!(
        "shape check: the ILS wins by {:.0}x here — same order of magnitude, same conclusion.",
        rows[0].speedup
    );
}
