//! `xsim` — standalone simulator driver with machine-readable reports.
//!
//! Loads an ISDL machine description, generates its XSIM simulator,
//! assembles and runs a program, and emits the versioned JSON reports
//! documented in `docs/OBSERVABILITY.md`:
//!
//! ```text
//! xsim <machine.isdl> <prog.asm> [options]
//!   --cycles N            cycle budget (default 1000000)
//!   --max-cycles N        alias for --cycles
//!   --fuel N              instruction budget (default unlimited); a
//!                         looping program stops with `fuel exhausted`
//!   --deadline-ms N       wall-clock deadline for the run; when it
//!                         expires the simulator stops cooperatively on
//!                         an instruction boundary with `cancelled`
//!   --stats <path|->      write the `xsim-stats/1` JSON report
//!   --trace <path|->      write the `xsim-trace/1` JSON event trace
//!   --trace-capacity N    event ring-buffer capacity (default 4096)
//!   --trace-stream <path|->  stream events as JSON Lines while running
//!                         (lossless: no ring, nothing is ever dropped)
//!   --profile <path|->    enable the cycle profiler and write the
//!                         `xsim-profile/1` report
//!   --chrome-trace <path|->  write the CLI phase timings
//!                         (load/assemble/generate/run) as a Chrome
//!                         trace-event document
//!   --core tree|bytecode  processing-core implementation (default bytecode)
//!   --no-offline-decode   re-decode at every fetch (§3.3.2 ablation)
//!   --opt 0|1|2|3         RTL middle-end level (default 2 = aggressive;
//!                         3 = full: adds propagation, strength
//!                         reduction, load forwarding, decode sharing);
//!                         0 disables it — the differential baseline
//!   --opt-passes LIST     explicit comma-separated pass schedule
//!                         (fold,prop,strength,fwd,dead,cse,share)
//!                         overriding the level's canonical schedule
//!   --dump-rtl before|after|both
//!                         print each operation's per-phase RTL in the
//!                         canonical printed form to stderr (or stdout
//!                         when no JSON report targets it)
//!   --translate           dispatch through translated basic blocks
//!                         (default; bit-identical to the interpreter)
//!   --no-translate        force per-instruction interpretation — the
//!                         translation-tier ablation baseline
//!   --netlist-sim event|levelized
//!                         after the run halts, replay the program on
//!                         the HGEN-generated netlist with the chosen
//!                         backend and require bit-identical final
//!                         state; adds a `netlist` block (the
//!                         `vlog-stats/1` schema) to the stats report
//!   --log[=SPEC]          enable the structured event log; SPEC is
//!                         `LEVEL[,TARGET=LEVEL...]` (default `info`),
//!                         e.g. `--log=info,gensim.translate=trace`.
//!                         Events stream as `xsim-log/1` JSON Lines
//!                         and a `log` block {events, dropped} is
//!                         added to the stats report
//!   --log-out <path|->    log destination (default stderr)
//! ```
//!
//! `-` writes a report to stdout (the human-readable summary then moves
//! to stderr so the JSON stream stays parseable). On top of the library
//! schema, the CLI adds a `stop` key (the stop reason) and a
//! `timing_us` object with per-phase wall times to the stats report.

use bitv::BitVector;
use gensim::{profile_json, stats_json, trace_json, CoreKind, Xsim, XsimOptions};
use obs::{ChromeTrace, Json, Registry, StreamSink};
use std::process::ExitCode;
use std::time::Instant;
use xasm::Assembler;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("xsim: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut pos: Vec<&str> = Vec::new();
    let mut cycles: u64 = 1_000_000;
    let mut fuel: u64 = u64::MAX;
    let mut deadline_ms: u64 = 0;
    let mut stats_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut trace_stream: Option<String> = None;
    let mut profile_out: Option<String> = None;
    let mut chrome_out: Option<String> = None;
    let mut trace_capacity: usize = 4096;
    let mut netlist_check: Option<vlog::SimBackend> = None;
    let mut dump_rtl: Option<isdl::opt::DumpMode> = None;
    let mut log_spec: Option<String> = None;
    let mut log_out: Option<String> = None;
    let mut options = XsimOptions::default();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cycles" | "--max-cycles" => {
                let v = value(&mut it, a)?;
                cycles = v.parse().map_err(|_| format!("bad cycle budget `{v}`"))?;
            }
            "--fuel" => {
                let v = value(&mut it, "--fuel")?;
                fuel = v.parse().map_err(|_| format!("bad instruction budget `{v}`"))?;
            }
            "--deadline-ms" => {
                let v = value(&mut it, "--deadline-ms")?;
                deadline_ms = v.parse().map_err(|_| format!("bad deadline `{v}`"))?;
            }
            "--stats" => stats_out = Some(value(&mut it, "--stats")?.to_owned()),
            "--trace" => trace_out = Some(value(&mut it, "--trace")?.to_owned()),
            "--trace-stream" => trace_stream = Some(value(&mut it, "--trace-stream")?.to_owned()),
            "--profile" => profile_out = Some(value(&mut it, "--profile")?.to_owned()),
            "--chrome-trace" => chrome_out = Some(value(&mut it, "--chrome-trace")?.to_owned()),
            "--trace-capacity" => {
                let v = value(&mut it, "--trace-capacity")?;
                trace_capacity = v.parse().map_err(|_| format!("bad capacity `{v}`"))?;
            }
            "--core" => {
                options.core = match value(&mut it, "--core")? {
                    "tree" => CoreKind::Tree,
                    "bytecode" => CoreKind::Bytecode,
                    other => return Err(format!("unknown core `{other}` (tree|bytecode)")),
                };
            }
            "--netlist-sim" => {
                let v = value(&mut it, "--netlist-sim")?;
                netlist_check =
                    Some(vlog::SimBackend::parse(v).ok_or_else(|| {
                        format!("unknown netlist backend `{v}` (event|levelized)")
                    })?);
            }
            "--no-offline-decode" => options.offline_decode = false,
            "--translate" => options.translate = true,
            "--no-translate" => options.translate = false,
            "--opt" => {
                let v = value(&mut it, "--opt")?;
                options.opt = isdl::opt::OptLevel::parse(v)
                    .ok_or_else(|| format!("unknown opt level `{v}` (0|1|2|3)"))?;
            }
            "--opt-passes" => {
                let v = value(&mut it, "--opt-passes")?;
                options.passes = Some(isdl::opt::PassList::parse(v).ok_or_else(|| {
                    format!(
                        "bad pass list `{v}` (comma-separated subset of \
                         fold,prop,strength,fwd,dead,cse,share)"
                    )
                })?);
            }
            "--dump-rtl" => {
                let v = value(&mut it, "--dump-rtl")?;
                dump_rtl = Some(
                    isdl::opt::DumpMode::parse(v)
                        .ok_or_else(|| format!("unknown dump mode `{v}` (before|after|both)"))?,
                );
            }
            "--log" => log_spec = Some("info".to_owned()),
            "--log-out" => log_out = Some(value(&mut it, "--log-out")?.to_owned()),
            f if f.starts_with("--log=") => log_spec = Some(f["--log=".len()..].to_owned()),
            f if f.starts_with("--") => return Err(format!("unknown flag `{f}`\n{}", usage())),
            p => pos.push(p),
        }
    }
    let [machine_path, prog_path] = pos[..] else {
        return Err(usage());
    };

    if let Some(spec) = &log_spec {
        let filter = obs::LogFilter::parse(spec).map_err(|e| format!("--log: {e}"))?;
        let sink: Box<dyn std::io::Write + Send> = match log_out.as_deref() {
            None => Box::new(std::io::stderr()),
            Some("-") => Box::new(std::io::stdout()),
            Some(p) => {
                Box::new(std::fs::File::create(p).map_err(|e| format!("cannot create {p}: {e}"))?)
            }
        };
        obs::log::init(filter, sink);
    }

    // Phase timers, recorded through the metrics registry so the CLI
    // exercises the same instrumentation path as the library users.
    // The wall-clock offsets feed the Chrome trace export.
    let registry = Registry::new();
    let t_load = registry.histogram("load_us");
    let t_assemble = registry.histogram("assemble_us");
    let t_generate = registry.histogram("generate_us");
    let t_run = registry.histogram("run_us");
    let epoch = Instant::now();
    let mut phases: Vec<(&str, u64, u64)> = Vec::new();
    let us = |t: Instant| u64::try_from(t.duration_since(epoch).as_micros()).unwrap_or(u64::MAX);

    let machine = {
        let _span = t_load.span();
        let p0 = us(Instant::now());
        let src = std::fs::read_to_string(machine_path)
            .map_err(|e| format!("cannot read {machine_path}: {e}"))?;
        let machine = isdl::load(&src).map_err(|e| format!("{machine_path}: {e}"))?;
        phases.push(("load", p0, us(Instant::now()) - p0));
        machine
    };
    if let Some(mode) = dump_rtl {
        let dump = isdl::opt::dump_rtl(&machine, &options.pipeline(), mode);
        // Keep stdout clean for piped JSON reports.
        let json_on_stdout = [&stats_out, &trace_out, &trace_stream, &profile_out, &chrome_out]
            .iter()
            .any(|o| o.as_deref() == Some("-"));
        if json_on_stdout {
            eprint!("{dump}");
        } else {
            print!("{dump}");
        }
    }
    let program = {
        let _span = t_assemble.span();
        let p0 = us(Instant::now());
        let src = std::fs::read_to_string(prog_path)
            .map_err(|e| format!("cannot read {prog_path}: {e}"))?;
        let program =
            Assembler::new(&machine).assemble(&src).map_err(|e| format!("{prog_path}: {e}"))?;
        phases.push(("assemble", p0, us(Instant::now()) - p0));
        program
    };
    let mut sim = {
        let _span = t_generate.span();
        let p0 = us(Instant::now());
        let mut sim = Xsim::generate_with(&machine, options).map_err(|e| e.to_string())?;
        sim.load_program(&program);
        phases.push(("generate", p0, us(Instant::now()) - p0));
        sim
    };
    if trace_out.is_some() {
        sim.enable_event_trace(trace_capacity);
    }
    if let Some(path) = &trace_stream {
        let out: Box<dyn std::io::Write + Send> = if path == "-" {
            Box::new(std::io::stdout())
        } else {
            Box::new(std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?)
        };
        sim.set_event_sink(Box::new(StreamSink::new(out)));
    }
    if profile_out.is_some() {
        sim.enable_profile();
    }
    // The deadline is armed as late as possible: it bounds the *run*,
    // not loading or simulator generation.
    let deadline = (deadline_ms > 0)
        .then(|| archex::Deadline::arm(std::time::Duration::from_millis(deadline_ms)));
    if let Some(d) = &deadline {
        sim.set_cancel(d.flag());
    }
    let stop = {
        let _span = t_run.span();
        let p0 = us(Instant::now());
        let stop = sim.run_fuel(cycles, fuel);
        phases.push(("run", p0, us(Instant::now()) - p0));
        stop
    };
    if let Some(mut sink) = sim.take_event_sink() {
        sink.flush();
    }

    for &(name, _, dur) in &phases {
        obs::log::event_with(obs::Level::Info, "xsim.phase", name, || Json::obj().with("us", dur));
    }
    gensim::publish_opt_counters(&sim, &registry);
    gensim::publish_translate_counters(&sim, &registry);
    let netlist_block = match netlist_check {
        Some(backend) => Some(netlist_cross_check(&machine, &program, &sim, backend)?),
        None => None,
    };
    if let Some(path) = &stats_out {
        let mut stats = stats_json(&sim);
        stats.insert("stop", stop.to_string());
        if let Some(block) = &netlist_block {
            stats.insert("netlist", block.clone());
        }
        let timing = Json::obj()
            .with("load", t_load.summary().sum)
            .with("assemble", t_assemble.summary().sum)
            .with("generate", t_generate.summary().sum)
            .with("run", t_run.summary().sum);
        stats.insert("timing_us", timing);
        if log_spec.is_some() {
            // Flush first so the dispatcher's counters are final.
            obs::log::flush();
            let (events, dropped) = obs::log::stats();
            stats.insert("log", Json::obj().with("events", events).with("dropped", dropped));
        }
        write_report(path, &stats)?;
    }
    if let Some(path) = &trace_out {
        write_report(path, &trace_json(&sim))?;
    }
    if let Some(path) = &profile_out {
        write_report(path, &profile_json(&sim))?;
    }
    if let Some(path) = &chrome_out {
        let mut ct = ChromeTrace::new();
        for &(name, start, dur) in &phases {
            ct.complete(name, "xsim", 0, start, dur, Json::Null);
        }
        write_report(path, &ct.to_json())?;
    }

    // Keep stdout clean for piped JSON.
    let json_on_stdout = [&stats_out, &trace_out, &trace_stream, &profile_out, &chrome_out]
        .iter()
        .any(|o| o.as_deref() == Some("-"));
    let stats = sim.stats();
    let summary = format!(
        "stopped: {stop} after {} instructions, {} cycles ({} stalls), ipc {:.3}",
        stats.instructions,
        stats.cycles,
        stats.stall_cycles,
        stats.ipc()
    );
    if json_on_stdout {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
    if let Some(block) = &netlist_block {
        let verdict = format!(
            "netlist ({}) agrees after {} hardware cycles",
            block.get_str("backend").unwrap_or("?"),
            block.get_u64("cycles").unwrap_or(0),
        );
        if json_on_stdout {
            eprintln!("{verdict}");
        } else {
            println!("{verdict}");
        }
    }
    obs::log::shutdown();
    Ok(())
}

/// Replays the halted program on the HGEN netlist with the chosen
/// backend and verifies every data-carrying storage matches the ILS
/// bit-for-bit. Returns the netlist `vlog-stats/1` block.
fn netlist_cross_check(
    machine: &isdl::Machine,
    program: &xasm::Program,
    xsim: &Xsim<'_>,
    backend: vlog::SimBackend,
) -> Result<Json, String> {
    let hw = hgen::synthesize(machine, hgen::HgenOptions::default())
        .map_err(|e| format!("netlist check: synthesis failed: {e}"))?;
    let mut sim = hw.simulator(backend).map_err(|e| format!("netlist check: {e}"))?;
    let imem = &machine.storage(machine.imem.ok_or("netlist check: machine has no imem")?).name;
    let w = machine.word_width;
    for (a, word) in program.words.iter().enumerate() {
        sim.poke_memory(imem, a as u64, word.trunc(w).zext(w))
            .map_err(|e| format!("netlist check: {e}"))?;
    }
    if let Some(dm) =
        machine.storages.iter().find(|s| s.kind == isdl::model::StorageKind::DataMemory)
    {
        for &(addr, v) in &program.data {
            sim.poke_memory(&dm.name, addr, BitVector::from_i64(v, dm.width))
                .map_err(|e| format!("netlist check: {e}"))?;
        }
    }
    // The hardware stalls at most as many extra cycles as the ILS
    // charged; programs assembled from compiled kernels end in a
    // state-neutral self-loop.
    sim.clock(4 * xsim.stats().cycles + 16).map_err(|e| format!("netlist check: {e}"))?;
    for (i, s) in machine.storages.iter().enumerate() {
        use isdl::model::StorageKind::{InstructionMemory, ProgramCounter};
        if matches!(s.kind, ProgramCounter | InstructionMemory) {
            continue;
        }
        for a in 0..s.cells() {
            let soft = xsim.state().read(isdl::rtl::StorageId(i), a);
            let hard = if s.kind.is_addressed() {
                sim.peek_memory(&s.name, a).map_err(|e| format!("netlist check: {e}"))?
            } else {
                sim.peek(&s.name).map_err(|e| format!("netlist check: {e}"))?
            };
            if *soft != hard {
                return Err(format!(
                    "netlist check: {}[{a}] differs: ILS {soft}, netlist ({backend}) {hard}",
                    s.name
                ));
            }
        }
    }
    Ok(vlog::stats_json(&sim))
}

fn value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a str, String> {
    it.next().map(String::as_str).ok_or_else(|| format!("{flag} needs a value"))
}

fn write_report(path: &str, json: &Json) -> Result<(), String> {
    let text = json.to_pretty();
    if path == "-" {
        print!("{text}");
        Ok(())
    } else {
        std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
    }
}

fn usage() -> String {
    "usage: xsim <machine.isdl> <prog.asm> [--cycles N] [--fuel N] [--deadline-ms N] \
     [--stats <path|->] \
     [--trace <path|->] [--trace-capacity N] [--trace-stream <path|->] [--profile <path|->] \
     [--chrome-trace <path|->] [--core tree|bytecode] [--no-offline-decode] [--opt 0|1|2|3] \
     [--opt-passes fold,prop,...] [--dump-rtl before|after|both] \
     [--translate|--no-translate] [--netlist-sim event|levelized] \
     [--log[=LEVEL[,TARGET=LEVEL...]]] [--log-out <path|->]"
        .to_owned()
}
