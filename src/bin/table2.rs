//! Regenerates Table 2 of the paper: HGEN hardware-synthesis
//! statistics (cycle length, lines of Verilog, die size, synthesis
//! time) for the SPAM and SPAM2 processors.
//!
//! ```sh
//! cargo run --release --bin table2
//! ```

fn main() {
    let rows = bench::measure_table2();
    print!("{}", bench::format_table2(&rows));
    println!();
    println!("shape check (paper's relationships): SPAM > SPAM2 in area and lines of");
    println!("Verilog, comparable cycle lengths, synthesis time well under a minute.");
}
