//! `isdlc` — the command-line driver for the ISDL tool chain.
//!
//! ```text
//! isdlc check   <machine.isdl>                      validate and summarize
//! isdlc print   <machine.isdl>                      pretty-print the resolved description
//! isdlc opt     <machine.isdl> [--opt=N] [--opt-passes=LIST] [--dump-rtl=before|after|both]
//!                                                   run the RTL middle-end and report its
//!                                                   schedule and per-pass work; --dump-rtl
//!                                                   prints canonical RTL per (op, phase)
//! isdlc sample  <toy|acc16|widemul|spam|spam2>      print an embedded sample description
//! isdlc asm     <machine.isdl> <prog.asm>           assemble; hex words to stdout
//! isdlc disasm  <machine.isdl> <prog.asm>           assemble then disassemble (listing)
//! isdlc run     <machine.isdl> <prog.asm> [cycles] [--fuel=N] [--opt=N] [--profile[=PATH]]
//!                                                   simulate; prints stats + final state;
//!                                                   --profile adds a cycle-attribution summary
//!                                                   (=PATH writes the full xsim-profile/1 report)
//! isdlc batch   <machine.isdl> <prog.asm> <script>  run a simulator batch script
//! isdlc explore <machine.isdl> [--steps=N] [--beam=N] [--threads=N] [--chrome-trace=PATH]
//!               [--netlist-sim=event|levelized]  cross-check every evaluation on the netlist
//!               [--journal=PATH] [--deadline-ms=N] [--max-attempts=N] [--trace-out=PATH]
//!               [--progress[=MS]] [--progress-out=PATH] [--metrics-out=PATH]
//!                                                   run the Figure 1 exploration loop on the
//!                                                   built-in DSP workload; --chrome-trace writes
//!                                                   the round/eval timeline for chrome://tracing.
//!                                                   --journal checkpoints every round to PATH
//!                                                   (fsynced; an existing journal is resumed)
//!                                                   and directs flight-recorder dumps to
//!                                                   PATH.flight/; SIGINT/SIGTERM finish the
//!                                                   in-flight round, leave a resumable journal,
//!                                                   and exit 75. --progress prints a live
//!                                                   heartbeat one-liner to stderr every MS
//!                                                   milliseconds (default: every round);
//!                                                   --progress-out streams `archex-progress/1`
//!                                                   JSON Lines; --metrics-out atomically
//!                                                   rewrites a Prometheus textfile per beat.
//!                                                   --fault=STAGE:NTH (robustness testing)
//!                                                   arms a contained panic at the NTH fresh
//!                                                   evaluation inside STAGE
//!                                                   (compile|assemble|gensim|simulate|synthesize)
//!
//! Every command also accepts `--log[=LEVEL[,TARGET=LEVEL...]]` (structured
//! `xsim-log/1` events, default level info) and `--log-out=PATH` (default
//! stderr).
//! isdlc journal compact <in> <out>                  collapse a journal to header + snapshot
//! isdlc verilog <machine.isdl> [--no-share] [--naive-decode] [--opt=N|--no-opt]
//! isdlc report  <machine.isdl> [--no-share] [--naive-decode] [--opt=N|--no-opt]
//! isdlc wave    <machine.isdl> <prog.asm> [cycles] [--netlist-sim=event|levelized]
//!                                                   VCD waveform of the HW model to stdout
//! isdlc hex     <machine.isdl> <prog.asm>           $readmemh program image to stdout
//! isdlc tb      <machine.isdl> [cycles]             Verilog test bench to stdout
//! ```

use gensim::{cli, Xsim};
use hgen::{synthesize, DecodeStyle, HgenOptions, ShareOptions};
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use xasm::Assembler;

/// Exit code of a run interrupted by SIGINT/SIGTERM: the in-flight
/// round was finished, the journal checkpoint is clean and resumable.
/// (75 = EX_TEMPFAIL: "try again".)
const EXIT_INTERRUPTED: u8 = 75;

/// The shutdown flag shared between the signal handler and the
/// explorer. Created *before* the handlers are installed, so the
/// handler body is a plain atomic store — the only thing that is
/// async-signal-safe.
static SHUTDOWN: OnceLock<Arc<AtomicBool>> = OnceLock::new();

extern "C" fn on_shutdown_signal(_sig: i32) {
    if let Some(flag) = SHUTDOWN.get() {
        flag.store(true, Ordering::Relaxed);
    }
}

/// Installs SIGINT/SIGTERM handlers that request a cooperative
/// shutdown, returning the flag the explorer polls at round
/// boundaries.
fn install_shutdown_handlers() -> Arc<AtomicBool> {
    let flag = SHUTDOWN.get_or_init(|| Arc::new(AtomicBool::new(false))).clone();
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        // SIGINT = 2, SIGTERM = 15 on every unix this builds for.
        unsafe {
            signal(2, on_shutdown_signal);
            signal(15, on_shutdown_signal);
        }
    }
    flag
}

fn shutdown_requested() -> bool {
    SHUTDOWN.get().is_some_and(|f| f.load(Ordering::Relaxed))
}

/// Journal sink for `explore --journal=PATH`: writes to `PATH.tmp`,
/// fsyncs on every flush (each journal event is a durable checkpoint),
/// and atomically renames over `PATH` at the *first* flush — which the
/// explorer issues only once the full resume checkpoint is written. A
/// kill at any byte offset therefore leaves either the previous
/// journal or a strictly more informed replacement, never less.
struct PersistFile {
    file: std::fs::File,
    tmp: std::path::PathBuf,
    path: std::path::PathBuf,
    renamed: bool,
}

impl std::io::Write for PersistFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.file.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.file.sync_all()?;
        if !self.renamed {
            std::fs::rename(&self.tmp, &self.path)?;
            self.renamed = true;
        }
        Ok(())
    }
}

/// Writes `content` to `path` durably: temp file, fsync, atomic rename.
fn write_atomic(path: &str, content: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    let fail = |e: std::io::Error| format!("cannot write {path}: {e}");
    let mut f = std::fs::File::create(&tmp).map_err(fail)?;
    f.write_all(content.as_bytes()).map_err(fail)?;
    f.sync_all().map_err(fail)?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(fail)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) if shutdown_requested() => ExitCode::from(EXIT_INTERRUPTED),
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("isdlc: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let flags: Vec<&str> =
        args.iter().skip(1).filter(|a| a.starts_with("--")).map(String::as_str).collect();
    let pos: Vec<&String> = args.iter().skip(1).filter(|a| !a.starts_with("--")).collect();

    let log_spec = flags
        .iter()
        .find_map(|f| f.strip_prefix("--log=").map(str::to_owned))
        .or_else(|| flags.contains(&"--log").then(|| "info".to_owned()));
    if let Some(spec) = &log_spec {
        let filter = obs::LogFilter::parse(spec).map_err(|e| format!("--log: {e}"))?;
        let sink: Box<dyn std::io::Write + Send> =
            match flags.iter().find_map(|f| f.strip_prefix("--log-out=")) {
                None => Box::new(std::io::stderr()),
                Some("-") => Box::new(std::io::stdout()),
                Some(p) => Box::new(
                    std::fs::File::create(p).map_err(|e| format!("cannot create {p}: {e}"))?,
                ),
            };
        obs::log::init(filter, sink);
    }
    let outcome = dispatch(cmd, &flags, &pos);
    obs::log::shutdown();
    outcome
}

fn dispatch(cmd: &str, flags: &[&str], pos: &[&String]) -> Result<(), String> {
    let load = |i: usize| -> Result<isdl::Machine, String> {
        let path = pos.get(i).ok_or_else(usage)?;
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        isdl::load(&src).map_err(|e| format!("{path}: {e}"))
    };
    let read_file = |i: usize| -> Result<String, String> {
        let path = pos.get(i).ok_or_else(usage)?;
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let opt_level = || -> Result<isdl::opt::OptLevel, String> {
        if flags.contains(&"--no-opt") {
            return Ok(isdl::opt::OptLevel::None);
        }
        flags.iter().find_map(|f| f.strip_prefix("--opt=")).map_or(
            Ok(isdl::opt::OptLevel::default()),
            |v| {
                isdl::opt::OptLevel::parse(v)
                    .ok_or_else(|| format!("unknown opt level `{v}` (0|1|2|3)"))
            },
        )
    };
    let opt_passes = || -> Result<Option<isdl::opt::PassList>, String> {
        flags.iter().find_map(|f| f.strip_prefix("--opt-passes=")).map_or(Ok(None), |v| {
            isdl::opt::PassList::parse(v).map(Some).ok_or_else(|| {
                format!(
                    "bad pass list `{v}` (comma-separated subset of \
                     fold,prop,strength,fwd,dead,cse,share)"
                )
            })
        })
    };
    let pipeline = || -> Result<isdl::opt::Pipeline, String> {
        let level = opt_level()?;
        Ok(match opt_passes()? {
            Some(list) => isdl::opt::Pipeline::with_passes(level, list),
            None => isdl::opt::Pipeline::for_level(level),
        })
    };
    let hgen_options = || -> Result<HgenOptions, String> {
        Ok(HgenOptions {
            decode: if flags.contains(&"--naive-decode") {
                DecodeStyle::NaiveComparator
            } else {
                DecodeStyle::TwoLevel
            },
            share: if flags.contains(&"--no-share") {
                ShareOptions { enabled: false, ..ShareOptions::default() }
            } else {
                ShareOptions::default()
            },
            opt: opt_level()?,
            passes: opt_passes()?,
        })
    };

    let netlist_sim = || -> Result<vlog::SimBackend, String> {
        flags.iter().find_map(|f| f.strip_prefix("--netlist-sim=")).map_or(
            Ok(vlog::SimBackend::default()),
            |v| {
                vlog::SimBackend::parse(v)
                    .ok_or_else(|| format!("unknown netlist backend `{v}` (event|levelized)"))
            },
        )
    };

    match cmd {
        "check" => {
            let m = load(0)?;
            println!("machine `{}`: word {} bits", m.name, m.word_width);
            println!(
                "  {} storages, {} tokens, {} non-terminals",
                m.storages.len(),
                m.tokens.len(),
                m.nonterminals.len()
            );
            for f in &m.fields {
                println!("  field {}: {} operations", f.name, f.ops.len());
            }
            println!("  {} constraints, {} share hints", m.constraints.len(), m.share_hints.len());
            let lints = isdl::lint::lint(&m);
            for l in &lints {
                println!("  warning: {l}");
            }
            if lints.is_empty() {
                println!("  no lints");
            }
            Ok(())
        }
        "print" => {
            let m = load(0)?;
            print!("{}", isdl::printer::print(&m));
            Ok(())
        }
        "opt" => {
            // Run the middle-end over every operation and show its
            // work: the schedule, per-pass eliminations, and (with
            // --dump-rtl) the canonical-printed RTL per (op, phase).
            let m = load(0)?;
            let pl = pipeline()?;
            let mut stats = isdl::opt::OptStats::default();
            for f in &m.fields {
                for op in &f.ops {
                    for phase in [&op.action, &op.side_effects] {
                        if !phase.is_empty() {
                            let _ = pl.run(phase, &mut stats);
                        }
                    }
                }
            }
            println!("machine `{}`: opt level {}", m.name, pl.level());
            println!("  schedule         {pl}");
            println!(
                "  nodes            {} -> {} ({} eliminated)",
                stats.nodes_before,
                stats.nodes_after,
                stats.nodes_eliminated()
            );
            for p in &stats.passes {
                println!(
                    "  pass {:<12} {:>3} runs  {:>5} -> {:<5} nodes  {:>4} rewrites",
                    p.name, p.runs, p.nodes_in, p.nodes_out, p.rewrites
                );
            }
            if let Some(v) = flags.iter().find_map(|f| f.strip_prefix("--dump-rtl=")) {
                let mode = isdl::opt::DumpMode::parse(v)
                    .ok_or_else(|| format!("unknown dump mode `{v}` (before|after|both)"))?;
                print!("{}", isdl::opt::dump_rtl(&m, &pl, mode));
            }
            Ok(())
        }
        "sample" => {
            let name = pos.first().ok_or_else(usage)?;
            let src = match name.as_str() {
                "toy" => isdl::samples::TOY,
                "acc16" => isdl::samples::ACC16,
                "spam" => isdl::samples::SPAM,
                "spam2" => isdl::samples::SPAM2,
                "widemul" => isdl::samples::WIDEMUL,
                other => {
                    return Err(format!("unknown sample `{other}` (toy|acc16|widemul|spam|spam2)"))
                }
            };
            print!("{src}");
            Ok(())
        }
        "asm" => {
            let m = load(0)?;
            let src = read_file(1)?;
            let p = Assembler::new(&m).assemble(&src).map_err(|e| e.to_string())?;
            for (a, w) in p.words.iter().enumerate() {
                println!("{a:04x}: {w:x}");
            }
            Ok(())
        }
        "disasm" => {
            let m = load(0)?;
            let src = read_file(1)?;
            let p = Assembler::new(&m).assemble(&src).map_err(|e| e.to_string())?;
            let d = xasm::Disassembler::new(&m);
            let mut a = 0u64;
            while (a as usize) < p.words.len() {
                let window =
                    &p.words[a as usize..(a as usize + d.max_size() as usize).min(p.words.len())];
                match d.decode(window, a) {
                    Ok(i) => {
                        println!("{a:04x}: {}", d.format_instr(&i));
                        a += u64::from(i.size);
                    }
                    Err(_) => {
                        println!("{a:04x}: .word 0x{:x}", p.words[a as usize]);
                        a += 1;
                    }
                }
            }
            Ok(())
        }
        "run" => {
            let m = load(0)?;
            let src = read_file(1)?;
            let cycles: u64 = pos.get(2).map_or(Ok(1_000_000), |c| {
                c.parse().map_err(|_| format!("bad cycle budget `{c}`"))
            })?;
            let fuel: u64 =
                flags.iter().find_map(|f| f.strip_prefix("--fuel=")).map_or(Ok(u64::MAX), |v| {
                    v.parse().map_err(|_| format!("bad instruction budget `{v}`"))
                })?;
            let p = Assembler::new(&m).assemble(&src).map_err(|e| e.to_string())?;
            let options = gensim::XsimOptions {
                opt: opt_level()?,
                passes: opt_passes()?,
                ..Default::default()
            };
            let mut sim = Xsim::generate_with(&m, options).map_err(|e| e.to_string())?;
            sim.load_program(&p);
            let profiling = flags.iter().any(|f| *f == "--profile" || f.starts_with("--profile="));
            if profiling {
                sim.enable_profile();
            }
            let stop = sim.run_fuel(cycles, fuel);
            let stats = sim.stats();
            println!(
                "stopped: {stop} after {} instructions, {} cycles ({} stalls)",
                stats.instructions, stats.cycles, stats.stall_cycles
            );
            for (fi, f) in m.fields.iter().enumerate() {
                println!(
                    "  field {}: {:.1}% utilized",
                    f.name,
                    100.0 * stats.field_utilization(fi)
                );
            }
            for (si, s) in m.storages.iter().enumerate() {
                use isdl::model::StorageKind::*;
                if matches!(s.kind, InstructionMemory) {
                    continue;
                }
                if s.kind.is_addressed() {
                    // Print only non-zero cells to keep output readable.
                    let nz: Vec<String> = (0..s.cells())
                        .filter_map(|a| {
                            let v = sim.state().read(isdl::rtl::StorageId(si), a);
                            (!v.is_zero()).then(|| format!("[{a}]={v:x}"))
                        })
                        .collect();
                    if !nz.is_empty() {
                        println!("  {}: {}", s.name, nz.join(" "));
                    }
                } else {
                    let v = sim.state().read(isdl::rtl::StorageId(si), 0);
                    println!("  {} = {v}", s.name);
                }
            }
            if profiling {
                let report = gensim::profile_json(&sim);
                if let Some(path) = flags.iter().find_map(|f| f.strip_prefix("--profile=")) {
                    std::fs::write(path, report.to_pretty())
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                }
                print_profile_summary(&report);
            }
            Ok(())
        }
        "batch" => {
            let m = load(0)?;
            let src = read_file(1)?;
            let script = read_file(2)?;
            let p = Assembler::new(&m).assemble(&src).map_err(|e| e.to_string())?;
            let mut sim = Xsim::generate(&m).map_err(|e| e.to_string())?;
            sim.load_program(&p);
            print!("{}", cli::run_batch(&mut sim, &script));
            Ok(())
        }
        "wave" => {
            let m = load(0)?;
            let src = read_file(1)?;
            let cycles: u64 = pos
                .get(2)
                .map_or(Ok(64), |c| c.parse().map_err(|_| format!("bad cycle budget `{c}`")))?;
            let p = Assembler::new(&m).assemble(&src).map_err(|e| e.to_string())?;
            let r = synthesize(&m, hgen_options()?).map_err(|e| e.to_string())?;
            let mut sim = r.simulator(netlist_sim()?).map_err(|e| e.to_string())?;
            let imem = m.storage(m.imem.ok_or("machine has no instruction memory")?).name.clone();
            for (a, w) in p.words.iter().enumerate() {
                sim.poke_memory(&imem, a as u64, w.clone()).map_err(|e| e.to_string())?;
            }
            sim.start_vcd(Box::new(std::io::stdout())).map_err(|e| e.to_string())?;
            sim.clock(cycles).map_err(|e| e.to_string())?;
            Ok(())
        }
        "hex" => {
            let m = load(0)?;
            let src = read_file(1)?;
            let p = Assembler::new(&m).assemble(&src).map_err(|e| e.to_string())?;
            print!("{}", p.to_hex());
            Ok(())
        }
        "tb" => {
            let m = load(0)?;
            let cycles: u64 = pos
                .get(1)
                .map_or(Ok(1_000), |c| c.parse().map_err(|_| format!("bad cycle budget `{c}`")))?;
            let name: String = m
                .name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
                .collect();
            let tb = hgen::emit_testbench(
                &m,
                &name,
                &hgen::TestbenchOptions { cycles, ..hgen::TestbenchOptions::default() },
            );
            print!("{tb}");
            Ok(())
        }
        "explore" => {
            let m = load(0)?;
            let num = |prefix: &str, default: usize| -> Result<usize, String> {
                flags.iter().find_map(|f| f.strip_prefix(prefix)).map_or(Ok(default), |v| {
                    v.parse().map_err(|_| format!("bad value `{v}` for {prefix}N"))
                })
            };
            let steps = num("--steps=", 6)?;
            let beam = num("--beam=", 0)?;
            let threads = num("--threads=", 0)?;
            let deadline_ms = num("--deadline-ms=", 0)? as u64;
            let max_attempts = num("--max-attempts=", 1)?;
            let shutdown = install_shutdown_handlers();
            let progress_ms = flags
                .iter()
                .find_map(|f| f.strip_prefix("--progress="))
                .map(|v| v.parse::<u64>().map_err(|_| format!("bad interval `{v}`")))
                .transpose()?
                .or_else(|| flags.contains(&"--progress").then_some(0));
            let fault_plan = flags
                .iter()
                .find_map(|f| f.strip_prefix("--fault="))
                .map(|v| -> Result<archex::FaultPlan, String> {
                    let (stage, nth) =
                        v.split_once(':').ok_or_else(|| format!("bad fault `{v}` (STAGE:NTH)"))?;
                    let stage = match stage {
                        "compile" => archex::Stage::Compile,
                        "assemble" => archex::Stage::Assemble,
                        "gensim" => archex::Stage::Gensim,
                        "simulate" => archex::Stage::Simulate,
                        "synthesize" => archex::Stage::Synthesize,
                        other => {
                            return Err(format!(
                            "unknown stage `{other}` (compile|assemble|gensim|simulate|synthesize)"
                        ))
                        }
                    };
                    let nth = nth.parse().map_err(|_| format!("bad fault index `{nth}`"))?;
                    Ok(archex::FaultPlan::panic_at(stage, nth))
                })
                .transpose()?;
            let progress_out = flags.iter().find_map(|f| f.strip_prefix("--progress-out="));
            let metrics_out = flags.iter().find_map(|f| f.strip_prefix("--metrics-out="));
            let progress =
                if progress_ms.is_some() || progress_out.is_some() || metrics_out.is_some() {
                    let jsonl: Option<archex::ProgressSink> = match progress_out {
                        None => None,
                        Some(p) => Some(std::sync::Arc::new(std::sync::Mutex::new(
                            std::fs::File::create(p)
                                .map_err(|e| format!("cannot create {p}: {e}"))?,
                        ))),
                    };
                    let human: Option<archex::ProgressSink> =
                        progress_ms.is_some().then(|| -> archex::ProgressSink {
                            std::sync::Arc::new(std::sync::Mutex::new(std::io::stderr()))
                        });
                    Some(archex::Progress {
                        interval_ms: progress_ms.unwrap_or(0),
                        jsonl,
                        human,
                        metrics_out: metrics_out.map(std::path::PathBuf::from),
                    })
                } else {
                    None
                };
            let explorer = archex::Explorer {
                max_steps: steps,
                strategy: if beam > 1 {
                    archex::Strategy::Beam { width: beam }
                } else {
                    archex::Strategy::Greedy
                },
                threads,
                retry: archex::RetryPolicy { max_attempts: max_attempts.max(1) },
                deadline_ms,
                shutdown: Some(shutdown),
                netlist_check: match flags.iter().find(|f| f.starts_with("--netlist-sim=")) {
                    Some(_) => archex::NetlistCheck::Run(netlist_sim()?),
                    None => archex::NetlistCheck::Off,
                },
                progress,
                fault_plan,
                ..archex::Explorer::default()
            };
            let kernels =
                vec![archex::workloads::dot_product(4), archex::workloads::vector_update(3)];
            let trace = if let Some(path) = flags.iter().find_map(|f| f.strip_prefix("--journal="))
            {
                // Post-mortem dumps (contained panics, deadline expiry,
                // journal corruption) land next to the journal they
                // belong to.
                obs::flight::set_dump_dir(Some(std::path::PathBuf::from(format!("{path}.flight"))));
                let previous = match std::fs::read_to_string(path) {
                    Ok(text) => text,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
                    Err(e) => return Err(format!("cannot read {path}: {e}")),
                };
                let tmp = format!("{path}.tmp");
                let file =
                    std::fs::File::create(&tmp).map_err(|e| format!("cannot create {tmp}: {e}"))?;
                let mut sink =
                    PersistFile { file, tmp: tmp.into(), path: path.into(), renamed: false };
                explorer
                    .resume_or_start_journaled(
                        &m,
                        &kernels,
                        &archex::EvalCache::new(),
                        &previous,
                        &mut sink,
                    )
                    .map_err(|e| e.to_string())?
            } else {
                explorer.run(&m, &kernels).map_err(|e| e.to_string())?
            };
            println!(
                "explored `{}`: {} candidates ({} fresh, {} cached, {} skipped)",
                m.name,
                trace.candidates_evaluated(),
                trace.evaluated,
                trace.cache_hits,
                trace.skipped_errors,
            );
            if trace.retried > 0 {
                println!(
                    "  {} transient failures retried ({} attempts for {} evaluations)",
                    trace.retried, trace.attempts, trace.evaluated
                );
            }
            for (kind, n) in &trace.error_histogram {
                println!("  errors[{kind}]: {n}");
            }
            for s in &trace.steps {
                println!(
                    "  {:<28} score {:>8.4}  runtime {:>9.2} us  area {:>8.0} cells",
                    s.action, s.score, s.metrics.runtime_us, s.metrics.area_cells
                );
            }
            if let Some(path) = flags.iter().find_map(|f| f.strip_prefix("--chrome-trace=")) {
                let doc = archex::chrome_trace(&trace);
                std::fs::write(path, doc.to_pretty())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("chrome trace written to {path} (open in chrome://tracing or Perfetto)");
            }
            if let Some(path) = flags.iter().find_map(|f| f.strip_prefix("--trace-out=")) {
                write_atomic(path, &trace.to_json().to_pretty())?;
            }
            if shutdown_requested() {
                eprintln!(
                    "isdlc: interrupted after {} of {steps} rounds; \
                     the journal checkpoint is clean — rerun to resume",
                    trace.steps.len().saturating_sub(1)
                );
            }
            Ok(())
        }
        "journal" => {
            let action = pos.first().ok_or_else(usage)?;
            if action.as_str() != "compact" {
                return Err(format!("unknown journal action `{action}` (compact)"));
            }
            let input = pos.get(1).ok_or_else(usage)?;
            let output = pos.get(2).ok_or_else(usage)?;
            let text =
                std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
            let compacted = archex::compact(&text).map_err(|e| e.to_string())?;
            write_atomic(output, &compacted)?;
            println!(
                "compacted {input} ({} lines) to {output} ({} lines)",
                text.lines().count(),
                compacted.lines().count()
            );
            Ok(())
        }
        "verilog" => {
            let m = load(0)?;
            let r = synthesize(&m, hgen_options()?).map_err(|e| e.to_string())?;
            print!("{}", r.verilog);
            Ok(())
        }
        "report" => {
            let m = load(0)?;
            let r = synthesize(&m, hgen_options()?).map_err(|e| e.to_string())?;
            println!("machine `{}`:", m.name);
            println!("  cycle length     {:.1} ns", r.report.cycle_ns);
            println!("  critical path    {:.1} ns", r.report.critical_path_ns);
            println!("  die size         {} grid cells", r.report.area_cells as u64);
            for (k, v) in {
                let mut v: Vec<_> = r.report.area_breakdown.iter().collect();
                v.sort_by(|a, b| a.0.cmp(b.0));
                v
            } {
                println!("    {k:<14} {} cells", *v as u64);
            }
            println!(
                "  state            {} ff bits + {} memory bits",
                r.report.ff_bits, r.report.mem_bits
            );
            println!("  power            {:.1} mW at fmax", r.report.power_mw);
            println!("  verilog          {} lines", r.lines_of_verilog);
            println!(
                "  datapath         {} nodes -> {} units ({} saved by sharing)",
                r.stats.nodes, r.stats.units, r.stats.units_saved
            );
            println!(
                "  middle-end       {} RTL nodes -> {} ({} CSE hits, opt level {})",
                r.stats.opt.nodes_before,
                r.stats.opt.nodes_after,
                r.stats.opt.cse_hits,
                hgen_options()?.opt
            );
            println!("    schedule       {}", hgen_options()?.pipeline());
            for p in &r.stats.opt.passes {
                println!(
                    "    pass {:<10} {:>3} runs  {:>5} -> {:<5} nodes  {:>4} rewrites",
                    p.name, p.runs, p.nodes_in, p.nodes_out, p.rewrites
                );
            }
            println!("  synthesis time   {:.3} s", r.synthesis_time_s);
            Ok(())
        }
        _ => Err(usage()),
    }
}

/// Renders the gprof-style tail of `isdlc run --profile`: cycles by
/// region, then the hottest stalling PCs with their attributed cause.
fn print_profile_summary(report: &obs::Json) {
    use obs::Json;
    let total = report.get_f64("cycles").unwrap_or(0.0).max(1.0);
    let mut regions: Vec<&Json> = report
        .get("regions")
        .and_then(Json::as_arr)
        .map(|a| a.iter().collect())
        .unwrap_or_default();
    regions.sort_by_key(|r| std::cmp::Reverse(r.get_u64("cycles").unwrap_or(0)));
    println!("profile (cycles by region):");
    for r in &regions {
        let cycles = r.get_u64("cycles").unwrap_or(0);
        println!(
            "  {:<16} {:>8} cycles ({:>5.1}%)  {:>6} stalls  {:>6} issues",
            r.get_str("name").unwrap_or("?"),
            cycles,
            100.0 * cycles as f64 / total,
            r.get_u64("stall_cycles").unwrap_or(0),
            r.get_u64("issues").unwrap_or(0),
        );
    }
    let mut pcs: Vec<&Json> =
        report.get("pcs").and_then(Json::as_arr).map(|a| a.iter().collect()).unwrap_or_default();
    pcs.retain(|p| p.get_u64("stall_cycles").unwrap_or(0) > 0);
    pcs.sort_by_key(|p| std::cmp::Reverse(p.get_u64("stall_cycles").unwrap_or(0)));
    if !pcs.is_empty() {
        println!("hottest stalls:");
    }
    for p in pcs.iter().take(5) {
        let cause = p.get("stall_cause");
        let kind = cause.and_then(|c| c.get_str("kind")).unwrap_or("?");
        let storage = cause.and_then(|c| c.get_str("storage")).unwrap_or("?");
        let producer = cause.and_then(|c| c.get_u64("producer_pc")).unwrap_or(0);
        println!(
            "  pc {:>4}: {:>6} stall cycles ({kind} hazard on {storage}, producer pc {producer})",
            p.get_u64("pc").unwrap_or(0),
            p.get_u64("stall_cycles").unwrap_or(0),
        );
    }
}

fn usage() -> String {
    "usage: isdlc <check|print|opt|sample|asm|disasm|run|batch|explore|journal|verilog|report|\
     wave|hex|tb> <machine.isdl> [args] [--no-share] [--naive-decode] [--fuel=N] [--opt=0|1|2|3] \
     [--opt-passes=fold,prop,...] [--dump-rtl=before|after|both] \
     [--no-opt] [--profile[=PATH]] [--steps=N] [--beam=N] [--threads=N] [--chrome-trace=PATH] \
     [--netlist-sim=event|levelized] [--journal=PATH] [--deadline-ms=N] [--max-attempts=N] \
     [--trace-out=PATH] [--progress[=MS]] [--progress-out=PATH] [--metrics-out=PATH] \
     [--fault=STAGE:NTH] [--log[=LEVEL[,TARGET=LEVEL...]]] [--log-out=PATH]"
        .to_owned()
}
