//! `isdlc` — the command-line driver for the ISDL tool chain.
//!
//! ```text
//! isdlc check   <machine.isdl>                      validate and summarize
//! isdlc print   <machine.isdl>                      pretty-print the resolved description
//! isdlc sample  <toy|acc16|widemul|spam|spam2>      print an embedded sample description
//! isdlc asm     <machine.isdl> <prog.asm>           assemble; hex words to stdout
//! isdlc disasm  <machine.isdl> <prog.asm>           assemble then disassemble (listing)
//! isdlc run     <machine.isdl> <prog.asm> [cycles] [--fuel=N] [--opt=N]  simulate; prints stats + final state
//! isdlc batch   <machine.isdl> <prog.asm> <script>  run a simulator batch script
//! isdlc verilog <machine.isdl> [--no-share] [--naive-decode] [--opt=N|--no-opt]
//! isdlc report  <machine.isdl> [--no-share] [--naive-decode] [--opt=N|--no-opt]
//! isdlc wave    <machine.isdl> <prog.asm> [cycles]  VCD waveform of the HW model to stdout
//! isdlc hex     <machine.isdl> <prog.asm>           $readmemh program image to stdout
//! isdlc tb      <machine.isdl> [cycles]             Verilog test bench to stdout
//! ```

use gensim::{cli, Xsim};
use hgen::{synthesize, DecodeStyle, HgenOptions, ShareOptions};
use std::process::ExitCode;
use xasm::Assembler;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("isdlc: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let flags: Vec<&str> =
        args.iter().skip(1).filter(|a| a.starts_with("--")).map(String::as_str).collect();
    let pos: Vec<&String> = args.iter().skip(1).filter(|a| !a.starts_with("--")).collect();

    let load = |i: usize| -> Result<isdl::Machine, String> {
        let path = pos.get(i).ok_or_else(usage)?;
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        isdl::load(&src).map_err(|e| format!("{path}: {e}"))
    };
    let read_file = |i: usize| -> Result<String, String> {
        let path = pos.get(i).ok_or_else(usage)?;
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let opt_level = || -> Result<isdl::opt::OptLevel, String> {
        if flags.contains(&"--no-opt") {
            return Ok(isdl::opt::OptLevel::None);
        }
        flags.iter().find_map(|f| f.strip_prefix("--opt=")).map_or(
            Ok(isdl::opt::OptLevel::default()),
            |v| {
                isdl::opt::OptLevel::parse(v)
                    .ok_or_else(|| format!("unknown opt level `{v}` (0|1|2)"))
            },
        )
    };
    let hgen_options = || -> Result<HgenOptions, String> {
        Ok(HgenOptions {
            decode: if flags.contains(&"--naive-decode") {
                DecodeStyle::NaiveComparator
            } else {
                DecodeStyle::TwoLevel
            },
            share: if flags.contains(&"--no-share") {
                ShareOptions { enabled: false, ..ShareOptions::default() }
            } else {
                ShareOptions::default()
            },
            opt: opt_level()?,
        })
    };

    match cmd.as_str() {
        "check" => {
            let m = load(0)?;
            println!("machine `{}`: word {} bits", m.name, m.word_width);
            println!(
                "  {} storages, {} tokens, {} non-terminals",
                m.storages.len(),
                m.tokens.len(),
                m.nonterminals.len()
            );
            for f in &m.fields {
                println!("  field {}: {} operations", f.name, f.ops.len());
            }
            println!("  {} constraints, {} share hints", m.constraints.len(), m.share_hints.len());
            let lints = isdl::lint::lint(&m);
            for l in &lints {
                println!("  warning: {l}");
            }
            if lints.is_empty() {
                println!("  no lints");
            }
            Ok(())
        }
        "print" => {
            let m = load(0)?;
            print!("{}", isdl::printer::print(&m));
            Ok(())
        }
        "sample" => {
            let name = pos.first().ok_or_else(usage)?;
            let src = match name.as_str() {
                "toy" => isdl::samples::TOY,
                "acc16" => isdl::samples::ACC16,
                "spam" => isdl::samples::SPAM,
                "spam2" => isdl::samples::SPAM2,
                "widemul" => isdl::samples::WIDEMUL,
                other => {
                    return Err(format!("unknown sample `{other}` (toy|acc16|widemul|spam|spam2)"))
                }
            };
            print!("{src}");
            Ok(())
        }
        "asm" => {
            let m = load(0)?;
            let src = read_file(1)?;
            let p = Assembler::new(&m).assemble(&src).map_err(|e| e.to_string())?;
            for (a, w) in p.words.iter().enumerate() {
                println!("{a:04x}: {w:x}");
            }
            Ok(())
        }
        "disasm" => {
            let m = load(0)?;
            let src = read_file(1)?;
            let p = Assembler::new(&m).assemble(&src).map_err(|e| e.to_string())?;
            let d = xasm::Disassembler::new(&m);
            let mut a = 0u64;
            while (a as usize) < p.words.len() {
                let window =
                    &p.words[a as usize..(a as usize + d.max_size() as usize).min(p.words.len())];
                match d.decode(window, a) {
                    Ok(i) => {
                        println!("{a:04x}: {}", d.format_instr(&i));
                        a += u64::from(i.size);
                    }
                    Err(_) => {
                        println!("{a:04x}: .word 0x{:x}", p.words[a as usize]);
                        a += 1;
                    }
                }
            }
            Ok(())
        }
        "run" => {
            let m = load(0)?;
            let src = read_file(1)?;
            let cycles: u64 = pos.get(2).map_or(Ok(1_000_000), |c| {
                c.parse().map_err(|_| format!("bad cycle budget `{c}`"))
            })?;
            let fuel: u64 =
                flags.iter().find_map(|f| f.strip_prefix("--fuel=")).map_or(Ok(u64::MAX), |v| {
                    v.parse().map_err(|_| format!("bad instruction budget `{v}`"))
                })?;
            let p = Assembler::new(&m).assemble(&src).map_err(|e| e.to_string())?;
            let options = gensim::XsimOptions { opt: opt_level()?, ..Default::default() };
            let mut sim = Xsim::generate_with(&m, options).map_err(|e| e.to_string())?;
            sim.load_program(&p);
            let stop = sim.run_fuel(cycles, fuel);
            let stats = sim.stats();
            println!(
                "stopped: {stop} after {} instructions, {} cycles ({} stalls)",
                stats.instructions, stats.cycles, stats.stall_cycles
            );
            for (fi, f) in m.fields.iter().enumerate() {
                println!(
                    "  field {}: {:.1}% utilized",
                    f.name,
                    100.0 * stats.field_utilization(fi)
                );
            }
            for (si, s) in m.storages.iter().enumerate() {
                use isdl::model::StorageKind::*;
                if matches!(s.kind, InstructionMemory) {
                    continue;
                }
                if s.kind.is_addressed() {
                    // Print only non-zero cells to keep output readable.
                    let nz: Vec<String> = (0..s.cells())
                        .filter_map(|a| {
                            let v = sim.state().read(isdl::rtl::StorageId(si), a);
                            (!v.is_zero()).then(|| format!("[{a}]={v:x}"))
                        })
                        .collect();
                    if !nz.is_empty() {
                        println!("  {}: {}", s.name, nz.join(" "));
                    }
                } else {
                    let v = sim.state().read(isdl::rtl::StorageId(si), 0);
                    println!("  {} = {v}", s.name);
                }
            }
            Ok(())
        }
        "batch" => {
            let m = load(0)?;
            let src = read_file(1)?;
            let script = read_file(2)?;
            let p = Assembler::new(&m).assemble(&src).map_err(|e| e.to_string())?;
            let mut sim = Xsim::generate(&m).map_err(|e| e.to_string())?;
            sim.load_program(&p);
            print!("{}", cli::run_batch(&mut sim, &script));
            Ok(())
        }
        "wave" => {
            let m = load(0)?;
            let src = read_file(1)?;
            let cycles: u64 = pos
                .get(2)
                .map_or(Ok(64), |c| c.parse().map_err(|_| format!("bad cycle budget `{c}`")))?;
            let p = Assembler::new(&m).assemble(&src).map_err(|e| e.to_string())?;
            let r = synthesize(&m, hgen_options()?).map_err(|e| e.to_string())?;
            let mut sim = vlog::sim::NetlistSim::elaborate(&r.module).map_err(|e| e.to_string())?;
            let imem = m.storage(m.imem.ok_or("machine has no instruction memory")?).name.clone();
            for (a, w) in p.words.iter().enumerate() {
                sim.poke_memory(&imem, a as u64, w.clone()).map_err(|e| e.to_string())?;
            }
            sim.start_vcd(Box::new(std::io::stdout())).map_err(|e| e.to_string())?;
            sim.clock(cycles).map_err(|e| e.to_string())?;
            Ok(())
        }
        "hex" => {
            let m = load(0)?;
            let src = read_file(1)?;
            let p = Assembler::new(&m).assemble(&src).map_err(|e| e.to_string())?;
            print!("{}", p.to_hex());
            Ok(())
        }
        "tb" => {
            let m = load(0)?;
            let cycles: u64 = pos
                .get(1)
                .map_or(Ok(1_000), |c| c.parse().map_err(|_| format!("bad cycle budget `{c}`")))?;
            let name: String = m
                .name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
                .collect();
            let tb = hgen::emit_testbench(
                &m,
                &name,
                &hgen::TestbenchOptions { cycles, ..hgen::TestbenchOptions::default() },
            );
            print!("{tb}");
            Ok(())
        }
        "verilog" => {
            let m = load(0)?;
            let r = synthesize(&m, hgen_options()?).map_err(|e| e.to_string())?;
            print!("{}", r.verilog);
            Ok(())
        }
        "report" => {
            let m = load(0)?;
            let r = synthesize(&m, hgen_options()?).map_err(|e| e.to_string())?;
            println!("machine `{}`:", m.name);
            println!("  cycle length     {:.1} ns", r.report.cycle_ns);
            println!("  critical path    {:.1} ns", r.report.critical_path_ns);
            println!("  die size         {} grid cells", r.report.area_cells as u64);
            for (k, v) in {
                let mut v: Vec<_> = r.report.area_breakdown.iter().collect();
                v.sort_by(|a, b| a.0.cmp(b.0));
                v
            } {
                println!("    {k:<14} {} cells", *v as u64);
            }
            println!(
                "  state            {} ff bits + {} memory bits",
                r.report.ff_bits, r.report.mem_bits
            );
            println!("  power            {:.1} mW at fmax", r.report.power_mw);
            println!("  verilog          {} lines", r.lines_of_verilog);
            println!(
                "  datapath         {} nodes -> {} units ({} saved by sharing)",
                r.stats.nodes, r.stats.units, r.stats.units_saved
            );
            println!(
                "  middle-end       {} RTL nodes -> {} ({} CSE hits, opt level {})",
                r.stats.opt.nodes_before,
                r.stats.opt.nodes_after,
                r.stats.opt.cse_hits,
                hgen_options()?.opt
            );
            println!("  synthesis time   {:.3} s", r.synthesis_time_s);
            Ok(())
        }
        _ => Err(usage()),
    }
}

fn usage() -> String {
    "usage: isdlc <check|print|sample|asm|disasm|run|batch|verilog|report|wave|hex|tb> \
     <machine.isdl> [args] [--no-share] [--naive-decode] [--fuel=N] [--opt=0|1|2] [--no-opt]"
        .to_owned()
}
