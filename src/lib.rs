#![warn(missing_docs)]

//! Umbrella crate for the ISDL architecture-exploration suite.
//!
//! Re-exports every workspace crate so the examples and integration
//! tests can use one import root.

pub use archex;
pub use bitv;
pub use gensim;
pub use hgen;
pub use isdl;
pub use vlog;
pub use xasm;
