; Compiled 3-tap FIR on an 8-sample window for the SPAM fixture
; (archex::workloads::fir(3, 8) through archex::compile) — the
; benchmark kernel of Table 1 and the profiling walkthrough in
; EXPERIMENTS.md. Regenerate by compiling the kernel with archex.
MUL.clracc
MEM.ld R0, 0
MEM.ld R1, 5
MUL.mac R0, R1
MEM.ld R0, 1
MEM.ld R1, 4
MUL.mac R0, R1
MEM.ld R0, 2
MEM.ld R1, 3
MUL.mac R0, R1
MOV0.mvacc R2
MEM.st 11, R2
MUL.clracc
MEM.ld R0, 0
MEM.ld R1, 6
MUL.mac R0, R1
MEM.ld R0, 1
MEM.ld R1, 5
MUL.mac R0, R1
MEM.ld R0, 2
MEM.ld R1, 4
MUL.mac R0, R1
MOV0.mvacc R2
MEM.st 12, R2
MUL.clracc
MEM.ld R0, 0
MEM.ld R1, 7
MUL.mac R0, R1
MEM.ld R0, 1
MEM.ld R1, 6
MUL.mac R0, R1
MEM.ld R0, 2
MEM.ld R1, 5
MUL.mac R0, R1
MOV0.mvacc R2
MEM.st 13, R2
MUL.clracc
MEM.ld R0, 0
MEM.ld R1, 8
MUL.mac R0, R1
MEM.ld R0, 1
MEM.ld R1, 7
MUL.mac R0, R1
MEM.ld R0, 2
MEM.ld R1, 6
MUL.mac R0, R1
MOV0.mvacc R2
MEM.st 14, R2
MUL.clracc
MEM.ld R0, 0
MEM.ld R1, 9
MUL.mac R0, R1
MEM.ld R0, 1
MEM.ld R1, 8
MUL.mac R0, R1
MEM.ld R0, 2
MEM.ld R1, 7
MUL.mac R0, R1
MOV0.mvacc R2
MEM.st 15, R2
MUL.clracc
MEM.ld R0, 0
MEM.ld R1, 10
MUL.mac R0, R1
MEM.ld R0, 1
MEM.ld R1, 9
MUL.mac R0, R1
MEM.ld R0, 2
MEM.ld R1, 8
MUL.mac R0, R1
MOV0.mvacc R2
MEM.st 16, R2
__end: MEM.jmp __end
.data
.org 0
.word 1
.org 1
.word 2
.org 2
.word 3
.org 3
.word 1
.org 4
.word 4
.org 5
.word 7
.org 6
.word 10
.org 7
.word 13
.org 8
.word 16
.org 9
.word 2
.org 10
.word 5
