#!/usr/bin/env bash
# Full offline verification: format, lint, build, test. No network
# access is required at any step — proptest and criterion resolve to
# the vendored shims under vendor/ (see DESIGN.md).
#
# Usage:
#   scripts/verify.sh          # tier-1: fmt + clippy + build + tests
#   scripts/verify.sh --slow   # additionally run the property suites
#   scripts/verify.sh --doc    # only the rustdoc pass (warnings fatal)
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

if [[ "${1:-}" == "--doc" ]]; then
    RUSTDOCFLAGS="-D warnings" run cargo doc --no-deps --workspace
    echo "verify: OK"
    exit 0
fi

run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release
run cargo test -q
# Robustness gates (see docs/ROBUSTNESS.md): fault containment,
# deterministic retry/deadline supervision, and journaled
# checkpoint/resume (including the `/1` fixture and the corruption
# matrix) must stay deterministic. All suites run inside `cargo test
# -q` above too; naming them here keeps the gates explicit and the
# failure output focused.
run cargo test -q -p archex --test fault_injection
run cargo test -q -p archex --test retry_deadline
run cargo test -q -p archex --test journal_resume
run cargo test -q -p archex --test journal_formats
# Crash-torture smoke (see docs/ROBUSTNESS.md): real `isdlc explore
# --journal` children are SIGKILLed at seeded byte offsets and
# resumed; the final trace must match the uninterrupted run's. The
# full seeded sweep (kill chains, SIGINT graceful shutdown) runs under
# --slow.
run cargo test -q --test crash_torture
# RTL middle-end gate: optimized and unoptimized execution must stay
# bit-identical on every sample machine, for both simulator cores and
# the generated hardware, at every pipeline level INCLUDING the
# level-3 pass-manager schedule (fold,prop,strength,fwd,dead,cse,
# share), whose per-pass stats must partition the pipeline totals
# exactly (see DESIGN.md §4a). Also inside `cargo test -q` above;
# named here so an optimizer regression fails loudly.
run cargo test -q --test opt_differential
# Translation-tier gate (see DESIGN.md §4b): dispatching through
# translated basic blocks must be bit-identical to the interpreter —
# state, traces, profiles, cycle counts — including under
# self-modifying code, on every sample machine and opt level.
run cargo test -q --test translate_differential
# Netlist backend gate (see docs/SIMULATORS.md): the event-driven and
# compiled levelized netlist simulators must agree bit-for-bit with the
# ILS on every sample machine and HGEN opt level, and their VCD
# waveforms must be byte-identical.
run cargo test -q --test netlist_differential
# Profiler gate (see docs/OBSERVABILITY.md, `xsim-profile/1`): the
# per-pc and per-region tables must partition the machine-wide cycle
# counters exactly, every stall must name its cause, and enabling the
# profiler must be purely observational.
run cargo test -q --test profile_invariants
# Observability gate (see docs/OBSERVABILITY.md): the flight
# recorder's crash path must leave a parseable flight-dump/1 naming
# the panicking stage, referenced from the structured log but never
# from journaled error messages; heartbeats must stay pure telemetry
# (a run with --progress produces the same trace as one without, at
# every thread count). Both suites run inside `cargo test -q` above;
# named here so a telemetry regression fails loudly.
run cargo test -q -p archex --test flight_dump
run cargo test -q -p archex --test explore_parallel
# Documentation gate: every ```json example in docs/OBSERVABILITY.md
# must round-trip through the obs::Json RFC 8259 parser.
run cargo test -q --test doc_schemas

if [[ "${1:-}" == "--slow" ]]; then
    # required-features gating means a plain `cargo test` never sees
    # these targets; enable them per package (a workspace-wide
    # `--features` flag does not reach member crates).
    for p in bitv gensim xasm vlog isdl-suite; do
        run cargo test -q -p "$p" --features slow-props
    done
    run cargo bench --no-run -q -p bench --features slow-bench
fi

echo "verify: OK"
