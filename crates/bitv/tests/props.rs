//! Property-based tests: `BitVector` arithmetic must agree with
//! native `u128` arithmetic masked to the width, for every operation
//! and width.
#![allow(clippy::manual_checked_ops)] // div-by-zero branch mirrors the documented convention

use bitv::BitVector;
use proptest::prelude::*;

fn mask(w: u32) -> u128 {
    if w >= 128 {
        u128::MAX
    } else {
        (1u128 << w) - 1
    }
}

prop_compose! {
    /// A width in 1..=100 and two values fitting it.
    fn wav()(w in 1u32..=100)(
        w in Just(w),
        a in 0u128..=u128::MAX,
        b in 0u128..=u128::MAX,
    ) -> (u32, u128, u128) {
        (w, a & mask(w), b & mask(w))
    }
}

fn bv(v: u128, w: u32) -> BitVector {
    BitVector::from_words(&[v as u64, (v >> 64) as u64], w)
}

fn back(v: &BitVector) -> u128 {
    let lo = u128::from(v.slice(63.min(v.width() - 1), 0).to_u64_lossy());
    if v.width() > 64 {
        lo | (u128::from(v.slice(v.width() - 1, 64).to_u64_lossy()) << 64)
    } else {
        lo
    }
}

proptest! {
    #[test]
    fn add_matches_u128((w, a, b) in wav()) {
        let got = back(&bv(a, w).wrapping_add(&bv(b, w)));
        prop_assert_eq!(got, a.wrapping_add(b) & mask(w));
    }

    #[test]
    fn sub_matches_u128((w, a, b) in wav()) {
        let got = back(&bv(a, w).wrapping_sub(&bv(b, w)));
        prop_assert_eq!(got, a.wrapping_sub(b) & mask(w));
    }

    #[test]
    fn mul_matches_u128((w, a, b) in wav()) {
        let got = back(&bv(a, w).wrapping_mul(&bv(b, w)));
        prop_assert_eq!(got, a.wrapping_mul(b) & mask(w));
    }

    #[test]
    fn divrem_matches_u128((w, a, b) in wav()) {
        let q = back(&bv(a, w).unsigned_div(&bv(b, w)));
        let r = back(&bv(a, w).unsigned_rem(&bv(b, w)));
        if b == 0 {
            prop_assert_eq!(q, mask(w));
            prop_assert_eq!(r, a);
        } else {
            prop_assert_eq!(q, a / b);
            prop_assert_eq!(r, a % b);
        }
    }

    #[test]
    fn bitwise_matches_u128((w, a, b) in wav()) {
        prop_assert_eq!(back(&bv(a, w).and(&bv(b, w))), a & b);
        prop_assert_eq!(back(&bv(a, w).or(&bv(b, w))), a | b);
        prop_assert_eq!(back(&bv(a, w).xor(&bv(b, w))), a ^ b);
        prop_assert_eq!(back(&bv(a, w).not()), !a & mask(w));
    }

    #[test]
    fn shifts_match_u128((w, a, _b) in wav(), amt in 0u32..130) {
        let shl = back(&bv(a, w).shl(amt));
        let expect = if amt >= w { 0 } else { (a << amt) & mask(w) };
        prop_assert_eq!(shl, expect);
        let shr = back(&bv(a, w).lshr(amt));
        let expect = if amt >= w { 0 } else { a >> amt };
        prop_assert_eq!(shr, expect);
    }

    #[test]
    fn ashr_fills_with_sign((w, a, _b) in wav(), amt in 0u32..130) {
        let v = bv(a, w);
        let got = back(&v.ashr(amt));
        let sign = (a >> (w - 1)) & 1 == 1;
        let expect = if amt >= w {
            if sign { mask(w) } else { 0 }
        } else {
            let logical = a >> amt;
            if sign {
                logical | (mask(w) & !(mask(w) >> amt))
            } else {
                logical
            }
        };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn neg_is_additive_inverse((w, a, _b) in wav()) {
        let v = bv(a, w);
        prop_assert!(v.wrapping_add(&v.wrapping_neg()).is_zero());
    }

    #[test]
    fn slice_concat_roundtrip((w, a, _b) in wav(), cut in 1u32..100) {
        prop_assume!(w >= 2);
        let cut = cut % (w - 1) + 1; // 1..w
        let v = bv(a, w);
        let hi = v.slice(w - 1, cut);
        let lo = v.slice(cut - 1, 0);
        prop_assert_eq!(hi.concat(&lo), v);
    }

    #[test]
    fn zext_then_trunc_is_identity((w, a, _b) in wav(), extra in 1u32..40) {
        let v = bv(a, w);
        prop_assert_eq!(v.zext(w + extra).trunc(w), v.clone());
        // And sign extension preserves two's-complement value.
        let sv = v.sext(w + extra);
        prop_assert_eq!(sv.trunc(w), v);
    }

    #[test]
    fn compare_matches_u128((w, a, b) in wav()) {
        prop_assert_eq!(bv(a, w).cmp_unsigned(&bv(b, w)), a.cmp(&b));
        // Signed comparison via sign-extended i128 reference.
        let sx = |x: u128| -> i128 {
            if (x >> (w - 1)) & 1 == 1 { (x | !mask(w)) as i128 } else { x as i128 }
        };
        prop_assert_eq!(bv(a, w).cmp_signed(&bv(b, w)), sx(a).cmp(&sx(b)));
    }

    #[test]
    fn signed_div_matches_i128((w, a, b) in wav()) {
        prop_assume!(b != 0);
        let sx = |x: u128| -> i128 {
            if (x >> (w - 1)) & 1 == 1 { (x | !mask(w)) as i128 } else { x as i128 }
        };
        let q = back(&bv(a, w).signed_div(&bv(b, w)));
        let r = back(&bv(a, w).signed_rem(&bv(b, w)));
        prop_assert_eq!(q, sx(a).wrapping_div(sx(b)) as u128 & mask(w));
        prop_assert_eq!(r, sx(a).wrapping_rem(sx(b)) as u128 & mask(w));
    }

    #[test]
    fn display_parse_roundtrip((w, a, _b) in wav()) {
        let v = bv(a, w);
        let parsed: BitVector = v.to_string().parse().expect("display output parses");
        prop_assert_eq!(parsed, v);
    }
}
