//! Parsing bit vectors from Verilog-style sized literals.

use crate::BitVector;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Error returned when a string is not a valid sized bit-vector literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitVectorError {
    msg: String,
}

impl ParseBitVectorError {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for ParseBitVectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid bit-vector literal: {}", self.msg)
    }
}

impl Error for ParseBitVectorError {}

impl FromStr for BitVector {
    type Err = ParseBitVectorError;

    /// Parses Verilog-style sized literals: `8'hFF`, `4'b1010`, `16'd42`.
    /// Underscores in the digit string are ignored.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (width_str, rest) = s
            .split_once('\'')
            .ok_or_else(|| ParseBitVectorError::new(format!("missing `'` in {s:?}")))?;
        let width: u32 = width_str
            .trim()
            .parse()
            .map_err(|_| ParseBitVectorError::new(format!("bad width in {s:?}")))?;
        if width == 0 {
            return Err(ParseBitVectorError::new("width must be non-zero"));
        }
        let mut chars = rest.chars();
        let base = match chars.next() {
            Some('h' | 'H') => 16,
            Some('b' | 'B') => 2,
            Some('d' | 'D') => 10,
            Some('o' | 'O') => 8,
            other => {
                return Err(ParseBitVectorError::new(format!("unknown base specifier {other:?}")))
            }
        };
        let digits: String = chars.filter(|&c| c != '_').collect();
        if digits.is_empty() {
            return Err(ParseBitVectorError::new("empty digit string"));
        }
        let bits_per_digit = match base {
            16 => 4,
            8 => 3,
            2 => 1,
            _ => 0,
        };
        let mut acc = BitVector::zero(width);
        if base == 10 {
            let ten = BitVector::from_u64(10, width);
            for c in digits.chars() {
                let d = c
                    .to_digit(10)
                    .ok_or_else(|| ParseBitVectorError::new(format!("bad digit {c:?}")))?;
                acc =
                    acc.wrapping_mul(&ten).wrapping_add(&BitVector::from_u64(u64::from(d), width));
            }
        } else {
            for c in digits.chars() {
                let d = c
                    .to_digit(base)
                    .ok_or_else(|| ParseBitVectorError::new(format!("bad digit {c:?}")))?;
                acc = acc.shl(bits_per_digit).or(&BitVector::from_u64(u64::from(d), width));
            }
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use crate::BitVector;

    #[test]
    fn parse_hex() {
        let v: BitVector = "8'hFF".parse().expect("valid literal");
        assert_eq!(v, BitVector::from_u64(0xFF, 8));
    }

    #[test]
    fn parse_binary_with_underscores() {
        let v: BitVector = "8'b1010_0101".parse().expect("valid literal");
        assert_eq!(v, BitVector::from_u64(0xA5, 8));
    }

    #[test]
    fn parse_decimal() {
        let v: BitVector = "16'd1234".parse().expect("valid literal");
        assert_eq!(v, BitVector::from_u64(1234, 16));
    }

    #[test]
    fn parse_octal() {
        let v: BitVector = "9'o777".parse().expect("valid literal");
        assert_eq!(v, BitVector::from_u64(0o777, 9));
    }

    #[test]
    fn parse_truncates_to_width() {
        let v: BitVector = "4'hFF".parse().expect("valid literal");
        assert_eq!(v, BitVector::from_u64(0xF, 4));
    }

    #[test]
    fn parse_roundtrip_display() {
        let v = BitVector::from_u64(0x3c, 8);
        let back: BitVector = format!("{v}").parse().expect("display output parses");
        assert_eq!(v, back);
    }

    #[test]
    fn parse_errors() {
        assert!("8hFF".parse::<BitVector>().is_err());
        assert!("0'h0".parse::<BitVector>().is_err());
        assert!("8'q12".parse::<BitVector>().is_err());
        assert!("8'h".parse::<BitVector>().is_err());
        assert!("8'b12".parse::<BitVector>().is_err());
    }
}
