//! Arithmetic, bitwise, and shift operations on [`BitVector`].
//!
//! All operations are *wrapping* at the declared width (hardware
//! semantics). Binary operations require operands of equal width and
//! panic otherwise — width adaptation is an explicit decision the RTL
//! layer makes with `zext`/`sext`/`trunc`.

use crate::BitVector;

impl BitVector {
    /// Wrapping addition.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn wrapping_add(&self, rhs: &Self) -> Self {
        self.assert_same_width(rhs, "add");
        let mut out = Self::zero(self.width);
        let mut carry = 0u64;
        for i in 0..self.n_words() {
            let (s1, c1) = self.get_word(i).overflowing_add(rhs.get_word(i));
            let (s2, c2) = s1.overflowing_add(carry);
            out.set_word(i, s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        out.renormalize();
        out
    }

    /// Wrapping subtraction (`self - rhs`).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn wrapping_sub(&self, rhs: &Self) -> Self {
        self.assert_same_width(rhs, "sub");
        self.wrapping_add(&rhs.wrapping_neg())
    }

    /// Two's-complement negation.
    #[must_use]
    pub fn wrapping_neg(&self) -> Self {
        let one = Self::from_u64(1, self.width);
        self.not().wrapping_add(&one)
    }

    /// Wrapping multiplication (low `width` bits of the product).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn wrapping_mul(&self, rhs: &Self) -> Self {
        self.assert_same_width(rhs, "mul");
        let n = self.n_words();
        let mut acc = vec![0u64; n];
        for i in 0..n {
            let a = self.get_word(i) as u128;
            if a == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for j in 0..(n - i) {
                let b = rhs.get_word(j) as u128;
                let cur = acc[i + j] as u128 + a * b + carry;
                acc[i + j] = cur as u64;
                carry = cur >> 64;
            }
        }
        Self::from_words(&acc, self.width)
    }

    /// Unsigned division. Division by zero yields all ones (the common
    /// hardware convention, matching e.g. RISC-V).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn unsigned_div(&self, rhs: &Self) -> Self {
        self.assert_same_width(rhs, "udiv");
        self.udivrem(rhs).0
    }

    /// Unsigned remainder. Remainder by zero yields the dividend.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn unsigned_rem(&self, rhs: &Self) -> Self {
        self.assert_same_width(rhs, "urem");
        self.udivrem(rhs).1
    }

    /// Signed division (truncated, like Rust's `/`). `MIN / -1` wraps to
    /// `MIN`; division by zero yields all ones.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn signed_div(&self, rhs: &Self) -> Self {
        self.assert_same_width(rhs, "sdiv");
        if rhs.is_zero() {
            return Self::all_ones(self.width);
        }
        let neg_lhs = self.sign_bit();
        let neg_rhs = rhs.sign_bit();
        let a = if neg_lhs { self.wrapping_neg() } else { self.clone() };
        let b = if neg_rhs { rhs.wrapping_neg() } else { rhs.clone() };
        let q = a.udivrem(&b).0;
        if neg_lhs != neg_rhs {
            q.wrapping_neg()
        } else {
            q
        }
    }

    /// Signed remainder (sign follows the dividend). Remainder by zero
    /// yields the dividend.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn signed_rem(&self, rhs: &Self) -> Self {
        self.assert_same_width(rhs, "srem");
        if rhs.is_zero() {
            return self.clone();
        }
        let neg_lhs = self.sign_bit();
        let a = if neg_lhs { self.wrapping_neg() } else { self.clone() };
        let b = if rhs.sign_bit() { rhs.wrapping_neg() } else { rhs.clone() };
        let r = a.udivrem(&b).1;
        if neg_lhs {
            r.wrapping_neg()
        } else {
            r
        }
    }

    /// Schoolbook bit-serial unsigned divide returning `(quotient, remainder)`.
    fn udivrem(&self, rhs: &Self) -> (Self, Self) {
        if rhs.is_zero() {
            return (Self::all_ones(self.width), self.clone());
        }
        // Fast path: both fit in u64.
        if let (Some(a), Some(b)) = (self.to_u64(), rhs.to_u64()) {
            return (Self::from_u64(a / b, self.width), Self::from_u64(a % b, self.width));
        }
        let mut quot = Self::zero(self.width);
        let mut rem = Self::zero(self.width);
        for i in (0..self.width).rev() {
            rem = rem.shl(1).with_bit(0, self.bit(i));
            if rem.cmp_unsigned(rhs).is_ge() {
                rem = rem.wrapping_sub(rhs);
                quot = quot.with_bit(i, true);
            }
        }
        (quot, rem)
    }

    /// Bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn and(&self, rhs: &Self) -> Self {
        self.assert_same_width(rhs, "and");
        self.map_words2(rhs, |a, b| a & b)
    }

    /// Bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn or(&self, rhs: &Self) -> Self {
        self.assert_same_width(rhs, "or");
        self.map_words2(rhs, |a, b| a | b)
    }

    /// Bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn xor(&self, rhs: &Self) -> Self {
        self.assert_same_width(rhs, "xor");
        self.map_words2(rhs, |a, b| a ^ b)
    }

    /// Bitwise NOT.
    #[must_use]
    pub fn not(&self) -> Self {
        let mut out = Self::zero(self.width);
        for (i, w) in self.words_iter().enumerate() {
            out.set_word(i, !w);
        }
        out.renormalize();
        out
    }

    /// Logical shift left. Shifts `>= width` yield zero.
    #[must_use]
    pub fn shl(&self, amount: u32) -> Self {
        if amount >= self.width {
            return Self::zero(self.width);
        }
        let mut out = Self::zero(self.width);
        for i in (amount..self.width).rev() {
            if self.bit(i - amount) {
                out = out.with_bit(i, true);
            }
        }
        out
    }

    /// Logical shift right. Shifts `>= width` yield zero.
    #[must_use]
    pub fn lshr(&self, amount: u32) -> Self {
        if amount >= self.width {
            return Self::zero(self.width);
        }
        let mut out = Self::zero(self.width);
        for i in 0..(self.width - amount) {
            if self.bit(i + amount) {
                out = out.with_bit(i, true);
            }
        }
        out
    }

    /// Arithmetic shift right (sign-filling). Shifts `>= width` yield
    /// all-zeros or all-ones depending on the sign bit.
    #[must_use]
    pub fn ashr(&self, amount: u32) -> Self {
        let sign = self.sign_bit();
        if amount >= self.width {
            return if sign { Self::all_ones(self.width) } else { Self::zero(self.width) };
        }
        let mut out = self.lshr(amount);
        if sign {
            for i in (self.width - amount)..self.width {
                out = out.with_bit(i, true);
            }
        }
        out
    }

    fn assert_same_width(&self, rhs: &Self, op: &str) {
        assert_eq!(
            self.width, rhs.width,
            "bit-vector {op}: width mismatch ({} vs {})",
            self.width, rhs.width
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::BitVector;

    fn bv(v: u64, w: u32) -> BitVector {
        BitVector::from_u64(v, w)
    }

    #[test]
    fn add_wraps() {
        assert_eq!(bv(0xFF, 8).wrapping_add(&bv(2, 8)), bv(1, 8));
    }

    #[test]
    fn add_carries_across_words() {
        let a = BitVector::from_words(&[u64::MAX, 0], 128);
        let one = bv(1, 128).zext(128);
        let sum = a.wrapping_add(&one);
        assert_eq!(sum, BitVector::from_words(&[0, 1], 128));
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(bv(3, 8).wrapping_sub(&bv(5, 8)), bv(254, 8));
        assert_eq!(bv(1, 8).wrapping_neg(), bv(0xFF, 8));
        assert_eq!(BitVector::zero(8).wrapping_neg(), BitVector::zero(8));
    }

    #[test]
    fn mul_wraps_at_width() {
        assert_eq!(bv(16, 8).wrapping_mul(&bv(16, 8)), bv(0, 8));
        assert_eq!(bv(7, 16).wrapping_mul(&bv(6, 16)), bv(42, 16));
    }

    #[test]
    fn mul_wide() {
        let a = BitVector::from_u64(u64::MAX, 128).zext(128);
        let b = bv(2, 128);
        let p = a.wrapping_mul(&b);
        assert_eq!(p, BitVector::from_words(&[u64::MAX - 1, 1], 128));
    }

    #[test]
    fn div_rem_unsigned() {
        assert_eq!(bv(42, 8).unsigned_div(&bv(5, 8)), bv(8, 8));
        assert_eq!(bv(42, 8).unsigned_rem(&bv(5, 8)), bv(2, 8));
    }

    #[test]
    fn div_by_zero_convention() {
        assert_eq!(bv(42, 8).unsigned_div(&bv(0, 8)), BitVector::all_ones(8));
        assert_eq!(bv(42, 8).unsigned_rem(&bv(0, 8)), bv(42, 8));
        assert_eq!(bv(42, 8).signed_div(&bv(0, 8)), BitVector::all_ones(8));
        assert_eq!(bv(42, 8).signed_rem(&bv(0, 8)), bv(42, 8));
    }

    #[test]
    fn div_rem_wide() {
        let a = BitVector::from_words(&[0, 5], 128); // 5 << 64
        let b = bv(5, 128);
        assert_eq!(a.unsigned_div(&b), BitVector::from_words(&[0, 1], 128));
        assert!(a.unsigned_rem(&b).is_zero());
    }

    #[test]
    fn signed_div_signs() {
        let m5 = BitVector::from_i64(-5, 8);
        let p2 = bv(2, 8);
        assert_eq!(m5.signed_div(&p2), BitVector::from_i64(-2, 8));
        assert_eq!(m5.signed_rem(&p2), BitVector::from_i64(-1, 8));
        let m2 = BitVector::from_i64(-2, 8);
        assert_eq!(bv(5, 8).signed_div(&m2), BitVector::from_i64(-2, 8));
        assert_eq!(bv(5, 8).signed_rem(&m2), bv(1, 8));
    }

    #[test]
    fn signed_div_min_by_minus_one_wraps() {
        let min = BitVector::from_i64(i64::from(i8::MIN), 8);
        let m1 = BitVector::from_i64(-1, 8);
        assert_eq!(min.signed_div(&m1), min);
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(bv(0b1100, 4).and(&bv(0b1010, 4)), bv(0b1000, 4));
        assert_eq!(bv(0b1100, 4).or(&bv(0b1010, 4)), bv(0b1110, 4));
        assert_eq!(bv(0b1100, 4).xor(&bv(0b1010, 4)), bv(0b0110, 4));
        assert_eq!(bv(0b1100, 4).not(), bv(0b0011, 4));
    }

    #[test]
    fn shifts() {
        assert_eq!(bv(0b0011, 4).shl(2), bv(0b1100, 4));
        assert_eq!(bv(0b1100, 4).lshr(2), bv(0b0011, 4));
        assert_eq!(bv(0b1000, 4).ashr(2), bv(0b1110, 4));
        assert_eq!(bv(0b0100, 4).ashr(2), bv(0b0001, 4));
    }

    #[test]
    fn shift_out_of_range() {
        assert!(bv(0b1111, 4).shl(4).is_zero());
        assert!(bv(0b1111, 4).lshr(100).is_zero());
        assert_eq!(bv(0b1000, 4).ashr(100), BitVector::all_ones(4));
        assert!(bv(0b0111, 4).ashr(100).is_zero());
    }

    #[test]
    fn shift_across_words() {
        let v = bv(1, 130).shl(129);
        assert!(v.bit(129));
        assert_eq!(v.count_ones(), 1);
        assert_eq!(v.lshr(129), bv(1, 130));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mixed_width_add_panics() {
        let _ = bv(1, 8).wrapping_add(&bv(1, 16));
    }
}
