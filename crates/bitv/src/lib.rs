#![warn(missing_docs)]

//! Bit-true, arbitrary-width two's-complement bit vectors.
//!
//! The DAC 1999 methodology requires every generated tool — the XSIM
//! instruction-level simulator, the assembler/disassembler, and the HGEN
//! hardware model — to be *bit-true by construction*. This crate provides
//! the value type all of them share: a [`BitVector`] of explicit width
//! whose arithmetic wraps at that width exactly as a hardware register
//! would.
//!
//! Values of 64 bits or fewer are stored inline (no heap allocation), so
//! simulator state updates for typical 16/32/64-bit architectures are
//! allocation-free.
//!
//! # Examples
//!
//! ```
//! use bitv::BitVector;
//!
//! let a = BitVector::from_u64(0xFF, 8);
//! let b = BitVector::from_u64(1, 8);
//! let sum = a.wrapping_add(&b);
//! assert!(sum.is_zero()); // 8-bit wrap-around
//!
//! let word = BitVector::from_u64(0b1010_1100, 8);
//! assert_eq!(word.slice(5, 2).to_u64_lossy(), 0b1011);
//! ```

mod ops;
mod parse;

use std::cmp::Ordering;
use std::fmt;

/// Number of bits in one storage word.
const WORD_BITS: u32 = 64;

/// A fixed-width, bit-true value.
///
/// All arithmetic is two's-complement and wraps at the declared width.
/// Bits above the width are always zero (a maintained invariant), so
/// equality and hashing are well-defined on the raw representation.
///
/// Two `BitVector`s are equal only if both width and value match —
/// `0u8` and `0u16` are *different* values, just as an 8-bit and a
/// 16-bit register differ in hardware.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVector {
    width: u32,
    repr: Repr,
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Width <= 64: single inline word.
    Inline(u64),
    /// Width > 64: little-endian (least-significant word first) words.
    Heap(Box<[u64]>),
}

impl BitVector {
    /// Creates a zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn zero(width: u32) -> Self {
        assert!(width > 0, "bit vector width must be non-zero");
        if width <= WORD_BITS {
            Self { width, repr: Repr::Inline(0) }
        } else {
            let words = Self::word_count(width);
            Self { width, repr: Repr::Heap(vec![0u64; words].into_boxed_slice()) }
        }
    }

    /// Creates a value with every bit set (the unsigned maximum).
    #[must_use]
    pub fn all_ones(width: u32) -> Self {
        Self::zero(width).not()
    }

    /// Creates a one-bit value from a boolean.
    #[must_use]
    pub fn from_bool(b: bool) -> Self {
        Self::from_u64(u64::from(b), 1)
    }

    /// Creates a value from the low `width` bits of `v`.
    ///
    /// Bits of `v` above `width` are discarded.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn from_u64(v: u64, width: u32) -> Self {
        let mut bv = Self::zero(width);
        bv.store_word(0, v);
        bv.normalize();
        bv
    }

    /// Creates a value from `v`, sign-extended/truncated to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn from_i64(v: i64, width: u32) -> Self {
        let mut bv = Self::zero(width);
        let fill = if v < 0 { u64::MAX } else { 0 };
        bv.store_word(0, v as u64);
        for i in 1..Self::word_count(width) {
            bv.store_word(i, fill);
        }
        bv.normalize();
        bv
    }

    /// Creates a value from little-endian 64-bit words.
    ///
    /// Extra words are ignored; missing words are zero.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn from_words(words: &[u64], width: u32) -> Self {
        let mut bv = Self::zero(width);
        for (i, &w) in words.iter().enumerate().take(Self::word_count(width)) {
            bv.store_word(i, w);
        }
        bv.normalize();
        bv
    }

    /// The width in bits. Always non-zero.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Whether every bit is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        match &self.repr {
            Repr::Inline(w) => *w == 0,
            Repr::Heap(ws) => ws.iter().all(|&w| w == 0),
        }
    }

    /// The value of bit `i` (bit 0 is the least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[must_use]
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < self.width, "bit index {i} out of range for width {}", self.width);
        (self.load_word((i / WORD_BITS) as usize) >> (i % WORD_BITS)) & 1 == 1
    }

    /// Returns a copy with bit `i` set to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[must_use]
    pub fn with_bit(&self, i: u32, v: bool) -> Self {
        assert!(i < self.width, "bit index {i} out of range for width {}", self.width);
        let mut out = self.clone();
        let wi = (i / WORD_BITS) as usize;
        let mask = 1u64 << (i % WORD_BITS);
        let w = out.load_word(wi);
        out.store_word(wi, if v { w | mask } else { w & !mask });
        out
    }

    /// The most significant (sign) bit.
    #[must_use]
    pub fn sign_bit(&self) -> bool {
        self.bit(self.width - 1)
    }

    /// The low 64 bits of the value, discarding anything above.
    #[must_use]
    pub fn to_u64_lossy(&self) -> u64 {
        self.load_word(0)
    }

    /// The value as `u64`, or `None` if it does not fit.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        match &self.repr {
            Repr::Inline(w) => Some(*w),
            Repr::Heap(ws) => {
                if ws[1..].iter().all(|&w| w == 0) {
                    Some(ws[0])
                } else {
                    None
                }
            }
        }
    }

    /// The value interpreted as a signed two's-complement integer,
    /// or `None` if it does not fit in `i64`.
    #[must_use]
    pub fn to_i64(&self) -> Option<i64> {
        if self.width <= WORD_BITS {
            return Some(self.sext(WORD_BITS).load_word(0) as i64);
        }
        // Fits in i64 iff all bits from 63 upward agree with the sign.
        let sign = self.sign_bit();
        for i in (WORD_BITS - 1)..self.width {
            if self.bit(i) != sign {
                return None;
            }
        }
        Some(self.load_word(0) as i64)
    }

    /// Number of one bits.
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        match &self.repr {
            Repr::Inline(w) => w.count_ones(),
            Repr::Heap(ws) => ws.iter().map(|w| w.count_ones()).sum(),
        }
    }

    /// Bits `hi..=lo` as a new value of width `hi - lo + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= self.width()`.
    #[must_use]
    pub fn slice(&self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo, "slice high bit {hi} below low bit {lo}");
        assert!(hi < self.width, "slice high bit {hi} out of range for width {}", self.width);
        let w = hi - lo + 1;
        let shifted = self.lshr(lo);
        shifted.trunc(w)
    }

    /// Returns a copy with bits `hi..=lo` replaced by `src` (whose width
    /// must equal `hi - lo + 1`).
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid or `src.width() != hi - lo + 1`.
    #[must_use]
    pub fn with_slice(&self, hi: u32, lo: u32, src: &Self) -> Self {
        assert!(hi >= lo && hi < self.width, "invalid slice range {hi}:{lo}");
        assert_eq!(src.width(), hi - lo + 1, "slice source width mismatch");
        let mut out = self.clone();
        for i in 0..src.width() {
            out = out.with_bit(lo + i, src.bit(i));
        }
        out
    }

    /// Concatenates `self` (high part) with `low` (low part).
    #[must_use]
    pub fn concat(&self, low: &Self) -> Self {
        let width = self.width + low.width;
        let mut out = Self::zero(width);
        for i in 0..low.width {
            if low.bit(i) {
                out = out.with_bit(i, true);
            }
        }
        for i in 0..self.width {
            if self.bit(i) {
                out = out.with_bit(low.width + i, true);
            }
        }
        out
    }

    /// Zero-extends (or truncates) to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn zext(&self, width: u32) -> Self {
        if width <= self.width {
            return self.trunc(width);
        }
        let mut out = Self::zero(width);
        for i in 0..Self::word_count(self.width) {
            out.store_word(i, self.load_word(i));
        }
        out.normalize();
        out
    }

    /// Sign-extends (or truncates) to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn sext(&self, width: u32) -> Self {
        if width <= self.width {
            return self.trunc(width);
        }
        let mut out = self.zext(width);
        if self.sign_bit() {
            for i in self.width..width {
                out = out.with_bit(i, true);
            }
        }
        out
    }

    /// Truncates to the low `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `width > self.width()`.
    #[must_use]
    pub fn trunc(&self, width: u32) -> Self {
        assert!(width > 0 && width <= self.width, "invalid truncation width {width}");
        let mut out = Self::zero(width);
        for i in 0..Self::word_count(width) {
            out.store_word(i, self.load_word(i));
        }
        out.normalize();
        out
    }

    /// Unsigned comparison against another value of any width.
    #[must_use]
    pub fn cmp_unsigned(&self, other: &Self) -> Ordering {
        let n = Self::word_count(self.width).max(Self::word_count(other.width));
        for i in (0..n).rev() {
            let a = self.load_word_or_zero(i);
            let b = other.load_word_or_zero(i);
            match a.cmp(&b) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// Signed comparison against another value of the *same* width.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn cmp_signed(&self, other: &Self) -> Ordering {
        assert_eq!(self.width, other.width, "signed comparison requires equal widths");
        match (self.sign_bit(), other.sign_bit()) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            _ => self.cmp_unsigned(other),
        }
    }

    // ---- internal representation helpers ----

    fn word_count(width: u32) -> usize {
        width.div_ceil(WORD_BITS) as usize
    }

    fn load_word(&self, i: usize) -> u64 {
        match &self.repr {
            Repr::Inline(w) => {
                debug_assert_eq!(i, 0);
                *w
            }
            Repr::Heap(ws) => ws[i],
        }
    }

    fn load_word_or_zero(&self, i: usize) -> u64 {
        if i < Self::word_count(self.width) {
            self.load_word(i)
        } else {
            0
        }
    }

    fn store_word(&mut self, i: usize, v: u64) {
        match &mut self.repr {
            Repr::Inline(w) => {
                debug_assert_eq!(i, 0);
                *w = v;
            }
            Repr::Heap(ws) => ws[i] = v,
        }
    }

    /// Clears bits above the width (maintains the representation invariant).
    fn normalize(&mut self) {
        let rem = self.width % WORD_BITS;
        if rem != 0 {
            let last = Self::word_count(self.width) - 1;
            let mask = (1u64 << rem) - 1;
            let w = self.load_word(last);
            self.store_word(last, w & mask);
        }
    }

    pub(crate) fn map_words2(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        debug_assert_eq!(self.width, other.width);
        let mut out = Self::zero(self.width);
        for i in 0..Self::word_count(self.width) {
            out.store_word(i, f(self.load_word(i), other.load_word(i)));
        }
        out.normalize();
        out
    }

    pub(crate) fn words_iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..Self::word_count(self.width)).map(|i| self.load_word(i))
    }

    pub(crate) fn set_word(&mut self, i: usize, v: u64) {
        self.store_word(i, v);
    }

    pub(crate) fn renormalize(&mut self) {
        self.normalize();
    }

    pub(crate) fn get_word(&self, i: usize) -> u64 {
        self.load_word(i)
    }

    pub(crate) fn n_words(&self) -> usize {
        Self::word_count(self.width)
    }
}

impl PartialOrd for BitVector {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitVector {
    /// Orders by unsigned value, then by width.
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_unsigned(other).then(self.width.cmp(&other.width))
    }
}

impl fmt::Debug for BitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVector({}'h{:x})", self.width, self)
    }
}

impl fmt::Display for BitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self)
    }
}

impl fmt::LowerHex for BitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = (self.width as usize).div_ceil(4);
        let mut s = String::with_capacity(digits);
        for d in (0..digits).rev() {
            let lo = (d * 4) as u32;
            let hi = (lo + 3).min(self.width - 1);
            let nib = if lo < self.width { self.slice(hi, lo).to_u64_lossy() } else { 0 };
            s.push(char::from_digit(nib as u32, 16).expect("nibble in range"));
        }
        f.write_str(&s)
    }
}

impl fmt::UpperHex for BitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lower = format!("{self:x}");
        f.write_str(&lower.to_uppercase())
    }
}

impl fmt::Binary for BitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::with_capacity(self.width as usize);
        for i in (0..self.width).rev() {
            s.push(if self.bit(i) { '1' } else { '0' });
        }
        f.write_str(&s)
    }
}

impl From<bool> for BitVector {
    fn from(b: bool) -> Self {
        Self::from_bool(b)
    }
}

pub use parse::ParseBitVectorError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_width() {
        let z = BitVector::zero(12);
        assert_eq!(z.width(), 12);
        assert!(z.is_zero());
        assert_eq!(z.to_u64(), Some(0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_panics() {
        let _ = BitVector::zero(0);
    }

    #[test]
    fn from_u64_truncates() {
        let v = BitVector::from_u64(0x1FF, 8);
        assert_eq!(v.to_u64(), Some(0xFF));
    }

    #[test]
    fn from_i64_negative_sign_extends() {
        let v = BitVector::from_i64(-1, 100);
        assert_eq!(v.count_ones(), 100);
        assert_eq!(v.to_i64(), Some(-1));
    }

    #[test]
    fn bit_access() {
        let v = BitVector::from_u64(0b1010, 4);
        assert!(!v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(v.sign_bit());
    }

    #[test]
    fn with_bit_roundtrip() {
        let v = BitVector::zero(70).with_bit(69, true);
        assert!(v.bit(69));
        assert!(!v.with_bit(69, false).bit(69));
    }

    #[test]
    fn slice_basic() {
        let v = BitVector::from_u64(0xABCD, 16);
        assert_eq!(v.slice(15, 12).to_u64_lossy(), 0xA);
        assert_eq!(v.slice(11, 8).to_u64_lossy(), 0xB);
        assert_eq!(v.slice(7, 0).to_u64_lossy(), 0xCD);
        assert_eq!(v.slice(0, 0).width(), 1);
    }

    #[test]
    fn slice_across_word_boundary() {
        let v = BitVector::from_words(&[u64::MAX, 0b1], 70);
        let s = v.slice(68, 60);
        assert_eq!(s.width(), 9);
        assert_eq!(s.to_u64_lossy(), 0b0_0001_1111);
    }

    #[test]
    fn with_slice_replaces() {
        let v = BitVector::zero(16).with_slice(11, 4, &BitVector::from_u64(0xFF, 8));
        assert_eq!(v.to_u64_lossy(), 0x0FF0);
    }

    #[test]
    fn concat_orders_high_low() {
        let hi = BitVector::from_u64(0xA, 4);
        let lo = BitVector::from_u64(0x5, 4);
        assert_eq!(hi.concat(&lo).to_u64_lossy(), 0xA5);
    }

    #[test]
    fn zext_sext() {
        let v = BitVector::from_u64(0x80, 8);
        assert_eq!(v.zext(16).to_u64_lossy(), 0x0080);
        assert_eq!(v.sext(16).to_u64_lossy(), 0xFF80);
        assert_eq!(v.sext(8), v);
    }

    #[test]
    fn trunc_drops_high_bits() {
        let v = BitVector::from_u64(0xABCD, 16).trunc(8);
        assert_eq!(v.to_u64_lossy(), 0xCD);
    }

    #[test]
    fn to_i64_wide() {
        let v = BitVector::from_i64(-5, 128);
        assert_eq!(v.to_i64(), Some(-5));
        let big = BitVector::all_ones(128).with_bit(127, false);
        assert_eq!(big.to_i64(), None);
    }

    #[test]
    fn comparisons() {
        let a = BitVector::from_u64(5, 8);
        let b = BitVector::from_u64(250, 8);
        assert_eq!(a.cmp_unsigned(&b), Ordering::Less);
        // 250 as signed 8-bit is -6.
        assert_eq!(b.cmp_signed(&a), Ordering::Less);
        assert_eq!(a.cmp_signed(&a), Ordering::Equal);
    }

    #[test]
    fn cross_width_unsigned_compare() {
        let small = BitVector::from_u64(7, 4);
        let wide = BitVector::from_u64(7, 90);
        assert_eq!(small.cmp_unsigned(&wide), Ordering::Equal);
        assert!(small != wide, "equal value but different widths are distinct");
    }

    #[test]
    fn display_formats() {
        let v = BitVector::from_u64(0x2A, 8);
        assert_eq!(format!("{v}"), "8'h2a");
        assert_eq!(format!("{v:x}"), "2a");
        assert_eq!(format!("{v:X}"), "2A");
        assert_eq!(format!("{v:b}"), "00101010");
    }

    #[test]
    fn display_wide_value() {
        let v = BitVector::all_ones(68);
        assert_eq!(format!("{v:x}"), "fffffffffffffffff");
    }

    #[test]
    fn all_ones_count() {
        assert_eq!(BitVector::all_ones(65).count_ones(), 65);
    }

    #[test]
    fn from_bool_conversion() {
        let t: BitVector = true.into();
        assert_eq!(t, BitVector::from_u64(1, 1));
    }
}
