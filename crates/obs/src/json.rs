//! A dependency-free JSON value: construction, serialization, and
//! parsing.
//!
//! The workspace builds with no network access, so `serde_json` is not
//! available; every stats file this suite reads or writes goes through
//! this module instead. Objects preserve insertion order (they are
//! vectors of pairs, not maps), which keeps emitted files diffable and
//! lets tests compare serialized output byte for byte.
//!
//! The grammar is standard JSON (RFC 8259): `null`, booleans, IEEE
//! doubles, strings with `\uXXXX` escapes, arrays, and objects.
//! [`Json::parse`] accepts everything the compact [`fmt::Display`]
//! form and [`Json::to_pretty`] emit — round-tripping is exact for every value
//! whose numbers survive an `f64` (all counters in this suite are below
//! 2^53).

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers up to 2^53 are exact.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved and duplicate keys are
    /// not merged.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Self::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Self::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Self::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Self::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}
impl FromIterator<Json> for Json {
    fn from_iter<T: IntoIterator<Item = Json>>(iter: T) -> Self {
        Self::Arr(iter.into_iter().collect())
    }
}

impl Json {
    /// An empty object (append members with [`Json::insert`]).
    #[must_use]
    pub fn obj() -> Self {
        Self::Obj(Vec::new())
    }

    /// Sets `key: value` on an object and returns `self` for
    /// chaining. No-op (debug-asserted) on non-objects.
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.insert(key, value);
        self
    }

    /// Sets `key: value` on an object in place — replaces an existing
    /// member (keeping its position) or appends a new one.
    pub fn insert(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Self::Obj(members) => {
                let value = value.into();
                match members.iter_mut().find(|(k, _)| k == key) {
                    Some((_, v)) => *v = value,
                    None => members.push((key.to_owned(), value)),
                }
            }
            other => debug_assert!(false, "insert on non-object {other:?}"),
        }
    }

    /// Member lookup (first match) on objects; `None` elsewhere.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: `get(key)` then [`Json::as_u64`].
    #[must_use]
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.as_u64()
    }

    /// Convenience: `get(key)` then [`Json::as_f64`].
    #[must_use]
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key)?.as_f64()
    }

    /// Convenience: `get(key)` then [`Json::as_str`].
    #[must_use]
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the format every `--stats` / `--trace` file uses.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Parses a JSON document (must consume the entire input).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax
    /// error, unconsumed trailing input, or nesting deeper than 128.
    pub fn parse(src: &str) -> Result<Self, String> {
        let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Num(n) => write_num(out, *n),
            Self::Str(s) => write_str(out, s),
            Self::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Self::Obj(members) => write_seq(out, indent, '{', '}', members.len(), |out, i, ind| {
                let (k, v) = &members[i];
                write_str(out, k);
                out.push_str(": ");
                v.write(out, ind);
            }),
        }
    }
}

impl fmt::Display for Json {
    /// Compact single-line serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, None);
        f.write_str(&s)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if let Some(level) = indent {
            out.push('\n');
            out.push_str(&"  ".repeat(level + 1));
        }
        item(out, i, indent.map(|l| l + 1));
        if i + 1 < len {
            out.push(',');
            if indent.is_none() {
                out.push(' ');
            }
        }
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

fn write_num(out: &mut String, n: f64) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        // JSON has no NaN/Inf; stats must stay machine-readable.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| {
                                format!("invalid unicode escape at byte {}", self.pos)
                            })?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| format!("short unicode escape at byte {}", self.pos))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad unicode escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_serializes_objects_in_order() {
        let j = Json::obj()
            .with("schema", "test/1")
            .with("count", 42u64)
            .with("ratio", 0.5)
            .with("items", Json::Arr(vec![Json::from(1u64), Json::Null, Json::Bool(true)]));
        assert_eq!(
            j.to_string(),
            r#"{"schema": "test/1", "count": 42, "ratio": 0.5, "items": [1, null, true]}"#
        );
    }

    #[test]
    fn pretty_output_parses_back() {
        let j = Json::obj()
            .with("a", Json::Arr(vec![Json::obj().with("k", "v")]))
            .with("empty", Json::Arr(vec![]))
            .with("nested", Json::obj().with("x", 1u64));
        let pretty = j.to_pretty();
        assert!(pretty.ends_with('\n'));
        assert_eq!(Json::parse(&pretty).expect("parses"), j);
        assert_eq!(Json::parse(&j.to_string()).expect("parses"), j);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let j = Json::parse(r#"{"s": "a\n\"b\"A😀", "n": -1.5e2}"#).expect("parses");
        assert_eq!(j.get_str("s"), Some("a\n\"b\"A😀"));
        assert_eq!(j.get_f64("n"), Some(-150.0));
    }

    #[test]
    fn string_escapes_round_trip() {
        let j = Json::Str("tab\tquote\"back\\slash\nctrl\u{1}".to_owned());
        assert_eq!(Json::parse(&j.to_string()).expect("parses"), j);
    }

    #[test]
    fn integers_stay_integral() {
        let mut s = String::new();
        write_num(&mut s, 9_007_199_254_740_992.0 - 1.0);
        assert_eq!(s, "9007199254740991");
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null", "non-finite degrades to null");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated", "{\"a\":}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let j = Json::parse(r#"{"n": 3, "f": 0.5, "s": "x", "a": [1]}"#).expect("parses");
        assert_eq!(j.get_u64("n"), Some(3));
        assert_eq!(j.get_u64("f"), None, "fractional is not a u64");
        assert_eq!(j.get_f64("f"), Some(0.5));
        assert_eq!(j.get_str("s"), Some("x"));
        assert_eq!(j.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).expect_err("too deep").contains("nesting"));
    }
}
