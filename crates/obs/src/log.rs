//! A leveled, targeted structured event log (`xsim-log/1`).
//!
//! One process-wide dispatcher turns `(level, target, msg, fields)`
//! tuples into JSON Lines on a caller-supplied sink. The dispatcher
//! honors the [`Gate`](crate::Gate) contract the rest of this crate
//! is built on:
//!
//! * **Off is free.** Until [`init`] runs (or after [`shutdown`]),
//!   every [`enabled`] check is one relaxed atomic load and a
//!   predictable branch — no clock read, no allocation, no lock.
//!   Producers that build fields lazily via [`event_with`] pay
//!   *nothing* beyond that branch.
//! * **On is filtered.** Each event passes a per-target level filter
//!   (longest-prefix match on dot-separated targets) before any
//!   serialization happens; filtered events count as *dropped*.
//! * **Lines are self-describing.** Every emitted line is a complete
//!   `xsim-log/1` object: schema, sequence number, microseconds since
//!   [`init`], level, target, message, and the caller's ordered
//!   fields (see `docs/OBSERVABILITY.md`).
//!
//! The spec grammar accepted by [`init`] / [`Filter::parse`] is the
//! `--log` flag's: `LEVEL[,TARGET=LEVEL...]`, e.g.
//! `info,gensim.translate=trace,archex=debug`.

use crate::json::Json;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Event severity, ordered from most to least verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Very high-frequency events (per block, per edge).
    Trace,
    /// Development diagnostics (per candidate, per round).
    Debug,
    /// Notable run milestones.
    Info,
    /// Something degraded but the run continues.
    Warn,
    /// Something failed.
    Error,
}

impl Level {
    /// The stable lower-case name used on the wire.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Trace => "trace",
            Self::Debug => "debug",
            Self::Info => "info",
            Self::Warn => "warn",
            Self::Error => "error",
        }
    }

    /// Parses a level name (the inverse of [`Level::name`]).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "trace" => Some(Self::Trace),
            "debug" => Some(Self::Debug),
            "info" => Some(Self::Info),
            "warn" => Some(Self::Warn),
            "error" => Some(Self::Error),
            _ => None,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A per-target minimum-level filter.
///
/// Targets are dot-separated paths (`gensim.translate`); the filter
/// applies the longest matching prefix rule, falling back to the
/// default level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    /// Minimum level for targets with no specific rule.
    pub default: Level,
    /// `(target-prefix, minimum level)` rules.
    pub targets: Vec<(String, Level)>,
}

impl Default for Filter {
    fn default() -> Self {
        Self { default: Level::Info, targets: Vec::new() }
    }
}

impl Filter {
    /// Parses a `--log` spec: `LEVEL[,TARGET=LEVEL...]`. The leading
    /// bare level is optional (`info` assumed), so both
    /// `debug,archex=trace` and `archex=trace` are accepted.
    ///
    /// # Errors
    ///
    /// Returns a message naming the clause that failed to parse.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut filter = Self::default();
        for (i, clause) in spec.split(',').enumerate() {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some((target, level)) = clause.split_once('=') {
                let level = Level::parse(level.trim())
                    .ok_or_else(|| format!("unknown log level `{}` in `{clause}`", level.trim()))?;
                filter.targets.push((target.trim().to_owned(), level));
            } else if i == 0 {
                filter.default =
                    Level::parse(clause).ok_or_else(|| format!("unknown log level `{clause}`"))?;
            } else {
                return Err(format!("expected `target=level`, got `{clause}`"));
            }
        }
        Ok(filter)
    }

    /// Whether an event at `level` for `target` passes this filter.
    #[must_use]
    pub fn passes(&self, level: Level, target: &str) -> bool {
        let mut best: Option<(usize, Level)> = None;
        for (prefix, min) in &self.targets {
            let matches = target == prefix
                || (target.len() > prefix.len()
                    && target.starts_with(prefix.as_str())
                    && target.as_bytes()[prefix.len()] == b'.');
            if matches && best.is_none_or(|(len, _)| prefix.len() > len) {
                best = Some((prefix.len(), *min));
            }
        }
        level >= best.map_or(self.default, |(_, min)| min)
    }
}

/// Schema identifier on every emitted line. Bump the suffix on
/// breaking changes.
pub const LOG_SCHEMA: &str = "xsim-log/1";

/// The fast gate: off means `event` / `event_with` are one relaxed
/// load and a branch.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Events written to the sink.
static EVENTS: AtomicU64 = AtomicU64::new(0);
/// Events suppressed by the filter or lost to sink write errors after
/// the gate was on.
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Monotone per-process line sequence.
static SEQ: AtomicU64 = AtomicU64::new(0);

struct Dispatcher {
    filter: Filter,
    sink: Box<dyn Write + Send>,
    epoch: Instant,
}

/// `None` until [`init`]; holding the lock only on the slow (enabled)
/// path keeps the disabled path lock-free.
static DISPATCHER: Mutex<Option<Dispatcher>> = Mutex::new(None);

/// Installs the process-wide dispatcher and opens the gate. Calling
/// it again replaces the filter and sink (the previous sink is
/// flushed and dropped); counters keep accumulating.
pub fn init(filter: Filter, sink: Box<dyn Write + Send>) {
    let mut slot = DISPATCHER.lock().expect("log dispatcher lock");
    if let Some(prev) = slot.as_mut() {
        let _ = prev.sink.flush();
    }
    *slot = Some(Dispatcher { filter, sink, epoch: Instant::now() });
    drop(slot);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Closes the gate, flushes, and drops the sink. Safe to call when
/// logging was never initialized.
pub fn shutdown() {
    ENABLED.store(false, Ordering::Relaxed);
    let mut slot = DISPATCHER.lock().expect("log dispatcher lock");
    if let Some(prev) = slot.as_mut() {
        let _ = prev.sink.flush();
    }
    *slot = None;
}

/// Flushes the sink without closing the gate.
pub fn flush() {
    if let Some(d) = DISPATCHER.lock().expect("log dispatcher lock").as_mut() {
        let _ = d.sink.flush();
    }
}

/// Whether the log gate is open — one relaxed load. A `true` answer
/// does not mean a given `(level, target)` passes the filter; it
/// means paying for the filter check (and field construction) might
/// be worthwhile.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// `(events_written, events_dropped)` since process start. Dropped
/// counts filter suppressions and sink write errors; it stays 0 while
/// the gate is closed.
#[must_use]
pub fn stats() -> (u64, u64) {
    (EVENTS.load(Ordering::Relaxed), DROPPED.load(Ordering::Relaxed))
}

/// Emits one structured event. When the gate is closed this is one
/// relaxed load and a branch — but `fields` has already been built by
/// the caller; use [`event_with`] on hot paths so field construction
/// is skipped too.
pub fn event(level: Level, target: &str, msg: &str, fields: Json) {
    if !enabled() {
        return;
    }
    dispatch(level, target, msg, fields);
}

/// Emits one structured event with lazily built fields: `fields` runs
/// only when the gate is open, so a closed gate costs one relaxed
/// load, one branch, and nothing else — no clock read, no allocation.
#[inline]
pub fn event_with(level: Level, target: &str, msg: &str, fields: impl FnOnce() -> Json) {
    if !enabled() {
        return;
    }
    dispatch(level, target, msg, fields());
}

/// The slow path: filter, stamp, serialize, write.
fn dispatch(level: Level, target: &str, msg: &str, fields: Json) {
    let mut slot = DISPATCHER.lock().expect("log dispatcher lock");
    let Some(d) = slot.as_mut() else {
        // Gate raced with `shutdown`; the event is lost, not counted —
        // the dispatcher that would own the counter context is gone.
        return;
    };
    if !d.filter.passes(level, target) {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let t_us = u64::try_from(d.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
    let line = Json::obj()
        .with("schema", LOG_SCHEMA)
        .with("seq", SEQ.fetch_add(1, Ordering::Relaxed))
        .with("t_us", t_us)
        .with("level", level.name())
        .with("target", target)
        .with("msg", msg)
        .with("fields", fields);
    match writeln!(d.sink, "{line}") {
        Ok(()) => {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex, MutexGuard, OnceLock};

    /// The dispatcher is process-global; tests touching it serialize
    /// here so parallel test threads never interleave init/shutdown.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
        let lock = LOCK.get_or_init(|| StdMutex::new(()));
        lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("lock").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().expect("lock").clone()).expect("utf8")
        }
    }

    #[test]
    fn filter_spec_round_trip_and_prefix_match() {
        let f = Filter::parse("debug,gensim.translate=trace,archex=warn").expect("parses");
        assert_eq!(f.default, Level::Debug);
        assert!(f.passes(Level::Debug, "vlog.lsim"), "default applies");
        assert!(!f.passes(Level::Trace, "vlog.lsim"));
        assert!(f.passes(Level::Trace, "gensim.translate"), "exact target rule");
        assert!(f.passes(Level::Trace, "gensim.translate.block"), "prefix rule, dot boundary");
        assert!(!f.passes(Level::Trace, "gensim.translatex"), "no mid-segment prefix match");
        assert!(!f.passes(Level::Info, "archex.journal"), "archex raised to warn");
        assert!(f.passes(Level::Error, "archex.journal"));
        // Longest prefix wins regardless of rule order.
        let f = Filter::parse("archex=error,archex.retry=trace").expect("parses");
        assert!(f.passes(Level::Trace, "archex.retry"));
        assert!(!f.passes(Level::Trace, "archex.journal"));
        // Bare target list without a leading level keeps the default.
        let f = Filter::parse("hgen=debug").expect("parses");
        assert_eq!(f.default, Level::Info);
        assert!(Filter::parse("loud").is_err());
        assert!(Filter::parse("info,banana").is_err());
        assert!(Filter::parse("x=shouty").is_err());
    }

    #[test]
    fn disabled_gate_emits_and_counts_nothing() {
        let _guard = serial();
        shutdown();
        let (e0, d0) = stats();
        let mut built = false;
        event_with(Level::Error, "t", "m", || {
            built = true;
            Json::obj()
        });
        event(Level::Error, "t", "m", Json::obj());
        assert!(!built, "closed gate never builds fields");
        assert_eq!(stats(), (e0, d0));
    }

    #[test]
    fn events_are_filtered_stamped_and_jsonl() {
        let _guard = serial();
        let buf = SharedBuf::default();
        init(Filter::parse("info,quiet=error").expect("parses"), Box::new(buf.clone()));
        let (e0, d0) = stats();
        event(Level::Info, "archex.round", "round done", Json::obj().with("round", 3u64));
        event_with(Level::Debug, "archex.round", "too low", Json::obj);
        event(Level::Warn, "quiet.corner", "filtered", Json::obj());
        flush();
        let (e1, d1) = stats();
        assert_eq!(e1 - e0, 1, "one event passed");
        assert_eq!(d1 - d0, 2, "two were filtered");
        let text = buf.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        let line = Json::parse(lines[0]).expect("line parses");
        assert_eq!(line.get_str("schema"), Some(LOG_SCHEMA));
        assert_eq!(line.get_str("level"), Some("info"));
        assert_eq!(line.get_str("target"), Some("archex.round"));
        assert_eq!(line.get_str("msg"), Some("round done"));
        assert_eq!(line.get("fields").and_then(|f| f.get_u64("round")), Some(3));
        assert!(line.get_u64("t_us").is_some());
        assert!(line.get_u64("seq").is_some());
        shutdown();
        event(Level::Error, "t", "after shutdown", Json::obj());
        assert_eq!(stats(), (e1, d1), "shutdown closes the gate");
    }

    #[test]
    fn level_names_round_trip() {
        for l in [Level::Trace, Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::parse(l.name()), Some(l));
        }
        assert_eq!(Level::parse("silly"), None);
        assert!(Level::Trace < Level::Error);
    }
}
