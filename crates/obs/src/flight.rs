//! An always-on, bounded flight recorder (`flight-dump/1`).
//!
//! Every thread that calls [`note`] gets its own bounded ring of
//! recent breadcrumb events — the same eviction discipline as
//! [`RingSink`]: when full, the oldest event goes and
//! a drop is counted. Rings are registered in a process-wide shard
//! list so a crash handler on *any* thread can collect the tails of
//! *all* threads into one `flight-dump/1` document and explain what
//! each worker was doing when the run died.
//!
//! Cost model: [`note`] is meant for *coarse* breadcrumbs — pipeline
//! stage entries, retries, journal rounds — a handful per evaluation,
//! not per instruction. Each call is one thread-local ring push plus
//! one clock read, always on, no configuration required; the
//! `ablation_obs_overhead` bench holds this flat against an
//! uninstrumented run. High-frequency events belong on the gated
//! [`log`] path instead.
//!
//! A dump is taken with [`capture`]: when a dump directory is
//! configured (see [`set_dump_dir`]; `isdlc explore --journal` points
//! it next to the journal) the document is written there and the
//! returned note names the file; otherwise the note carries an inline
//! tail of the most recent events. Either way the note is designed to
//! be appended to a diagnostic message.

use crate::json::Json;
use crate::log::{self, Level};
use crate::trace::{RingSink, TraceSink};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Schema identifier of a dump document. Bump the suffix on breaking
/// changes.
pub const DUMP_SCHEMA: &str = "flight-dump/1";

/// Default per-thread ring capacity (events).
pub const DEFAULT_CAPACITY: usize = 64;

/// Events retained per thread ring; applies to rings created after
/// the change.
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
/// Global event order across shards.
static SEQ: AtomicU64 = AtomicU64::new(0);
/// Dumps taken by [`capture`] since process start.
static DUMPS: AtomicU64 = AtomicU64::new(0);
/// Where [`capture`] writes dump files (`None` = inline tail only).
static DUMP_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// All thread shards, in registration order. A shard outlives its
/// thread — a dump taken after a worker died still shows its tail.
static SHARDS: Mutex<Vec<(u64, Arc<Mutex<RingSink>>)>> = Mutex::new(Vec::new());

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static SHARD: std::cell::OnceCell<(u64, Arc<Mutex<RingSink>>)> =
        const { std::cell::OnceCell::new() };
}

fn with_shard(f: impl FnOnce(u64, &Mutex<RingSink>)) {
    SHARD.with(|cell| {
        let (id, ring) = cell.get_or_init(|| {
            let ring = Arc::new(Mutex::new(RingSink::new(CAPACITY.load(Ordering::Relaxed))));
            let mut shards = SHARDS.lock().expect("flight shard list lock");
            let id = shards.len() as u64;
            shards.push((id, Arc::clone(&ring)));
            (id, ring)
        });
        f(*id, ring);
    });
}

/// Sets the per-thread ring capacity for rings created from now on
/// (min 1; existing rings keep their size).
pub fn set_capacity(events: usize) {
    CAPACITY.store(events.max(1), Ordering::Relaxed);
}

/// Directs [`capture`] to write dump files into `dir` (`None` reverts
/// to inline tails). The directory is created on first use.
pub fn set_dump_dir(dir: Option<PathBuf>) {
    *DUMP_DIR.lock().expect("flight dump dir lock") = dir;
}

/// The configured dump directory, if any.
#[must_use]
pub fn dump_dir() -> Option<PathBuf> {
    DUMP_DIR.lock().expect("flight dump dir lock").clone()
}

/// Dumps taken by [`capture`] since process start.
#[must_use]
pub fn dump_count() -> u64 {
    DUMPS.load(Ordering::Relaxed)
}

/// Records one breadcrumb on the calling thread's ring (always on,
/// bounded) and forwards it to the structured log at `debug` level
/// when the log gate is open.
pub fn note(target: &str, msg: &str, fields: Json) {
    let t_us = u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    with_shard(|shard, ring| {
        let event = Json::obj()
            .with("seq", seq)
            .with("t_us", t_us)
            .with("shard", shard)
            .with("target", target)
            .with("msg", msg)
            .with("fields", fields.clone());
        ring.lock().expect("flight ring lock").record(event);
    });
    log::event_with(Level::Debug, target, msg, || fields);
}

/// The merged recorder state: every shard's retained events sorted by
/// global sequence number, plus the total evicted-event count.
#[must_use]
pub fn snapshot() -> (Vec<Json>, u64) {
    let shards = SHARDS.lock().expect("flight shard list lock");
    let mut events = Vec::new();
    let mut dropped = 0;
    for (_, ring) in shards.iter() {
        let ring = ring.lock().expect("flight ring lock");
        events.extend(ring.events().cloned());
        dropped += ring.dropped();
    }
    drop(shards);
    events.sort_by_key(|e| e.get_u64("seq").unwrap_or(u64::MAX));
    (events, dropped)
}

/// Renders the current recorder state as a `flight-dump/1` document.
#[must_use]
pub fn dump(reason: &str) -> Json {
    let (events, dropped) = snapshot();
    Json::obj()
        .with("schema", DUMP_SCHEMA)
        .with("reason", reason)
        .with("shards", SHARDS.lock().expect("flight shard list lock").len())
        .with("dropped", dropped)
        .with("events", Json::Arr(events))
}

/// A short human tail of the most recent events: `target: msg`
/// entries, oldest first, at most `n`.
fn tail(doc: &Json, n: usize) -> String {
    let events = doc.get("events").and_then(Json::as_arr).unwrap_or(&[]);
    let start = events.len().saturating_sub(n);
    let parts: Vec<String> = events[start..]
        .iter()
        .map(|e| {
            format!("{}: {}", e.get_str("target").unwrap_or("?"), e.get_str("msg").unwrap_or("?"))
        })
        .collect();
    parts.join(" | ")
}

/// Takes a dump and returns a note to append to a diagnostic.
///
/// With a dump directory configured the document is written to
/// `flight-NNNN-<reason>.json` in it and the note names the path;
/// without one (or if the write fails) the note carries an inline
/// tail of the last few events. Every call counts one dump.
#[must_use]
pub fn capture(reason: &str) -> String {
    let doc = dump(reason);
    let n = DUMPS.fetch_add(1, Ordering::Relaxed);
    if let Some(dir) = dump_dir() {
        if let Some(path) = write_dump(&dir, n, reason, &doc) {
            return format!("flight dump: {}", path.display());
        }
    }
    format!("flight tail: {}", tail(&doc, 5))
}

fn write_dump(dir: &Path, n: u64, reason: &str, doc: &Json) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let safe: String =
        reason.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    let path = dir.join(format!("flight-{n:04}-{safe}.json"));
    // Write-then-rename so a dump file, once visible, is complete —
    // post-mortems read these after SIGKILL.
    let tmp = dir.join(format!(".flight-{n:04}-{safe}.json.tmp"));
    std::fs::write(&tmp, doc.to_pretty()).ok()?;
    std::fs::rename(&tmp, &path).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notes_are_bounded_merged_and_dumpable() {
        let before = dump_count();
        for i in 0..200u64 {
            note("test.flight", "step", Json::obj().with("i", i));
        }
        let (events, dropped) = snapshot();
        assert!(dropped > 0, "200 notes overflow the default ring");
        assert!(!events.is_empty());
        let seqs: Vec<u64> = events.iter().filter_map(|e| e.get_u64("seq")).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "merged events are in sequence order");

        // A second thread gets its own shard; its tail survives the
        // thread's death.
        std::thread::spawn(|| {
            note("test.flight.worker", "working", Json::obj());
        })
        .join()
        .expect("worker runs");
        let doc = dump("unit_test");
        assert_eq!(doc.get_str("schema"), Some(DUMP_SCHEMA));
        assert_eq!(doc.get_str("reason"), Some("unit_test"));
        assert!(doc.get_u64("shards").unwrap_or(0) >= 2);
        let rendered = doc.to_pretty();
        let parsed = Json::parse(&rendered).expect("dump parses");
        assert_eq!(parsed, doc, "dump round-trips");
        let all = parsed.get("events").and_then(Json::as_arr).expect("events");
        assert!(
            all.iter().any(|e| e.get_str("target") == Some("test.flight.worker")),
            "dead thread's tail kept"
        );
        assert_eq!(dump_count(), before, "dump() alone does not count");
    }

    #[test]
    fn capture_without_dir_inlines_a_tail() {
        note("test.capture", "last thing", Json::obj());
        let had_dir = dump_dir();
        set_dump_dir(None);
        let n0 = dump_count();
        let note_text = capture("unit_reason");
        set_dump_dir(had_dir);
        assert!(note_text.starts_with("flight tail: "), "inline form: {note_text}");
        assert!(note_text.contains("test.capture"), "tail names recent targets: {note_text}");
        assert_eq!(dump_count(), n0 + 1);
    }

    #[test]
    fn capture_with_dir_writes_a_parseable_file() {
        let dir = std::env::temp_dir().join(format!("obs-flight-test-{}", std::process::id()));
        let had_dir = dump_dir();
        set_dump_dir(Some(dir.clone()));
        note("test.file", "before crash", Json::obj().with("k", 1u64));
        let note_text = capture("panic");
        set_dump_dir(had_dir);
        let path = note_text.strip_prefix("flight dump: ").expect("file form");
        let text = std::fs::read_to_string(path).expect("dump file exists");
        let doc = Json::parse(&text).expect("dump file parses");
        assert_eq!(doc.get_str("schema"), Some(DUMP_SCHEMA));
        assert_eq!(doc.get_str("reason"), Some("panic"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
