//! Prometheus text exposition of an `obs-snapshot/1` document.
//!
//! [`render`] turns a [`Registry`](crate::Registry) snapshot into the
//! Prometheus text format (version 0.0.4), suitable for the node
//! exporter's *textfile collector*: write the output atomically to a
//! `.prom` file (`isdlc explore --metrics-out` does temp + rename)
//! and point the collector at it.
//!
//! Naming rules (documented in `docs/OBSERVABILITY.md`):
//!
//! * Metric names are sanitized — every character outside
//!   `[a-zA-Z0-9_:]` becomes `_` (so `explore.eval_latency_us` →
//!   `explore_eval_latency_us`); a leading digit gains a `_` prefix.
//! * Counters keep their monotone meaning and gain the conventional
//!   `_total` suffix.
//! * Gauges are exposed under their sanitized name, unsuffixed.
//! * Histograms are exposed as Prometheus *summaries*: `{quantile=…}`
//!   sample lines for p50/p90/p99 plus `_sum` and `_count`, and two
//!   extra gauges `_min` / `_max` (exact bounds the summary form has
//!   no slot for).
//! * Units stay in the name, as in the snapshot itself (`_us` =
//!   microseconds, `_s` = seconds); values are emitted unscaled.

use crate::json::Json;

/// Sanitizes a snapshot metric name into a legal Prometheus name.
#[must_use]
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn write_num(out: &mut String, v: &Json) {
    use std::fmt::Write as _;
    match v.as_f64() {
        Some(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => {
            let _ = write!(out, "{}", n as i64);
        }
        Some(n) => {
            let _ = write!(out, "{n}");
        }
        None => out.push('0'),
    }
}

fn sample(out: &mut String, name: &str, labels: &str, v: &Json) {
    out.push_str(name);
    out.push_str(labels);
    out.push(' ');
    write_num(out, v);
    out.push('\n');
}

/// Renders an `obs-snapshot/1` document as Prometheus exposition
/// text. Unknown or missing blocks render nothing — the output for an
/// empty snapshot is just the `obs_enabled` gauge.
#[must_use]
pub fn render(snapshot: &Json) -> String {
    let mut out = String::new();
    out.push_str("# TYPE obs_enabled gauge\n");
    let enabled = matches!(snapshot.get("enabled"), Some(Json::Bool(true)));
    sample(&mut out, "obs_enabled", "", &Json::from(u64::from(enabled)));

    if let Some(Json::Obj(counters)) = snapshot.get("counters") {
        for (name, value) in counters {
            let name = metric_name(name) + "_total";
            out.push_str(&format!("# TYPE {name} counter\n"));
            sample(&mut out, &name, "", value);
        }
    }
    if let Some(Json::Obj(gauges)) = snapshot.get("gauges") {
        for (name, value) in gauges {
            let name = metric_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n"));
            sample(&mut out, &name, "", value);
        }
    }
    if let Some(Json::Obj(histograms)) = snapshot.get("histograms") {
        for (name, summary) in histograms {
            let name = metric_name(name);
            let get = |k: &str| summary.get(k).cloned().unwrap_or(Json::Num(0.0));
            out.push_str(&format!("# TYPE {name} summary\n"));
            sample(&mut out, &name, "{quantile=\"0.5\"}", &get("p50"));
            sample(&mut out, &name, "{quantile=\"0.9\"}", &get("p90"));
            sample(&mut out, &name, "{quantile=\"0.99\"}", &get("p99"));
            sample(&mut out, &format!("{name}_sum"), "", &get("sum"));
            sample(&mut out, &format!("{name}_count"), "", &get("count"));
            out.push_str(&format!("# TYPE {name}_min gauge\n"));
            sample(&mut out, &format!("{name}_min"), "", &get("min"));
            out.push_str(&format!("# TYPE {name}_max gauge\n"));
            sample(&mut out, &format!("{name}_max"), "", &get("max"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(metric_name("explore.eval_latency_us"), "explore_eval_latency_us");
        assert_eq!(metric_name("a-b c"), "a_b_c");
        assert_eq!(metric_name("9lives"), "_9lives");
        assert_eq!(metric_name(""), "_");
    }

    #[test]
    fn renders_counters_gauges_and_summaries() {
        let reg = Registry::new();
        reg.counter("explore.evaluated").add(7);
        reg.gauge("explore.frontier").set(24);
        reg.histogram("explore.eval_latency_us").record(100);
        let text = render(&reg.snapshot());
        assert!(text.contains("# TYPE obs_enabled gauge\nobs_enabled 1\n"), "{text}");
        assert!(text.contains("# TYPE explore_evaluated_total counter\n"), "{text}");
        assert!(text.contains("explore_evaluated_total 7\n"), "{text}");
        assert!(text.contains("# TYPE explore_frontier gauge\n"), "{text}");
        assert!(text.contains("explore_frontier 24\n"), "{text}");
        assert!(text.contains("# TYPE explore_eval_latency_us summary\n"), "{text}");
        assert!(text.contains("explore_eval_latency_us{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("explore_eval_latency_us_sum 100\n"), "{text}");
        assert!(text.contains("explore_eval_latency_us_count 1\n"), "{text}");
        assert!(text.contains("explore_eval_latency_us_max 100\n"), "{text}");
        // Every non-comment line is `name[labels] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("two fields");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "numeric value in {line:?}");
        }
    }

    #[test]
    fn empty_snapshot_renders_only_the_enabled_gauge() {
        let reg = Registry::disabled();
        let text = render(&reg.snapshot());
        assert_eq!(text, "# TYPE obs_enabled gauge\nobs_enabled 0\n");
    }
}
