#![deny(missing_docs)]
#![deny(clippy::unwrap_used)]

//! Lightweight observability for the ISDL suite: an atomic
//! counter / gauge / histogram / span-timer [`Registry`] with
//! near-zero overhead when disabled, JSON snapshot emission, a
//! structured event [`log`], an always-on [`flight`] recorder, and
//! Prometheus exposition ([`prom`]) — see `docs/OBSERVABILITY.md`
//! for the full schema reference.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path safety.** Every metric is lock-free to *record*
//!    ([`Counter::add`], [`Histogram::record`] are relaxed atomics);
//!    locks appear only on the registration and snapshot paths.
//! 2. **Near-zero overhead when disabled.** Each metric shares its
//!    registry's [`Gate`]; a disabled gate turns `record` into one
//!    relaxed load and a predictable branch, and [`Histogram::span`]
//!    additionally skips the `Instant::now` syscall entirely.
//! 3. **No dependencies.** The workspace builds offline; the [`json`]
//!    module supplies the value type, serializer, and parser that
//!    every stats file in the suite uses.
//!
//! # Examples
//!
//! ```
//! let reg = obs::Registry::new();
//! let evals = reg.counter("explore.evaluated");
//! let latency = reg.histogram("explore.eval_latency_us");
//! evals.add(3);
//! latency.record(120);
//! {
//!     let _span = latency.span(); // records elapsed µs on drop
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.get("counters").and_then(|c| c.get_u64("explore.evaluated")), Some(3));
//! ```

pub mod flight;
pub mod json;
pub mod log;
pub mod prom;
pub mod trace;

pub use json::Json;
pub use log::{Filter as LogFilter, Level};
pub use trace::{ChromeTrace, RingSink, StreamSink, TraceSink};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A shared on/off switch for a family of metrics.
///
/// Cloning a gate shares the underlying flag (it is an `Arc`), so a
/// registry and all metrics created from it flip together.
#[derive(Debug, Clone)]
pub struct Gate(Arc<AtomicBool>);

impl Gate {
    /// A new gate in the given state.
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        Self(Arc::new(AtomicBool::new(enabled)))
    }

    /// Whether metrics behind this gate record (one relaxed load).
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Enables or disables every metric sharing this gate.
    pub fn set(&self, enabled: bool) {
        self.0.store(enabled, Ordering::Relaxed);
    }
}

impl Default for Gate {
    fn default() -> Self {
        Self::new(true)
    }
}

/// A monotonically increasing atomic counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
    gate: Gate,
}

impl Counter {
    /// A standalone, always-enabled counter.
    #[must_use]
    pub fn new() -> Self {
        Self::gated(Gate::new(true))
    }

    /// A counter controlled by `gate`.
    #[must_use]
    pub fn gated(gate: Gate) -> Self {
        Self { value: AtomicU64::new(0), gate }
    }

    /// Adds `n` (no-op when the gate is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if self.gate.enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A last-value metric: [`Gauge::set`] overwrites, [`Gauge::get`]
/// reads. Gated like [`Counter`] — a disabled gate turns `set` into
/// one relaxed load and a branch. Used for instantaneous quantities
/// (frontier size, cache entries, live workers) where a monotone
/// counter would be wrong.
#[derive(Debug)]
pub struct Gauge {
    value: AtomicU64,
    gate: Gate,
}

impl Gauge {
    /// A standalone, always-enabled gauge.
    #[must_use]
    pub fn new() -> Self {
        Self::gated(Gate::new(true))
    }

    /// A gauge controlled by `gate`.
    #[must_use]
    pub fn gated(gate: Gate) -> Self {
        Self { value: AtomicU64::new(0), gate }
    }

    /// Sets the current value (no-op when the gate is disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if self.gate.enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// The last value set.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// Number of power-of-two buckets: bucket *i* counts values `v` with
/// `v.ilog2() == i` (bucket 0 additionally holds `v == 0`), so the
/// full `u64` range is covered.
const BUCKETS: usize = 64;

/// A lock-free histogram over `u64` samples (power-of-two buckets),
/// tracking count, sum, min, and max exactly and quantiles to within
/// one octave.
///
/// Units are the caller's choice; the suite records **microseconds**
/// in every latency histogram (`*_us` names).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    gate: Gate,
}

impl Histogram {
    /// A standalone, always-enabled histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::gated(Gate::new(true))
    }

    /// A histogram controlled by `gate`.
    #[must_use]
    pub fn gated(gate: Gate) -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            gate,
        }
    }

    /// Records one sample (no-op when the gate is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.gate.enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        let bucket = if v == 0 { 0 } else { v.ilog2() as usize };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a span that records its elapsed **microseconds** into
    /// this histogram when dropped (or via [`Span::finish`]). When the
    /// gate is disabled the span is inert and never reads the clock.
    #[must_use]
    pub fn span(&self) -> Span<'_> {
        Span { hist: self, start: self.gate.enabled().then(Instant::now) }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time summary of the distribution.
    #[must_use]
    pub fn summary(&self) -> Summary {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = (q * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // Upper bound of bucket i: 2^(i+1) - 1.
                    return if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                }
            }
            self.max.load(Ordering::Relaxed)
        };
        Summary {
            count,
            sum,
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A plain-data snapshot of a [`Histogram`] — cloneable, comparable,
/// and embeddable in result structs (e.g. `archex`'s exploration
/// trace). Quantiles are bucket upper bounds: exact to within one
/// power of two.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median, as a power-of-two upper bound.
    pub p50: u64,
    /// 90th percentile, as a power-of-two upper bound.
    pub p90: u64,
    /// 99th percentile, as a power-of-two upper bound.
    pub p99: u64,
}

impl Summary {
    /// The summary as a JSON object (the `histogram` schema object of
    /// `docs/OBSERVABILITY.md`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("count", self.count)
            .with("sum", self.sum)
            .with("min", self.min)
            .with("max", self.max)
            .with("mean", self.mean)
            .with("p50", self.p50)
            .with("p90", self.p90)
            .with("p99", self.p99)
    }
}

/// An in-flight timed section; records elapsed microseconds into its
/// histogram when dropped.
#[derive(Debug)]
pub struct Span<'h> {
    hist: &'h Histogram,
    /// `None` when the gate was disabled at start — the drop is free.
    start: Option<Instant>,
}

impl Span<'_> {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.hist.record(us);
        }
    }
}

/// A named collection of metrics sharing one [`Gate`].
///
/// Metrics are created on first use and identified by name; asking for
/// the same name twice returns the same underlying metric. Snapshots
/// list metrics in name order so emitted JSON is deterministic.
#[derive(Debug)]
pub struct Registry {
    gate: Gate,
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

impl Registry {
    /// An enabled registry.
    #[must_use]
    pub fn new() -> Self {
        Self::with_gate(Gate::new(true))
    }

    /// A registry that starts disabled; its metrics record nothing
    /// until [`Registry::set_enabled`] flips the shared gate.
    #[must_use]
    pub fn disabled() -> Self {
        Self::with_gate(Gate::new(false))
    }

    fn with_gate(gate: Gate) -> Self {
        Self {
            gate,
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            histograms: Mutex::new(Vec::new()),
        }
    }

    /// The registry's gate (shared with every metric it created).
    #[must_use]
    pub fn gate(&self) -> &Gate {
        &self.gate
    }

    /// Enables or disables all metrics at once.
    pub fn set_enabled(&self, enabled: bool) {
        self.gate.set(enabled);
    }

    /// Whether metrics currently record.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.gate.enabled()
    }

    /// The counter named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut list = self.counters.lock().expect("metric list lock");
        if let Some((_, c)) = list.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::gated(self.gate.clone()));
        list.push((name.to_owned(), Arc::clone(&c)));
        c
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut list = self.gauges.lock().expect("metric list lock");
        if let Some((_, g)) = list.iter().find(|(n, _)| n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::gated(self.gate.clone()));
        list.push((name.to_owned(), Arc::clone(&g)));
        g
    }

    /// The histogram named `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut list = self.histograms.lock().expect("metric list lock");
        if let Some((_, h)) = list.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::gated(self.gate.clone()));
        list.push((name.to_owned(), Arc::clone(&h)));
        h
    }

    /// A point-in-time JSON snapshot of every metric (the
    /// `obs-snapshot/1` schema of `docs/OBSERVABILITY.md`): counters
    /// and gauges as `name: value`, histograms as `name: summary`,
    /// all sorted by name. The `gauges` member is additive — readers
    /// of pre-gauge snapshots see no change until a gauge exists.
    #[must_use]
    pub fn snapshot(&self) -> Json {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .expect("metric list lock")
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, u64)> = self
            .gauges
            .lock()
            .expect("metric list lock")
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        gauges.sort();
        let mut histograms: Vec<(String, Summary)> = self
            .histograms
            .lock()
            .expect("metric list lock")
            .iter()
            .map(|(n, h)| (n.clone(), h.summary()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Json::obj()
            .with("schema", "obs-snapshot/1")
            .with("enabled", self.enabled())
            .with("counters", Json::Obj(counters.into_iter().map(|(n, v)| (n, v.into())).collect()))
            .with("gauges", Json::Obj(gauges.into_iter().map(|(n, v)| (n, v.into())).collect()))
            .with(
                "histograms",
                Json::Obj(histograms.into_iter().map(|(n, s)| (n, s.to_json())).collect()),
            )
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3, "same name, same counter");
        assert_eq!(reg.counter("y").get(), 0);
    }

    #[test]
    fn disabled_gate_records_nothing() {
        let reg = Registry::disabled();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h");
        c.inc();
        g.set(9);
        h.record(5);
        h.span().finish();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
        reg.set_enabled(true);
        c.inc();
        g.set(9);
        h.record(5);
        assert_eq!(c.get(), 1, "gate re-enables existing metrics");
        assert_eq!(g.get(), 9);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn gauges_hold_last_value_and_snapshot_additively() {
        let reg = Registry::new();
        let g = reg.gauge("explore.frontier");
        g.set(3);
        g.set(11);
        assert_eq!(g.get(), 11, "last value wins");
        assert!(Arc::ptr_eq(&g, &reg.gauge("explore.frontier")), "same name, same gauge");
        reg.gauge("explore.cache_entries").set(2);
        let snap = reg.snapshot();
        let gauges = snap.get("gauges").expect("gauges block");
        assert_eq!(gauges.get_u64("explore.frontier"), Some(11));
        assert_eq!(gauges.get_u64("explore.cache_entries"), Some(2));
        match gauges {
            Json::Obj(members) => {
                assert_eq!(members[0].0, "explore.cache_entries", "sorted by name");
            }
            other => panic!("gauges not an object: {other:?}"),
        }
    }

    #[test]
    fn histogram_summary_tracks_exact_and_bucketed_stats() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 1106.0 / 6.0).abs() < 1e-9);
        assert!(s.p50 >= 2 && s.p50 <= 3, "median within its octave: {}", s.p50);
        assert!(s.p99 >= 1000, "p99 upper bound covers the max: {}", s.p99);
        assert_eq!(Histogram::new().summary(), Summary::default(), "empty summary is zeroed");
    }

    #[test]
    fn span_records_elapsed_micros() {
        let h = Histogram::new();
        {
            let _span = h.span();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert!(s.max >= 1_000, "at least ~2ms recorded, got {}µs", s.max);
    }

    #[test]
    fn snapshot_is_sorted_and_parseable() {
        let reg = Registry::new();
        reg.counter("z.last").add(9);
        reg.counter("a.first").add(1);
        reg.histogram("lat").record(7);
        let snap = reg.snapshot();
        let text = snap.to_pretty();
        let parsed = Json::parse(&text).expect("snapshot parses");
        assert_eq!(parsed.get_str("schema"), Some("obs-snapshot/1"));
        let counters = parsed.get("counters").expect("counters");
        match counters {
            Json::Obj(members) => {
                assert_eq!(members[0].0, "a.first", "sorted by name");
                assert_eq!(members[1].0, "z.last");
            }
            other => panic!("counters not an object: {other:?}"),
        }
        assert_eq!(
            parsed.get("histograms").and_then(|h| h.get("lat")).and_then(|l| l.get_u64("count")),
            Some(1)
        );
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let reg = Registry::new();
        let c = reg.counter("n");
        let h = reg.histogram("h");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
    }
}
