//! Pluggable trace sinks and a Chrome trace-event writer.
//!
//! A producer (the simulator's retire loop, the explorer's round loop)
//! hands each event to a [`TraceSink`] as a [`Json`] object and never
//! cares where it goes:
//!
//! * [`RingSink`] — a bounded ring that keeps the *tail* of the stream
//!   and counts what it evicted. The default: constant memory, crash
//!   context preserved.
//! * [`StreamSink`] — JSON Lines to any writer; never drops an event.
//! * [`ChromeTrace`] — not a sink but a builder for the Chrome
//!   trace-event format (`chrome://tracing` / Perfetto): collect
//!   complete/instant events, then serialize one `{"traceEvents":[…]}`
//!   document.

use crate::json::Json;
use std::collections::VecDeque;
use std::io::Write;

/// A destination for a stream of JSON trace events.
///
/// Implementations decide the retention policy; producers only call
/// [`TraceSink::record`] per event and [`TraceSink::flush`] at the end
/// of a run.
pub trait TraceSink: Send {
    /// Accepts one event.
    fn record(&mut self, event: Json);

    /// Events the sink has discarded (0 for lossless sinks).
    fn dropped(&self) -> u64 {
        0
    }

    /// Flushes any buffered output.
    fn flush(&mut self) {}
}

/// A bounded ring of events: when full, the oldest event is evicted
/// and counted. Keeps the tail of a long run in constant memory.
#[derive(Debug, Clone, Default)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<Json>,
    dropped: u64,
}

impl RingSink {
    /// An empty ring bounded at `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { capacity, events: VecDeque::with_capacity(capacity), dropped: 0 }
    }

    /// Maximum retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Json> {
        self.events.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: Json) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Streams events as JSON Lines (one compact object per line) to any
/// writer. Never drops an event; I/O errors are counted rather than
/// panicking mid-simulation (check [`StreamSink::write_errors`]).
pub struct StreamSink {
    out: Box<dyn Write + Send>,
    written: u64,
    write_errors: u64,
}

impl std::fmt::Debug for StreamSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSink")
            .field("written", &self.written)
            .field("write_errors", &self.write_errors)
            .finish_non_exhaustive()
    }
}

impl StreamSink {
    /// A sink writing JSONL to `out`.
    #[must_use]
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        Self { out, written: 0, write_errors: 0 }
    }

    /// Events successfully written.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Events lost to I/O errors.
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }
}

impl TraceSink for StreamSink {
    fn record(&mut self, event: Json) {
        match writeln!(self.out, "{event}") {
            Ok(()) => self.written += 1,
            Err(_) => self.write_errors += 1,
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// A builder for the Chrome trace-event JSON format.
///
/// Collect events with [`ChromeTrace::complete`] /
/// [`ChromeTrace::instant`], then render the whole timeline with
/// [`ChromeTrace::to_json`] and load the result in `chrome://tracing`
/// or Perfetto. Timestamps are microseconds relative to any epoch the
/// caller chooses (the viewers only care about relative placement).
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<Json>,
}

impl ChromeTrace {
    /// An empty timeline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a complete (`ph: "X"`) event: a span named `name` in
    /// category `cat` on track `tid`, starting at `ts_us` and lasting
    /// `dur_us` microseconds, with free-form `args` attached.
    pub fn complete(
        &mut self,
        name: &str,
        cat: &str,
        tid: u64,
        ts_us: u64,
        dur_us: u64,
        args: Json,
    ) {
        self.events.push(
            Json::obj()
                .with("name", name)
                .with("cat", cat)
                .with("ph", "X")
                .with("pid", 1u64)
                .with("tid", tid)
                .with("ts", ts_us)
                .with("dur", dur_us)
                .with("args", args),
        );
    }

    /// Adds an instant (`ph: "i"`) event at `ts_us` on track `tid`.
    pub fn instant(&mut self, name: &str, cat: &str, tid: u64, ts_us: u64, args: Json) {
        self.events.push(
            Json::obj()
                .with("name", name)
                .with("cat", cat)
                .with("ph", "i")
                .with("s", "t")
                .with("pid", 1u64)
                .with("tid", tid)
                .with("ts", ts_us)
                .with("args", args),
        );
    }

    /// Number of events collected.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the `{"traceEvents": […]}` document the viewers load.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj().with("traceEvents", self.events.iter().cloned().collect::<Json>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    fn ev(n: u64) -> Json {
        Json::obj().with("n", n)
    }

    #[test]
    fn ring_keeps_tail_and_counts_drops() {
        let mut ring = RingSink::new(3);
        for n in 0..10 {
            ring.record(ev(n));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        let kept: Vec<u64> = ring.events().filter_map(|e| e.get_u64("n")).collect();
        assert_eq!(kept, [7, 8, 9], "tail survives");
    }

    #[test]
    fn ring_capacity_floor_is_one() {
        let mut ring = RingSink::new(0);
        ring.record(ev(1));
        ring.record(ev(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
    }

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("lock").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn stream_sink_writes_jsonl_and_never_drops() {
        let buf = SharedBuf::default();
        let mut sink = StreamSink::new(Box::new(buf.clone()));
        for n in 0..5 {
            sink.record(ev(n));
        }
        sink.flush();
        assert_eq!(sink.written(), 5);
        assert_eq!(sink.dropped(), 0);
        let text = String::from_utf8(buf.0.lock().expect("lock").clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for (i, line) in lines.iter().enumerate() {
            let parsed = Json::parse(line).expect("each line is valid JSON");
            assert_eq!(parsed.get_u64("n"), Some(i as u64));
        }
    }

    #[test]
    fn chrome_trace_document_shape() {
        let mut ct = ChromeTrace::new();
        ct.complete("round 0", "explore", 0, 0, 1500, Json::obj().with("evals", 4u64));
        ct.instant("accepted", "explore", 0, 1500, Json::Null);
        let doc = ct.to_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).expect("array");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get_str("ph"), Some("X"));
        assert_eq!(events[0].get_u64("dur"), Some(1500));
        assert_eq!(events[1].get_str("ph"), Some("i"));
        // Round-trips through our own parser.
        let text = doc.to_pretty();
        assert_eq!(Json::parse(&text).expect("parses"), doc);
    }
}
