//! Decode-logic generation (§4.2 of the paper).
//!
//! The disassembler and the hardware decoder implement the same
//! function — reversing the assembly function — so both come from the
//! operation signatures. For each operation a *decode line* is the
//! two-level AND of the signature's constant literals (e.g.
//! `I9 & I8 & ~I6 & ~I5` for Figure 3's `op2`); parameter values are
//! recovered by wiring the parameter-symbol bits straight out of the
//! instruction word.
//!
//! A *naive* alternative (whole-word equality comparators per
//! operation, masking parameter bits) is provided for the decode
//! ablation bench; it is functionally identical but costs a masked
//! comparator per operation instead of a few literals.

use isdl::model::{Machine, NtId, OpRef, Operation, ParamType};
use isdl::signature::{SigBit, Signature};
use vlog::ast::{VBinOp, VExpr, VUnOp};

/// How decode lines are implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecodeStyle {
    /// Two-level literal AND from the signature constants (the paper's
    /// scheme — "an efficient two-level implementation").
    #[default]
    TwoLevel,
    /// Masked whole-word comparator per operation (ablation baseline).
    NaiveComparator,
}

/// Precomputed signatures for a machine.
#[derive(Debug)]
pub struct DecodePlan<'m> {
    machine: &'m Machine,
    /// `field_sigs[f][o]`.
    pub field_sigs: Vec<Vec<Signature>>,
    /// `nt_sigs[n][o]`.
    pub nt_sigs: Vec<Vec<Signature>>,
    /// Width of the widest encoding (`max_size * word_width`).
    pub wide_width: u32,
}

/// A path from an instruction word down to a token parameter:
/// the operation parameter index, then nested non-terminal argument
/// indices.
pub type ParamPath = Vec<usize>;

impl<'m> DecodePlan<'m> {
    /// Builds signatures for every operation and non-terminal option.
    ///
    /// # Panics
    ///
    /// Panics on an invalid machine; machines from [`isdl::load`] are
    /// always valid.
    #[must_use]
    pub fn new(machine: &'m Machine) -> Self {
        let field_sigs = machine
            .fields
            .iter()
            .map(|f| {
                f.ops
                    .iter()
                    .map(|o| {
                        Signature::from_encoding(&o.encode, o.costs.size * machine.word_width)
                            .expect("validated machine")
                    })
                    .collect()
            })
            .collect();
        let nt_sigs = machine
            .nonterminals
            .iter()
            .map(|nt| {
                nt.options
                    .iter()
                    .map(|o| {
                        Signature::from_encoding(&o.encode, nt.width).expect("validated machine")
                    })
                    .collect()
            })
            .collect();
        Self {
            machine,
            field_sigs,
            nt_sigs,
            wide_width: machine.max_op_size() * machine.word_width,
        }
    }

    /// The decode-line expression for an operation, over the wide
    /// instruction net `instr_net`.
    #[must_use]
    pub fn decode_line(&self, r: OpRef, instr_net: &str, style: DecodeStyle) -> VExpr {
        let sig = &self.field_sigs[r.field.0][r.op];
        match style {
            DecodeStyle::TwoLevel => literal_and(sig, instr_net, 0),
            DecodeStyle::NaiveComparator => masked_compare(sig, instr_net),
        }
    }

    /// The decode-line expression for a non-terminal option, given the
    /// word-bit positions of the non-terminal's value within the
    /// instruction (from the parent operation's signature).
    #[must_use]
    pub fn nt_option_line(
        &self,
        nt: NtId,
        option: usize,
        instr_net: &str,
        nt_bit_positions: &[Option<u32>],
        style: DecodeStyle,
    ) -> VExpr {
        let sig = &self.nt_sigs[nt.0][option];
        match style {
            DecodeStyle::TwoLevel => {
                let mut terms = Vec::new();
                for (bit, symbol) in sig.iter() {
                    if let SigBit::Const(c) = symbol {
                        let term = match nt_bit_positions.get(bit as usize).copied().flatten() {
                            Some(word_bit) => {
                                let lit = VExpr::Slice(instr_net.to_owned(), word_bit, word_bit);
                                if c {
                                    lit
                                } else {
                                    VExpr::unary(VUnOp::Not, lit)
                                }
                            }
                            // A constant bit the parent never placed in
                            // the word can never match a 1; an expected
                            // 0 is trivially true against the implicit
                            // zero fill.
                            None => VExpr::const_u64(u64::from(!c), 1),
                        };
                        terms.push(term);
                    }
                }
                and_tree(terms)
            }
            DecodeStyle::NaiveComparator => {
                // Reconstruct the NT value wire, then compare masked.
                let value = compose_bits(instr_net, nt_bit_positions);
                let (mask, want) = sig.const_mask_value();
                VExpr::binary(
                    VBinOp::Eq,
                    VExpr::binary(VBinOp::And, value, VExpr::Const(mask)),
                    VExpr::Const(want),
                )
            }
        }
    }

    /// Word-bit positions of parameter `param` of operation `r`:
    /// element `k` is the instruction bit holding parameter-value bit
    /// `k`, or `None` if never encoded (reads as zero).
    #[must_use]
    pub fn param_positions(&self, r: OpRef, param: usize) -> Vec<Option<u32>> {
        let op = self.machine.op(r);
        let enc_w = self.machine.param_encoding_width(op.params[param].ty);
        positions_in(&self.field_sigs[r.field.0][r.op], param, enc_w)
    }

    /// Word-bit positions of a nested token parameter reached through
    /// `path` (op param index, then option arg indices with the given
    /// option choices at each level).
    ///
    /// `options` gives the chosen option index at each non-terminal
    /// level along the path.
    #[must_use]
    pub fn leaf_positions(&self, r: OpRef, path: &[usize], options: &[usize]) -> Vec<Option<u32>> {
        let op = self.machine.op(r);
        let mut positions = self.param_positions(r, path[0]);
        let mut ty = op.params[path[0]].ty;
        for (level, &arg) in path[1..].iter().enumerate() {
            let ParamType::NonTerminal(nt) = ty else {
                unreachable!("path descends only through non-terminals")
            };
            let option = options[level];
            let sig = &self.nt_sigs[nt.0][option];
            let opt = &self.machine.nonterminals[nt.0].options[option];
            let enc_w = self.machine.param_encoding_width(opt.params[arg].ty);
            let inner = positions_in(sig, arg, enc_w);
            // Compose: inner maps arg-bit -> NT-value bit; positions
            // maps NT-value bit -> word bit.
            positions = inner
                .iter()
                .map(|p| p.and_then(|b| positions.get(b as usize).copied().flatten()))
                .collect();
            ty = opt.params[arg].ty;
        }
        positions
    }

    /// An expression reconstructing a parameter value from the
    /// instruction word.
    #[must_use]
    pub fn param_value_expr(&self, instr_net: &str, positions: &[Option<u32>]) -> VExpr {
        compose_bits(instr_net, positions)
    }

    /// The machine behind this plan.
    #[must_use]
    pub fn machine(&self) -> &'m Machine {
        self.machine
    }

    /// Iterates the operations of a non-terminal with the positions of
    /// their nested parameters — convenience for datapath emission.
    #[must_use]
    pub fn nt(&self, id: NtId) -> &isdl::model::NonTerminal {
        &self.machine.nonterminals[id.0]
    }

    /// The operation behind a reference.
    #[must_use]
    pub fn op(&self, r: OpRef) -> &Operation {
        self.machine.op(r)
    }
}

/// Positions of each bit of `param`'s value inside the signature.
fn positions_in(sig: &Signature, param: usize, enc_w: u32) -> Vec<Option<u32>> {
    let mut out = vec![None; enc_w as usize];
    for (i, b) in sig.iter() {
        if let SigBit::Param { param: p, bit } = b {
            if p == param && (bit as usize) < out.len() {
                out[bit as usize] = Some(i);
            }
        }
    }
    out
}

/// Builds `{instr[b_{n-1}], ..., instr[b_0]}` (missing bits become 0).
fn compose_bits(instr_net: &str, positions: &[Option<u32>]) -> VExpr {
    // Group consecutive word bits into slices for compact Verilog.
    let mut parts: Vec<VExpr> = Vec::new(); // most significant first
    let mut i = positions.len();
    while i > 0 {
        i -= 1;
        match positions[i] {
            Some(start_bit) => {
                // Extend downward while bits are consecutive.
                let hi_bit = start_bit;
                let mut lo_bit = start_bit;
                while i > 0 {
                    match positions[i - 1] {
                        Some(b) if b + 1 == lo_bit => {
                            lo_bit = b;
                            i -= 1;
                        }
                        _ => break,
                    }
                }
                parts.push(VExpr::Slice(instr_net.to_owned(), hi_bit, lo_bit));
            }
            None => {
                let mut zeros = 1;
                while i > 0 && positions[i - 1].is_none() {
                    zeros += 1;
                    i -= 1;
                }
                parts.push(VExpr::const_u64(0, zeros));
            }
        }
    }
    if parts.len() == 1 {
        parts.pop().expect("one part")
    } else {
        VExpr::Concat(parts)
    }
}

/// AND of the signature's constant literals over `instr_net`
/// (bits shifted by `bit_offset`).
fn literal_and(sig: &Signature, instr_net: &str, bit_offset: u32) -> VExpr {
    let terms: Vec<VExpr> = sig
        .decode_literals()
        .into_iter()
        .map(|(bit, polarity)| {
            let b = bit + bit_offset;
            let lit = VExpr::Slice(instr_net.to_owned(), b, b);
            if polarity {
                lit
            } else {
                VExpr::unary(VUnOp::Not, lit)
            }
        })
        .collect();
    and_tree(terms)
}

/// Masked equality comparator over the whole signature width.
fn masked_compare(sig: &Signature, instr_net: &str) -> VExpr {
    let (mask, want) = sig.const_mask_value();
    let w = sig.width();
    let word = VExpr::Slice(instr_net.to_owned(), w - 1, 0);
    VExpr::binary(
        VBinOp::Eq,
        VExpr::binary(VBinOp::And, word, VExpr::Const(mask)),
        VExpr::Const(want),
    )
}

fn and_tree(mut terms: Vec<VExpr>) -> VExpr {
    match terms.len() {
        0 => VExpr::const_u64(1, 1),
        1 => terms.pop().expect("one term"),
        _ => {
            let mut acc = terms.remove(0);
            for t in terms {
                acc = VExpr::binary(VBinOp::And, acc, t);
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdl::model::FieldId;
    use isdl::samples::TOY;

    #[test]
    fn decode_line_two_level() {
        let m = isdl::load(TOY).expect("loads");
        let plan = DecodePlan::new(&m);
        let add = m.op_by_name("ALU", "add").expect("add");
        let line = plan.decode_line(add, "instr", DecodeStyle::TwoLevel);
        // add's opcode is 0b00001 in bits 31:27 — 5 literals.
        let text = expr_text(&line);
        assert!(text.contains("instr[27]"), "{text}");
        assert!(text.contains("~(instr[31])"), "{text}");
    }

    #[test]
    fn decode_line_naive() {
        let m = isdl::load(TOY).expect("loads");
        let plan = DecodePlan::new(&m);
        let add = m.op_by_name("ALU", "add").expect("add");
        let line = plan.decode_line(add, "instr", DecodeStyle::NaiveComparator);
        assert!(matches!(line, VExpr::Binary(VBinOp::Eq, _, _)));
    }

    #[test]
    fn param_positions_contiguous() {
        let m = isdl::load(TOY).expect("loads");
        let plan = DecodePlan::new(&m);
        let li = m.op_by_name("ALU", "li").expect("li");
        // li d, v: v occupies word bits 23:16.
        let pos = plan.param_positions(li, 1);
        assert_eq!(pos.len(), 8);
        assert_eq!(pos[0], Some(16));
        assert_eq!(pos[7], Some(23));
        let e = plan.param_value_expr("instr", &pos);
        assert_eq!(expr_text(&e), "instr[23:16]");
    }

    #[test]
    fn leaf_positions_through_nt() {
        let m = isdl::load(TOY).expect("loads");
        let plan = DecodePlan::new(&m);
        let add = m.op_by_name("ALU", "add").expect("add");
        // add's third param is the SRC non-terminal at word bits 20:17;
        // option reg(r) places r at val[2:0] -> word bits 19:17.
        let pos = plan.leaf_positions(add, &[2, 0], &[0]);
        assert_eq!(pos, vec![Some(17), Some(18), Some(19)]);
    }

    #[test]
    fn nt_option_line_checks_mode_bit() {
        let m = isdl::load(TOY).expect("loads");
        let plan = DecodePlan::new(&m);
        let add = m.op_by_name("ALU", "add").expect("add");
        let nt_pos = plan.param_positions(add, 2); // val bits -> word 20:17
        let nt = match m.op(add).params[2].ty {
            ParamType::NonTerminal(n) => n,
            ParamType::Token(_) => panic!("SRC is a non-terminal"),
        };
        // Option 0 (reg) requires val[3] == 0, i.e. ~instr[20].
        let line = plan.nt_option_line(nt, 0, "instr", &nt_pos, DecodeStyle::TwoLevel);
        assert_eq!(expr_text(&line), "~(instr[20])");
        // Option 1 (ind) requires instr[20].
        let line = plan.nt_option_line(nt, 1, "instr", &nt_pos, DecodeStyle::TwoLevel);
        assert_eq!(expr_text(&line), "instr[20]");
        let _ = ParamPath::new();
    }

    #[test]
    fn compose_bits_with_gaps() {
        let pos = vec![Some(3), None, Some(10), Some(11)];
        let e = compose_bits("w", &pos);
        assert_eq!(expr_text(&e), "{w[11:10], 1'h0, w[3]}");
    }

    /// Renders an expression through a dummy module for assertions.
    fn expr_text(e: &VExpr) -> String {
        use vlog::ast::{LValue, VModule};
        let mut m = VModule::new("t");
        m.add_wire("instr", 64);
        m.add_wire("w", 64);
        m.add_wire("y", 64);
        m.assign(LValue::net("y"), e.clone());
        let text = m.to_verilog();
        let line = text.lines().find(|l| l.contains("assign y =")).expect("assign emitted");
        line.trim().trim_start_matches("assign y = ").trim_end_matches(';').to_owned()
    }

    #[test]
    fn wide_width_covers_multiword() {
        let m = isdl::load(TOY).expect("loads");
        let plan = DecodePlan::new(&m);
        assert_eq!(plan.wide_width, 32);
        let _ = FieldId(0);
    }
}
