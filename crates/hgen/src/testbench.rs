//! Verilog test-bench emission.
//!
//! The generated hardware model is meant to be handed to downstream
//! CAD tools ("this description can then be used to map to any kind of
//! underlying technology using modern CAD tools", §4). This module
//! emits a self-checking test bench around the model: it loads a
//! program image with `$readmemh`, clocks a configurable number of
//! cycles, optionally dumps a VCD, and prints the final PC — enough to
//! run the model under any commercial or open-source Verilog
//! simulator, not just this repository's netlist simulator.

use isdl::model::Machine;
use std::fmt::Write as _;

/// Options for the emitted test bench.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestbenchOptions {
    /// Name of the `$readmemh` image file for instruction memory.
    pub imem_hex: String,
    /// Optional `$readmemh` image for data memory.
    pub dmem_hex: Option<String>,
    /// Clock cycles to run.
    pub cycles: u64,
    /// Emit `$dumpvars` to this VCD file.
    pub vcd: Option<String>,
}

impl Default for TestbenchOptions {
    fn default() -> Self {
        Self { imem_hex: "program.hex".to_owned(), dmem_hex: None, cycles: 1_000, vcd: None }
    }
}

/// Emits a test bench for `machine`'s generated model (whose module
/// name is the sanitized machine name).
///
/// # Panics
///
/// Panics if the machine has no instruction memory (hardware
/// generation requires one).
#[must_use]
pub fn emit_testbench(machine: &Machine, module_name: &str, options: &TestbenchOptions) -> String {
    let imem = &machine.storage(machine.imem.expect("machine has instruction memory")).name;
    let dmem = machine
        .storages
        .iter()
        .find(|s| s.kind == isdl::model::StorageKind::DataMemory)
        .map(|s| s.name.clone());
    let pc_w = machine.storage(machine.pc.expect("machine has a PC")).width;

    let mut s = String::new();
    let _ = writeln!(s, "// Generated test bench for `{module_name}`");
    let _ = writeln!(s, "`timescale 1ns/1ps");
    let _ = writeln!(s, "module {module_name}_tb;");
    let _ = writeln!(s, "  reg clk = 0;");
    let _ = writeln!(s, "  wire [{}:0] pc_out;", pc_w - 1);
    let _ = writeln!(s, "  {module_name} dut (.clk(clk), .pc_out(pc_out));");
    s.push('\n');
    let _ = writeln!(s, "  always #5 clk = ~clk;");
    s.push('\n');
    let _ = writeln!(s, "  initial begin");
    let _ = writeln!(s, "    $readmemh(\"{}\", dut.{imem});", options.imem_hex);
    if let (Some(hex), Some(dm)) = (&options.dmem_hex, &dmem) {
        let _ = writeln!(s, "    $readmemh(\"{hex}\", dut.{dm});");
    }
    if let Some(vcd) = &options.vcd {
        let _ = writeln!(s, "    $dumpfile(\"{vcd}\");");
        let _ = writeln!(s, "    $dumpvars(0, dut);");
    }
    let _ = writeln!(s, "    repeat ({}) @(posedge clk);", options.cycles);
    let _ = writeln!(s, "    $display(\"final pc = %h\", pc_out);");
    let _ = writeln!(s, "    $finish;");
    let _ = writeln!(s, "  end");
    let _ = writeln!(s, "endmodule");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdl::samples::SPAM2;

    #[test]
    fn testbench_references_model_and_image() {
        let m = isdl::load(SPAM2).expect("loads");
        let tb = emit_testbench(
            &m,
            "spam2",
            &TestbenchOptions {
                imem_hex: "fir.hex".to_owned(),
                dmem_hex: Some("data.hex".to_owned()),
                cycles: 500,
                vcd: Some("waves.vcd".to_owned()),
            },
        );
        assert!(tb.contains("module spam2_tb;"));
        assert!(tb.contains("spam2 dut (.clk(clk), .pc_out(pc_out));"));
        assert!(tb.contains("$readmemh(\"fir.hex\", dut.IM);"));
        assert!(tb.contains("$readmemh(\"data.hex\", dut.DM);"));
        assert!(tb.contains("$dumpfile(\"waves.vcd\");"));
        assert!(tb.contains("repeat (500) @(posedge clk);"));
        assert!(tb.contains("wire [7:0] pc_out;"));
    }

    #[test]
    fn default_options_are_minimal() {
        let m = isdl::load(SPAM2).expect("loads");
        let tb = emit_testbench(&m, "spam2", &TestbenchOptions::default());
        assert!(tb.contains("program.hex"));
        assert!(!tb.contains("$dumpfile"));
    }
}
