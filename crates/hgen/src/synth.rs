//! The HGEN driver: ISDL in, synthesizable Verilog + synthesis report
//! out (the Table 2 flow).

use crate::decode::DecodeStyle;
use crate::emit::{emit, EmitStats};
use crate::share::ShareOptions;
use isdl::model::Machine;
use std::time::Instant;
use vlog::ast::VModule;
use vlog::tech::{self, TechReport};
use vlog::VlogError;

/// HGEN configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HgenOptions {
    /// Decode implementation style.
    pub decode: DecodeStyle,
    /// Resource-sharing configuration.
    pub share: ShareOptions,
    /// RTL middle-end level applied before lowering ([`isdl::opt`]).
    /// The generated netlist stays functionally equivalent at every
    /// level; `OptLevel::None` is the differential baseline.
    pub opt: isdl::opt::OptLevel,
    /// Explicit middle-end pass schedule overriding the canonical
    /// schedule `opt` selects; `None` (the default) runs the level's
    /// schedule.
    pub passes: Option<isdl::opt::PassList>,
}

impl HgenOptions {
    /// The middle-end pipeline these options select.
    #[must_use]
    pub fn pipeline(&self) -> isdl::opt::Pipeline {
        match self.passes {
            Some(list) => isdl::opt::Pipeline::with_passes(self.opt, list),
            None => isdl::opt::Pipeline::for_level(self.opt),
        }
    }
}

/// The result of synthesizing one machine.
#[derive(Debug, Clone)]
pub struct HgenResult {
    /// The generated synthesizable module.
    pub module: VModule,
    /// The emitted Verilog text.
    pub verilog: String,
    /// Lines of Verilog (a Table 2 column).
    pub lines_of_verilog: usize,
    /// Technology analysis: die size, cycle length, power.
    pub report: TechReport,
    /// Datapath statistics from the sharing pass.
    pub stats: EmitStats,
    /// Wall-clock synthesis time in seconds (a Table 2 column).
    pub synthesis_time_s: f64,
}

impl HgenResult {
    /// Elaborates the generated module into a netlist simulator of the
    /// chosen backend (see `docs/SIMULATORS.md` for the trade-off).
    ///
    /// # Errors
    ///
    /// Propagates elaboration/levelization errors; HGEN output is
    /// loop-free by construction, so both backends accept it.
    pub fn simulator(&self, backend: vlog::SimBackend) -> Result<vlog::AnySim, VlogError> {
        vlog::AnySim::elaborate(&self.module, backend)
    }
}

/// Runs the full HGEN flow: datapath construction, resource sharing,
/// Verilog emission, and technology analysis.
///
/// # Errors
///
/// Returns a [`VlogError`] if the generated module fails elaboration
/// or timing (which would indicate a generator bug for validated
/// machines).
///
/// # Panics
///
/// Panics if the machine has no program counter or instruction memory.
pub fn synthesize(machine: &Machine, options: HgenOptions) -> Result<HgenResult, VlogError> {
    let start = Instant::now();
    let (module, stats) = emit(machine, options.decode, options.share, options.pipeline());
    let verilog = module.to_verilog();
    let report = tech::analyze(&module)?;
    let synthesis_time_s = start.elapsed().as_secs_f64();
    Ok(HgenResult {
        lines_of_verilog: verilog.lines().count(),
        module,
        verilog,
        report,
        stats,
        synthesis_time_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdl::samples::{ACC16, TOY};

    #[test]
    fn toy_synthesizes_with_report() {
        let m = isdl::load(TOY).expect("loads");
        let r = synthesize(&m, HgenOptions::default()).expect("synthesizes");
        assert!(r.lines_of_verilog > 40, "non-trivial Verilog output");
        assert!(r.report.area_cells > 0.0);
        assert!(r.report.cycle_ns > 0.0);
        assert!(r.synthesis_time_s >= 0.0);
        assert!(r.verilog.contains("module toy"));
    }

    #[test]
    fn simulator_helper_serves_both_backends() {
        let m = isdl::load(TOY).expect("loads");
        let r = synthesize(&m, HgenOptions::default()).expect("synthesizes");
        for backend in [vlog::SimBackend::Event, vlog::SimBackend::Levelized] {
            let mut sim = r.simulator(backend).expect("elaborates");
            sim.clock(8).expect("clocks");
            assert_eq!(sim.cycles(), 8);
            assert_eq!(sim.backend(), backend);
        }
    }

    #[test]
    fn sharing_shrinks_area() {
        let m = isdl::load(TOY).expect("loads");
        let shared = synthesize(&m, HgenOptions::default()).expect("synthesizes");
        let unshared = synthesize(
            &m,
            HgenOptions {
                share: ShareOptions { enabled: false, ..ShareOptions::default() },
                ..HgenOptions::default()
            },
        )
        .expect("synthesizes");
        assert!(
            shared.report.area_cells < unshared.report.area_cells,
            "sharing must reduce area: {} vs {}",
            shared.report.area_cells,
            unshared.report.area_cells
        );
    }

    #[test]
    fn bigger_machine_costs_more() {
        let toy = isdl::load(TOY).expect("loads");
        let acc = isdl::load(ACC16).expect("loads");
        let rt = synthesize(&toy, HgenOptions::default()).expect("synthesizes");
        let ra = synthesize(&acc, HgenOptions::default()).expect("synthesizes");
        // toy is a 2-way VLIW with a multiplier; acc16 a small
        // accumulator machine. Compare combinational logic, because
        // total area is dominated by the memories.
        assert!(
            rt.report.area_breakdown["combinational"] > ra.report.area_breakdown["combinational"],
            "VLIW datapath outweighs the accumulator machine"
        );
        assert!(rt.lines_of_verilog > ra.lines_of_verilog);
    }

    #[test]
    fn naive_decode_costs_more_area() {
        let m = isdl::load(TOY).expect("loads");
        let two_level = synthesize(&m, HgenOptions::default()).expect("synthesizes");
        let naive = synthesize(
            &m,
            HgenOptions { decode: DecodeStyle::NaiveComparator, ..HgenOptions::default() },
        )
        .expect("synthesizes");
        assert!(
            naive.report.area_cells > two_level.report.area_cells,
            "comparator decode should cost more: {} vs {}",
            naive.report.area_cells,
            two_level.report.area_cells
        );
    }
}
