//! Lowering operation RTL into a guarded datapath.
//!
//! Every operation's action and side-effect RTL is lowered, with its
//! non-terminal parameters expanded per option, into:
//!
//! * a list of *shareable nodes* — operator instances (adders,
//!   multipliers, …) and memory read ports — each with its operand
//!   expressions and an activation guard; the sharing pass
//!   ([`crate::share`]) groups these into functional units;
//! * a list of *write requests* — guarded, possibly latency-delayed
//!   writes to storages, later merged into register next-value muxes
//!   and memory write ports by the emitter.
//!
//! Expressions are plain [`VExpr`]s over the instruction word, storage
//! registers, and node output wires (`dp_n{k}`), so the emitter only
//! has to name things and stitch them together.

use crate::decode::{DecodePlan, DecodeStyle};
use crate::share::{NodeOwner, ShareClass, ShareNode};
use isdl::model::{Machine, NtId, OpRef, Operation, ParamType, StorageKind};
use isdl::rtl::{BinOp, ExtKind, RExpr, RExprKind, RLvalue, RStmt, StorageId, UnOp};
use isdl::sema::ceil_log2;
use vlog::ast::{VBinOp, VExpr, VUnOp};

/// A shareable datapath node with its wiring.
#[derive(Debug, Clone, PartialEq)]
pub struct DpNode {
    /// Sharing metadata (class, width, owner).
    pub share: ShareNode,
    /// The concrete operator (distinguishes `Add` from `Sub` within
    /// the `AddSub` class). Memory reads use `VBinOp::Add` as a dummy.
    pub op: VBinOp,
    /// First operand (for memory reads: the address).
    pub a: VExpr,
    /// Second operand (absent for memory reads).
    pub b: Option<VExpr>,
    /// Activation guard (decode line AND option lines).
    pub guard: VExpr,
    /// Width of operand `a` (the address width for memory reads).
    pub a_width: u32,
    /// Output width (1 for comparisons, operand width otherwise).
    pub out_width: u32,
}

impl DpNode {
    /// The wire name carrying this node's result.
    #[must_use]
    pub fn wire(index: usize) -> String {
        format!("dp_n{index}")
    }
}

/// A guarded write request against a storage element.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteReq {
    /// Target storage.
    pub sid: StorageId,
    /// Address for addressed storages.
    pub addr: Option<VExpr>,
    /// High bit written.
    pub hi: u32,
    /// Low bit written.
    pub lo: u32,
    /// The value (width `hi - lo + 1`).
    pub value: VExpr,
    /// Activation guard.
    pub guard: VExpr,
    /// Write-back latency in cycles (1 = next edge).
    pub latency: u32,
    /// Priority: requests later in program order win conflicts.
    pub order: usize,
    /// Owner, for write-port sharing.
    pub owner: NodeOwner,
}

/// The lowered datapath of a whole machine.
#[derive(Debug, Clone, Default)]
pub struct Datapath {
    /// Shareable nodes.
    pub nodes: Vec<DpNode>,
    /// All write requests.
    pub writes: Vec<WriteReq>,
    /// Auxiliary named wires `(name, width, expr)` the lowering created
    /// (operand materialisations for slices/sign-extensions, and CSE
    /// temporaries).
    pub aux: Vec<(String, u32, VExpr)>,
    /// Middle-end counters from optimizing every operation phase
    /// before lowering ([`isdl::opt`]).
    pub opt_stats: isdl::opt::OptStats,
}

/// Lowers every operation of `machine` against a decode plan.
///
/// `instr_net` is the wide instruction wire; `dec_net(r)` must yield
/// the decode-line wire name for an operation.
pub struct DatapathBuilder<'m> {
    machine: &'m Machine,
    plan: &'m DecodePlan<'m>,
    instr_net: String,
    style: DecodeStyle,
    out: Datapath,
    order: usize,
    aux_counter: usize,
    /// Content-addressed index over auxiliary wires, keyed by
    /// `(width, structural rendering)`: two `Let` temporaries (or
    /// operand materialisations) with identical lowered expressions
    /// share one wire, even across operations. Sound because aux wires
    /// are pure combinational functions of the instruction word and
    /// cycle-start state.
    aux_index: std::collections::HashMap<(u32, String), String>,
    /// RTL middle-end pipeline applied to each phase before lowering.
    pipeline: isdl::opt::Pipeline,
    /// Lowered values of [`RStmt::Let`] temporaries, phase-scoped.
    tmps: Vec<Option<VExpr>>,
}

/// How a parameter resolves during lowering.
#[derive(Debug, Clone)]
enum ParamBind {
    /// A token: its value comes straight from instruction bits.
    Token(VExpr),
    /// A non-terminal: expanded per option at each use.
    Nt {
        nt: NtId,
        /// Word-bit positions of the non-terminal's value.
        positions: Vec<Option<u32>>,
        /// Parameter path to this non-terminal (for nested leaves).
        path: Vec<usize>,
        /// Option choices above this level.
        options_above: Vec<usize>,
        /// Key identifying this parameter slot for exclusivity.
        key: u32,
    },
}

#[derive(Debug, Clone)]
struct Ctx<'a> {
    op_ref: OpRef,
    /// The operation whose statements are being lowered (a field op or
    /// a non-terminal option during expansion).
    op: &'a Operation,
    binds: Vec<ParamBind>,
    guard: VExpr,
    nt_context: Vec<(u32, usize)>,
    latency: u32,
}

impl<'m> DatapathBuilder<'m> {
    /// Creates a builder over `plan`, reading instruction bits from
    /// `instr_net`.
    #[must_use]
    pub fn new(plan: &'m DecodePlan<'m>, instr_net: impl Into<String>, style: DecodeStyle) -> Self {
        Self {
            machine: plan.machine(),
            plan,
            instr_net: instr_net.into(),
            style,
            out: Datapath::default(),
            order: 0,
            aux_counter: 0,
            aux_index: std::collections::HashMap::new(),
            pipeline: isdl::opt::Pipeline::for_level(isdl::opt::OptLevel::default()),
            tmps: Vec::new(),
        }
    }

    /// Sets the RTL middle-end level applied before lowering (the
    /// level's canonical schedule).
    #[must_use]
    pub fn with_opt(mut self, level: isdl::opt::OptLevel) -> Self {
        self.pipeline = isdl::opt::Pipeline::for_level(level);
        self
    }

    /// Sets an explicit middle-end pipeline (level plus schedule),
    /// e.g. one carrying a custom `--opt-passes` list.
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: isdl::opt::Pipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Lowers every operation of every field. `dec_wire` maps an
    /// operation to the name of its decode-line wire.
    #[must_use]
    pub fn build(mut self, dec_wire: &dyn Fn(OpRef) -> String) -> Datapath {
        for (r, op) in self.machine.all_ops() {
            let guard = VExpr::net(dec_wire(r));
            let binds = self.op_binds(r, op);
            let ctx = Ctx {
                op_ref: r,
                op,
                binds,
                guard,
                nt_context: Vec::new(),
                latency: op.timing.latency,
            };
            // Action then side effects; both lower to guarded writes.
            // (The overlay subtlety of the simulator does not arise in
            // hardware: side effects must not read action-written
            // state, which ISDL descriptions satisfy by recomputing.)
            // Each phase runs through the shared middle-end first —
            // the same per-phase pipeline XSIM executes, so the
            // netlist and the simulator lower identical RTL. Let
            // temporaries are phase-scoped, hence the reset between
            // phases.
            let mut stats = isdl::opt::OptStats::default();
            for raw in [&op.action, &op.side_effects] {
                let stmts = if self.pipeline.is_identity() {
                    raw.clone() // true baseline: no work, zero stats
                } else {
                    self.pipeline.run(raw, &mut stats)
                };
                self.tmps.clear();
                for s in &stmts {
                    self.lower_stmt(s, &ctx);
                }
            }
            self.out.opt_stats.merge(&stats);
        }
        self.out
    }

    fn op_binds(&self, r: OpRef, op: &Operation) -> Vec<ParamBind> {
        op.params
            .iter()
            .enumerate()
            .map(|(pi, p)| match p.ty {
                ParamType::Token(_) => {
                    let pos = self.plan.param_positions(r, pi);
                    ParamBind::Token(self.plan.param_value_expr(&self.instr_net, &pos))
                }
                ParamType::NonTerminal(nt) => ParamBind::Nt {
                    nt,
                    positions: self.plan.param_positions(r, pi),
                    path: vec![pi],
                    options_above: Vec::new(),
                    key: pi as u32,
                },
            })
            .collect()
    }

    fn fresh_aux(&mut self, expr: VExpr, width: u32) -> String {
        let key = (width, format!("{expr:?}"));
        if let Some(existing) = self.aux_index.get(&key) {
            return existing.clone();
        }
        let name = format!("dp_t{}", self.aux_counter);
        self.aux_counter += 1;
        self.aux_index.insert(key, name.clone());
        self.out.aux.push((name.clone(), width, expr));
        name
    }

    /// Materialises an expression as a named wire when syntax requires
    /// a net (slices, sign extension).
    fn as_net(&mut self, e: VExpr, width: u32) -> VExpr {
        if matches!(e, VExpr::Net(_)) {
            e
        } else {
            VExpr::net(self.fresh_aux(e, width))
        }
    }

    // ---- statements ----

    fn lower_stmt(&mut self, s: &RStmt, ctx: &Ctx<'_>) {
        match s {
            RStmt::Assign { lv, rhs } => {
                let value = self.lower_expr(rhs, ctx);
                self.lower_write(lv, value, rhs.width, ctx);
            }
            RStmt::If { cond, then_body, else_body } => {
                let c = self.lower_expr(cond, ctx);
                let c = self.as_net(c, 1);
                let then_guard = VExpr::binary(VBinOp::And, ctx.guard.clone(), c.clone());
                let mut then_ctx = ctx.clone();
                then_ctx.guard = then_guard;
                for s in then_body {
                    self.lower_stmt(s, &then_ctx);
                }
                if !else_body.is_empty() {
                    let else_guard =
                        VExpr::binary(VBinOp::And, ctx.guard.clone(), VExpr::unary(VUnOp::Not, c));
                    let mut else_ctx = ctx.clone();
                    else_ctx.guard = else_guard;
                    for s in else_body {
                        self.lower_stmt(s, &else_ctx);
                    }
                }
            }
            RStmt::Let { tmp, rhs } => {
                // CSE temporaries are pure and phase-scoped: lower the
                // value once, materialise it as a named wire, and let
                // every use reference that wire.
                let v = self.lower_expr(rhs, ctx);
                let v = self.as_net(v, rhs.width);
                if self.tmps.len() <= *tmp {
                    self.tmps.resize(*tmp + 1, None);
                }
                self.tmps[*tmp] = Some(v);
            }
        }
    }

    fn lower_write(&mut self, lv: &RLvalue, value: VExpr, width: u32, ctx: &Ctx<'_>) {
        match lv {
            RLvalue::Storage(sid) => {
                self.push_write(*sid, None, width - 1, 0, value, ctx);
            }
            RLvalue::StorageIndexed(sid, idx) => {
                let addr = self.lower_expr(idx, ctx);
                let addr = self.fit_addr(addr, idx.width, *sid);
                self.push_write(*sid, Some(addr), width - 1, 0, value, ctx);
            }
            RLvalue::Slice { base, hi, lo } => {
                self.lower_slice_write(base, *hi, *lo, value, ctx);
            }
            RLvalue::Param(pi) => {
                let ParamBind::Nt { nt, positions, path, options_above, key } =
                    ctx.binds[*pi].clone()
                else {
                    unreachable!("sema restricts destinations to non-terminal params")
                };
                self.expand_nt(
                    nt,
                    &positions,
                    &path,
                    &options_above,
                    key,
                    ctx,
                    &mut |b, opt_ctx| {
                        let inner = opt_ctx
                            .op
                            .value_lvalue
                            .clone()
                            .expect("sema checked assignable options");
                        b.lower_write(&inner, value.clone(), width, opt_ctx);
                        None // writes produce no value to mux
                    },
                );
            }
        }
    }

    fn lower_slice_write(&mut self, base: &RLvalue, hi: u32, lo: u32, value: VExpr, ctx: &Ctx<'_>) {
        match base {
            RLvalue::Storage(sid) => {
                self.push_write(*sid, None, hi, lo, value, ctx);
            }
            RLvalue::StorageIndexed(sid, idx) => {
                let addr = self.lower_expr(idx, ctx);
                let addr = self.fit_addr(addr, idx.width, *sid);
                self.push_write(*sid, Some(addr), hi, lo, value, ctx);
            }
            RLvalue::Slice { base: inner, hi: _, lo: ilo } => {
                self.lower_slice_write(inner, ilo + hi, ilo + lo, value, ctx);
            }
            RLvalue::Param(_) => {
                // A slice of a non-terminal destination: expand the
                // non-terminal first, then apply the slice — handled by
                // recursing through lower_write with a synthetic slice.
                // Sema produces this shape only via aliases, which
                // never wrap parameters, so it cannot occur.
                unreachable!("slice of a non-terminal destination")
            }
        }
    }

    fn push_write(
        &mut self,
        sid: StorageId,
        addr: Option<VExpr>,
        hi: u32,
        lo: u32,
        value: VExpr,
        ctx: &Ctx<'_>,
    ) {
        let order = self.order;
        self.order += 1;
        self.out.writes.push(WriteReq {
            sid,
            addr,
            hi,
            lo,
            value,
            guard: ctx.guard.clone(),
            latency: ctx.latency,
            order,
            owner: NodeOwner { op: ctx.op_ref, nt_context: ctx.nt_context.clone() },
        });
    }

    // ---- expressions ----

    fn lower_expr(&mut self, e: &RExpr, ctx: &Ctx<'_>) -> VExpr {
        match &e.kind {
            RExprKind::Lit(v) => VExpr::Const(v.clone()),
            RExprKind::Storage(sid) => VExpr::net(self.machine.storage(*sid).name.clone()),
            RExprKind::StorageIndexed(sid, idx) => {
                let addr = self.lower_expr(idx, ctx);
                let addr = self.fit_addr(addr, idx.width, *sid);
                self.mem_read_node(*sid, addr, ctx)
            }
            RExprKind::Param(pi) => match ctx.binds[*pi].clone() {
                ParamBind::Token(expr) => expr,
                ParamBind::Nt { nt, positions, path, options_above, key } => self
                    .expand_nt(
                        nt,
                        &positions,
                        &path,
                        &options_above,
                        key,
                        ctx,
                        &mut |b, opt_ctx| {
                            let value =
                                opt_ctx.op.value.clone().expect("sema checked value exists");
                            Some(b.lower_expr(&value, opt_ctx))
                        },
                    )
                    .expect("expression options produce values"),
            },
            RExprKind::Slice(inner, hi, lo) => {
                let v = self.lower_expr(inner, ctx);
                let net = self.as_net(v, inner.width);
                let VExpr::Net(name) = net else { unreachable!("as_net returns a net") };
                VExpr::Slice(name, *hi, *lo)
            }
            RExprKind::Unary(op, inner) => {
                let v = self.lower_expr(inner, ctx);
                let vop = match op {
                    UnOp::Neg => VUnOp::Neg,
                    UnOp::Not => VUnOp::Not,
                    UnOp::LNot => VUnOp::LNot,
                };
                VExpr::unary(vop, v)
            }
            RExprKind::Binary(op, a, b) => self.lower_binary(*op, a, b, ctx),
            RExprKind::Cond(c, t, f) => {
                let cv = self.lower_expr(c, ctx);
                let tv = self.lower_expr(t, ctx);
                let fv = self.lower_expr(f, ctx);
                VExpr::cond(cv, tv, fv)
            }
            RExprKind::Ext(kind, inner) => {
                let v = self.lower_expr(inner, ctx);
                match kind {
                    ExtKind::Zext => {
                        if e.width == inner.width {
                            v
                        } else {
                            VExpr::Zext(Box::new(v), e.width - inner.width)
                        }
                    }
                    ExtKind::Sext => {
                        if e.width == inner.width {
                            v
                        } else {
                            let net = self.as_net(v, inner.width);
                            VExpr::Sext(Box::new(net), inner.width, e.width)
                        }
                    }
                    ExtKind::Trunc => {
                        if e.width == inner.width {
                            v
                        } else {
                            let net = self.as_net(v, inner.width);
                            VExpr::Trunc(Box::new(net), e.width)
                        }
                    }
                }
            }
            RExprKind::Concat(parts) => {
                VExpr::Concat(parts.iter().map(|p| self.lower_expr(p, ctx)).collect())
            }
            RExprKind::Tmp(t) => self
                .tmps
                .get(*t)
                .cloned()
                .flatten()
                .expect("optimizer binds temporaries before use"),
        }
    }

    fn lower_binary(&mut self, op: BinOp, a: &RExpr, b: &RExpr, ctx: &Ctx<'_>) -> VExpr {
        let av = self.lower_expr(a, ctx);
        let bv = self.lower_expr(b, ctx);
        // Logical connectives reduce operands to booleans first.
        if matches!(op, BinOp::LAnd | BinOp::LOr) {
            let ra = VExpr::unary(VUnOp::RedOr, av);
            let rb = VExpr::unary(VUnOp::RedOr, bv);
            let vop = if op == BinOp::LAnd { VBinOp::And } else { VBinOp::Or };
            return VExpr::binary(vop, ra, rb);
        }
        let vop = map_binop(op);
        let shareable = match vop {
            VBinOp::Add
            | VBinOp::Sub
            | VBinOp::Mul
            | VBinOp::Div
            | VBinOp::Mod
            | VBinOp::SDiv
            | VBinOp::SRem
            | VBinOp::Lt
            | VBinOp::Le
            | VBinOp::SLt
            | VBinOp::SLe => true,
            VBinOp::Shl | VBinOp::Shr | VBinOp::AShr => {
                // Constant shifts are wiring; only barrel shifters count.
                !matches!(bv, VExpr::Const(_))
            }
            VBinOp::And | VBinOp::Or | VBinOp::Xor | VBinOp::Eq | VBinOp::Ne => false,
        };
        if !shareable {
            return VExpr::binary(vop, av, bv);
        }
        let class = match vop {
            VBinOp::Add | VBinOp::Sub => ShareClass::AddSub,
            other => ShareClass::Bin(other),
        };
        let out_width = if vop.is_comparison() { 1 } else { a.width };
        let idx = self.out.nodes.len();
        self.out.nodes.push(DpNode {
            share: ShareNode {
                class,
                width: a.width,
                owner: NodeOwner { op: ctx.op_ref, nt_context: ctx.nt_context.clone() },
            },
            op: vop,
            a: av,
            b: Some(bv),
            guard: ctx.guard.clone(),
            a_width: a.width,
            out_width,
        });
        VExpr::net(DpNode::wire(idx))
    }

    fn mem_read_node(&mut self, sid: StorageId, addr: VExpr, ctx: &Ctx<'_>) -> VExpr {
        let st = self.machine.storage(sid);
        debug_assert!(st.kind.is_addressed(), "indexed read of addressed storage");
        let a_width = ceil_log2(st.cells());
        let idx = self.out.nodes.len();
        self.out.nodes.push(DpNode {
            share: ShareNode {
                class: ShareClass::MemRead(sid),
                width: st.width,
                owner: NodeOwner { op: ctx.op_ref, nt_context: ctx.nt_context.clone() },
            },
            op: VBinOp::Add, // unused
            a: addr,
            b: None,
            guard: ctx.guard.clone(),
            a_width,
            out_width: st.width,
        });
        VExpr::net(DpNode::wire(idx))
    }

    /// Normalises an address expression to exactly `ceil(log2(depth))`
    /// bits — the canonical address width all ports use. Truncation
    /// matches simulator semantics for power-of-two depths (the
    /// documented hardware-model assumption).
    fn fit_addr(&mut self, addr: VExpr, have: u32, sid: StorageId) -> VExpr {
        let want = ceil_log2(self.machine.storage(sid).cells());
        if have == want {
            addr
        } else if have < want {
            VExpr::Zext(Box::new(addr), want - have)
        } else {
            let net = self.as_net(addr, have);
            VExpr::Trunc(Box::new(net), want)
        }
    }

    /// Expands a non-terminal parameter: applies `per_option` for each
    /// option with a guard extended by the option's decode line, and
    /// muxes the results. Write expansion yields no value per option
    /// (the writes are pushed as a side effect), so the mux — and the
    /// return value — exist only for expression use.
    #[allow(clippy::too_many_arguments)]
    fn expand_nt(
        &mut self,
        nt: NtId,
        positions: &[Option<u32>],
        path: &[usize],
        options_above: &[usize],
        key: u32,
        ctx: &Ctx<'_>,
        per_option: &mut dyn FnMut(&mut Self, &Ctx<'_>) -> Option<VExpr>,
    ) -> Option<VExpr> {
        let ntd = &self.machine.nonterminals[nt.0];
        let mut arms: Vec<(VExpr, VExpr)> = Vec::new();
        for (oi, opt) in ntd.options.iter().enumerate() {
            let line = self.plan.nt_option_line(nt, oi, &self.instr_net, positions, self.style);
            let line = self.as_net(line, 1);
            let guard = VExpr::binary(VBinOp::And, ctx.guard.clone(), line.clone());
            let mut options_here = options_above.to_vec();
            options_here.push(oi);
            let binds = opt
                .params
                .iter()
                .enumerate()
                .map(|(ai, p)| {
                    let mut leaf_path = path.to_vec();
                    leaf_path.push(ai);
                    match p.ty {
                        ParamType::Token(_) => {
                            let pos =
                                self.plan.leaf_positions(ctx.op_ref, &leaf_path, &options_here);
                            ParamBind::Token(self.plan.param_value_expr(&self.instr_net, &pos))
                        }
                        ParamType::NonTerminal(inner_nt) => {
                            let pos =
                                self.plan.leaf_positions(ctx.op_ref, &leaf_path, &options_here);
                            ParamBind::Nt {
                                nt: inner_nt,
                                positions: pos,
                                path: leaf_path.clone(),
                                options_above: options_here.clone(),
                                key: key * 31 + ai as u32 + 1,
                            }
                        }
                    }
                })
                .collect();
            let mut nt_context = ctx.nt_context.clone();
            nt_context.push((key, oi));
            let opt_ctx =
                Ctx { op_ref: ctx.op_ref, op: opt, binds, guard, nt_context, latency: ctx.latency };
            if let Some(value) = per_option(self, &opt_ctx) {
                arms.push((line, value));
            }
        }
        // Mux the option values; write expansion contributes none.
        let mut arms = arms.into_iter().rev();
        let (_, last) = arms.next()?;
        let mut acc = last;
        for (line, value) in arms {
            acc = VExpr::cond(line, value, acc);
        }
        Some(acc)
    }
}

fn map_binop(op: BinOp) -> VBinOp {
    match op {
        BinOp::Add => VBinOp::Add,
        BinOp::Sub => VBinOp::Sub,
        BinOp::Mul => VBinOp::Mul,
        BinOp::UDiv => VBinOp::Div,
        BinOp::URem => VBinOp::Mod,
        BinOp::SDiv => VBinOp::SDiv,
        BinOp::SRem => VBinOp::SRem,
        BinOp::And => VBinOp::And,
        BinOp::Or => VBinOp::Or,
        BinOp::Xor => VBinOp::Xor,
        BinOp::Shl => VBinOp::Shl,
        BinOp::Lshr => VBinOp::Shr,
        BinOp::Ashr => VBinOp::AShr,
        BinOp::Eq => VBinOp::Eq,
        BinOp::Ne => VBinOp::Ne,
        BinOp::Ult => VBinOp::Lt,
        BinOp::Ule => VBinOp::Le,
        BinOp::Slt => VBinOp::SLt,
        BinOp::Sle => VBinOp::SLe,
        BinOp::LAnd | BinOp::LOr => unreachable!("lowered before mapping"),
    }
}

/// Storages an operation reads (unioned over all non-terminal
/// options), excluding the PC and instruction memory — the scoreboard
/// interlock's read set.
#[must_use]
pub fn storage_reads(machine: &Machine, op: &Operation) -> Vec<StorageId> {
    let mut out = Vec::new();
    for s in op.action.iter().chain(&op.side_effects) {
        s.walk_exprs(&mut |e| collect_reads(machine, e, &mut out));
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn collect_reads(machine: &Machine, e: &RExpr, out: &mut Vec<StorageId>) {
    match &e.kind {
        RExprKind::Storage(sid) | RExprKind::StorageIndexed(sid, _)
            if hazard_relevant(machine, *sid) =>
        {
            out.push(*sid);
        }
        RExprKind::Param(_) => {
            // Non-terminal values may read storages; the caller unions
            // over options via `nt_storage_reads`.
        }
        _ => {}
    }
}

/// Extends [`storage_reads`] with every non-terminal option's reads
/// for the operation's parameters.
#[must_use]
pub fn storage_reads_with_nts(machine: &Machine, op: &Operation) -> Vec<StorageId> {
    let mut out = storage_reads(machine, op);
    for p in &op.params {
        if let ParamType::NonTerminal(nt) = p.ty {
            for opt in &machine.nonterminals[nt.0].options {
                if let Some(v) = &opt.value {
                    v.walk(&mut |e| collect_reads(machine, e, &mut out));
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Storages an operation writes (unioned over options).
#[must_use]
pub fn storage_writes_with_nts(machine: &Machine, op: &Operation) -> Vec<StorageId> {
    let mut out = Vec::new();
    for s in op.action.iter().chain(&op.side_effects) {
        collect_stmt_writes(machine, s, op, &mut out);
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn collect_stmt_writes(machine: &Machine, s: &RStmt, op: &Operation, out: &mut Vec<StorageId>) {
    match s {
        RStmt::Assign { lv, .. } => collect_lv_writes(machine, lv, op, out),
        RStmt::If { then_body, else_body, .. } => {
            for s in then_body.iter().chain(else_body) {
                collect_stmt_writes(machine, s, op, out);
            }
        }
        RStmt::Let { .. } => {}
    }
}

fn collect_lv_writes(machine: &Machine, lv: &RLvalue, op: &Operation, out: &mut Vec<StorageId>) {
    match lv {
        RLvalue::Storage(sid) | RLvalue::StorageIndexed(sid, _) => {
            if hazard_relevant(machine, *sid) {
                out.push(*sid);
            }
        }
        RLvalue::Slice { base, .. } => collect_lv_writes(machine, base, op, out),
        RLvalue::Param(pi) => {
            if let ParamType::NonTerminal(nt) = op.params[*pi].ty {
                for opt in &machine.nonterminals[nt.0].options {
                    if let Some(inner) = &opt.value_lvalue {
                        collect_lv_writes(machine, inner, opt, out);
                    }
                }
            }
        }
    }
}

fn hazard_relevant(machine: &Machine, sid: StorageId) -> bool {
    !matches!(
        machine.storage(sid).kind,
        StorageKind::ProgramCounter | StorageKind::InstructionMemory
    )
}

/// A convenience: the maximum write-back latency in the machine.
#[must_use]
pub fn max_latency(machine: &Machine) -> u32 {
    machine.all_ops().map(|(_, o)| o.timing.latency).max().unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitv::BitVector;
    use isdl::samples::TOY;

    fn build_toy() -> (Machine, Datapath) {
        let m = isdl::load(TOY).expect("loads");
        let m2 = Box::leak(Box::new(m.clone()));
        let plan = Box::leak(Box::new(DecodePlan::new(m2)));
        let b = DatapathBuilder::new(plan, "instr", DecodeStyle::TwoLevel);
        let dp = b.build(&|r| format!("dec_f{}_o{}", r.field.0, r.op));
        (m, dp)
    }

    #[test]
    fn toy_extracts_adders_and_ports() {
        let (m, dp) = build_toy();
        // Adders: add, sub(+Z sides), mac's add, etc.
        let adders = dp.nodes.iter().filter(|n| n.share.class == ShareClass::AddSub).count();
        assert!(adders >= 4, "several adder/subtractor instances, got {adders}");
        let muls =
            dp.nodes.iter().filter(|n| n.share.class == ShareClass::Bin(VBinOp::Mul)).count();
        assert_eq!(muls, 1, "one multiplier (mac)");
        // Memory reads: DM ports from ld and the `ind` option.
        let dm = m.storage_by_name("DM").expect("DM").0;
        let dm_reads = dp.nodes.iter().filter(|n| n.share.class == ShareClass::MemRead(dm)).count();
        assert!(dm_reads >= 2, "ld and the ind addressing mode read DM");
        // Register-file reads are ports too.
        let rf = m.storage_by_name("RF").expect("RF").0;
        let rf_reads = dp.nodes.iter().filter(|n| n.share.class == ShareClass::MemRead(rf)).count();
        assert!(rf_reads > 5, "register file is read everywhere");
    }

    #[test]
    fn writes_cover_all_destinations() {
        let (m, dp) = build_toy();
        let rf = m.storage_by_name("RF").expect("RF").0;
        let pc = m.pc.expect("pc");
        assert!(dp.writes.iter().any(|w| w.sid == rf));
        assert!(dp.writes.iter().any(|w| w.sid == pc), "jmp writes the PC");
        // mac writes ACC with latency 2.
        let acc = m.storage_by_name("ACC").expect("ACC").0;
        assert!(dp.writes.iter().any(|w| w.sid == acc && w.latency == 2));
    }

    #[test]
    fn nt_options_produce_exclusive_owners() {
        let (_, dp) = build_toy();
        // The SRC non-terminal's DM read carries an option context.
        let with_ctx = dp.nodes.iter().filter(|n| !n.share.owner.nt_context.is_empty()).count();
        assert!(with_ctx > 0, "option-scoped nodes exist");
    }

    #[test]
    fn conditional_write_guard_includes_condition() {
        let (m, dp) = build_toy();
        let pc = m.pc.expect("pc");
        // jz writes PC under `ACC == 0`: its guard is an AND.
        let jz_pc_writes: Vec<_> = dp
            .writes
            .iter()
            .filter(|w| w.sid == pc && matches!(w.guard, VExpr::Binary(VBinOp::And, _, _)))
            .collect();
        assert!(!jz_pc_writes.is_empty(), "conditional PC write has a composed guard");
    }

    #[test]
    fn read_write_sets() {
        let m = isdl::load(TOY).expect("loads");
        let add = m.op(m.op_by_name("ALU", "add").expect("add"));
        let reads = storage_reads_with_nts(&m, add);
        let rf = m.storage_by_name("RF").expect("RF").0;
        let dm = m.storage_by_name("DM").expect("DM").0;
        assert!(reads.contains(&rf));
        assert!(reads.contains(&dm), "the ind option may read DM");
        let writes = storage_writes_with_nts(&m, add);
        assert!(writes.contains(&rf));
        let jmp = m.op(m.op_by_name("ALU", "jmp").expect("jmp"));
        assert!(storage_writes_with_nts(&m, jmp).is_empty(), "PC writes excluded");
    }

    #[test]
    fn max_latency_toy() {
        let m = isdl::load(TOY).expect("loads");
        assert_eq!(max_latency(&m), 2);
    }

    #[test]
    fn middle_end_runs_before_lowering() {
        let m = isdl::load(TOY).expect("loads");
        let m2 = Box::leak(Box::new(m));
        let plan = Box::leak(Box::new(DecodePlan::new(m2)));
        let dec = |r: OpRef| format!("dec_f{}_o{}", r.field.0, r.op);
        let opt = DatapathBuilder::new(plan, "instr", DecodeStyle::TwoLevel)
            .with_opt(isdl::opt::OptLevel::Aggressive)
            .build(&dec);
        let raw = DatapathBuilder::new(plan, "instr", DecodeStyle::TwoLevel)
            .with_opt(isdl::opt::OptLevel::None)
            .build(&dec);
        assert!(opt.opt_stats.nodes_before > 0, "the optimizer saw the RTL");
        assert_eq!(raw.opt_stats, isdl::opt::OptStats::default(), "level 0 reports no work");
        assert!(
            opt.nodes.len() <= raw.nodes.len(),
            "optimization never adds shareable nodes: {} vs {}",
            opt.nodes.len(),
            raw.nodes.len()
        );
    }

    #[test]
    fn no_dummy_operand_reaches_the_datapath() {
        // Write expansion used to thread a fake 1-bit zero through the
        // option mux; the sharing pass must only ever see real
        // operands.
        let (_, dp) = build_toy();
        let dummy = VExpr::Const(BitVector::from_u64(0, 1));
        for n in &dp.nodes {
            assert_ne!(n.a, dummy, "node operand is a placeholder");
            assert_ne!(n.b.as_ref(), Some(&dummy), "node operand is a placeholder");
        }
        for w in &dp.writes {
            assert_ne!(w.value, dummy, "write value is a placeholder");
        }
    }
}
