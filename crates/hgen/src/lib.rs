#![warn(missing_docs)]

//! HGEN: hardware synthesis from ISDL descriptions (§4 of the paper).
//!
//! Given a validated [`isdl::Machine`], HGEN produces a synthesizable
//! Verilog model of an implementation of the instruction set:
//!
//! * **decode logic** generated from the same operation signatures the
//!   disassembler uses — two-level literal ANDs per operation (§4.2);
//! * a **datapath** built from the operations' RTL, with non-terminal
//!   addressing modes expanded into decode-selected muxes;
//! * **resource sharing** by the paper's clique method (Figure 5):
//!   operator instances and memory ports that provably never operate
//!   simultaneously — same field, same non-terminal, or proven apart
//!   by the constraints / `archinfo` hints — collapse into one
//!   functional unit with guarded input muxes;
//! * **structural inference from costs and timing**: operations with
//!   latency *L* > 1 get *L−1* write-back pipeline stages plus a
//!   scoreboard interlock, mirroring the pipeline the paper infers
//!   from `Cycle`/`Stall`/`Latency`.
//!
//! The generated model is *itself a simulator* (the paper's §4.2
//! footnote): elaborate it with [`vlog::sim::NetlistSim`] and clock it
//! to execute programs — that is exactly how Table 1's
//! "synthesizable Verilog" row is produced, and how the test suite
//! proves the hardware bit-matches the XSIM instruction-level
//! simulator.
//!
//! # Examples
//!
//! ```
//! use hgen::{synthesize, HgenOptions};
//!
//! let machine = isdl::load(isdl::samples::ACC16)?;
//! let result = synthesize(&machine, HgenOptions::default())?;
//! assert!(result.verilog.contains("module acc16"));
//! println!(
//!     "cycle {:.1} ns, {} grid cells, {} lines of Verilog",
//!     result.report.cycle_ns, result.report.area_cells as u64, result.lines_of_verilog,
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod datapath;
pub mod decode;
pub mod emit;
pub mod share;
pub mod synth;
pub mod testbench;

pub use decode::DecodeStyle;
pub use emit::EmitStats;
pub use share::ShareOptions;
pub use synth::{synthesize, HgenOptions, HgenResult};
pub use testbench::{emit_testbench, TestbenchOptions};
