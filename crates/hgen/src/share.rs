//! The resource-sharing problem and its clique-based solution
//! (§4.1.1–§4.1.2, Figure 5 of the paper).
//!
//! Each expensive RTL operator instance (and each memory port) is a
//! *node*. The compatibility matrix `A` has `A[i][j] = 1` when nodes
//! `i` and `j` can share one piece of hardware — they never operate at
//! the same time. The rules:
//!
//! 1. nodes in the same operation cannot share (all of an operation's
//!    RTL evaluates in the same cycle; this subsumes the paper's
//!    "same RTL statement" rule for a single-issue-per-cycle datapath),
//!    *except* nodes belonging to different options of the same
//!    non-terminal parameter, which are mutually exclusive by decode;
//! 2. nodes performing different tasks cannot share; `add` and `sub`
//!    are subset-compatible and merge into one adder/subtractor;
//! 3. nodes of operations in the same field (or options of one
//!    non-terminal) can share — one field issues one operation;
//! 4. nodes of operations in different fields cannot share, unless the
//!    constraints (or an `archinfo` share hint) prove the operations
//!    never co-occur.
//!
//! Maximal cliques of the compatibility graph are found with
//! Bron–Kerbosch (with pivoting); a greedy cover then assigns each
//! node to one clique, and the datapath instantiates one functional
//! unit per clique.

use isdl::model::{CExpr, Constraint, Machine, OpRef};
use isdl::rtl::StorageId;
use vlog::ast::VBinOp;

/// The task class of a shareable node (rule 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShareClass {
    /// Adders and subtractors (subset-compatible).
    AddSub,
    /// Any other binary operator, shareable only with its own kind.
    Bin(VBinOp),
    /// A read port on an addressed storage.
    MemRead(StorageId),
    /// A write port on an addressed storage.
    MemWrite(StorageId),
}

/// Where a node comes from, for the exclusivity rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeOwner {
    /// The operation whose RTL contains the node.
    pub op: OpRef,
    /// Non-terminal option context: `(param_path_key, option_index)`
    /// per non-terminal level the node sits under. Two nodes of the
    /// same operation are mutually exclusive iff they disagree on the
    /// option of a common key.
    pub nt_context: Vec<(u32, usize)>,
}

impl NodeOwner {
    /// An owner with no non-terminal context.
    #[must_use]
    pub fn plain(op: OpRef) -> Self {
        Self { op, nt_context: Vec::new() }
    }

    fn exclusive_within_op(&self, other: &Self) -> bool {
        self.nt_context
            .iter()
            .any(|(k, o)| other.nt_context.iter().any(|(k2, o2)| k == k2 && o != o2))
    }
}

/// One shareable hardware node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareNode {
    /// The task class.
    pub class: ShareClass,
    /// Operand width in bits (units only merge at equal widths).
    pub width: u32,
    /// Origin.
    pub owner: NodeOwner,
}

/// Sharing configuration (the ablation knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareOptions {
    /// Master switch; off instantiates one unit per node.
    pub enabled: bool,
    /// Use the constraints section to prove cross-field exclusivity
    /// (rule 4's refinement).
    pub use_constraints: bool,
    /// Use `archinfo` share hints.
    pub use_hints: bool,
}

impl Default for ShareOptions {
    fn default() -> Self {
        Self { enabled: true, use_constraints: true, use_hints: true }
    }
}

/// The sharing result: a partition of the nodes into hardware units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharePlan {
    /// `groups[u]` = node indices implemented by unit `u`.
    pub groups: Vec<Vec<usize>>,
}

impl SharePlan {
    /// Number of hardware units instantiated.
    #[must_use]
    pub fn unit_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of units saved versus no sharing.
    #[must_use]
    pub fn units_saved(&self) -> usize {
        let nodes: usize = self.groups.iter().map(Vec::len).sum();
        nodes - self.groups.len()
    }
}

/// Computes the sharing plan for a set of nodes (Figure 5).
#[must_use]
pub fn plan(machine: &Machine, nodes: &[ShareNode], opts: ShareOptions) -> SharePlan {
    if !opts.enabled || nodes.is_empty() {
        return SharePlan { groups: (0..nodes.len()).map(|i| vec![i]).collect() };
    }
    let matrix = compatibility_matrix(machine, nodes, opts);
    let cliques = maximal_cliques(&matrix);
    SharePlan { groups: clique_cover(nodes.len(), cliques, &matrix) }
}

/// Builds the `n × n` compatibility matrix.
#[must_use]
pub fn compatibility_matrix(
    machine: &Machine,
    nodes: &[ShareNode],
    opts: ShareOptions,
) -> Vec<Vec<bool>> {
    let n = nodes.len();
    let mut m = vec![vec![false; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let ok = compatible(machine, &nodes[i], &nodes[j], opts);
            m[i][j] = ok;
            m[j][i] = ok;
        }
    }
    m
}

fn compatible(machine: &Machine, a: &ShareNode, b: &ShareNode, opts: ShareOptions) -> bool {
    // Rule 2: same task class and width.
    if a.class != b.class || a.width != b.width {
        return false;
    }
    if a.owner.op == b.owner.op {
        // Rule 1 (+ non-terminal refinement).
        return a.owner.exclusive_within_op(&b.owner);
    }
    // Rule 3: same field.
    if a.owner.op.field == b.owner.op.field {
        return true;
    }
    // Rule 4: different fields — only with proof of exclusivity.
    if opts.use_hints && hinted_together(machine, a.owner.op, b.owner.op) {
        return true;
    }
    if opts.use_constraints && constraints_exclude(machine, a.owner.op, b.owner.op) {
        return true;
    }
    false
}

/// Whether an `archinfo` share hint names both operations.
fn hinted_together(machine: &Machine, a: OpRef, b: OpRef) -> bool {
    machine.share_hints.iter().any(|h| h.ops.contains(&a) && h.ops.contains(&b))
}

/// Whether the constraints prove operations `a` and `b` can never be
/// selected in the same instruction.
#[must_use]
pub fn constraints_exclude(machine: &Machine, a: OpRef, b: OpRef) -> bool {
    // Fast path: a two-operation forbid naming exactly this pair.
    for c in &machine.constraints {
        if let Constraint::Forbid(ops) = c {
            if ops.len() == 2 && ops.contains(&a) && ops.contains(&b) {
                return true;
            }
        }
    }
    // General path: brute-force satisfiability over the fields any
    // constraint mentions (others pinned to an arbitrary op — their
    // value cannot matter to the mentioned constraints).
    let mut mentioned: Vec<usize> = vec![a.field.0, b.field.0];
    for c in &machine.constraints {
        collect_fields(c, &mut mentioned);
    }
    mentioned.sort_unstable();
    mentioned.dedup();
    let combos: u64 = mentioned.iter().map(|&f| machine.fields[f].ops.len() as u64).product();
    if combos > 65_536 {
        return false; // too large to prove; assume co-occurrence possible
    }
    let mut selection: Vec<usize> = machine.fields.iter().map(|_| 0).collect();
    !any_valid_selection(machine, &mentioned, 0, &mut selection, a, b)
}

fn collect_fields(c: &Constraint, out: &mut Vec<usize>) {
    match c {
        Constraint::Forbid(ops) => out.extend(ops.iter().map(|r| r.field.0)),
        Constraint::Assert(e) => collect_cexpr_fields(e, out),
    }
}

fn collect_cexpr_fields(e: &CExpr, out: &mut Vec<usize>) {
    match e {
        CExpr::Op(r) => out.push(r.field.0),
        CExpr::Not(x) => collect_cexpr_fields(x, out),
        CExpr::And(x, y) | CExpr::Or(x, y) => {
            collect_cexpr_fields(x, out);
            collect_cexpr_fields(y, out);
        }
    }
}

/// Depth-first search for a constraint-satisfying selection containing
/// both `a` and `b`.
fn any_valid_selection(
    machine: &Machine,
    mentioned: &[usize],
    depth: usize,
    selection: &mut Vec<usize>,
    a: OpRef,
    b: OpRef,
) -> bool {
    if depth == mentioned.len() {
        return machine.check_constraints(selection).is_none();
    }
    let f = mentioned[depth];
    if f == a.field.0 {
        selection[f] = a.op;
        return any_valid_selection(machine, mentioned, depth + 1, selection, a, b);
    }
    if f == b.field.0 {
        selection[f] = b.op;
        return any_valid_selection(machine, mentioned, depth + 1, selection, a, b);
    }
    for o in 0..machine.fields[f].ops.len() {
        selection[f] = o;
        if any_valid_selection(machine, mentioned, depth + 1, selection, a, b) {
            return true;
        }
    }
    false
}

/// Enumerates all maximal cliques with Bron–Kerbosch (pivoting on the
/// highest-degree vertex of `P ∪ X`).
#[must_use]
pub fn maximal_cliques(matrix: &[Vec<bool>]) -> Vec<Vec<usize>> {
    let n = matrix.len();
    let mut cliques = Vec::new();
    let mut r = Vec::new();
    let p: Vec<usize> = (0..n).collect();
    let x = Vec::new();
    bron_kerbosch(matrix, &mut r, p, x, &mut cliques);
    cliques
}

fn bron_kerbosch(
    m: &[Vec<bool>],
    r: &mut Vec<usize>,
    p: Vec<usize>,
    mut x: Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if p.is_empty() && x.is_empty() {
        out.push(r.clone());
        return;
    }
    // Pivot: vertex of P ∪ X with most neighbours in P.
    let pivot = p
        .iter()
        .chain(&x)
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&v| m[u][v]).count())
        .expect("P or X non-empty");
    let candidates: Vec<usize> = p.iter().copied().filter(|&v| !m[pivot][v]).collect();
    let mut p = p;
    for v in candidates {
        let p2: Vec<usize> = p.iter().copied().filter(|&u| m[v][u]).collect();
        let x2: Vec<usize> = x.iter().copied().filter(|&u| m[v][u]).collect();
        r.push(v);
        bron_kerbosch(m, r, p2, x2, out);
        r.pop();
        p.retain(|&u| u != v);
        x.push(v);
    }
}

/// Greedy clique cover: repeatedly take the largest clique restricted
/// to still-uncovered nodes.
fn clique_cover(n: usize, cliques: Vec<Vec<usize>>, matrix: &[Vec<bool>]) -> Vec<Vec<usize>> {
    let mut covered = vec![false; n];
    let mut groups = Vec::new();
    let remaining = cliques;
    loop {
        // Restrict cliques to uncovered nodes; keep them cliques (a
        // subset of a clique is a clique).
        let best = remaining
            .iter()
            .map(|c| c.iter().copied().filter(|&v| !covered[v]).collect::<Vec<_>>())
            .max_by_key(Vec::len)
            .unwrap_or_default();
        if best.is_empty() {
            break;
        }
        for &v in &best {
            covered[v] = true;
        }
        groups.push(best);
        if covered.iter().all(|&c| c) {
            break;
        }
    }
    // Any isolated leftovers (no cliques at all for them).
    for (v, &c) in covered.iter().enumerate() {
        if !c {
            groups.push(vec![v]);
        }
    }
    let _ = matrix;
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdl::model::FieldId;

    fn opref(f: usize, o: usize) -> OpRef {
        OpRef { field: FieldId(f), op: o }
    }

    fn node(class: ShareClass, width: u32, f: usize, o: usize) -> ShareNode {
        ShareNode { class, width, owner: NodeOwner::plain(opref(f, o)) }
    }

    fn toy() -> Machine {
        isdl::load(isdl::samples::TOY).expect("loads")
    }

    #[test]
    fn same_field_different_ops_share() {
        let m = toy();
        let nodes = vec![
            node(ShareClass::AddSub, 16, 0, 0), // ALU.add
            node(ShareClass::AddSub, 16, 0, 1), // ALU.sub
        ];
        let p = plan(&m, &nodes, ShareOptions::default());
        assert_eq!(p.unit_count(), 1, "add and sub merge into one adder");
        assert_eq!(p.units_saved(), 1);
    }

    #[test]
    fn same_op_nodes_do_not_share() {
        let m = toy();
        let nodes = vec![node(ShareClass::AddSub, 16, 0, 0), node(ShareClass::AddSub, 16, 0, 0)];
        let p = plan(&m, &nodes, ShareOptions::default());
        assert_eq!(p.unit_count(), 2);
    }

    #[test]
    fn different_class_or_width_do_not_share() {
        let m = toy();
        let nodes = vec![
            node(ShareClass::AddSub, 16, 0, 0),
            node(ShareClass::Bin(VBinOp::Mul), 16, 0, 1),
            node(ShareClass::AddSub, 8, 0, 2),
        ];
        let p = plan(&m, &nodes, ShareOptions::default());
        assert_eq!(p.unit_count(), 3);
    }

    #[test]
    fn cross_field_needs_constraint_proof() {
        let m = toy();
        // TOY forbids ALU.mac (field 0, op 9) with MOVE.mvacc (field 1,
        // op 1): their nodes may share.
        let mac = m.op_by_name("ALU", "mac").expect("mac");
        let mvacc = m.op_by_name("MOVE", "mvacc").expect("mvacc");
        let nodes = vec![
            ShareNode { class: ShareClass::AddSub, width: 16, owner: NodeOwner::plain(mac) },
            ShareNode { class: ShareClass::AddSub, width: 16, owner: NodeOwner::plain(mvacc) },
        ];
        let with = plan(&m, &nodes, ShareOptions::default());
        assert_eq!(with.unit_count(), 1, "constraint proves exclusivity");
        let without = plan(
            &m,
            &nodes,
            ShareOptions { use_constraints: false, use_hints: false, enabled: true },
        );
        assert_eq!(without.unit_count(), 2, "rule 4 alone forbids sharing");
    }

    #[test]
    fn cross_field_without_constraint_does_not_share() {
        let m = toy();
        let add = m.op_by_name("ALU", "add").expect("add");
        let mv = m.op_by_name("MOVE", "mv").expect("mv");
        let nodes = vec![
            ShareNode { class: ShareClass::AddSub, width: 16, owner: NodeOwner::plain(add) },
            ShareNode { class: ShareClass::AddSub, width: 16, owner: NodeOwner::plain(mv) },
        ];
        let p = plan(&m, &nodes, ShareOptions::default());
        assert_eq!(p.unit_count(), 2, "add and mv can co-occur");
    }

    #[test]
    fn nt_options_within_one_op_share() {
        let m = toy();
        let add = m.op_by_name("ALU", "add").expect("add");
        let mk = |option| ShareNode {
            class: ShareClass::MemRead(StorageId(1)),
            width: 16,
            owner: NodeOwner { op: add, nt_context: vec![(2, option)] },
        };
        let nodes = vec![mk(0), mk(1)];
        let p = plan(&m, &nodes, ShareOptions::default());
        assert_eq!(p.unit_count(), 1, "exclusive addressing modes share a port");
    }

    #[test]
    fn sharing_disabled_gives_one_unit_per_node() {
        let m = toy();
        let nodes = vec![
            node(ShareClass::AddSub, 16, 0, 0),
            node(ShareClass::AddSub, 16, 0, 1),
            node(ShareClass::AddSub, 16, 0, 2),
        ];
        let p = plan(&m, &nodes, ShareOptions { enabled: false, ..ShareOptions::default() });
        assert_eq!(p.unit_count(), 3);
        assert_eq!(p.units_saved(), 0);
    }

    #[test]
    fn bron_kerbosch_finds_triangle_and_edge() {
        // Graph: 0-1, 1-2, 0-2 (triangle), 3-4 (edge), 5 isolated.
        let n = 6;
        let mut m = vec![vec![false; n]; n];
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (3, 4)] {
            m[a][b] = true;
            m[b][a] = true;
        }
        let mut cliques = maximal_cliques(&m);
        for c in &mut cliques {
            c.sort_unstable();
        }
        cliques.sort();
        assert!(cliques.contains(&vec![0, 1, 2]));
        assert!(cliques.contains(&vec![3, 4]));
        assert!(cliques.contains(&vec![5]));
    }

    #[test]
    fn clique_cover_partitions_all_nodes() {
        let m = toy();
        // Seven nodes: 3 shareable ALU adders + mul + 2 cross-field.
        let nodes = vec![
            node(ShareClass::AddSub, 16, 0, 0),
            node(ShareClass::AddSub, 16, 0, 1),
            node(ShareClass::AddSub, 16, 0, 4),
            node(ShareClass::Bin(VBinOp::Mul), 16, 0, 9),
            node(ShareClass::AddSub, 16, 1, 0),
            node(ShareClass::AddSub, 16, 1, 1),
            node(ShareClass::Bin(VBinOp::Xor), 16, 0, 3),
        ];
        let p = plan(&m, &nodes, ShareOptions::default());
        let mut all: Vec<usize> = p.groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..nodes.len()).collect::<Vec<_>>(), "exact partition");
        // The three field-0 adders share; the two MOVE-field adders share.
        assert!(p.unit_count() <= 4);
    }
}
