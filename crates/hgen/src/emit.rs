//! Assembly of the synthesizable hardware model.
//!
//! Puts together everything HGEN derives from the description:
//!
//! * storage elements → registers and memories,
//! * instruction fetch (multi-word capable) and the generated decode
//!   lines (§4.2),
//! * the shared datapath — one functional unit per clique of the
//!   sharing plan, with guard-selected input muxes,
//! * write-back: register next-value muxes, clique-shared memory write
//!   ports, and latency pipelines for operations whose results arrive
//!   late,
//! * a storage-level scoreboard interlock that freezes the PC while an
//!   in-flight result is pending (the hardware counterpart of the
//!   simulator's statically derived stalls),
//! * next-PC logic honouring branch writes and multi-word sizes.
//!
//! The generated module is self-contained: clock in, `pc_out` out; the
//! test bench drives memories directly through the netlist simulator.

use crate::datapath::{
    max_latency, storage_reads_with_nts, storage_writes_with_nts, Datapath, DpNode, WriteReq,
};
use crate::decode::{DecodePlan, DecodeStyle};
use crate::share::{plan as share_plan, ShareClass, ShareNode, ShareOptions, SharePlan};
use isdl::model::{Machine, OpRef};
use isdl::rtl::StorageId;
use isdl::sema::ceil_log2;
use vlog::ast::{LValue, VBinOp, VExpr, VModule, VStmt, VUnOp};

/// Everything the emitter produces besides the module itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmitStats {
    /// Shareable datapath nodes extracted.
    pub nodes: usize,
    /// Functional units instantiated after sharing.
    pub units: usize,
    /// Units saved by sharing (nodes − units).
    pub units_saved: usize,
    /// RTL middle-end counters from the pre-lowering optimization.
    pub opt: isdl::opt::OptStats,
}

/// Emits the hardware model of `machine`.
///
/// # Panics
///
/// Panics only on invalid machines; [`isdl::load`] output is always
/// valid.
#[must_use]
pub fn emit(
    machine: &Machine,
    decode_style: DecodeStyle,
    share_opts: ShareOptions,
    pipeline: isdl::opt::Pipeline,
) -> (VModule, EmitStats) {
    let plan = DecodePlan::new(machine);
    let mut m = VModule::new(sanitize(&machine.name));

    // ---- storage ----
    let pc_id = machine.pc.expect("hardware generation needs a program counter");
    let imem_id = machine.imem.expect("hardware generation needs instruction memory");
    for s in &machine.storages {
        if s.kind.is_addressed() {
            m.add_memory(&s.name, s.width, s.cells());
        } else {
            m.add_reg(&s.name, s.width);
        }
    }
    let pc_name = machine.storage(pc_id).name.clone();
    let pc_w = machine.storage(pc_id).width;
    m.add_output("pc_out", pc_w);
    m.assign(LValue::net("pc_out"), VExpr::net(pc_name.clone()));

    // ---- fetch ----
    let wide = plan.wide_width;
    let imem_name = machine.storage(imem_id).name.clone();
    m.add_wire("instr", wide);
    let words = machine.max_op_size();
    let mut fetch_parts = Vec::new(); // most significant first
    for k in (0..words).rev() {
        let addr = if k == 0 {
            VExpr::net(pc_name.clone())
        } else {
            VExpr::binary(
                VBinOp::Add,
                VExpr::net(pc_name.clone()),
                VExpr::const_u64(u64::from(k), pc_w),
            )
        };
        fetch_parts.push(VExpr::Index(imem_name.clone(), Box::new(addr)));
    }
    let fetch = if fetch_parts.len() == 1 {
        fetch_parts.pop().expect("one word")
    } else {
        VExpr::Concat(fetch_parts)
    };
    m.assign(LValue::net("instr"), fetch);

    // ---- decode lines ----
    let dec_name = |r: OpRef| format!("dec_f{}_o{}", r.field.0, r.op);
    for (r, _) in machine.all_ops() {
        let name = dec_name(r);
        m.add_wire(&name, 1);
        let line = plan.decode_line(r, "instr", decode_style);
        m.assign(LValue::net(name), line);
    }

    // ---- datapath lowering ----
    let builder =
        crate::datapath::DatapathBuilder::new(&plan, "instr", decode_style).with_pipeline(pipeline);
    let dp = builder.build(&|r| dec_name(r));
    for (name, width, expr) in &dp.aux {
        m.add_wire(name, *width);
        m.assign(LValue::net(name.clone()), expr.clone());
    }

    // ---- scoreboard interlock ----
    let lat_max = max_latency(machine);
    let mut stall_terms: Vec<VExpr> = Vec::new();
    let mut busy_updates: Vec<VStmt> = Vec::new();
    if lat_max > 1 {
        // Which storages receive late results, and from which ops.
        let mut late: Vec<(StorageId, Vec<OpRef>, u32)> = Vec::new();
        for (r, op) in machine.all_ops() {
            if op.timing.latency > 1 {
                for sid in storage_writes_with_nts(machine, op) {
                    match late.iter_mut().find(|(s, _, _)| *s == sid) {
                        Some((_, ops, l)) => {
                            ops.push(r);
                            *l = (*l).max(op.timing.latency);
                        }
                        None => late.push((sid, vec![r], op.timing.latency)),
                    }
                }
            }
        }
        for (sid, writers, lat) in &late {
            let sname = &machine.storage(*sid).name;
            let ctr_w = ceil_log2(u64::from(*lat));
            let busy = format!("busy_{sname}");
            m.add_reg(&busy, ctr_w);
            // Ops touching this storage (reads or direct writes).
            let mut touch_terms: Vec<VExpr> = Vec::new();
            for (r, op) in machine.all_ops() {
                let touches = storage_reads_with_nts(machine, op).contains(sid)
                    || storage_writes_with_nts(machine, op).contains(sid);
                if touches {
                    touch_terms.push(VExpr::net(dec_name(r)));
                }
            }
            let touching = or_tree(touch_terms);
            let busy_nz = VExpr::unary(VUnOp::RedOr, VExpr::net(busy.clone()));
            stall_terms.push(VExpr::binary(VBinOp::And, touching, busy_nz));
            // Issue condition: a late writer decoded and not stalled.
            let issue = or_tree(writers.iter().map(|r| VExpr::net(dec_name(*r))).collect());
            let issue =
                VExpr::binary(VBinOp::And, issue, VExpr::unary(VUnOp::Not, VExpr::net("stall")));
            let dec = VExpr::cond(
                VExpr::unary(VUnOp::RedOr, VExpr::net(busy.clone())),
                VExpr::binary(VBinOp::Sub, VExpr::net(busy.clone()), VExpr::const_u64(1, ctr_w)),
                VExpr::const_u64(0, ctr_w),
            );
            busy_updates.push(VStmt::NonBlocking {
                lhs: LValue::net(busy.clone()),
                rhs: VExpr::cond(issue, VExpr::const_u64(u64::from(lat - 1), ctr_w), dec),
            });
        }
    }
    m.add_wire("stall", 1);
    m.assign(LValue::net("stall"), or_tree(stall_terms));

    // ---- functional units ----
    let share_nodes: Vec<ShareNode> = dp.nodes.iter().map(|n| n.share.clone()).collect();
    let splan: SharePlan = share_plan(machine, &share_nodes, share_opts);
    let stats = EmitStats {
        nodes: dp.nodes.len(),
        units: splan.unit_count(),
        units_saved: splan.units_saved(),
        opt: dp.opt_stats.clone(),
    };
    let mut emitter = UnitEmitter { m: &mut m, machine, aux: 0 };
    for (u, group) in splan.groups.iter().enumerate() {
        emitter.emit_unit(u, group, &dp.nodes);
    }

    // ---- write-back ----
    let mut ff: Vec<VStmt> = Vec::new();
    let mut wb = WritebackEmitter { m: &mut m, machine, dly: 0 };
    wb.emit_writeback(&dp, pc_id, &mut ff, share_opts);

    // ---- PC update ----
    let pc_writes: Vec<&WriteReq> = dp.writes.iter().filter(|w| w.sid == pc_id).collect();
    let pc_en = or_tree(pc_writes.iter().map(|w| w.guard.clone()).collect());
    let mut pc_val = VExpr::net(pc_name.clone());
    for w in &pc_writes {
        pc_val = VExpr::cond(w.guard.clone(), w.value.clone(), pc_val);
    }
    // Instruction size: decode-dependent for multi-word machines.
    let mut size_expr = VExpr::const_u64(1, pc_w);
    if words > 1 {
        for (r, op) in machine.all_ops() {
            if op.costs.size > 1 {
                size_expr = VExpr::cond(
                    VExpr::net(dec_name(r)),
                    VExpr::const_u64(u64::from(op.costs.size), pc_w),
                    size_expr,
                );
            }
        }
    }
    let seq_pc = VExpr::binary(VBinOp::Add, VExpr::net(pc_name.clone()), size_expr);
    let next_pc = VExpr::cond(
        VExpr::net("stall"),
        VExpr::net(pc_name.clone()),
        VExpr::cond(pc_en, pc_val, seq_pc),
    );
    ff.push(VStmt::NonBlocking { lhs: LValue::net(pc_name), rhs: next_pc });
    ff.extend(busy_updates);
    m.always_ff(ff);

    obs::log::event_with(obs::Level::Debug, "hgen.emit", "module", || {
        obs::Json::obj()
            .with("machine", machine.name.as_str())
            .with("nodes", stats.nodes)
            .with("units", stats.units)
            .with("units_saved", stats.units_saved)
    });
    (m, stats)
}

fn sanitize(name: &str) -> String {
    let s: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if s.is_empty() {
        "machine".to_owned()
    } else {
        s
    }
}

fn or_tree(terms: Vec<VExpr>) -> VExpr {
    let mut it = terms.into_iter();
    match it.next() {
        None => VExpr::const_u64(0, 1),
        Some(first) => it.fold(first, |acc, t| VExpr::binary(VBinOp::Or, acc, t)),
    }
}

struct UnitEmitter<'a, 'm> {
    m: &'a mut VModule,
    machine: &'m Machine,
    aux: usize,
}

impl UnitEmitter<'_, '_> {
    fn emit_unit(&mut self, u: usize, group: &[usize], nodes: &[DpNode]) {
        if group.len() == 1 {
            let i = group[0];
            let n = &nodes[i];
            let wire = DpNode::wire(i);
            self.m.add_wire(&wire, n.out_width);
            let expr = self.node_expr(n, n.a.clone(), n.b.clone());
            self.m.assign(LValue::net(wire), expr);
            return;
        }
        // Muxed inputs, one operator, fan the result out to members.
        let first = &nodes[group[0]];
        let in_w = first.a_width;
        let a_name = format!("u{u}_a");
        self.m.add_wire(&a_name, in_w);
        let mut a_mux = nodes[*group.last().expect("non-empty")].a.clone();
        for &i in group.iter().rev().skip(1) {
            a_mux = VExpr::cond(nodes[i].guard.clone(), nodes[i].a.clone(), a_mux);
        }
        self.m.assign(LValue::net(a_name.clone()), a_mux);
        let b_name = if first.b.is_some() {
            let name = format!("u{u}_b");
            self.m.add_wire(&name, in_w);
            let mut b_mux =
                nodes[*group.last().expect("non-empty")].b.clone().expect("class-consistent group");
            for &i in group.iter().rev().skip(1) {
                b_mux = VExpr::cond(
                    nodes[i].guard.clone(),
                    nodes[i].b.clone().expect("class-consistent group"),
                    b_mux,
                );
            }
            self.m.assign(LValue::net(name.clone()), b_mux);
            Some(name)
        } else {
            None
        };
        let y_name = format!("u{u}_y");
        self.m.add_wire(&y_name, first.out_width);
        let y = match first.share.class {
            ShareClass::AddSub => {
                // Mode selects subtraction when any subtract member is
                // active.
                let sub_guards: Vec<VExpr> = group
                    .iter()
                    .filter(|&&i| nodes[i].op == VBinOp::Sub)
                    .map(|&i| nodes[i].guard.clone())
                    .collect();
                let a = VExpr::net(a_name);
                let b = VExpr::net(b_name.expect("adders are binary"));
                if sub_guards.is_empty() {
                    VExpr::binary(VBinOp::Add, a, b)
                } else if sub_guards.len() == group.len() {
                    VExpr::binary(VBinOp::Sub, a, b)
                } else {
                    VExpr::cond(
                        or_tree(sub_guards),
                        VExpr::binary(VBinOp::Sub, a.clone(), b.clone()),
                        VExpr::binary(VBinOp::Add, a, b),
                    )
                }
            }
            ShareClass::Bin(op) => {
                VExpr::binary(op, VExpr::net(a_name), VExpr::net(b_name.expect("binary unit")))
            }
            ShareClass::MemRead(sid) => {
                let mem = self.machine.storage(sid).name.clone();
                VExpr::Index(mem, Box::new(VExpr::net(a_name)))
            }
            ShareClass::MemWrite(_) => unreachable!("write ports are emitted by write-back"),
        };
        self.m.assign(LValue::net(y_name.clone()), y);
        for &i in group {
            let wire = DpNode::wire(i);
            self.m.add_wire(&wire, nodes[i].out_width);
            self.m.assign(LValue::net(wire), VExpr::net(y_name.clone()));
        }
        self.aux += 1;
    }

    fn node_expr(&self, n: &DpNode, a: VExpr, b: Option<VExpr>) -> VExpr {
        match n.share.class {
            ShareClass::MemRead(sid) => {
                let mem = self.machine.storage(sid).name.clone();
                VExpr::Index(mem, Box::new(a))
            }
            _ => VExpr::binary(n.op, a, b.expect("binary node")),
        }
    }
}

struct WritebackEmitter<'a, 'm> {
    m: &'a mut VModule,
    machine: &'m Machine,
    dly: usize,
}

impl WritebackEmitter<'_, '_> {
    /// Emits all non-PC write-back logic into `ff`.
    fn emit_writeback(
        &mut self,
        dp: &Datapath,
        pc_id: StorageId,
        ff: &mut Vec<VStmt>,
        share_opts: ShareOptions,
    ) {
        // Delayed writes become pipelined requests; direct ones pass
        // through. Process per storage.
        let mut per_storage: Vec<(StorageId, Vec<WriteReq>)> = Vec::new();
        for w in &dp.writes {
            if w.sid == pc_id {
                continue; // PC handled by next-PC logic
            }
            let w = if w.latency > 1 { self.pipeline(w, ff) } else { w.clone() };
            match per_storage.iter_mut().find(|(s, _)| *s == w.sid) {
                Some((_, v)) => v.push(w),
                None => per_storage.push((w.sid, vec![w])),
            }
        }
        for (sid, mut reqs) in per_storage {
            // Delayed write-backs first (lower priority), then program
            // order.
            reqs.sort_by_key(|w| w.order);
            let st = self.machine.storage(sid);
            if st.kind.is_addressed() {
                self.emit_mem_ports(sid, &reqs, ff, share_opts);
            } else {
                self.emit_reg_writeback(sid, &reqs, ff);
            }
        }
    }

    /// Routes a late write through `latency - 1` register stages;
    /// returns the request as seen at the pipe's output.
    fn pipeline(&mut self, w: &WriteReq, ff: &mut Vec<VStmt>) -> WriteReq {
        let stages = w.latency - 1;
        let j = self.dly;
        self.dly += 1;
        let vw = w.hi - w.lo + 1;
        let mut g_prev = VExpr::binary(
            VBinOp::And,
            w.guard.clone(),
            VExpr::unary(VUnOp::Not, VExpr::net("stall")),
        );
        let mut v_prev = w.value.clone();
        let mut a_prev = w.addr.clone();
        for s in 1..=stages {
            let g_name = format!("dly{j}_g{s}");
            let v_name = format!("dly{j}_v{s}");
            self.m.add_reg(&g_name, 1);
            self.m.add_reg(&v_name, vw);
            ff.push(VStmt::NonBlocking { lhs: LValue::net(g_name.clone()), rhs: g_prev });
            ff.push(VStmt::NonBlocking { lhs: LValue::net(v_name.clone()), rhs: v_prev });
            g_prev = VExpr::net(g_name);
            v_prev = VExpr::net(v_name);
            if let Some(a) = a_prev {
                let a_name = format!("dly{j}_a{s}");
                let aw = ceil_log2(self.machine.storage(w.sid).cells());
                self.m.add_reg(&a_name, aw);
                ff.push(VStmt::NonBlocking { lhs: LValue::net(a_name.clone()), rhs: a });
                a_prev = Some(VExpr::net(a_name));
            }
        }
        WriteReq {
            sid: w.sid,
            addr: a_prev,
            hi: w.hi,
            lo: w.lo,
            value: v_prev,
            guard: g_prev,
            // In-flight results complete even while stalled; the guard
            // already went through the pipe, so latency is now 1 and
            // the write is unconditional on stall.
            latency: 0,
            order: 0, // delayed writes lose conflicts to direct ones
            owner: w.owner.clone(),
        }
    }

    fn emit_reg_writeback(&mut self, sid: StorageId, reqs: &[WriteReq], ff: &mut Vec<VStmt>) {
        let st = self.machine.storage(sid);
        let name = st.name.clone();
        let w = st.width;
        let mut next = VExpr::net(name.clone());
        for r in reqs {
            let full = self.full_width_value(&name, None, w, r);
            let guard = self.effective_guard(r);
            next = VExpr::cond(guard, full, next);
        }
        ff.push(VStmt::NonBlocking { lhs: LValue::net(name), rhs: next });
    }

    fn emit_mem_ports(
        &mut self,
        sid: StorageId,
        reqs: &[WriteReq],
        ff: &mut Vec<VStmt>,
        share_opts: ShareOptions,
    ) {
        let st = self.machine.storage(sid);
        let aw = ceil_log2(st.cells());
        // Group requests into ports by mutual exclusivity.
        let nodes: Vec<ShareNode> = reqs
            .iter()
            .map(|r| ShareNode {
                class: ShareClass::MemWrite(sid),
                width: st.width,
                owner: r.owner.clone(),
            })
            .collect();
        let splan = share_plan(self.machine, &nodes, share_opts);
        for (p, group) in splan.groups.iter().enumerate() {
            let en_name = format!("wp_{}_{}_en", st.name, p);
            let addr_name = format!("wp_{}_{}_addr", st.name, p);
            let data_name = format!("wp_{}_{}_data", st.name, p);
            self.m.add_wire(&en_name, 1);
            self.m.add_wire(&addr_name, aw);
            self.m.add_wire(&data_name, st.width);
            let members: Vec<&WriteReq> = group.iter().map(|&i| &reqs[i]).collect();
            let en = or_tree(members.iter().map(|r| self.effective_guard(r)).collect());
            self.m.assign(LValue::net(en_name.clone()), en);
            let last = members.last().expect("non-empty port group");
            let mut addr_mux = last.addr.clone().expect("memory writes are addressed");
            let mut data_mux = self.full_width_value(&st.name, last.addr.clone(), st.width, last);
            for r in members.iter().rev().skip(1) {
                let g = self.effective_guard(r);
                addr_mux = VExpr::cond(g.clone(), r.addr.clone().expect("addressed"), addr_mux);
                data_mux = VExpr::cond(
                    g,
                    self.full_width_value(&st.name, r.addr.clone(), st.width, r),
                    data_mux,
                );
            }
            self.m.assign(LValue::net(addr_name.clone()), addr_mux);
            self.m.assign(LValue::net(data_name.clone()), data_mux);
            ff.push(VStmt::If {
                cond: VExpr::net(en_name),
                then_body: vec![VStmt::NonBlocking {
                    lhs: LValue::Index(st.name.clone(), VExpr::net(addr_name)),
                    rhs: VExpr::net(data_name),
                }],
                else_body: vec![],
            });
        }
    }

    /// Direct (latency-1) writes are gated by `!stall`; pipelined ones
    /// already were at pipe entry.
    fn effective_guard(&self, r: &WriteReq) -> VExpr {
        if r.latency == 0 {
            r.guard.clone()
        } else {
            VExpr::binary(
                VBinOp::And,
                r.guard.clone(),
                VExpr::unary(VUnOp::Not, VExpr::net("stall")),
            )
        }
    }

    /// Expands a partial (bit-slice) write into a full-width value via
    /// read-modify-write on the old contents.
    fn full_width_value(
        &mut self,
        target: &str,
        addr: Option<VExpr>,
        width: u32,
        r: &WriteReq,
    ) -> VExpr {
        if r.lo == 0 && r.hi == width - 1 {
            return r.value.clone();
        }
        // Old value: register name, or a materialised memory read.
        let old_net = match addr {
            None => target.to_owned(),
            Some(a) => {
                let name = format!("rmw_{}_{}", target, self.dly);
                self.dly += 1;
                self.m.add_wire(&name, width);
                self.m.assign(
                    LValue::net(name.clone()),
                    VExpr::Index(target.to_owned(), Box::new(a)),
                );
                name
            }
        };
        let mut parts = Vec::new();
        if r.hi < width - 1 {
            parts.push(VExpr::Slice(old_net.clone(), width - 1, r.hi + 1));
        }
        parts.push(r.value.clone());
        if r.lo > 0 {
            parts.push(VExpr::Slice(old_net, r.lo - 1, 0));
        }
        if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            VExpr::Concat(parts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdl::samples::{ACC16, TOY};
    use vlog::netlist::Netlist;

    #[test]
    fn toy_module_elaborates() {
        let m = isdl::load(TOY).expect("loads");
        let (module, stats) = emit(
            &m,
            DecodeStyle::TwoLevel,
            ShareOptions::default(),
            isdl::opt::Pipeline::for_level(isdl::opt::OptLevel::default()),
        );
        assert!(stats.nodes > 0);
        assert!(stats.units <= stats.nodes);
        let nl = Netlist::elaborate(&module);
        assert!(nl.is_ok(), "elaboration failed: {:?}", nl.err());
    }

    #[test]
    fn acc16_module_elaborates() {
        let m = isdl::load(ACC16).expect("loads");
        let (module, _) = emit(
            &m,
            DecodeStyle::TwoLevel,
            ShareOptions::default(),
            isdl::opt::Pipeline::for_level(isdl::opt::OptLevel::default()),
        );
        let nl = Netlist::elaborate(&module);
        assert!(nl.is_ok(), "elaboration failed: {:?}", nl.err());
        let text = module.to_verilog();
        assert!(text.contains("module acc16"));
        assert!(text.contains("always @(posedge clk)"));
    }

    #[test]
    fn sharing_reduces_units() {
        let m = isdl::load(TOY).expect("loads");
        let (_, with) = emit(
            &m,
            DecodeStyle::TwoLevel,
            ShareOptions::default(),
            isdl::opt::Pipeline::for_level(isdl::opt::OptLevel::default()),
        );
        let (_, without) = emit(
            &m,
            DecodeStyle::TwoLevel,
            ShareOptions { enabled: false, ..ShareOptions::default() },
            isdl::opt::Pipeline::for_level(isdl::opt::OptLevel::default()),
        );
        assert!(with.units < without.units, "{} !< {}", with.units, without.units);
        assert_eq!(without.units_saved, 0);
    }
}
