//! Wall-clock deadlines for candidate evaluations.
//!
//! Fuel budgets ([`crate::SimBudget`]) bound simulated *work*, but a
//! pathological candidate can burn unbounded wall-clock time per unit
//! of work (a huge machine description, a degenerate netlist check) and
//! stall a worker indefinitely. A [`Deadline`] bounds wall-clock time
//! instead: a single process-wide watchdog thread arms a timer per
//! evaluation and raises a shared [`AtomicBool`] when it expires. The
//! evaluation pipeline checks the flag cooperatively — on entry to
//! every stage and on the simulator fuel path
//! ([`gensim::Xsim::set_cancel`]) — and surfaces expiry as the
//! *transient* [`crate::EvalError::DeadlineExceeded`], so a slow
//! candidate is skipped for this run but never poisoned in the cache
//! or journal.
//!
//! The watchdog never interrupts anything: cancellation is entirely
//! cooperative and lands on clean instruction/stage boundaries, which
//! is what keeps a deadline-armed run safe to resume and re-evaluate.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A pending timer in the watchdog's heap, ordered soonest-first.
struct Armed {
    fire_at: Instant,
    flag: Arc<AtomicBool>,
}

impl PartialEq for Armed {
    fn eq(&self, other: &Self) -> bool {
        self.fire_at == other.fire_at
    }
}
impl Eq for Armed {}
impl PartialOrd for Armed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Armed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the soonest timer
        // on top.
        other.fire_at.cmp(&self.fire_at)
    }
}

/// The process-wide watchdog: one thread, a heap of pending timers.
fn watchdog() -> &'static Sender<Armed> {
    static TX: OnceLock<Sender<Armed>> = OnceLock::new();
    TX.get_or_init(|| {
        let (tx, rx) = mpsc::channel::<Armed>();
        std::thread::Builder::new()
            .name("archex-watchdog".into())
            .spawn(move || {
                let mut heap: BinaryHeap<Armed> = BinaryHeap::new();
                loop {
                    // Fire everything due, then sleep until the next
                    // timer (or indefinitely when the heap is empty).
                    let now = Instant::now();
                    while heap.peek().is_some_and(|a| a.fire_at <= now) {
                        let armed = heap.pop().expect("peeked");
                        armed.flag.store(true, Ordering::Relaxed);
                    }
                    let wait = heap
                        .peek()
                        .map(|a| a.fire_at.saturating_duration_since(now))
                        .unwrap_or(Duration::from_secs(3600));
                    match rx.recv_timeout(wait) {
                        Ok(armed) => heap.push(armed),
                        Err(RecvTimeoutError::Timeout) => {}
                        // Every sender dropped: the process is exiting.
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
            })
            .expect("spawn watchdog thread");
        tx
    })
}

/// A wall-clock deadline for one evaluation, armed on the process-wide
/// watchdog thread. Cheap to clone (the clones share the flag); cheap
/// to drop (a timer that fires after its evaluation finished sets a
/// flag nobody reads).
#[derive(Debug, Clone)]
pub struct Deadline {
    flag: Arc<AtomicBool>,
    started: Instant,
    limit: Duration,
}

impl Deadline {
    /// Arms a deadline `limit` from now. The returned handle's flag
    /// flips to `true` once `limit` elapses.
    #[must_use]
    pub fn arm(limit: Duration) -> Self {
        let flag = Arc::new(AtomicBool::new(false));
        let started = Instant::now();
        // A full channel cannot happen (unbounded); a dead watchdog
        // thread only occurs during process teardown, where losing the
        // timer is harmless.
        let _ = watchdog().send(Armed { fire_at: started + limit, flag: Arc::clone(&flag) });
        Self { flag, started, limit }
    }

    /// The shared cancellation flag, for handing to
    /// [`gensim::Xsim::set_cancel`].
    #[must_use]
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }

    /// Whether the deadline has fired.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Milliseconds elapsed since the deadline was armed.
    #[must_use]
    pub fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The configured limit.
    #[must_use]
    pub fn limit(&self) -> Duration {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes watchdog self-tests: each asserts on wall-clock
    /// timing and a loaded machine skews a sibling's measurements.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn deadline_fires_after_its_limit() {
        let _guard = TEST_LOCK.lock().expect("test lock");
        let d = Deadline::arm(Duration::from_millis(30));
        assert!(!d.expired(), "fresh deadline must not have fired");
        let start = Instant::now();
        while !d.expired() {
            assert!(start.elapsed() < Duration::from_secs(5), "watchdog never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(d.elapsed_ms() >= 25, "fired early: {}ms", d.elapsed_ms());
    }

    #[test]
    fn timers_fire_independently_and_in_any_arm_order() {
        let _guard = TEST_LOCK.lock().expect("test lock");
        let slow = Deadline::arm(Duration::from_secs(600));
        let fast = Deadline::arm(Duration::from_millis(20));
        let start = Instant::now();
        while !fast.expired() {
            assert!(start.elapsed() < Duration::from_secs(5), "fast timer never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!slow.expired(), "10-minute timer fired within the test");
    }
}
