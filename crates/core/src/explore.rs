//! Architecture exploration by iterative improvement (Figure 1).
//!
//! Starting from a candidate description, the explorer evaluates it,
//! derives improvement *mutations* from the measured utilization
//! statistics, evaluates every feasible neighbour, keeps the best
//! improving one, and repeats until no mutation helps — the paper's
//! "process repeated until no further improvements can be made".
//!
//! The mutation set reflects what the single-description methodology
//! makes cheap (§4.1: "the granularity at which changes can be made is
//! much finer"):
//!
//! * **remove an unused operation** — decode logic and its datapath
//!   nodes disappear;
//! * **remove an idle field** — a whole issue slot and its units go;
//! * **add a `forbid` constraint** between operations the workload
//!   never issues together — the constraint *proves* exclusivity to
//!   the resource-sharing pass, shrinking the datapath at zero
//!   performance cost (§4.1.2's rule-4 refinement in action).

use crate::compiler::Kernel;
use crate::eval::{evaluate, EvalError, Evaluation, Metrics};
use hgen::HgenOptions;
use isdl::model::{Constraint, FieldId, Machine, NtId, OpRef};

/// Relative weights of the objective (log-space weighted sum, lower is
/// better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objective {
    /// Weight of workload runtime.
    pub runtime: f64,
    /// Weight of die size.
    pub area: f64,
    /// Weight of power.
    pub power: f64,
}

impl Default for Objective {
    fn default() -> Self {
        Self { runtime: 1.0, area: 1.0, power: 0.25 }
    }
}

impl Objective {
    /// The candidate's score — a weighted geometric mean in log space,
    /// so a 10% runtime win trades transparently against a 10% area
    /// win.
    #[must_use]
    pub fn score(&self, m: &Metrics) -> f64 {
        self.runtime * m.runtime_us.max(1e-9).ln()
            + self.area * m.area_cells.max(1e-9).ln()
            + self.power * m.power_mw.max(1e-9).ln()
    }
}

/// A candidate-to-candidate edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Drop one operation from its field.
    RemoveOp(OpRef),
    /// Drop a whole field.
    RemoveField(FieldId),
    /// Add `forbid a, b` so the sharing pass may merge their hardware.
    ForbidPair(OpRef, OpRef),
    /// Drop an unused addressing-mode option from a non-terminal —
    /// its decode lines, value mux arm, and memory port disappear.
    RemoveNtOption(NtId, usize),
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RemoveOp(r) => write!(f, "remove op {r}"),
            Self::RemoveField(fid) => write!(f, "remove field #{}", fid.0),
            Self::ForbidPair(a, b) => write!(f, "forbid {a} with {b}"),
            Self::RemoveNtOption(nt, o) => write!(f, "remove option #{o} of nt#{}", nt.0),
        }
    }
}

/// Applies a mutation, returning the edited machine (or `None` when
/// the edit is structurally impossible).
#[must_use]
pub fn apply_mutation(machine: &Machine, m: &Mutation) -> Option<Machine> {
    let mut out = machine.clone();
    match m {
        Mutation::RemoveOp(r) => {
            let field = out.fields.get_mut(r.field.0)?;
            if r.op >= field.ops.len() || field.ops.len() == 1 {
                return None;
            }
            // Never remove the nop — the assembler default needs it.
            if field.nop == Some(r.op) {
                return None;
            }
            field.ops.remove(r.op);
            if let Some(n) = field.nop {
                if n > r.op {
                    field.nop = Some(n - 1);
                }
            }
            remap_op_refs(&mut out, |x| {
                if x.field == r.field {
                    match x.op.cmp(&r.op) {
                        std::cmp::Ordering::Less => Some(x),
                        std::cmp::Ordering::Equal => None,
                        std::cmp::Ordering::Greater => Some(OpRef { field: x.field, op: x.op - 1 }),
                    }
                } else {
                    Some(x)
                }
            });
            Some(out)
        }
        Mutation::RemoveField(fid) => {
            if out.fields.len() <= 1 || fid.0 >= out.fields.len() {
                return None;
            }
            out.fields.remove(fid.0);
            remap_op_refs(&mut out, |x| {
                use std::cmp::Ordering::*;
                match x.field.0.cmp(&fid.0) {
                    Less => Some(x),
                    Equal => None,
                    Greater => Some(OpRef { field: FieldId(x.field.0 - 1), op: x.op }),
                }
            });
            Some(out)
        }
        Mutation::ForbidPair(a, b) => {
            if a.field == b.field {
                return None; // already exclusive
            }
            let c = Constraint::Forbid(vec![*a, *b]);
            if out.constraints.contains(&c) {
                return None;
            }
            out.constraints.push(c);
            Some(out)
        }
        Mutation::RemoveNtOption(nt, option) => {
            let ntd = out.nonterminals.get_mut(nt.0)?;
            if *option >= ntd.options.len() || ntd.options.len() <= 1 {
                return None;
            }
            ntd.options.remove(*option);
            Some(out)
        }
    }
}

/// Rewrites every [`OpRef`] in constraints and share hints; entries
/// whose mapping returns `None` are dropped.
fn remap_op_refs(machine: &mut Machine, f: impl Fn(OpRef) -> Option<OpRef>) {
    machine.constraints.retain_mut(|c| match c {
        Constraint::Forbid(ops) => {
            let mapped: Option<Vec<OpRef>> = ops.iter().map(|&r| f(r)).collect();
            match mapped {
                Some(v) => {
                    *ops = v;
                    true
                }
                None => false,
            }
        }
        // General assertions over a removed op become stale; drop them.
        Constraint::Assert(e) => cexpr_ops(e).iter().all(|&r| f(r).is_some()),
    });
    // Remap the surviving assert expressions and hints.
    for c in &mut machine.constraints {
        if let Constraint::Assert(e) = c {
            remap_cexpr(e, &f);
        }
    }
    machine.share_hints.retain_mut(|h| {
        let mapped: Option<Vec<OpRef>> = h.ops.iter().map(|&r| f(r)).collect();
        match mapped {
            Some(v) if v.len() >= 2 => {
                h.ops = v;
                true
            }
            _ => false,
        }
    });
}

fn cexpr_ops(e: &isdl::model::CExpr) -> Vec<OpRef> {
    use isdl::model::CExpr::*;
    match e {
        Op(r) => vec![*r],
        Not(x) => cexpr_ops(x),
        And(a, b) | Or(a, b) => {
            let mut v = cexpr_ops(a);
            v.extend(cexpr_ops(b));
            v
        }
    }
}

fn remap_cexpr(e: &mut isdl::model::CExpr, f: &impl Fn(OpRef) -> Option<OpRef>) {
    use isdl::model::CExpr::*;
    match e {
        Op(r) => {
            if let Some(n) = f(*r) {
                *r = n;
            }
        }
        Not(x) => remap_cexpr(x, f),
        And(a, b) | Or(a, b) => {
            remap_cexpr(a, f);
            remap_cexpr(b, f);
        }
    }
}

/// One accepted step of the exploration.
#[derive(Debug, Clone)]
pub struct Step {
    /// What was changed ("initial" for the starting point).
    pub action: String,
    /// The measurements after the change.
    pub metrics: Metrics,
    /// The objective score (lower is better).
    pub score: f64,
}

/// The exploration result.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Accepted steps, starting with the initial evaluation.
    pub steps: Vec<Step>,
    /// The best machine found.
    pub machine: Machine,
    /// Total candidates evaluated (accepted + rejected).
    pub candidates_evaluated: usize,
}

/// How the candidate space is searched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Steepest-descent hill climbing: evaluate every neighbour, take
    /// the best improving one (the paper's "iterative improvement").
    Greedy,
    /// Beam search: carry the `width` best candidates forward each
    /// round, which can climb out of single-mutation dead ends at the
    /// cost of proportionally more evaluations.
    Beam {
        /// Number of candidates kept per round (≥ 1).
        width: usize,
    },
}

/// The exploration driver.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Objective weights.
    pub objective: Objective,
    /// HGEN configuration used for every evaluation.
    pub hgen: HgenOptions,
    /// Maximum accepted improvement steps (rounds, for beam search).
    pub max_steps: usize,
    /// Search strategy.
    pub strategy: Strategy,
}

impl Default for Explorer {
    fn default() -> Self {
        Self {
            objective: Objective::default(),
            hgen: HgenOptions::default(),
            max_steps: 16,
            strategy: Strategy::Greedy,
        }
    }
}

impl Explorer {
    /// Runs exploration from `start` over `kernels`.
    ///
    /// # Errors
    ///
    /// Fails only if the *starting* candidate cannot be evaluated;
    /// infeasible neighbours are skipped silently.
    pub fn run(&self, start: &Machine, kernels: &[Kernel]) -> Result<Trace, EvalError> {
        match self.strategy {
            Strategy::Greedy => self.run_greedy(start, kernels),
            Strategy::Beam { width } => self.run_beam(start, kernels, width.max(1)),
        }
    }

    fn run_greedy(&self, start: &Machine, kernels: &[Kernel]) -> Result<Trace, EvalError> {
        let mut current = start.clone();
        let mut current_eval = evaluate(&current, kernels, self.hgen)?;
        let mut score = self.objective.score(&current_eval.metrics);
        let mut steps = vec![Step {
            action: "initial".to_owned(),
            metrics: current_eval.metrics.clone(),
            score,
        }];
        let mut evaluated = 1;

        for _ in 0..self.max_steps {
            let mutations = self.propose(&current, &current_eval);
            let mut best: Option<(Mutation, Machine, Evaluation, f64)> = None;
            for m in mutations {
                let Some(candidate) = apply_mutation(&current, &m) else {
                    continue;
                };
                let Ok(ev) = evaluate(&candidate, kernels, self.hgen) else {
                    continue;
                };
                evaluated += 1;
                let s = self.objective.score(&ev.metrics);
                if s < score - 1e-9 && best.as_ref().is_none_or(|(_, _, _, bs)| s < *bs) {
                    best = Some((m, candidate, ev, s));
                }
            }
            match best {
                Some((m, machine, ev, s)) => {
                    steps.push(Step { action: m.to_string(), metrics: ev.metrics.clone(), score: s });
                    current = machine;
                    current_eval = ev;
                    score = s;
                }
                None => break,
            }
        }
        Ok(Trace { steps, machine: current, candidates_evaluated: evaluated })
    }

    fn run_beam(
        &self,
        start: &Machine,
        kernels: &[Kernel],
        width: usize,
    ) -> Result<Trace, EvalError> {
        let initial_eval = evaluate(start, kernels, self.hgen)?;
        let initial_score = self.objective.score(&initial_eval.metrics);
        let mut steps = vec![Step {
            action: "initial".to_owned(),
            metrics: initial_eval.metrics.clone(),
            score: initial_score,
        }];
        let mut evaluated = 1usize;
        // (machine, eval, score, action that produced it)
        let mut beam = vec![(start.clone(), initial_eval, initial_score, String::new())];
        let mut best = 0usize; // index into beam of the overall best

        for _ in 0..self.max_steps {
            let mut frontier: Vec<(Machine, Evaluation, f64, String)> = Vec::new();
            for (machine, ev, _, _) in &beam {
                for m in self.propose(machine, ev) {
                    let Some(candidate) = apply_mutation(machine, &m) else {
                        continue;
                    };
                    let Ok(cev) = evaluate(&candidate, kernels, self.hgen) else {
                        continue;
                    };
                    evaluated += 1;
                    let s = self.objective.score(&cev.metrics);
                    frontier.push((candidate, cev, s, m.to_string()));
                }
            }
            if frontier.is_empty() {
                break;
            }
            frontier.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
            frontier.truncate(width);
            let round_best = frontier[0].2;
            let current_best = beam[best].2;
            beam = frontier;
            best = 0;
            if round_best < current_best - 1e-9 {
                steps.push(Step {
                    action: beam[0].3.clone(),
                    metrics: beam[0].1.metrics.clone(),
                    score: round_best,
                });
            } else {
                break;
            }
        }
        let (machine, _, _, _) = beam.swap_remove(best);
        Ok(Trace { steps, machine, candidates_evaluated: evaluated })
    }

    /// Proposes mutations guided by the utilization statistics.
    fn propose(&self, machine: &Machine, ev: &Evaluation) -> Vec<Mutation> {
        let mut out = Vec::new();
        // Aggregate dynamic counts.
        let mut counts = std::collections::HashMap::new();
        let mut instructions = 0u64;
        let mut field_busy = vec![0u64; machine.fields.len()];
        for run in &ev.kernel_stats {
            instructions += run.stats.instructions;
            for (&r, &n) in &run.op_counts {
                *counts.entry(r).or_insert(0u64) += n;
            }
            for (i, &b) in run.stats.field_busy.iter().enumerate() {
                if i < field_busy.len() {
                    field_busy[i] += b;
                }
            }
        }
        // Unused operations (never selected, or only as implicit nops).
        for (r, op) in machine.all_ops() {
            let used = counts.get(&r).copied().unwrap_or(0);
            let is_nop = machine.fields[r.field.0].nop == Some(r.op);
            if used == 0 && !is_nop {
                let _ = op;
                out.push(Mutation::RemoveOp(r));
            }
        }
        // Idle fields.
        for (fi, &busy) in field_busy.iter().enumerate() {
            if busy == 0 && machine.fields.len() > 1 {
                out.push(Mutation::RemoveField(FieldId(fi)));
            }
        }
        // Unused non-terminal options (addressing modes the workload
        // never exercises).
        let mut nt_used = std::collections::HashMap::new();
        for run in &ev.kernel_stats {
            for (&k, &n) in &run.nt_option_counts {
                *nt_used.entry(k).or_insert(0u64) += n;
            }
        }
        for (ni, nt) in machine.nonterminals.iter().enumerate() {
            if nt.options.len() < 2 {
                continue;
            }
            for oi in 0..nt.options.len() {
                if nt_used.get(&(NtId(ni), oi)).copied().unwrap_or(0) == 0 {
                    out.push(Mutation::RemoveNtOption(NtId(ni), oi));
                }
            }
        }
        // Forbid pairs of *used* cross-field operations that the
        // workload never co-issues (our code generator never co-issues
        // anything, so any used pair qualifies; keep the list small by
        // pairing the busiest ops first).
        let mut used: Vec<(OpRef, u64)> = counts
            .iter()
            .filter(|(r, &n)| n > 0 && machine.fields[r.field.0].nop != Some(r.op))
            .map(|(&r, &n)| (r, n))
            .collect();
        used.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        used.truncate(6);
        for (i, &(a, _)) in used.iter().enumerate() {
            for &(b, _) in &used[i + 1..] {
                if a.field != b.field {
                    out.push(Mutation::ForbidPair(a, b));
                }
            }
        }
        let _ = instructions;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    fn toy() -> Machine {
        isdl::load(isdl::samples::TOY).expect("loads")
    }

    #[test]
    fn remove_op_remaps_references() {
        let m = toy();
        let ld = m.op_by_name("ALU", "ld").expect("ld");
        let out = apply_mutation(&m, &Mutation::RemoveOp(ld)).expect("applies");
        assert_eq!(out.fields[0].ops.len(), m.fields[0].ops.len() - 1);
        // The mac/mvacc constraint survives with shifted indices.
        assert_eq!(out.constraints.len(), 1);
        let mac = out.op_by_name("ALU", "mac").expect("mac survives");
        match &out.constraints[0] {
            Constraint::Forbid(ops) => assert!(ops.contains(&mac)),
            other => panic!("unexpected constraint {other:?}"),
        }
    }

    #[test]
    fn removing_referenced_op_drops_constraint() {
        let m = toy();
        let mac = m.op_by_name("ALU", "mac").expect("mac");
        let out = apply_mutation(&m, &Mutation::RemoveOp(mac)).expect("applies");
        assert!(out.constraints.is_empty(), "constraint on removed op dropped");
        assert!(out.share_hints.is_empty(), "hint on removed op dropped");
    }

    #[test]
    fn cannot_remove_nop_or_last_field() {
        let m = toy();
        let nop = m.op_by_name("ALU", "nop").expect("nop");
        assert!(apply_mutation(&m, &Mutation::RemoveOp(nop)).is_none());
        let mut single = m.clone();
        single.fields.truncate(1);
        assert!(apply_mutation(&single, &Mutation::RemoveField(FieldId(0))).is_none());
    }

    #[test]
    fn forbid_pair_added_once() {
        let m = toy();
        let add = m.op_by_name("ALU", "add").expect("add");
        let mv = m.op_by_name("MOVE", "mv").expect("mv");
        let out = apply_mutation(&m, &Mutation::ForbidPair(add, mv)).expect("applies");
        assert_eq!(out.constraints.len(), 2);
        assert!(apply_mutation(&out, &Mutation::ForbidPair(add, mv)).is_none());
    }

    #[test]
    fn exploration_improves_toy_on_dot_product() {
        let kernels = vec![workloads::dot_product(3)];
        let explorer = Explorer { max_steps: 6, ..Explorer::default() };
        let trace = explorer.run(&toy(), &kernels).expect("explores");
        assert!(trace.steps.len() > 1, "at least one improvement found");
        let first = trace.steps.first().expect("initial");
        let last = trace.steps.last().expect("final");
        assert!(last.score < first.score, "objective improved");
        assert!(
            last.metrics.area_cells < first.metrics.area_cells,
            "removing unused ops shrinks the die"
        );
        // The improved machine still computes the right answer (the
        // evaluator re-ran the workload at every step).
        assert!(trace.candidates_evaluated > trace.steps.len());
    }
}

#[cfg(test)]
mod nt_option_tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn unused_addressing_mode_is_removed() {
        // The code generator only ever emits register-direct operands,
        // so the `ind` option of TOY's SRC non-terminal is dead weight
        // the explorer should find and remove.
        let start = isdl::load(isdl::samples::TOY).expect("loads");
        assert_eq!(start.nonterminals[0].options.len(), 2);
        let kernels = vec![workloads::vector_update(3)];
        let explorer = Explorer { max_steps: 10, ..Explorer::default() };
        let trace = explorer.run(&start, &kernels).expect("explores");
        assert!(
            trace
                .steps
                .iter()
                .any(|s| s.action.contains("remove option")),
            "steps: {:?}",
            trace.steps.iter().map(|s| s.action.clone()).collect::<Vec<_>>()
        );
        assert_eq!(trace.machine.nonterminals[0].options.len(), 1);
    }

    #[test]
    fn remove_nt_option_respects_minimum() {
        let m = isdl::load(isdl::samples::TOY).expect("loads");
        let one = apply_mutation(&m, &Mutation::RemoveNtOption(NtId(0), 1)).expect("applies");
        assert!(
            apply_mutation(&one, &Mutation::RemoveNtOption(NtId(0), 0)).is_none(),
            "the last option must stay"
        );
        assert!(apply_mutation(&m, &Mutation::RemoveNtOption(NtId(0), 9)).is_none());
    }
}

#[cfg(test)]
mod beam_tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn beam_search_matches_or_beats_greedy() {
        let start = isdl::load(isdl::samples::TOY).expect("loads");
        let kernels = vec![workloads::dot_product(2)];
        let greedy = Explorer { max_steps: 4, ..Explorer::default() }
            .run(&start, &kernels)
            .expect("greedy explores");
        let beam = Explorer {
            max_steps: 4,
            strategy: Strategy::Beam { width: 3 },
            ..Explorer::default()
        }
        .run(&start, &kernels)
        .expect("beam explores");
        let g = greedy.steps.last().expect("steps").score;
        let b = beam.steps.last().expect("steps").score;
        assert!(b <= g + 1e-9, "beam ({b}) must not lose to greedy ({g})");
        assert!(
            beam.candidates_evaluated >= greedy.candidates_evaluated,
            "the wider search costs more evaluations"
        );
    }
}
