//! Architecture exploration by iterative improvement (Figure 1).
//!
//! Starting from a candidate description, the explorer evaluates it,
//! derives improvement *mutations* from the measured utilization
//! statistics, evaluates every feasible neighbour, keeps the best
//! improving one, and repeats until no mutation helps — the paper's
//! "process repeated until no further improvements can be made".
//!
//! The mutation set reflects what the single-description methodology
//! makes cheap (§4.1: "the granularity at which changes can be made is
//! much finer"):
//!
//! * **remove an unused operation** — decode logic and its datapath
//!   nodes disappear;
//! * **remove an idle field** — a whole issue slot and its units go;
//! * **add a `forbid` constraint** between operations the workload
//!   never issues together — the constraint *proves* exclusivity to
//!   the resource-sharing pass, shrinking the datapath at zero
//!   performance cost (§4.1.2's rule-4 refinement in action).

use crate::compiler::Kernel;
use crate::eval::{evaluate_contained, EvalError, EvalOptions, Evaluation, Metrics, SimBudget};
use crate::fault::FaultPlan;
use crate::journal::{strategy_name, JournalError, JournalWriter, Replay};
use crate::watchdog::Deadline;
use hgen::HgenOptions;
use isdl::model::{Constraint, FieldId, Machine, NtId, OpRef};
use obs::{Gauge, Histogram, Json, Registry, Summary};
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Relative weights of the objective (log-space weighted sum, lower is
/// better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objective {
    /// Weight of workload runtime.
    pub runtime: f64,
    /// Weight of die size.
    pub area: f64,
    /// Weight of power.
    pub power: f64,
}

impl Default for Objective {
    fn default() -> Self {
        Self { runtime: 1.0, area: 1.0, power: 0.25 }
    }
}

impl Objective {
    /// The candidate's score — a weighted geometric mean in log space,
    /// so a 10% runtime win trades transparently against a 10% area
    /// win.
    #[must_use]
    pub fn score(&self, m: &Metrics) -> f64 {
        self.runtime * m.runtime_us.max(1e-9).ln()
            + self.area * m.area_cells.max(1e-9).ln()
            + self.power * m.power_mw.max(1e-9).ln()
    }
}

/// A candidate-to-candidate edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Drop one operation from its field.
    RemoveOp(OpRef),
    /// Drop a whole field.
    RemoveField(FieldId),
    /// Add `forbid a, b` so the sharing pass may merge their hardware.
    ForbidPair(OpRef, OpRef),
    /// Drop an unused addressing-mode option from a non-terminal —
    /// its decode lines, value mux arm, and memory port disappear.
    RemoveNtOption(NtId, usize),
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RemoveOp(r) => write!(f, "remove op {r}"),
            Self::RemoveField(fid) => write!(f, "remove field #{}", fid.0),
            Self::ForbidPair(a, b) => write!(f, "forbid {a} with {b}"),
            Self::RemoveNtOption(nt, o) => write!(f, "remove option #{o} of nt#{}", nt.0),
        }
    }
}

/// Applies a mutation, returning the edited machine (or `None` when
/// the edit is structurally impossible).
#[must_use]
pub fn apply_mutation(machine: &Machine, m: &Mutation) -> Option<Machine> {
    let mut out = machine.clone();
    match m {
        Mutation::RemoveOp(r) => {
            let field = out.fields.get_mut(r.field.0)?;
            if r.op >= field.ops.len() || field.ops.len() == 1 {
                return None;
            }
            // Never remove the nop — the assembler default needs it.
            if field.nop == Some(r.op) {
                return None;
            }
            field.ops.remove(r.op);
            if let Some(n) = field.nop {
                if n > r.op {
                    field.nop = Some(n - 1);
                }
            }
            remap_op_refs(&mut out, |x| {
                if x.field == r.field {
                    match x.op.cmp(&r.op) {
                        std::cmp::Ordering::Less => Some(x),
                        std::cmp::Ordering::Equal => None,
                        std::cmp::Ordering::Greater => Some(OpRef { field: x.field, op: x.op - 1 }),
                    }
                } else {
                    Some(x)
                }
            });
            Some(out)
        }
        Mutation::RemoveField(fid) => {
            if out.fields.len() <= 1 || fid.0 >= out.fields.len() {
                return None;
            }
            out.fields.remove(fid.0);
            remap_op_refs(&mut out, |x| {
                use std::cmp::Ordering::*;
                match x.field.0.cmp(&fid.0) {
                    Less => Some(x),
                    Equal => None,
                    Greater => Some(OpRef { field: FieldId(x.field.0 - 1), op: x.op }),
                }
            });
            Some(out)
        }
        Mutation::ForbidPair(a, b) => {
            if a.field == b.field {
                return None; // already exclusive
            }
            let c = Constraint::Forbid(vec![*a, *b]);
            if out.constraints.contains(&c) {
                return None;
            }
            out.constraints.push(c);
            Some(out)
        }
        Mutation::RemoveNtOption(nt, option) => {
            let ntd = out.nonterminals.get_mut(nt.0)?;
            if *option >= ntd.options.len() || ntd.options.len() <= 1 {
                return None;
            }
            ntd.options.remove(*option);
            Some(out)
        }
    }
}

/// Rewrites every [`OpRef`] in constraints and share hints; entries
/// whose mapping returns `None` are dropped.
fn remap_op_refs(machine: &mut Machine, f: impl Fn(OpRef) -> Option<OpRef>) {
    machine.constraints.retain_mut(|c| match c {
        Constraint::Forbid(ops) => {
            let mapped: Option<Vec<OpRef>> = ops.iter().map(|&r| f(r)).collect();
            match mapped {
                Some(v) => {
                    *ops = v;
                    true
                }
                None => false,
            }
        }
        // General assertions over a removed op become stale; drop them.
        Constraint::Assert(e) => cexpr_ops(e).iter().all(|&r| f(r).is_some()),
    });
    // Remap the surviving assert expressions and hints.
    for c in &mut machine.constraints {
        if let Constraint::Assert(e) = c {
            remap_cexpr(e, &f);
        }
    }
    machine.share_hints.retain_mut(|h| {
        let mapped: Option<Vec<OpRef>> = h.ops.iter().map(|&r| f(r)).collect();
        match mapped {
            Some(v) if v.len() >= 2 => {
                h.ops = v;
                true
            }
            _ => false,
        }
    });
}

fn cexpr_ops(e: &isdl::model::CExpr) -> Vec<OpRef> {
    use isdl::model::CExpr::*;
    match e {
        Op(r) => vec![*r],
        Not(x) => cexpr_ops(x),
        And(a, b) | Or(a, b) => {
            let mut v = cexpr_ops(a);
            v.extend(cexpr_ops(b));
            v
        }
    }
}

fn remap_cexpr(e: &mut isdl::model::CExpr, f: &impl Fn(OpRef) -> Option<OpRef>) {
    use isdl::model::CExpr::*;
    match e {
        Op(r) => {
            if let Some(n) = f(*r) {
                *r = n;
            }
        }
        Not(x) => remap_cexpr(x, f),
        And(a, b) | Or(a, b) => {
            remap_cexpr(a, f);
            remap_cexpr(b, f);
        }
    }
}

/// One accepted step of the exploration.
#[derive(Debug, Clone)]
pub struct Step {
    /// What was changed ("initial" for the starting point).
    pub action: String,
    /// The measurements after the change.
    pub metrics: Metrics,
    /// The objective score (lower is better).
    pub score: f64,
    /// The accepted candidate's per-kernel profile summary
    /// ([`Evaluation::profile`]): top regions and stall PCs, or
    /// [`Json::Null`] when [`Explorer::instrument`] is off. Excluded
    /// from [`Step::semantic_eq`] — it is diagnostic, not part of the
    /// search result.
    pub profile: Json,
}

impl Step {
    /// Equality over the deterministic content of the step (action,
    /// score, and [`Metrics::semantic_eq`]).
    #[must_use]
    pub fn semantic_eq(&self, other: &Self) -> bool {
        self.action == other.action
            && self.score == other.score
            && self.metrics.semantic_eq(&other.metrics)
    }
}

/// Deterministic accounting for one frontier round: how many
/// candidates were proposed, how many distinct structures they folded
/// to, and how the distinct ones were resolved.
///
/// Identical across thread counts — only proposal order, never worker
/// scheduling, feeds these numbers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrontierRound {
    /// Candidates proposed (after structurally impossible mutations
    /// were filtered out).
    pub proposed: usize,
    /// Distinct structures among them (first occurrences).
    pub unique: usize,
    /// Distinct structures evaluated from scratch this round.
    pub fresh: usize,
    /// Proposed candidates resolved from the cache, including
    /// within-frontier duplicates (`proposed - fresh`).
    pub cache_hits: usize,
}

/// One wall-clock span on the exploration timeline: a frontier round
/// or a single fresh candidate evaluation. Timestamps are microseconds
/// from the start of the run, ready for the Chrome trace-event export
/// ([`chrome_trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Span label, e.g. `"round 3"` or `"eval #7"`.
    pub name: String,
    /// Event category (`"explore"` for rounds, `"eval"` for
    /// evaluations).
    pub cat: String,
    /// Track the span renders on: 0 for the round loop, `1 + worker`
    /// for evaluations.
    pub tid: u64,
    /// Start offset from the beginning of the run, µs.
    pub start_us: u64,
    /// Span duration, µs.
    pub dur_us: u64,
}

impl SpanRec {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("name", self.name.as_str())
            .with("cat", self.cat.as_str())
            .with("tid", self.tid)
            .with("ts_us", self.start_us)
            .with("dur_us", self.dur_us)
    }
}

/// Observability embedded in every [`Trace`] (see
/// `docs/OBSERVABILITY.md`, `archex-explore/1`).
///
/// The frontier rounds are deterministic; the latency summaries,
/// per-thread utilization, and wall time are measurements and vary
/// run to run. With [`Explorer::instrument`] off, the timing
/// summaries and wall time stay zeroed and no clock is ever read on
/// the evaluation path; the rounds and per-thread eval counts are
/// always recorded (one relaxed atomic add per multi-millisecond
/// evaluation).
#[derive(Debug, Clone, Default)]
pub struct ExploreObs {
    /// One entry per frontier evaluated, in round order (the initial
    /// candidate's evaluation is not a round).
    pub rounds: Vec<FrontierRound>,
    /// Latency of each from-scratch candidate evaluation
    /// (compile → simulate → synthesize), µs.
    pub eval_latency_us: Summary,
    /// Latency of cache lookups that found a stored outcome, µs.
    pub cache_hit_lookup_us: Summary,
    /// Latency of cache lookups that missed, µs.
    pub cache_miss_lookup_us: Summary,
    /// Fresh evaluation *attempts* performed by each worker slot,
    /// retries included; sums to [`Trace::attempts`]. Length is the
    /// resolved worker-pool size.
    pub thread_evals: Vec<u64>,
    /// Wall-clock spans of every frontier round and fresh evaluation,
    /// sorted by start time. Empty with [`Explorer::instrument`] off.
    /// Render with [`chrome_trace`]. Excluded from
    /// [`Trace::semantic_eq`] — spans are measurements.
    pub timeline: Vec<SpanRec>,
    /// Wall-clock time of the whole run, seconds.
    pub wall_s: f64,
    /// Heartbeats emitted to the [`Progress`] sinks; `0` when live
    /// telemetry is off. Wall-clock-driven, so excluded from
    /// [`Trace::semantic_eq`].
    pub heartbeats: u64,
    /// Flight-recorder dumps taken during the run
    /// ([`obs::flight::capture`]): contained panics, deadline
    /// expiries, netlist mismatches, journal corruption. Excluded from
    /// [`Trace::semantic_eq`].
    pub flight_dumps: u64,
}

impl ExploreObs {
    /// Total proposed candidates across all rounds.
    #[must_use]
    pub fn proposed(&self) -> usize {
        self.rounds.iter().map(|r| r.proposed).sum()
    }

    /// The observability block as JSON (the `obs` object of
    /// `archex-explore/1`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let rounds: Vec<Json> = self
            .rounds
            .iter()
            .map(|r| {
                Json::obj()
                    .with("proposed", r.proposed)
                    .with("unique", r.unique)
                    .with("fresh", r.fresh)
                    .with("cache_hits", r.cache_hits)
            })
            .collect();
        Json::obj()
            .with("rounds", Json::Arr(rounds))
            .with("eval_latency_us", self.eval_latency_us.to_json())
            .with("cache_hit_lookup_us", self.cache_hit_lookup_us.to_json())
            .with("cache_miss_lookup_us", self.cache_miss_lookup_us.to_json())
            .with(
                "thread_evals",
                Json::Arr(self.thread_evals.iter().map(|&n| Json::from(n)).collect()),
            )
            .with("timeline", self.timeline.iter().map(SpanRec::to_json).collect::<Json>())
            .with("wall_s", self.wall_s)
            .with("heartbeats", self.heartbeats)
            .with("flight_dumps", self.flight_dumps)
    }
}

/// The exploration result.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Accepted steps, starting with the initial evaluation.
    pub steps: Vec<Step>,
    /// The best machine found.
    pub machine: Machine,
    /// Candidates evaluated from scratch (full compile → simulate →
    /// synthesize passes, including the starting point).
    pub evaluated: usize,
    /// Candidates whose evaluation was reused from the cache — a
    /// structurally identical machine had already been measured, either
    /// in an earlier round or by another parent in the same frontier.
    pub cache_hits: usize,
    /// Candidates whose evaluation failed and were skipped. A large
    /// value relative to [`Trace::candidates_evaluated`] means "no
    /// improving mutation" may really be "every mutation breaks the
    /// toolchain" — check [`Trace::first_error`].
    pub skipped_errors: usize,
    /// The first evaluation error encountered, as
    /// `"<mutation>: <error>"` (`None` when every candidate evaluated).
    pub first_error: Option<String>,
    /// Fresh evaluation *attempts*, retries included (≥
    /// [`Trace::evaluated`]). Excluded from [`Trace::semantic_eq`]: a
    /// faulted-then-retried run must compare equal to a clean one.
    pub attempts: usize,
    /// Transient-failure retries performed under the explorer's
    /// [`RetryPolicy`] (`attempts - evaluated`). Excluded from
    /// [`Trace::semantic_eq`].
    pub retried: usize,
    /// Failed fresh evaluation attempts by error kind
    /// ([`EvalError::kind_name`]), retried transients and
    /// `deadline_exceeded` included. Cache-resolved error skips are not
    /// recounted — each failure is histogrammed when it actually runs.
    /// Excluded from [`Trace::semantic_eq`].
    pub error_histogram: BTreeMap<String, usize>,
    /// Observability: per-round frontier accounting, evaluation and
    /// cache-lookup latency summaries, per-thread utilization.
    pub obs: ExploreObs,
}

/// Schema identifier emitted by [`Trace::to_json`]. Bump the suffix on
/// breaking changes.
pub const EXPLORE_SCHEMA: &str = "archex-explore/1";

/// Schema identifier of one heartbeat line emitted to
/// [`Progress::jsonl`]. Bump the suffix on breaking changes.
pub const PROGRESS_SCHEMA: &str = "archex-progress/1";

impl Trace {
    /// Total candidates considered: fresh evaluations plus cache hits.
    #[must_use]
    pub fn candidates_evaluated(&self) -> usize {
        self.evaluated + self.cache_hits
    }

    /// Equality over everything deterministic in the trace: steps
    /// (modulo wall-clock synthesis time), the final machine, and all
    /// search counters. Two runs of the same exploration — at *any*
    /// thread count — must compare equal under this. The fault-exposure
    /// counters ([`Trace::attempts`], [`Trace::retried`],
    /// [`Trace::error_histogram`]) are excluded: they describe what the
    /// environment did to the run, not what the search found, and a
    /// retried run must compare equal to an undisturbed one.
    #[must_use]
    pub fn semantic_eq(&self, other: &Self) -> bool {
        self.steps.len() == other.steps.len()
            && self.steps.iter().zip(&other.steps).all(|(a, b)| a.semantic_eq(b))
            && self.machine == other.machine
            && self.evaluated == other.evaluated
            && self.cache_hits == other.cache_hits
            && self.skipped_errors == other.skipped_errors
            && self.first_error == other.first_error
            && self.obs.rounds == other.obs.rounds
    }

    /// The trace as a schema-versioned JSON object (`archex-explore/1`,
    /// reference-documented in `docs/OBSERVABILITY.md`): the accepted
    /// steps with their metrics, the run counters, and the
    /// observability block from [`Trace::obs`].
    #[must_use]
    pub fn to_json(&self) -> Json {
        let steps: Vec<Json> = self
            .steps
            .iter()
            .map(|s| {
                Json::obj()
                    .with("action", s.action.as_str())
                    .with("score", s.score)
                    .with("metrics", s.metrics.to_json())
                    .with("profile", s.profile.clone())
            })
            .collect();
        let mut histogram = Json::obj();
        for (kind, n) in &self.error_histogram {
            histogram.insert(kind, *n);
        }
        Json::obj()
            .with("schema", EXPLORE_SCHEMA)
            .with("machine", self.machine.name.as_str())
            .with("steps", Json::Arr(steps))
            .with("evaluated", self.evaluated)
            .with("cache_hits", self.cache_hits)
            .with("skipped_errors", self.skipped_errors)
            .with("first_error", self.first_error.as_deref().map_or(Json::Null, Json::from))
            .with("attempts", self.attempts)
            .with("retried", self.retried)
            .with("error_histogram", histogram)
            .with("obs", self.obs.to_json())
    }
}

/// Renders a trace's recorded timeline ([`ExploreObs::timeline`]) as a
/// Chrome trace-event document (`{"traceEvents": […]}`) loadable in
/// `chrome://tracing` or Perfetto: one complete event per frontier
/// round (track 0) and per fresh candidate evaluation (track
/// `1 + worker`), plus an instant marker per accepted step.
///
/// Runs with [`Explorer::instrument`] off record no spans; the
/// document then carries only the accepted-step markers at `ts` 0.
#[must_use]
pub fn chrome_trace(trace: &Trace) -> Json {
    let mut ct = obs::ChromeTrace::new();
    for s in &trace.obs.timeline {
        ct.complete(&s.name, &s.cat, s.tid, s.start_us, s.dur_us, Json::Null);
    }
    // Accepted steps as instant markers: placed at the end of their
    // round's span when one was recorded, at 0 otherwise. Step `i + 1`
    // was accepted by round `i` ("initial" is not a round).
    let round_end = |i: usize| {
        trace
            .obs
            .timeline
            .iter()
            .find(|s| s.cat == "explore" && s.name == format!("round {i}"))
            .map_or(0, |s| s.start_us + s.dur_us)
    };
    for (i, step) in trace.steps.iter().enumerate() {
        let ts = if i == 0 { 0 } else { round_end(i - 1) };
        let args = Json::obj().with("action", step.action.as_str()).with("score", step.score);
        ct.instant("accepted", "explore", 0, ts, args);
    }
    ct.to_json()
}

/// A concurrency-safe memo of candidate evaluations.
///
/// Keys are the machine's canonical printed ISDL text
/// ([`isdl::printer::print`]), whose round trip is exact — two machines
/// share a key if and only if they are structurally equal, so a hit
/// can never alias two different candidates (unlike a bare 64-bit
/// hash). The cache may be shared across [`Explorer::run_cached`]
/// calls to memoize evaluations across whole explorations.
#[derive(Debug, Default)]
pub struct EvalCache {
    entries: Mutex<HashMap<String, Result<Evaluation, EvalError>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl EvalCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical cache key for `machine`.
    #[must_use]
    pub fn key(machine: &Machine) -> String {
        isdl::printer::print(machine)
    }

    /// A 64-bit structural hash of `machine` (a digest of [`Self::key`];
    /// useful for logging and frontier diagnostics).
    #[must_use]
    pub fn structural_hash(machine: &Machine) -> u64 {
        let mut h = std::hash::DefaultHasher::new();
        Self::key(machine).hash(&mut h);
        h.finish()
    }

    /// Looks up a previously stored outcome, counting a hit or miss.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<Result<Evaluation, EvalError>> {
        let found = self.entries.lock().expect("cache lock never poisoned").get(key).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stores the outcome of evaluating the machine with key `key`.
    pub fn insert(&self, key: String, outcome: Result<Evaluation, EvalError>) {
        self.entries.lock().expect("cache lock never poisoned").insert(key, outcome);
    }

    /// Number of stored outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock never poisoned").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found a stored outcome.
    #[must_use]
    pub fn hit_count(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    #[must_use]
    pub fn miss_count(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Deterministic in-run retry policy for *transient* evaluation errors
/// (contained panics, exhausted fuel budgets, exceeded wall-clock
/// deadlines — see [`EvalError::is_transient`]).
///
/// Retries are keyed to the proposal-order fresh-evaluation sequence
/// number, never to worker scheduling, so a run with retries produces
/// the same [`Trace`] (under [`Trace::semantic_eq`]) at every thread
/// count: every attempt of evaluation `seq` sees the same fault-plan
/// clock, and the per-candidate outcome is the outcome of the last
/// attempt regardless of which worker ran it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per fresh evaluation (≥ 1; `1` disables retry).
    /// Permanent errors are never retried.
    pub max_attempts: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 1 }
    }
}

/// How the candidate space is searched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Steepest-descent hill climbing: evaluate every neighbour, take
    /// the best improving one (the paper's "iterative improvement").
    Greedy,
    /// Beam search: carry the `width` best candidates forward each
    /// round, which can climb out of single-mutation dead ends at the
    /// cost of proportionally more evaluations.
    Beam {
        /// Number of candidates kept per round (≥ 1).
        width: usize,
    },
}

/// A live-progress sink: heartbeat lines are written under the mutex,
/// so one sink may be shared between the JSONL and human streams (or
/// with the caller's own logging).
pub type ProgressSink = Arc<Mutex<dyn std::io::Write + Send>>;

/// Live exploration telemetry: heartbeat cadence and where the beats
/// go. A heartbeat is emitted at the first greedy round boundary after
/// [`Progress::interval_ms`] elapses (`0` = every round) — the cadence
/// rides the [`crate::watchdog`] timer, so no extra thread is spawned
/// and a beat never lands mid-round. Each beat carries the round
/// number, frontier size, evaluation/cache counters, throughput, the
/// retry/error histogram, and an ETA; see `archex-progress/1` in
/// `docs/OBSERVABILITY.md`.
///
/// Heartbeat counts are wall-clock-driven and therefore excluded from
/// every determinism contract: [`Trace::semantic_eq`] and journal
/// bytes never see them.
#[derive(Clone, Default)]
pub struct Progress {
    /// Minimum milliseconds between heartbeats; `0` emits one per
    /// round.
    pub interval_ms: u64,
    /// Receives one `archex-progress/1` JSON object per line.
    pub jsonl: Option<ProgressSink>,
    /// Receives a human one-liner per heartbeat (`isdlc explore
    /// --progress` points this at stderr).
    pub human: Option<ProgressSink>,
    /// When set, every heartbeat atomically rewrites this file (temp +
    /// rename) with the Prometheus text exposition of the run's
    /// registry ([`obs::prom::render`]) — ready for the node exporter's
    /// textfile collector.
    pub metrics_out: Option<std::path::PathBuf>,
}

impl std::fmt::Debug for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Progress")
            .field("interval_ms", &self.interval_ms)
            .field("jsonl", &self.jsonl.is_some())
            .field("human", &self.human.is_some())
            .field("metrics_out", &self.metrics_out)
            .finish()
    }
}

/// The exploration driver.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Objective weights.
    pub objective: Objective,
    /// HGEN configuration used for every evaluation.
    pub hgen: HgenOptions,
    /// Maximum accepted improvement steps (rounds, for beam search).
    pub max_steps: usize,
    /// Search strategy.
    pub strategy: Strategy,
    /// Worker threads evaluating the mutation frontier; `0` means one
    /// per available core. The result is bit-identical at every
    /// setting — workers only fill result slots, and the reduction
    /// runs serially in proposal order.
    pub threads: usize,
    /// Collect timing instrumentation ([`ExploreObs`] latency
    /// summaries and wall time). When `false` no clock is read on the
    /// evaluation path and the timing fields of [`Trace::obs`] stay
    /// zeroed; the deterministic round counters are always recorded.
    pub instrument: bool,
    /// Fuel budget applied to every kernel simulation (see
    /// [`SimBudget`]); candidates that exhaust it are skipped with
    /// [`EvalError::BudgetExhausted`] instead of hanging the run.
    pub budget: SimBudget,
    /// An armed fault for robustness tests (see [`FaultPlan`]): fires
    /// at the plan's fresh-evaluation sequence number. Sequence numbers
    /// are assigned in proposal order, so the same evaluation faults at
    /// every thread count. `None` in production.
    pub fault_plan: Option<FaultPlan>,
    /// Post-synthesis netlist cross-check applied to every fresh
    /// evaluation (see [`crate::eval::NetlistCheck`]). Off by default;
    /// turning it on makes every accepted step carry proof that the
    /// generated hardware matches the ILS bit-for-bit.
    pub netlist_check: crate::eval::NetlistCheck,
    /// Retry policy for transient evaluation errors (see
    /// [`RetryPolicy`]). The default performs no retries.
    pub retry: RetryPolicy,
    /// Wall-clock deadline per fresh evaluation attempt, milliseconds;
    /// `0` disables deadlines. A candidate that exceeds it is skipped
    /// with the transient [`EvalError::DeadlineExceeded`] — never
    /// cached, never journaled (see [`crate::watchdog`]).
    pub deadline_ms: u64,
    /// Cooperative shutdown flag (armed by a signal handler in
    /// `isdlc`). When it flips to `true`, a greedy run finishes the
    /// in-flight round — including its journal checkpoint — and
    /// returns early without writing the journal's `done` event, so
    /// [`Explorer::resume`] continues bit-identically. `None` in
    /// library use.
    pub shutdown: Option<Arc<AtomicBool>>,
    /// Live heartbeat telemetry (see [`Progress`]). `None` — the
    /// default — emits nothing and reads no extra clocks. Applies to
    /// the greedy round loop (fresh, journaled, and resumed runs
    /// alike); beam search currently emits no heartbeats.
    pub progress: Option<Progress>,
}

impl Default for Explorer {
    fn default() -> Self {
        Self {
            objective: Objective::default(),
            hgen: HgenOptions::default(),
            max_steps: 16,
            strategy: Strategy::Greedy,
            threads: 0,
            instrument: true,
            budget: SimBudget::default(),
            fault_plan: None,
            netlist_check: crate::eval::NetlistCheck::default(),
            retry: RetryPolicy::default(),
            deadline_ms: 0,
            shutdown: None,
            progress: None,
        }
    }
}

/// The per-candidate outcomes of one frontier evaluation.
struct FrontierEval {
    /// One outcome per input candidate, in input order.
    outcomes: Vec<Result<Evaluation, EvalError>>,
    /// Whether each candidate is the first occurrence of its structure
    /// within this frontier (`false` marks within-frontier duplicates).
    first_occurrence: Vec<bool>,
    /// Candidates evaluated from scratch (≤ number of unique keys).
    fresh: usize,
    /// The cache entries this evaluation committed, in proposal order —
    /// fresh outcomes minus transient errors. This is exactly what a
    /// journal round must record to make resume bit-identical.
    committed: crate::journal::JournalEntries,
    /// Fresh evaluation attempts spent (≥ `fresh`; the excess is
    /// retries of transient failures under [`RetryPolicy`]).
    attempts: usize,
    /// [`EvalError::kind_name`] of every failed fresh attempt, folded
    /// in proposal order — feeds the run's error histogram.
    errors: Vec<&'static str>,
}

/// The resolution of one fresh candidate under the retry policy.
struct AttemptRecord {
    /// The last attempt's outcome — what the cache and reduction see.
    outcome: Result<Evaluation, EvalError>,
    /// Attempts spent (≥ 1).
    attempts: usize,
    /// [`EvalError::kind_name`] of every failed attempt, in order.
    errors: Vec<&'static str>,
}

impl FrontierEval {
    /// The [`FrontierRound`] accounting record for this evaluation.
    fn round(&self) -> FrontierRound {
        FrontierRound {
            proposed: self.outcomes.len(),
            unique: self.first_occurrence.iter().filter(|&&b| b).count(),
            fresh: self.fresh,
            cache_hits: self.outcomes.len() - self.fresh,
        }
    }
}

/// Live instrumentation for one exploration run; folded into
/// [`ExploreObs`] at the end.
struct RunObs {
    registry: Registry,
    eval_us: Arc<Histogram>,
    hit_us: Arc<Histogram>,
    miss_us: Arc<Histogram>,
    /// Last frontier size handed to [`Explorer::eval_frontier`].
    frontier: Arc<Gauge>,
    /// Outcomes stored in the evaluation cache.
    cache_entries: Arc<Gauge>,
    /// Worker-pool size of the most recent frontier fan-out.
    live_workers: Arc<Gauge>,
    /// Fresh evaluations per worker slot (slot 0 doubles as the inline
    /// single-worker path).
    thread_evals: Vec<AtomicU64>,
    /// Fresh-evaluation sequence numbers, assigned in proposal order
    /// before workers start — the trigger clock for
    /// [`Explorer::fault_plan`].
    seq: AtomicUsize,
    /// Heartbeats emitted to the [`Progress`] sinks.
    heartbeats: AtomicU64,
    /// Process-wide flight-dump count when the run started; the run's
    /// own dumps are the delta at [`RunObs::finish`].
    dumps_at_start: u64,
    /// Wall-clock spans (rounds and evaluations), recorded only when
    /// the registry is enabled; folded into [`ExploreObs::timeline`].
    timeline: Mutex<Vec<SpanRec>>,
    started: Instant,
}

impl RunObs {
    fn new(explorer: &Explorer) -> Self {
        let registry = if explorer.instrument { Registry::new() } else { Registry::disabled() };
        // The pool size an unbounded frontier would get; smaller
        // frontiers use a prefix of the slots.
        let pool = explorer.worker_count(usize::MAX);
        Self {
            eval_us: registry.histogram("explore.eval_latency_us"),
            hit_us: registry.histogram("explore.cache_hit_lookup_us"),
            miss_us: registry.histogram("explore.cache_miss_lookup_us"),
            frontier: registry.gauge("explore.frontier"),
            cache_entries: registry.gauge("explore.cache_entries"),
            live_workers: registry.gauge("explore.live_workers"),
            thread_evals: (0..pool).map(|_| AtomicU64::new(0)).collect(),
            seq: AtomicUsize::new(0),
            heartbeats: AtomicU64::new(0),
            dumps_at_start: obs::flight::dump_count(),
            timeline: Mutex::new(Vec::new()),
            registry,
            started: Instant::now(),
        }
    }

    /// Records a span that started at `t0` (now being its end) on the
    /// run timeline. Callers gate on [`Registry::enabled`] so a
    /// non-instrumented run never reaches here.
    fn push_span(&self, name: String, cat: &str, tid: u64, t0: Instant) {
        let start_us =
            u64::try_from(t0.duration_since(self.started).as_micros()).unwrap_or(u64::MAX);
        let dur_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.timeline.lock().expect("timeline lock never poisoned").push(SpanRec {
            name,
            cat: cat.to_owned(),
            tid,
            start_us,
            dur_us,
        });
    }

    /// A timed cache lookup, credited to the hit or miss histogram.
    fn lookup(&self, cache: &EvalCache, key: &str) -> Option<Result<Evaluation, EvalError>> {
        let t0 = self.registry.enabled().then(Instant::now);
        let outcome = cache.get(key);
        if let Some(t0) = t0 {
            let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
            if outcome.is_some() { &self.hit_us } else { &self.miss_us }.record(us);
        }
        outcome
    }

    /// A timed, panic-contained fresh evaluation attempt on worker slot
    /// `worker`. `seq` is the evaluation's proposal-order sequence
    /// number and `attempt` the zero-based retry index; the explorer's
    /// armed fault (if any) fires when `seq` matches and `attempt` is
    /// within the fault's [`FaultPlan::times`].
    fn eval(
        &self,
        worker: usize,
        seq: usize,
        attempt: usize,
        machine: &Machine,
        kernels: &[Kernel],
        explorer: &Explorer,
    ) -> Result<Evaluation, EvalError> {
        let fault = explorer.fault_plan.as_ref().filter(|f| f.nth == seq && attempt < f.times);
        let t0 = self.registry.enabled().then(Instant::now);
        let span = self.eval_us.span();
        let deadline = (explorer.deadline_ms > 0)
            .then(|| Deadline::arm(Duration::from_millis(explorer.deadline_ms)));
        let opts = EvalOptions {
            hgen: explorer.hgen,
            budget: explorer.budget,
            fault,
            profile: explorer.instrument,
            netlist: explorer.netlist_check,
            deadline,
        };
        let outcome = evaluate_contained(machine, kernels, &opts);
        drop(span);
        if let Some(t0) = t0 {
            self.push_span(format!("eval #{seq}"), "eval", 1 + worker as u64, t0);
        }
        self.thread_evals[worker].fetch_add(1, Ordering::Relaxed);
        outcome
    }

    /// Resolves one fresh candidate under the explorer's
    /// [`RetryPolicy`]: transient failures are re-attempted up to
    /// `max_attempts` total tries; permanent outcomes return
    /// immediately. Every failed attempt's error kind is recorded for
    /// the run's histogram.
    fn eval_retry(
        &self,
        worker: usize,
        seq: usize,
        machine: &Machine,
        kernels: &[Kernel],
        explorer: &Explorer,
    ) -> AttemptRecord {
        let max = explorer.retry.max_attempts.max(1);
        let mut errors = Vec::new();
        for attempt in 0..max {
            let outcome = self.eval(worker, seq, attempt, machine, kernels, explorer);
            if let Err(e) = &outcome {
                errors.push(e.kind_name());
                if e.is_transient() && attempt + 1 < max {
                    obs::flight::note(
                        "archex.retry",
                        e.kind_name(),
                        Json::obj().with("seq", seq).with("attempt", attempt + 1),
                    );
                    continue;
                }
            }
            return AttemptRecord { outcome, attempts: attempt + 1, errors };
        }
        unreachable!("the loop returns on its final attempt")
    }

    fn finish(&self, rounds: Vec<FrontierRound>) -> ExploreObs {
        let mut timeline = self.timeline.lock().expect("timeline lock never poisoned").clone();
        // Workers push concurrently; present the spans in time order.
        timeline.sort_by(|a, b| (a.start_us, a.tid, &a.name).cmp(&(b.start_us, b.tid, &b.name)));
        ExploreObs {
            rounds,
            eval_latency_us: self.eval_us.summary(),
            cache_hit_lookup_us: self.hit_us.summary(),
            cache_miss_lookup_us: self.miss_us.summary(),
            thread_evals: self.thread_evals.iter().map(|n| n.load(Ordering::Relaxed)).collect(),
            timeline,
            wall_s: if self.registry.enabled() {
                self.started.elapsed().as_secs_f64()
            } else {
                0.0
            },
            heartbeats: self.heartbeats.load(Ordering::Relaxed),
            flight_dumps: obs::flight::dump_count().saturating_sub(self.dumps_at_start),
        }
    }
}

/// Running totals folded into the final [`Trace`] (and journaled
/// cumulatively each round, so resume restores them exactly).
#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) evaluated: usize,
    pub(crate) cache_hits: usize,
    pub(crate) skipped_errors: usize,
    pub(crate) first_error: Option<String>,
    pub(crate) attempts: usize,
    pub(crate) retried: usize,
    pub(crate) error_histogram: BTreeMap<String, usize>,
}

impl Counters {
    /// Records a skipped candidate, keeping the first error message.
    fn skip(&mut self, action: &str, error: &EvalError) {
        self.skipped_errors += 1;
        if self.first_error.is_none() {
            self.first_error = Some(format!("{action}: {error}"));
        }
    }

    /// Folds one frontier's fresh-evaluation accounting in. `proposed`
    /// is the number of candidates handed to the frontier (everything
    /// beyond `fresh` resolved from the cache).
    fn absorb(&mut self, fe: &FrontierEval, proposed: usize) {
        self.evaluated += fe.fresh;
        self.cache_hits += proposed - fe.fresh;
        self.attempts += fe.attempts;
        self.retried += fe.attempts - fe.fresh;
        for kind in &fe.errors {
            *self.error_histogram.entry((*kind).to_owned()).or_insert(0) += 1;
        }
    }
}

/// Everything the greedy round loop carries between rounds — built
/// fresh by [`Explorer::greedy_run`], or reconstructed from a journal
/// by [`Explorer::resume`].
struct GreedyState {
    current: Machine,
    current_eval: Evaluation,
    score: f64,
    steps: Vec<Step>,
    rounds: Vec<FrontierRound>,
    counters: Counters,
}

/// Writes `text` to `path` atomically: the content lands in a sibling
/// `.{name}.tmp` file first and is renamed over the target, so a
/// concurrent scraper never observes a partially written file.
fn write_atomic(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    let name = path.file_name().map_or_else(
        || std::ffi::OsString::from(".metrics.tmp"),
        |n| {
            let mut t = std::ffi::OsString::from(".");
            t.push(n);
            t.push(".tmp");
            t
        },
    );
    let tmp = path.with_file_name(name);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// The toolchain types a frontier worker touches, pinned as thread-safe.
/// Everything sent into `std::thread::scope` below is either one of
/// these or a std synchronization primitive; a non-`Send` field added
/// to any of them (an `Rc`, say) fails compilation here, not at the
/// far end of a scoped-spawn type error.
#[allow(dead_code)]
fn assert_worker_types_thread_safe() {
    fn ok<T: Send + Sync>() {}
    ok::<Machine>();
    ok::<Kernel>();
    ok::<HgenOptions>();
    ok::<Evaluation>();
    ok::<EvalError>();
    ok::<Explorer>();
    ok::<EvalCache>();
    ok::<RunObs>();
    ok::<FaultPlan>();
    ok::<SimBudget>();
}

impl Explorer {
    /// Runs exploration from `start` over `kernels` with a fresh
    /// evaluation cache.
    ///
    /// # Errors
    ///
    /// Fails only if the *starting* candidate cannot be evaluated.
    /// Neighbours whose evaluation fails are skipped, counted in
    /// [`Trace::skipped_errors`], and reported via
    /// [`Trace::first_error`].
    pub fn run(&self, start: &Machine, kernels: &[Kernel]) -> Result<Trace, EvalError> {
        self.run_cached(start, kernels, &EvalCache::new())
    }

    /// Runs exploration reusing `cache` — candidates structurally
    /// identical to anything already in the cache (from this run or a
    /// previous one) are never re-evaluated.
    ///
    /// # Errors
    ///
    /// As [`Explorer::run`].
    pub fn run_cached(
        &self,
        start: &Machine,
        kernels: &[Kernel],
        cache: &EvalCache,
    ) -> Result<Trace, EvalError> {
        match self.strategy {
            Strategy::Greedy => self.run_greedy(start, kernels, cache),
            Strategy::Beam { width } => self.run_beam(start, kernels, width.max(1), cache),
        }
    }

    /// Resolves the worker count for a frontier of `work` candidates.
    fn worker_count(&self, work: usize) -> usize {
        let configured = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        };
        configured.clamp(1, work.max(1))
    }

    /// Evaluates a frontier of candidates: deduplicates structurally
    /// identical machines, reuses cached outcomes, and fans the
    /// remaining fresh evaluations out over [`Explorer::threads`]
    /// scoped workers fed from a shared index. Results are committed to
    /// the cache and returned in input order, so downstream reductions
    /// see the same outcomes regardless of worker scheduling.
    fn eval_frontier(
        &self,
        cache: &EvalCache,
        kernels: &[Kernel],
        candidates: &[Machine],
        robs: &RunObs,
    ) -> FrontierEval {
        robs.frontier.set(candidates.len() as u64);
        let keys: Vec<String> = candidates.iter().map(EvalCache::key).collect();

        // Unique structures in first-occurrence order. `slot_for[i]`
        // maps candidate `i` to its representative slot.
        let mut slot_of_key: HashMap<&str, usize> = HashMap::new();
        let mut slot_candidate: Vec<usize> = Vec::new();
        let mut slot_for: Vec<usize> = Vec::with_capacity(candidates.len());
        let mut first_occurrence = Vec::with_capacity(candidates.len());
        for (i, key) in keys.iter().enumerate() {
            let next = slot_candidate.len();
            let slot = *slot_of_key.entry(key.as_str()).or_insert(next);
            if slot == next {
                slot_candidate.push(i);
            }
            first_occurrence.push(slot == next);
            slot_for.push(slot);
        }

        // Resolve each unique structure from the cache; the rest go to
        // the worker pool.
        let mut slot_outcome: Vec<Option<Result<Evaluation, EvalError>>> =
            Vec::with_capacity(slot_candidate.len());
        let mut pending: Vec<usize> = Vec::new();
        for (slot, &ci) in slot_candidate.iter().enumerate() {
            match robs.lookup(cache, &keys[ci]) {
                Some(outcome) => slot_outcome.push(Some(outcome)),
                None => {
                    slot_outcome.push(None);
                    pending.push(slot);
                }
            }
        }

        let fresh = pending.len();
        let mut committed = Vec::new();
        let mut attempts = 0;
        let mut errors: Vec<&'static str> = Vec::new();
        if fresh > 0 {
            // Sequence numbers for this batch are claimed up front and
            // assigned by proposal index (`pending` is in
            // first-occurrence order), not by scheduling order — an
            // armed fault hits the same candidate at any thread count,
            // and so does every retry of it.
            let base = robs.seq.fetch_add(fresh, Ordering::Relaxed);
            let results: Vec<Mutex<Option<AttemptRecord>>> =
                (0..fresh).map(|_| Mutex::new(None)).collect();
            let workers = self.worker_count(fresh);
            robs.live_workers.set(workers as u64);
            if workers == 1 {
                // Inline fast path: no spawn overhead, clean backtraces.
                for (j, &slot) in pending.iter().enumerate() {
                    let machine = &candidates[slot_candidate[slot]];
                    *results[j].lock().expect("result lock never poisoned") =
                        Some(robs.eval_retry(0, base + j, machine, kernels, self));
                }
            } else {
                let cursor = AtomicUsize::new(0);
                std::thread::scope(|scope| {
                    let (cursor, pending, slot_candidate, results) =
                        (&cursor, &pending, &slot_candidate, &results);
                    for wi in 0..workers {
                        scope.spawn(move || loop {
                            let j = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&slot) = pending.get(j) else { break };
                            let machine = &candidates[slot_candidate[slot]];
                            let record = robs.eval_retry(wi, base + j, machine, kernels, self);
                            *results[j].lock().expect("result lock never poisoned") = Some(record);
                        });
                    }
                });
            }
            // Commit in deterministic (proposal) order after the
            // barrier, so cache contents never depend on scheduling.
            // Transient failures (contained panics, exhausted budgets,
            // exceeded deadlines) are never cached: they describe this
            // attempt, not the candidate, and a poisoned entry would
            // outlive the fault.
            for (j, &slot) in pending.iter().enumerate() {
                let record = results[j]
                    .lock()
                    .expect("result lock never poisoned")
                    .take()
                    .expect("every pending slot was evaluated");
                attempts += record.attempts;
                errors.extend(record.errors);
                let outcome = record.outcome;
                let permanent = outcome.as_ref().map_or_else(|e| !e.is_transient(), |_| true);
                if permanent {
                    let key = keys[slot_candidate[slot]].clone();
                    cache.insert(key.clone(), outcome.clone());
                    committed.push((key, outcome.clone()));
                }
                slot_outcome[slot] = Some(outcome);
            }
            robs.cache_entries.set(cache.len() as u64);
        }

        let outcomes = slot_for
            .iter()
            .map(|&slot| slot_outcome[slot].clone().expect("all slots resolved"))
            .collect();
        FrontierEval { outcomes, first_occurrence, fresh, committed, attempts, errors }
    }

    /// Evaluates a single machine through the cache, updating counters.
    fn eval_one(
        &self,
        cache: &EvalCache,
        kernels: &[Kernel],
        machine: &Machine,
        counters: &mut Counters,
        robs: &RunObs,
    ) -> Result<Evaluation, EvalError> {
        let fe = self.eval_frontier(cache, kernels, std::slice::from_ref(machine), robs);
        counters.absorb(&fe, 1);
        fe.outcomes.into_iter().next().expect("one candidate, one outcome")
    }

    fn run_greedy(
        &self,
        start: &Machine,
        kernels: &[Kernel],
        cache: &EvalCache,
    ) -> Result<Trace, EvalError> {
        self.greedy_run(start, kernels, cache, None).map_err(|e| match e {
            JournalError::Eval(e) => e,
            // Unreachable without a journal sink, but keep the message.
            other => EvalError::Journaled(other.to_string()),
        })
    }

    /// Runs a greedy exploration exactly like [`Explorer::run_cached`],
    /// additionally streaming an `archex-journal/1` checkpoint journal
    /// to `sink` — one JSON line per completed round (see
    /// `docs/ROBUSTNESS.md`). A run killed at any point leaves a
    /// journal from which [`Explorer::resume`] continues bit-exactly.
    ///
    /// # Errors
    ///
    /// [`JournalError::Eval`] if the starting candidate cannot be
    /// evaluated, [`JournalError::Io`] if writing a journal line fails,
    /// [`JournalError::Unsupported`] for beam search.
    pub fn run_journaled(
        &self,
        start: &Machine,
        kernels: &[Kernel],
        cache: &EvalCache,
        sink: &mut dyn std::io::Write,
    ) -> Result<Trace, JournalError> {
        match self.strategy {
            Strategy::Greedy => {
                let mut writer = JournalWriter::new(sink);
                self.greedy_run(start, kernels, cache, Some(&mut writer))
            }
            Strategy::Beam { .. } => Err(JournalError::Unsupported(format!(
                "journaling is not supported for strategy `{}`; supported strategies: greedy",
                strategy_name(&self.strategy)
            ))),
        }
    }

    /// Resumes an exploration from a journal written by
    /// [`Explorer::run_journaled`]: validates the journal against this
    /// explorer and `start`, preloads `cache` with every journaled
    /// evaluation, restores the accepted steps and run counters, and
    /// continues from the last completed round. The resulting
    /// [`Trace`] is [`Trace::semantic_eq`] to the one the uninterrupted
    /// run would have produced.
    ///
    /// # Errors
    ///
    /// [`JournalError::Parse`] / [`JournalError::Mismatch`] when the
    /// journal is malformed or belongs to a different run,
    /// [`JournalError::Unsupported`] for beam search.
    pub fn resume(
        &self,
        start: &Machine,
        kernels: &[Kernel],
        cache: &EvalCache,
        journal: &str,
    ) -> Result<Trace, JournalError> {
        if !matches!(self.strategy, Strategy::Greedy) {
            return Err(JournalError::Unsupported(format!(
                "resume is not supported for strategy `{}`; supported strategies: greedy",
                strategy_name(&self.strategy)
            )));
        }
        let replay = Replay::parse(journal, self, start)?;
        for (key, outcome) in &replay.entries {
            cache.insert(key.clone(), outcome.clone());
        }
        let robs = RunObs::new(self);
        if replay.finished || replay.rounds.len() >= self.max_steps {
            return Ok(Trace {
                steps: replay.steps,
                machine: replay.current,
                evaluated: replay.evaluated,
                cache_hits: replay.cache_hits,
                skipped_errors: replay.skipped_errors,
                first_error: replay.first_error,
                attempts: replay.attempts,
                retried: replay.retried,
                error_histogram: replay.error_histogram,
                obs: robs.finish(replay.rounds),
            });
        }
        let current_eval = match cache.get(&EvalCache::key(&replay.current)) {
            Some(Ok(ev)) => ev,
            _ => {
                return Err(JournalError::Mismatch(
                    "journal's current machine has no cached evaluation".to_owned(),
                ))
            }
        };
        let remaining = self.max_steps - replay.rounds.len();
        let state = GreedyState {
            score: replay.steps.last().map_or(f64::INFINITY, |s| s.score),
            current: replay.current,
            current_eval,
            steps: replay.steps,
            rounds: replay.rounds,
            counters: Counters {
                evaluated: replay.evaluated,
                cache_hits: replay.cache_hits,
                skipped_errors: replay.skipped_errors,
                first_error: replay.first_error,
                attempts: replay.attempts,
                retried: replay.retried,
                error_histogram: replay.error_histogram,
            },
        };
        // The resumed tail is not re-journaled: the journal already
        // records the prefix, and the caller still holds it.
        self.greedy_loop(state, kernels, cache, &robs, remaining, None)
    }

    /// Continues a journaled exploration across process restarts. When
    /// `journal_text` holds a usable checkpoint for this explorer and
    /// `start`, the run resumes from it; when it holds none — empty, a
    /// torn first line, or a header-only stub from a run killed before
    /// its first checkpoint — the run starts fresh. Either way `sink`
    /// receives a complete, self-contained `archex-journal/2` journal
    /// for the whole run: on resume, a header plus one `snapshot`
    /// checkpoint of the replayed prefix, followed by the continued
    /// rounds.
    ///
    /// The header and snapshot land in a single buffered
    /// `write_all` + `flush` before any new evaluation starts, so a
    /// sink whose first flush is atomic — a temp file renamed over the
    /// previous journal, as `isdlc explore --journal` arranges — never
    /// exposes a journal with less information than the one it
    /// replaces.
    ///
    /// # Errors
    ///
    /// As [`Explorer::resume`] and [`Explorer::run_journaled`]: corrupt
    /// or mismatched journals are never silently replaced.
    pub fn resume_or_start_journaled(
        &self,
        start: &Machine,
        kernels: &[Kernel],
        cache: &EvalCache,
        journal_text: &str,
        sink: &mut dyn std::io::Write,
    ) -> Result<Trace, JournalError> {
        if !matches!(self.strategy, Strategy::Greedy) {
            return Err(JournalError::Unsupported(format!(
                "resume is not supported for strategy `{}`; supported strategies: greedy",
                strategy_name(&self.strategy)
            )));
        }
        let Some(replay) = Replay::parse_partial(journal_text, self, start)? else {
            return self.run_journaled(start, kernels, cache, sink);
        };
        for (key, outcome) in &replay.entries {
            cache.insert(key.clone(), outcome.clone());
        }
        let io_err = |e: std::io::Error| JournalError::Io(e.to_string());
        let mut checkpoint: Vec<u8> = Vec::new();
        let prefix_lines = {
            let mut w = JournalWriter::new(&mut checkpoint);
            w.header(self, start)?;
            w.snapshot_replay(&replay)?;
            w.lines_written()
        };
        sink.write_all(&checkpoint).map_err(io_err)?;
        sink.flush().map_err(io_err)?;
        let mut writer = JournalWriter::resuming(sink, prefix_lines);

        let robs = RunObs::new(self);
        if replay.finished || replay.rounds.len() >= self.max_steps {
            writer.done()?;
            return Ok(Trace {
                steps: replay.steps,
                machine: replay.current,
                evaluated: replay.evaluated,
                cache_hits: replay.cache_hits,
                skipped_errors: replay.skipped_errors,
                first_error: replay.first_error,
                attempts: replay.attempts,
                retried: replay.retried,
                error_histogram: replay.error_histogram,
                obs: robs.finish(replay.rounds),
            });
        }
        let current_eval = match cache.get(&EvalCache::key(&replay.current)) {
            Some(Ok(ev)) => ev,
            _ => {
                return Err(JournalError::Mismatch(
                    "journal's current machine has no cached evaluation".to_owned(),
                ))
            }
        };
        let remaining = self.max_steps - replay.rounds.len();
        let state = GreedyState {
            score: replay.steps.last().map_or(f64::INFINITY, |s| s.score),
            current: replay.current,
            current_eval,
            steps: replay.steps,
            rounds: replay.rounds,
            counters: Counters {
                evaluated: replay.evaluated,
                cache_hits: replay.cache_hits,
                skipped_errors: replay.skipped_errors,
                first_error: replay.first_error,
                attempts: replay.attempts,
                retried: replay.retried,
                error_histogram: replay.error_histogram,
            },
        };
        self.greedy_loop(state, kernels, cache, &robs, remaining, Some(&mut writer))
    }

    /// The full greedy run: initial evaluation (journaled as the `init`
    /// event), then [`Explorer::greedy_loop`].
    fn greedy_run(
        &self,
        start: &Machine,
        kernels: &[Kernel],
        cache: &EvalCache,
        mut journal: Option<&mut JournalWriter>,
    ) -> Result<Trace, JournalError> {
        let robs = RunObs::new(self);
        let mut counters = Counters::default();
        if let Some(j) = journal.as_deref_mut() {
            j.header(self, start)?;
        }
        let fe = self.eval_frontier(cache, kernels, std::slice::from_ref(start), &robs);
        counters.absorb(&fe, 1);
        let FrontierEval { outcomes, committed, .. } = fe;
        let current_eval = outcomes.into_iter().next().expect("one candidate, one outcome")?;
        let score = self.objective.score(&current_eval.metrics);
        let initial = Step {
            action: "initial".to_owned(),
            metrics: current_eval.metrics.clone(),
            score,
            profile: current_eval.profile.clone(),
        };
        if let Some(j) = journal.as_deref_mut() {
            j.init(&counters, &committed, &initial)?;
        }
        let state = GreedyState {
            current: start.clone(),
            current_eval,
            score,
            steps: vec![initial],
            rounds: Vec::new(),
            counters,
        };
        self.greedy_loop(state, kernels, cache, &robs, self.max_steps, journal)
    }

    /// The greedy round loop, shared by fresh and resumed runs.
    fn greedy_loop(
        &self,
        mut st: GreedyState,
        kernels: &[Kernel],
        cache: &EvalCache,
        robs: &RunObs,
        remaining: usize,
        mut journal: Option<&mut JournalWriter>,
    ) -> Result<Trace, JournalError> {
        // Heartbeat cadence rides the shared watchdog timer: a beat
        // becomes *due* when the deadline fires and is emitted at the
        // next round boundary. `interval_ms == 0` beats every round.
        let mut next_beat = self.progress.as_ref().and_then(|p| {
            (p.interval_ms > 0).then(|| Deadline::arm(Duration::from_millis(p.interval_ms)))
        });
        for _ in 0..remaining {
            // Cooperative shutdown lands only on round boundaries: the
            // in-flight round always completes (and journals its
            // checkpoint), and the `done` event is deliberately not
            // written, so the journal resumes from exactly here.
            if self.shutdown.as_ref().is_some_and(|f| f.load(Ordering::Relaxed)) {
                return Ok(Self::greedy_trace(st, robs));
            }
            let round_t0 = robs.registry.enabled().then(Instant::now);
            let (actions, machines): (Vec<String>, Vec<Machine>) = self
                .propose(&st.current, &st.current_eval)
                .into_iter()
                .filter_map(|m| apply_mutation(&st.current, &m).map(|c| (m.to_string(), c)))
                .unzip();
            let fe = self.eval_frontier(cache, kernels, &machines, robs);
            if let Some(t0) = round_t0 {
                robs.push_span(format!("round {}", st.rounds.len()), "explore", 0, t0);
            }
            st.counters.absorb(&fe, machines.len());
            st.rounds.push(fe.round());
            if let Some(p) = &self.progress {
                if next_beat.as_ref().is_none_or(Deadline::expired) {
                    self.heartbeat(p, &st, cache, robs, machines.len());
                    if p.interval_ms > 0 {
                        next_beat = Some(Deadline::arm(Duration::from_millis(p.interval_ms)));
                    }
                }
            }
            let FrontierEval { outcomes, committed, .. } = fe;

            // Serial reduction in proposal order: the earliest
            // strictly-best improvement wins, exactly as in a serial
            // scan.
            let mut best: Option<(usize, f64)> = None;
            for (i, outcome) in outcomes.iter().enumerate() {
                match outcome {
                    Ok(ev) => {
                        let s = self.objective.score(&ev.metrics);
                        if s < st.score - 1e-9 && best.is_none_or(|(_, bs)| s < bs) {
                            best = Some((i, s));
                        }
                    }
                    Err(e) => st.counters.skip(&actions[i], e),
                }
            }
            let Some((i, s)) = best else {
                if let Some(j) = journal.as_deref_mut() {
                    let round = st.rounds.last().expect("round just pushed");
                    j.round(round, &st.counters, &committed, None)?;
                    j.done()?;
                }
                return Ok(Self::greedy_trace(st, robs));
            };
            let Ok(ev) = outcomes.into_iter().nth(i).expect("index in range") else {
                unreachable!("best candidate came from an Ok outcome");
            };
            let step = Step {
                action: actions[i].clone(),
                metrics: ev.metrics.clone(),
                score: s,
                profile: ev.profile.clone(),
            };
            let machine = machines.into_iter().nth(i).expect("index in range");
            // The round line lands only after the round fully resolved —
            // a kill before this point simply loses the round.
            if let Some(j) = journal.as_deref_mut() {
                let round = st.rounds.last().expect("round just pushed");
                j.round(round, &st.counters, &committed, Some((&step, &machine)))?;
            }
            st.steps.push(step);
            st.current = machine;
            st.current_eval = ev;
            st.score = s;
        }
        if let Some(j) = journal {
            j.done()?;
        }
        Ok(Self::greedy_trace(st, robs))
    }

    /// Emits one progress heartbeat: an `archex-progress/1` JSONL line,
    /// an optional human one-liner, a forwarded `archex.progress` log
    /// event, and (if configured) an atomically rewritten Prometheus
    /// textfile. Heartbeats are pure telemetry — they never appear in
    /// the journal or affect [`Trace::semantic_eq`].
    fn heartbeat(
        &self,
        p: &Progress,
        st: &GreedyState,
        cache: &EvalCache,
        robs: &RunObs,
        frontier: usize,
    ) {
        let seq = robs.heartbeats.fetch_add(1, Ordering::Relaxed) + 1;
        let elapsed_s = robs.started.elapsed().as_secs_f64();
        let round = st.rounds.len();
        let evaluated = st.counters.evaluated;
        let cache_hits = st.counters.cache_hits;
        let lookups = evaluated + cache_hits;
        let hit_rate = if lookups > 0 { cache_hits as f64 / lookups as f64 } else { 0.0 };
        let evals_per_s = if elapsed_s > 0.0 { evaluated as f64 / elapsed_s } else { 0.0 };
        // Linear extrapolation over the rounds this process has seen;
        // most runs converge early, so this is an upper bound.
        let rounds_left = self.max_steps.saturating_sub(round);
        let eta_s = if round > 0 { elapsed_s / round as f64 * rounds_left as f64 } else { 0.0 };
        let mut errors = Json::obj();
        for (kind, n) in &st.counters.error_histogram {
            errors.insert(kind, *n);
        }
        let line = Json::obj()
            .with("schema", PROGRESS_SCHEMA)
            .with("seq", seq)
            .with("round", round)
            .with("max_rounds", self.max_steps)
            .with("frontier", frontier)
            .with("evaluated", evaluated)
            .with("cache_hits", cache_hits)
            .with("cache_entries", cache.len())
            .with("hit_rate", hit_rate)
            .with("evals_per_s", evals_per_s)
            .with("retried", st.counters.retried)
            .with("errors", errors)
            .with("score", st.score)
            .with("elapsed_s", elapsed_s)
            .with("eta_s", eta_s);
        if let Some(sink) = &p.jsonl {
            if let Ok(mut w) = sink.lock() {
                let _ = writeln!(w, "{line}");
                let _ = w.flush();
            }
        }
        if let Some(sink) = &p.human {
            if let Ok(mut w) = sink.lock() {
                let _ = writeln!(
                    w,
                    "[explore] round {round}/{max} | frontier {frontier} | {evaluated} evals \
                     ({evals_per_s:.1}/s) | cache {hit_pct:.0}% hit | {retried} retried | \
                     eta {eta_s:.0}s",
                    max = self.max_steps,
                    hit_pct = hit_rate * 100.0,
                    retried = st.counters.retried,
                );
                let _ = w.flush();
            }
        }
        obs::log::event_with(obs::Level::Info, "archex.progress", "heartbeat", || line);
        if let Some(path) = &p.metrics_out {
            let _ = write_atomic(path, &obs::prom::render(&robs.registry.snapshot()));
        }
    }

    fn greedy_trace(st: GreedyState, robs: &RunObs) -> Trace {
        Trace {
            steps: st.steps,
            machine: st.current,
            evaluated: st.counters.evaluated,
            cache_hits: st.counters.cache_hits,
            skipped_errors: st.counters.skipped_errors,
            first_error: st.counters.first_error,
            attempts: st.counters.attempts,
            retried: st.counters.retried,
            error_histogram: st.counters.error_histogram,
            obs: robs.finish(st.rounds),
        }
    }

    fn run_beam(
        &self,
        start: &Machine,
        kernels: &[Kernel],
        width: usize,
        cache: &EvalCache,
    ) -> Result<Trace, EvalError> {
        let mut counters = Counters::default();
        let robs = RunObs::new(self);
        let mut rounds = Vec::new();
        let initial_eval = self.eval_one(cache, kernels, start, &mut counters, &robs)?;
        let initial_score = self.objective.score(&initial_eval.metrics);
        let mut steps = vec![Step {
            action: "initial".to_owned(),
            metrics: initial_eval.metrics.clone(),
            score: initial_score,
            profile: initial_eval.profile.clone(),
        }];
        // (machine, eval, score, action that produced it)
        let mut beam = vec![(start.clone(), initial_eval, initial_score, String::new())];
        let mut best = 0usize; // index into beam of the overall best

        for _ in 0..self.max_steps {
            let round_t0 = robs.registry.enabled().then(Instant::now);
            let (actions, machines): (Vec<String>, Vec<Machine>) = beam
                .iter()
                .flat_map(|(machine, ev, _, _)| {
                    self.propose(machine, ev)
                        .into_iter()
                        .filter_map(|m| apply_mutation(machine, &m).map(|c| (m.to_string(), c)))
                })
                .unzip();
            let fe = self.eval_frontier(cache, kernels, &machines, &robs);
            if let Some(t0) = round_t0 {
                robs.push_span(format!("round {}", rounds.len()), "explore", 0, t0);
            }
            counters.absorb(&fe, machines.len());
            rounds.push(fe.round());

            // Keep the first occurrence of every structure: different
            // parents frequently reach the same machine, and clones
            // would waste beam slots on one lineage.
            let mut frontier: Vec<(Machine, Evaluation, f64, String)> = Vec::new();
            for (i, (action, machine)) in actions.into_iter().zip(machines).enumerate() {
                match &fe.outcomes[i] {
                    Ok(ev) if fe.first_occurrence[i] => {
                        let s = self.objective.score(&ev.metrics);
                        frontier.push((machine, ev.clone(), s, action));
                    }
                    Ok(_) => {} // within-frontier duplicate, deduped
                    Err(e) => counters.skip(&action, e),
                }
            }
            if frontier.is_empty() {
                break;
            }
            frontier.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
            frontier.truncate(width);
            let round_best = frontier[0].2;
            let current_best = beam[best].2;
            beam = frontier;
            best = 0;
            if round_best < current_best - 1e-9 {
                steps.push(Step {
                    action: beam[0].3.clone(),
                    metrics: beam[0].1.metrics.clone(),
                    score: round_best,
                    profile: beam[0].1.profile.clone(),
                });
            } else {
                break;
            }
        }
        let (machine, _, _, _) = beam.swap_remove(best);
        Ok(Trace {
            steps,
            machine,
            evaluated: counters.evaluated,
            cache_hits: counters.cache_hits,
            skipped_errors: counters.skipped_errors,
            first_error: counters.first_error,
            attempts: counters.attempts,
            retried: counters.retried,
            error_histogram: counters.error_histogram,
            obs: robs.finish(rounds),
        })
    }

    /// Proposes mutations guided by the utilization statistics.
    fn propose(&self, machine: &Machine, ev: &Evaluation) -> Vec<Mutation> {
        let mut out = Vec::new();
        // Aggregate dynamic counts.
        let mut counts = std::collections::HashMap::new();
        let mut instructions = 0u64;
        let mut field_busy = vec![0u64; machine.fields.len()];
        for run in &ev.kernel_stats {
            instructions += run.stats.instructions;
            for (&r, &n) in &run.op_counts {
                *counts.entry(r).or_insert(0u64) += n;
            }
            for (i, &b) in run.stats.field_busy.iter().enumerate() {
                if i < field_busy.len() {
                    field_busy[i] += b;
                }
            }
        }
        // Unused operations (never selected, or only as implicit nops).
        for (r, op) in machine.all_ops() {
            let used = counts.get(&r).copied().unwrap_or(0);
            let is_nop = machine.fields[r.field.0].nop == Some(r.op);
            if used == 0 && !is_nop {
                let _ = op;
                out.push(Mutation::RemoveOp(r));
            }
        }
        // Idle fields.
        for (fi, &busy) in field_busy.iter().enumerate() {
            if busy == 0 && machine.fields.len() > 1 {
                out.push(Mutation::RemoveField(FieldId(fi)));
            }
        }
        // Unused non-terminal options (addressing modes the workload
        // never exercises).
        let mut nt_used = std::collections::HashMap::new();
        for run in &ev.kernel_stats {
            for (&k, &n) in &run.nt_option_counts {
                *nt_used.entry(k).or_insert(0u64) += n;
            }
        }
        for (ni, nt) in machine.nonterminals.iter().enumerate() {
            if nt.options.len() < 2 {
                continue;
            }
            for oi in 0..nt.options.len() {
                if nt_used.get(&(NtId(ni), oi)).copied().unwrap_or(0) == 0 {
                    out.push(Mutation::RemoveNtOption(NtId(ni), oi));
                }
            }
        }
        // Forbid pairs of *used* cross-field operations that the
        // workload never co-issues (our code generator never co-issues
        // anything, so any used pair qualifies; keep the list small by
        // pairing the busiest ops first).
        let mut used: Vec<(OpRef, u64)> = counts
            .iter()
            .filter(|(r, &n)| n > 0 && machine.fields[r.field.0].nop != Some(r.op))
            .map(|(&r, &n)| (r, n))
            .collect();
        // Tie-break equal counts by `OpRef` order — `HashMap` iteration
        // order must never leak into the proposal list, or two
        // identically-configured runs could diverge.
        used.sort_by_key(|&(r, n)| (std::cmp::Reverse(n), r));
        used.truncate(6);
        for (i, &(a, _)) in used.iter().enumerate() {
            for &(b, _) in &used[i + 1..] {
                if a.field != b.field {
                    out.push(Mutation::ForbidPair(a, b));
                }
            }
        }
        let _ = instructions;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::workloads;

    fn toy() -> Machine {
        isdl::load(isdl::samples::TOY).expect("loads")
    }

    #[test]
    fn remove_op_remaps_references() {
        let m = toy();
        let ld = m.op_by_name("ALU", "ld").expect("ld");
        let out = apply_mutation(&m, &Mutation::RemoveOp(ld)).expect("applies");
        assert_eq!(out.fields[0].ops.len(), m.fields[0].ops.len() - 1);
        // The mac/mvacc constraint survives with shifted indices.
        assert_eq!(out.constraints.len(), 1);
        let mac = out.op_by_name("ALU", "mac").expect("mac survives");
        match &out.constraints[0] {
            Constraint::Forbid(ops) => assert!(ops.contains(&mac)),
            other => panic!("unexpected constraint {other:?}"),
        }
    }

    #[test]
    fn removing_referenced_op_drops_constraint() {
        let m = toy();
        let mac = m.op_by_name("ALU", "mac").expect("mac");
        let out = apply_mutation(&m, &Mutation::RemoveOp(mac)).expect("applies");
        assert!(out.constraints.is_empty(), "constraint on removed op dropped");
        assert!(out.share_hints.is_empty(), "hint on removed op dropped");
    }

    #[test]
    fn cannot_remove_nop_or_last_field() {
        let m = toy();
        let nop = m.op_by_name("ALU", "nop").expect("nop");
        assert!(apply_mutation(&m, &Mutation::RemoveOp(nop)).is_none());
        let mut single = m.clone();
        single.fields.truncate(1);
        assert!(apply_mutation(&single, &Mutation::RemoveField(FieldId(0))).is_none());
    }

    #[test]
    fn forbid_pair_added_once() {
        let m = toy();
        let add = m.op_by_name("ALU", "add").expect("add");
        let mv = m.op_by_name("MOVE", "mv").expect("mv");
        let out = apply_mutation(&m, &Mutation::ForbidPair(add, mv)).expect("applies");
        assert_eq!(out.constraints.len(), 2);
        assert!(apply_mutation(&out, &Mutation::ForbidPair(add, mv)).is_none());
    }

    #[test]
    fn exploration_improves_toy_on_dot_product() {
        let kernels = vec![workloads::dot_product(3)];
        let explorer = Explorer { max_steps: 6, ..Explorer::default() };
        let trace = explorer.run(&toy(), &kernels).expect("explores");
        assert!(trace.steps.len() > 1, "at least one improvement found");
        let first = trace.steps.first().expect("initial");
        let last = trace.steps.last().expect("final");
        assert!(last.score < first.score, "objective improved");
        assert!(
            last.metrics.area_cells < first.metrics.area_cells,
            "removing unused ops shrinks the die"
        );
        // The improved machine still computes the right answer (the
        // evaluator re-ran the workload at every step).
        assert!(trace.candidates_evaluated() > trace.steps.len());
    }

    #[test]
    fn eval_cache_counts_hits_and_misses() {
        let m = toy();
        let kernels = vec![workloads::dot_product(2)];
        let cache = EvalCache::new();
        let key = EvalCache::key(&m);
        assert!(cache.get(&key).is_none(), "empty cache misses");
        assert_eq!(cache.miss_count(), 1);
        let outcome = evaluate(&m, &kernels, HgenOptions::default());
        cache.insert(key.clone(), outcome);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key).is_some(), "stored outcome is returned");
        assert_eq!(cache.hit_count(), 1);
        assert_eq!(cache.miss_count(), 1);
        // Structurally identical machines share one key.
        assert_eq!(EvalCache::key(&m.clone()), key);
        assert_eq!(EvalCache::structural_hash(&m.clone()), EvalCache::structural_hash(&m));
    }

    #[test]
    fn cached_run_never_reevaluates_known_machines() {
        let kernels = vec![workloads::dot_product(2)];
        let explorer = Explorer { max_steps: 4, ..Explorer::default() };
        let cache = EvalCache::new();
        let first = explorer.run_cached(&toy(), &kernels, &cache).expect("explores");
        assert!(first.evaluated > 0);
        let second = explorer.run_cached(&toy(), &kernels, &cache).expect("explores");
        assert_eq!(second.evaluated, 0, "every candidate was already cached");
        assert_eq!(second.cache_hits, second.candidates_evaluated());
        // Counters differ (that is the point), but the search itself
        // must be unchanged: same steps, same final machine.
        assert_eq!(first.steps.len(), second.steps.len());
        assert!(
            first.steps.iter().zip(&second.steps).all(|(a, b)| a.semantic_eq(b)),
            "cache reuse preserves the steps"
        );
        assert_eq!(first.machine, second.machine, "cache reuse preserves the result");
    }

    #[test]
    fn poisoned_cache_entries_are_counted_and_reported() {
        let kernels = vec![workloads::dot_product(2)];
        let explorer = Explorer { max_steps: 4, ..Explorer::default() };
        // Find the machine the first greedy step would move to, then
        // poison its cache entry so the run must skip it.
        let clean = explorer.run(&toy(), &kernels).expect("explores");
        assert!(clean.steps.len() > 1, "need at least one improvement step");
        assert_eq!(clean.skipped_errors, 0);
        assert!(clean.first_error.is_none());

        let cache = EvalCache::new();
        let poisoned_action = clean.steps[1].action.clone();
        let step1 = clean
            .steps
            .get(1)
            .map(|_| {
                // Re-derive the machine after the first accepted step by
                // replaying the first mutation choice through the engine:
                // run with max_steps = 1 and take the resulting machine.
                Explorer { max_steps: 1, ..explorer.clone() }
                    .run(&toy(), &kernels)
                    .expect("explores")
                    .machine
            })
            .expect("step exists");
        cache
            .insert(EvalCache::key(&step1), Err(EvalError::Synthesis("injected fault".to_owned())));
        let trace = explorer.run_cached(&toy(), &kernels, &cache).expect("explores");
        assert!(trace.skipped_errors > 0, "poisoned candidate was counted");
        let first = trace.first_error.as_deref().expect("first error recorded");
        assert!(
            first.contains("injected fault") && first.starts_with(&poisoned_action),
            "error names the mutation and cause: {first}"
        );
    }

    #[test]
    fn single_candidate_frontier_uses_one_eval() {
        let kernels = vec![workloads::dot_product(2)];
        let explorer = Explorer::default();
        let robs = RunObs::new(&explorer);
        let cache = EvalCache::new();
        let m = toy();
        let fe = explorer.eval_frontier(&cache, &kernels, std::slice::from_ref(&m), &robs);
        assert_eq!(fe.fresh, 1);
        assert_eq!(fe.outcomes.len(), 1);
        assert!(fe.first_occurrence[0]);
        // Duplicate input: one fresh eval for two candidates.
        let cache = EvalCache::new();
        let fe = explorer.eval_frontier(&cache, &kernels, &[m.clone(), m], &robs);
        assert_eq!(fe.fresh, 1);
        assert_eq!(fe.outcomes.len(), 2);
        assert_eq!(fe.first_occurrence, vec![true, false]);
        let round = fe.round();
        assert_eq!(round, FrontierRound { proposed: 2, unique: 1, fresh: 1, cache_hits: 1 });
    }
}

#[cfg(test)]
mod nt_option_tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn unused_addressing_mode_is_removed() {
        // The code generator only ever emits register-direct operands,
        // so the `ind` option of TOY's SRC non-terminal is dead weight
        // the explorer should find and remove.
        let start = isdl::load(isdl::samples::TOY).expect("loads");
        assert_eq!(start.nonterminals[0].options.len(), 2);
        let kernels = vec![workloads::vector_update(3)];
        let explorer = Explorer { max_steps: 10, ..Explorer::default() };
        let trace = explorer.run(&start, &kernels).expect("explores");
        assert!(
            trace.steps.iter().any(|s| s.action.contains("remove option")),
            "steps: {:?}",
            trace.steps.iter().map(|s| s.action.clone()).collect::<Vec<_>>()
        );
        assert_eq!(trace.machine.nonterminals[0].options.len(), 1);
    }

    #[test]
    fn remove_nt_option_respects_minimum() {
        let m = isdl::load(isdl::samples::TOY).expect("loads");
        let one = apply_mutation(&m, &Mutation::RemoveNtOption(NtId(0), 1)).expect("applies");
        assert!(
            apply_mutation(&one, &Mutation::RemoveNtOption(NtId(0), 0)).is_none(),
            "the last option must stay"
        );
        assert!(apply_mutation(&m, &Mutation::RemoveNtOption(NtId(0), 9)).is_none());
    }
}

#[cfg(test)]
mod beam_tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn beam_search_matches_or_beats_greedy() {
        let start = isdl::load(isdl::samples::TOY).expect("loads");
        let kernels = vec![workloads::dot_product(2)];
        let greedy = Explorer { max_steps: 4, ..Explorer::default() }
            .run(&start, &kernels)
            .expect("greedy explores");
        let beam =
            Explorer { max_steps: 4, strategy: Strategy::Beam { width: 3 }, ..Explorer::default() }
                .run(&start, &kernels)
                .expect("beam explores");
        let g = greedy.steps.last().expect("steps").score;
        let b = beam.steps.last().expect("steps").score;
        assert!(b <= g + 1e-9, "beam ({b}) must not lose to greedy ({g})");
        assert!(
            beam.candidates_evaluated() >= greedy.candidates_evaluated(),
            "the wider search costs more evaluations"
        );
    }

    #[test]
    fn beam_frontier_dedup_turns_duplicates_into_cache_hits() {
        let start = isdl::load(isdl::samples::TOY).expect("loads");
        let kernels = vec![workloads::dot_product(2)];
        let beam =
            Explorer { max_steps: 4, strategy: Strategy::Beam { width: 3 }, ..Explorer::default() }
                .run(&start, &kernels)
                .expect("beam explores");
        // Sibling beam entries propose overlapping mutations, so the
        // deduplicated frontier must evaluate strictly fewer machines
        // than the raw candidate count.
        assert!(beam.cache_hits > 0, "duplicate candidates hit the cache");
        assert!(
            beam.evaluated < beam.candidates_evaluated(),
            "dedup reduced fresh evaluations: {} of {}",
            beam.evaluated,
            beam.candidates_evaluated()
        );
    }
}
