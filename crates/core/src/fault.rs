//! Deterministic fault injection for exploration robustness tests.
//!
//! A [`FaultPlan`] arms exactly one fault: at the `nth` *fresh*
//! evaluation of a run (cache hits don't count; fresh evaluations are
//! numbered in proposal order, so the numbering is identical at every
//! thread count), when the pipeline enters the named [`Stage`], the
//! fault fires — a real `panic!`, a synthetic divergence, or an
//! arbitrary [`EvalError`]. Tests use this to prove the explorer
//! degrades gracefully under every fault class without patching the
//! toolchain itself.

use crate::eval::{EvalError, Stage};
use std::fmt;

/// What an armed fault does when it fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// A genuine `panic!` — exercises the `catch_unwind` containment.
    Panic,
    /// A synthetic [`EvalError::SimulationDiverged`] for the current
    /// kernel.
    Diverge,
    /// An arbitrary synthetic error.
    Error(EvalError),
}

/// A single armed fault: fires at the `nth` fresh evaluation of a run,
/// on entry to `stage`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The pipeline stage the fault fires in.
    pub stage: Stage,
    /// Zero-based fresh-evaluation sequence number (proposal order).
    pub nth: usize,
    /// What happens.
    pub kind: FaultKind,
    /// How many leading *attempts* of evaluation `nth` the fault fires
    /// on. The default of 1 means a single retry succeeds; a value of
    /// `usize::MAX` makes the fault permanent for that evaluation.
    pub times: usize,
}

impl FaultPlan {
    /// A panic at the `nth` fresh evaluation, inside `stage`.
    #[must_use]
    pub fn panic_at(stage: Stage, nth: usize) -> Self {
        Self { stage, nth, kind: FaultKind::Panic, times: 1 }
    }

    /// A simulated divergence at the `nth` fresh evaluation.
    #[must_use]
    pub fn diverge_at(nth: usize) -> Self {
        Self { stage: Stage::Simulate, nth, kind: FaultKind::Diverge, times: 1 }
    }

    /// A synthetic error at the `nth` fresh evaluation, inside `stage`.
    #[must_use]
    pub fn error_at(stage: Stage, nth: usize, error: EvalError) -> Self {
        Self { stage, nth, kind: FaultKind::Error(error), times: 1 }
    }

    /// Makes the fault fire on the first `times` attempts of its
    /// evaluation instead of just the first one.
    #[must_use]
    pub fn failing(mut self, times: usize) -> Self {
        self.times = times;
        self
    }

    /// Fires the fault. `kernel` names the kernel being processed (for
    /// the synthetic divergence message).
    ///
    /// # Errors
    ///
    /// Always returns the armed error for [`FaultKind::Diverge`] /
    /// [`FaultKind::Error`].
    ///
    /// # Panics
    ///
    /// Always panics for [`FaultKind::Panic`] — that is the point.
    pub(crate) fn trigger(&self, kernel: &str) -> Result<(), EvalError> {
        match &self.kind {
            FaultKind::Panic => panic!("injected fault at stage {}", self.stage),
            FaultKind::Diverge => Err(EvalError::SimulationDiverged(kernel.to_string())),
            FaultKind::Error(e) => Err(e.clone()),
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.kind {
            FaultKind::Panic => "panic".to_string(),
            FaultKind::Diverge => "diverge".to_string(),
            FaultKind::Error(e) => format!("error `{e}`"),
        };
        write!(f, "{kind} at evaluation #{} in {}", self.nth, self.stage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_returns_the_armed_error() {
        let plan = FaultPlan::error_at(Stage::Synthesize, 0, EvalError::Synthesis("boom".into()));
        assert_eq!(plan.trigger("k"), Err(EvalError::Synthesis("boom".into())));
        let plan = FaultPlan::diverge_at(2);
        assert_eq!(plan.trigger("fir"), Err(EvalError::SimulationDiverged("fir".into())));
    }

    #[test]
    fn trigger_panics_for_panic_kind() {
        let plan = FaultPlan::panic_at(Stage::Simulate, 0);
        let r = std::panic::catch_unwind(|| plan.trigger("k"));
        assert!(r.is_err());
    }

    #[test]
    fn display_is_descriptive() {
        let plan = FaultPlan::panic_at(Stage::Gensim, 3);
        assert_eq!(plan.to_string(), "panic at evaluation #3 in gensim");
    }
}
