//! Append-only exploration journals (`archex-journal/2`) and their
//! replay — crash-safe checkpoint/resume for the Figure 1 loop.
//!
//! [`crate::Explorer::run_journaled`] streams one JSON line per
//! completed unit of work to a caller-supplied sink:
//!
//! 1. a **header** identifying the schema, the starting machine (by
//!    structural hash), and the explorer configuration;
//! 2. an **`init`** event with the initial candidate's accepted step
//!    and any cache entry it created;
//! 3. one **`round`** event per completed frontier round, carrying the
//!    round's [`crate::FrontierRound`] accounting, the cumulative run
//!    counters, every cache entry committed during the round (key =
//!    canonical ISDL text, outcome = full evaluation or rendered
//!    error), and the accepted step with the full ISDL text of the
//!    machine it moved to (`null` when no candidate improved);
//! 4. a final **`done`** event.
//!
//! # Line integrity (`/2`)
//!
//! Since `archex-journal/2`, every line wraps its event in an
//! integrity envelope:
//!
//! ```text
//! {"seq": N, "data": {…event…}, "crc": "xxxxxxxx"}
//! ```
//!
//! `seq` counts lines from 0 and `crc` is the CRC-32 (IEEE) of every
//! byte of the line before the `, "crc"` trailer. A flipped byte
//! *anywhere* in the file — not just a torn final line — is therefore
//! detected and reported with its line number as
//! [`JournalError::Corrupt`]; a duplicated or dropped line breaks the
//! sequence the same way. Only the final line may be unparseable
//! (a torn write from a kill): an append-only writer can tear nothing
//! else. The writer flushes its sink after every event, so wrapping
//! the journal file in [`SyncFile`] makes every event line an fsynced
//! checkpoint boundary.
//!
//! A **`snapshot`** event (written by [`compact`]) collapses an entire
//! journal prefix — steps, rounds, counters, cache entries, and the
//! current machine — into one resumable line.
//!
//! The `/1` reader is retained: journals written before the envelope
//! existed still parse (with only torn-final-line protection) and
//! resume bit-identically.
//!
//! [`crate::Explorer::resume`] replays the journal — preloading the
//! evaluation cache, restoring steps, rounds, and counters — and
//! continues the run, producing a final [`crate::Trace`] that is
//! `semantic_eq` to the uninterrupted run's.
//!
//! Transient errors ([`EvalError::is_transient`]) are never journaled,
//! mirroring the cache policy: a resumed run re-evaluates them.

use crate::eval::{EvalError, Evaluation, KernelRun, Metrics};
use crate::explore::{Counters, EvalCache, Explorer, FrontierRound, Objective, Step, Strategy};
use gensim::Stats;
use isdl::model::{FieldId, NtId, OpRef};
use isdl::Machine;
use obs::Json;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io;

/// Schema identifier of the journal line format. Bump the suffix on
/// breaking changes.
pub const JOURNAL_SCHEMA: &str = "archex-journal/2";

/// The previous journal schema: bare event lines with no integrity
/// envelope. Still accepted by the reader.
pub const JOURNAL_SCHEMA_V1: &str = "archex-journal/1";

/// Why journaling or resuming failed.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// The requested operation is not available for this configuration
    /// (journaling currently supports [`Strategy::Greedy`] only).
    Unsupported(String),
    /// Writing a journal line failed.
    Io(String),
    /// A complete journal line failed to parse (1-based line number).
    Parse {
        /// 1-based line number within the journal.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A journal line failed its integrity check — a CRC mismatch or a
    /// broken sequence number. The file is corrupt at that line and
    /// must not be resumed.
    Corrupt {
        /// 1-based line number within the journal.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The journal does not belong to this explorer configuration and
    /// starting machine.
    Mismatch(String),
    /// The (possibly resumed) run itself failed on its starting
    /// candidate.
    Eval(EvalError),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unsupported(m) => write!(f, "journaling unsupported: {m}"),
            Self::Io(m) => write!(f, "journal write failed: {m}"),
            Self::Parse { line, message } => {
                write!(f, "journal line {line} does not parse: {message}")
            }
            Self::Corrupt { line, message } => {
                write!(f, "journal line {line} is corrupt: {message}")
            }
            Self::Mismatch(m) => write!(f, "journal does not match this run: {m}"),
            Self::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<EvalError> for JournalError {
    fn from(e: EvalError) -> Self {
        Self::Eval(e)
    }
}

/// A [`std::fs::File`] wrapper whose `flush` is a full
/// [`std::fs::File::sync_all`]. The journal writer flushes its sink at
/// every event boundary, so journaling through a `SyncFile` makes each
/// event line durable on disk before the run continues — a kill (or
/// power cut) immediately after a round can no longer lose it.
pub struct SyncFile(pub std::fs::File);

impl io::Write for SyncFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

/// The structural-hash spelling used in headers (hex, not JSON
/// numbers — a 64-bit hash does not fit `f64` exactly).
fn start_hash(machine: &Machine) -> String {
    format!("{:016x}", EvalCache::structural_hash(machine))
}

/// The journal spelling of a strategy (also used by diagnostics).
pub(crate) fn strategy_name(s: &Strategy) -> &'static str {
    match s {
        Strategy::Greedy => "greedy",
        Strategy::Beam { .. } => "beam",
    }
}

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), bitwise — the journal
/// envelope needs integrity, not speed.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

fn stats_to_json(s: &Stats) -> Json {
    Json::obj()
        .with("cycles", s.cycles)
        .with("instructions", s.instructions)
        .with("stall_cycles", s.stall_cycles)
        .with("field_busy", s.field_busy.iter().map(|&n| Json::from(n)).collect::<Json>())
}

fn kernel_run_to_json(k: &KernelRun) -> Json {
    let mut op_counts: Vec<(OpRef, u64)> = k.op_counts.iter().map(|(&r, &n)| (r, n)).collect();
    op_counts.sort_unstable();
    let mut nt_counts: Vec<((NtId, usize), u64)> =
        k.nt_option_counts.iter().map(|(&r, &n)| (r, n)).collect();
    nt_counts.sort_unstable();
    Json::obj()
        .with("name", k.name.as_str())
        .with("stats", stats_to_json(&k.stats))
        .with(
            "op_counts",
            op_counts
                .into_iter()
                .map(|(r, n)| {
                    Json::Arr(vec![Json::from(r.field.0), Json::from(r.op), Json::from(n)])
                })
                .collect::<Json>(),
        )
        .with(
            "nt_options",
            nt_counts
                .into_iter()
                .map(|((nt, o), n)| Json::Arr(vec![Json::from(nt.0), Json::from(o), Json::from(n)]))
                .collect::<Json>(),
        )
}

/// An [`Evaluation`] as JSON. The compiled listings are not
/// serialized — nothing downstream of the explorer reads them — and
/// come back empty from [`evaluation_from_json`].
fn evaluation_to_json(ev: &Evaluation) -> Json {
    Json::obj()
        .with("metrics", ev.metrics.to_json())
        .with("kernels", ev.kernel_stats.iter().map(kernel_run_to_json).collect::<Json>())
        .with("profile", ev.profile.clone())
        .with("opt", ev.opt.clone())
}

/// Cache entries committed during one journaled unit of work:
/// key = canonical ISDL text, outcome = evaluation or permanent error.
pub(crate) type JournalEntries = Vec<(String, Result<Evaluation, EvalError>)>;

fn outcome_to_json(key: &str, outcome: &Result<Evaluation, EvalError>) -> Json {
    let j = Json::obj().with("key", key);
    match outcome {
        Ok(ev) => j.with("ok", evaluation_to_json(ev)),
        Err(e) => j.with("err", e.to_string()),
    }
}

fn entries_to_json(entries: &JournalEntries) -> Json {
    entries.iter().map(|(k, o)| outcome_to_json(k, o)).collect()
}

fn step_to_json(step: &Step) -> Json {
    Json::obj()
        .with("action", step.action.as_str())
        .with("score", step.score)
        .with("metrics", step.metrics.to_json())
        .with("profile", step.profile.clone())
}

fn round_to_json(r: &FrontierRound) -> Json {
    Json::obj()
        .with("proposed", r.proposed)
        .with("unique", r.unique)
        .with("fresh", r.fresh)
        .with("cache_hits", r.cache_hits)
}

/// Appends the cumulative run counters to an event object.
fn with_counters(j: Json, c: &Counters) -> Json {
    let mut histogram = Json::obj();
    for (kind, n) in &c.error_histogram {
        histogram.insert(kind, *n);
    }
    j.with("evaluated", c.evaluated)
        .with("cache_hits", c.cache_hits)
        .with("skipped", c.skipped_errors)
        .with("first_error", c.first_error.as_deref().map_or(Json::Null, Json::from))
        .with("attempts", c.attempts)
        .with("retried", c.retried)
        .with("error_histogram", histogram)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Streams journal events to a sink, one enveloped JSON line each.
pub(crate) struct JournalWriter<'a> {
    sink: &'a mut dyn io::Write,
    /// Sequence number of the next line.
    seq: u64,
}

impl<'a> JournalWriter<'a> {
    pub(crate) fn new(sink: &'a mut dyn io::Write) -> Self {
        Self { sink, seq: 0 }
    }

    /// A writer continuing a journal whose first `seq` lines (the
    /// checkpoint prefix) were already written to the sink.
    pub(crate) fn resuming(sink: &'a mut dyn io::Write, seq: u64) -> Self {
        Self { sink, seq }
    }

    /// How many lines this writer has produced so far.
    pub(crate) fn lines_written(&self) -> u64 {
        self.seq
    }

    /// Writes one event inside the `/2` integrity envelope and flushes
    /// the sink — every event is a checkpoint boundary (with
    /// [`SyncFile`], an fsynced one).
    fn write(&mut self, data: &Json) -> Result<(), JournalError> {
        obs::flight::note(
            "archex.journal",
            data.get_str("event").unwrap_or("header"),
            Json::obj().with("seq", self.seq),
        );
        let prefix = format!("{{\"seq\": {}, \"data\": {data}", self.seq);
        let crc = crc32(prefix.as_bytes());
        writeln!(self.sink, "{prefix}, \"crc\": \"{crc:08x}\"}}")
            .map_err(|e| JournalError::Io(e.to_string()))?;
        self.seq += 1;
        self.sink.flush().map_err(|e| JournalError::Io(e.to_string()))
    }

    pub(crate) fn header(
        &mut self,
        explorer: &Explorer,
        start: &Machine,
    ) -> Result<(), JournalError> {
        let j = Json::obj()
            .with("schema", JOURNAL_SCHEMA)
            .with("machine", start.name.as_str())
            .with("strategy", strategy_name(&explorer.strategy))
            .with("max_steps", explorer.max_steps)
            .with("max_attempts", explorer.retry.max_attempts)
            .with(
                "objective",
                Json::obj()
                    .with("runtime", explorer.objective.runtime)
                    .with("area", explorer.objective.area)
                    .with("power", explorer.objective.power),
            )
            .with("start", start_hash(start));
        self.write(&j)
    }

    pub(crate) fn init(
        &mut self,
        counters: &Counters,
        entries: &JournalEntries,
        step: &Step,
    ) -> Result<(), JournalError> {
        let j = with_counters(Json::obj().with("event", "init"), counters)
            .with("entries", entries_to_json(entries))
            .with("step", step_to_json(step));
        self.write(&j)
    }

    pub(crate) fn round(
        &mut self,
        round: &FrontierRound,
        counters: &Counters,
        entries: &JournalEntries,
        accepted: Option<(&Step, &Machine)>,
    ) -> Result<(), JournalError> {
        let j = with_counters(
            Json::obj().with("event", "round").with("round", round_to_json(round)),
            counters,
        )
        .with("entries", entries_to_json(entries))
        .with(
            "accepted",
            accepted.map_or(Json::Null, |(step, machine)| {
                step_to_json(step).with("machine", isdl::printer::print(machine))
            }),
        );
        self.write(&j)
    }

    /// Writes a replayed [`Replay`] as one `snapshot` checkpoint — the
    /// resumed-run prefix of a self-contained continuation journal.
    pub(crate) fn snapshot_replay(&mut self, replay: &Replay) -> Result<(), JournalError> {
        self.snapshot(&replay.to_core())
    }

    /// Writes the whole replayed state as one `snapshot` event (see
    /// [`compact`]).
    fn snapshot(&mut self, core: &ReplayCore) -> Result<(), JournalError> {
        let counters = Counters {
            evaluated: core.evaluated,
            cache_hits: core.cache_hits,
            skipped_errors: core.skipped_errors,
            first_error: core.first_error.clone(),
            attempts: core.attempts,
            retried: core.retried,
            error_histogram: core.error_histogram.clone(),
        };
        let j = with_counters(Json::obj().with("event", "snapshot"), &counters)
            .with("steps", core.steps.iter().map(step_to_json).collect::<Json>())
            .with("rounds", core.rounds.iter().map(round_to_json).collect::<Json>())
            .with("entries", entries_to_json(&core.entries))
            .with(
                "machine",
                core.current.as_ref().map_or(Json::Null, |m| Json::from(isdl::printer::print(m))),
            )
            .with("finished", Json::Bool(core.finished));
        self.write(&j)
    }

    pub(crate) fn done(&mut self) -> Result<(), JournalError> {
        self.write(&Json::obj().with("event", "done"))
    }
}

/// Collapses a journal — `/1` or `/2`, finished or not — into an
/// equivalent two-line `/2` journal: the (schema-upgraded) header plus
/// one `snapshot` event holding the replayed steps, rounds, counters,
/// cache entries, and current machine. Resuming the compacted journal
/// produces the same final trace as resuming the original.
///
/// Exposed on the CLI as `isdlc journal compact`.
///
/// # Errors
///
/// Exactly the parse-side errors of [`crate::Explorer::resume`]
/// (corrupt or malformed journals are never compacted), except that no
/// explorer/start validation is performed — compaction does not need
/// to know the run's configuration.
pub fn compact(journal: &str) -> Result<String, JournalError> {
    let mut events = parse_lines(journal)?.into_iter();
    let Some((header_line, mut header)) = events.next() else {
        return Err(JournalError::Mismatch("journal is empty".to_owned()));
    };
    if header.get_str("schema").is_none() {
        return Err(JournalError::Parse {
            line: header_line,
            message: "missing `schema`".to_owned(),
        });
    }
    let core = fold_events(events)?;
    if core.steps.is_empty() {
        return Err(JournalError::Mismatch(
            "journal records no initial evaluation; nothing to compact".to_owned(),
        ));
    }
    header.insert("schema", JOURNAL_SCHEMA);
    let mut out: Vec<u8> = Vec::new();
    let mut writer = JournalWriter::new(&mut out);
    writer.write(&header)?;
    writer.snapshot(&core)?;
    Ok(String::from_utf8(out).expect("journal lines are UTF-8"))
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

/// The state reconstructed from a journal: everything
/// [`crate::Explorer::resume`] needs to continue (or finish) the run.
pub(crate) struct Replay {
    pub steps: Vec<Step>,
    pub rounds: Vec<FrontierRound>,
    pub evaluated: usize,
    pub cache_hits: usize,
    pub skipped_errors: usize,
    pub first_error: Option<String>,
    pub attempts: usize,
    pub retried: usize,
    pub error_histogram: BTreeMap<String, usize>,
    /// Cache entries to preload, in journal order.
    pub entries: JournalEntries,
    /// The machine the run had moved to.
    pub current: Machine,
    /// Whether the journaled run had already finished (a `done` event,
    /// a round that accepted nothing, or `max_steps` rounds).
    pub finished: bool,
}

/// [`Replay`] before resolving against the starting machine: `current`
/// is `None` while the run never moved off its start. This is what
/// [`compact`] — which has no starting machine — works with.
#[derive(Default)]
struct ReplayCore {
    steps: Vec<Step>,
    rounds: Vec<FrontierRound>,
    evaluated: usize,
    cache_hits: usize,
    skipped_errors: usize,
    first_error: Option<String>,
    attempts: usize,
    retried: usize,
    error_histogram: BTreeMap<String, usize>,
    entries: JournalEntries,
    current: Option<Machine>,
    finished: bool,
}

fn get_usize(j: &Json, key: &str) -> Result<usize, String> {
    j.get_u64(key).map(|n| n as usize).ok_or_else(|| format!("missing number `{key}`"))
}

fn metrics_from_json(j: &Json) -> Result<Metrics, String> {
    let u = |k: &str| j.get_u64(k).ok_or_else(|| format!("missing metric `{k}`"));
    let f = |k: &str| j.get_f64(k).ok_or_else(|| format!("missing metric `{k}`"));
    Ok(Metrics {
        cycles: u("cycles")?,
        instructions: u("instructions")?,
        stall_cycles: u("stall_cycles")?,
        cycle_ns: f("cycle_ns")?,
        runtime_us: f("runtime_us")?,
        area_cells: f("area_cells")?,
        power_mw: f("power_mw")?,
        lines_of_verilog: u("lines_of_verilog")? as usize,
        synthesis_time_s: f("synthesis_time_s")?,
    })
}

fn stats_from_json(j: &Json) -> Result<Stats, String> {
    let u = |k: &str| j.get_u64(k).ok_or_else(|| format!("missing stat `{k}`"));
    let busy = j
        .get("field_busy")
        .and_then(Json::as_arr)
        .ok_or("missing `field_busy`")?
        .iter()
        .map(|v| v.as_u64().ok_or("non-numeric field_busy entry".to_string()))
        .collect::<Result<Vec<u64>, String>>()?;
    Ok(Stats {
        cycles: u("cycles")?,
        instructions: u("instructions")?,
        stall_cycles: u("stall_cycles")?,
        field_busy: busy,
    })
}

fn triples(j: &Json, key: &str) -> Result<Vec<(u64, u64, u64)>, String> {
    j.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array `{key}`"))?
        .iter()
        .map(|t| {
            let t = t.as_arr().filter(|t| t.len() == 3).ok_or("malformed count triple")?;
            Ok((
                t[0].as_u64().ok_or("non-numeric triple")?,
                t[1].as_u64().ok_or("non-numeric triple")?,
                t[2].as_u64().ok_or("non-numeric triple")?,
            ))
        })
        .collect()
}

fn kernel_run_from_json(j: &Json) -> Result<KernelRun, String> {
    let name = j.get_str("name").ok_or("missing kernel `name`")?.to_owned();
    let stats = stats_from_json(j.get("stats").ok_or("missing kernel `stats`")?)?;
    let op_counts: HashMap<OpRef, u64> = triples(j, "op_counts")?
        .into_iter()
        .map(|(f, o, n)| (OpRef { field: FieldId(f as usize), op: o as usize }, n))
        .collect();
    let nt_option_counts: HashMap<(NtId, usize), u64> = triples(j, "nt_options")?
        .into_iter()
        .map(|(nt, o, n)| ((NtId(nt as usize), o as usize), n))
        .collect();
    Ok(KernelRun { name, stats, op_counts, nt_option_counts })
}

fn evaluation_from_json(j: &Json) -> Result<Evaluation, String> {
    let metrics = metrics_from_json(j.get("metrics").ok_or("missing `metrics`")?)?;
    let kernel_stats = j
        .get("kernels")
        .and_then(Json::as_arr)
        .ok_or("missing `kernels`")?
        .iter()
        .map(kernel_run_from_json)
        .collect::<Result<Vec<KernelRun>, String>>()?;
    // `profile` and `opt` are optional: journals written before the
    // profiler (or the pass manager) existed simply resume without
    // those observational blocks.
    let profile = j.get("profile").cloned().unwrap_or(Json::Null);
    let opt = j.get("opt").cloned().unwrap_or(Json::Null);
    Ok(Evaluation {
        metrics,
        kernel_stats,
        compiled: Vec::new(),
        profile,
        netlist_stats: Json::Null,
        opt,
    })
}

fn entries_from_json(j: &Json) -> Result<JournalEntries, String> {
    j.get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing `entries`")?
        .iter()
        .map(|e| {
            let key = e.get_str("key").ok_or("entry missing `key`")?.to_owned();
            let outcome = if let Some(ok) = e.get("ok") {
                Ok(evaluation_from_json(ok)?)
            } else {
                let msg = e.get_str("err").ok_or("entry has neither `ok` nor `err`")?;
                Err(EvalError::Journaled(msg.to_owned()))
            };
            Ok((key, outcome))
        })
        .collect()
}

fn step_from_json(j: &Json) -> Result<Step, String> {
    Ok(Step {
        action: j.get_str("action").ok_or("step missing `action`")?.to_owned(),
        score: j.get_f64("score").ok_or("step missing `score`")?,
        metrics: metrics_from_json(j.get("metrics").ok_or("step missing `metrics`")?)?,
        profile: j.get("profile").cloned().unwrap_or(Json::Null),
    })
}

fn round_from_json(r: &Json) -> Result<FrontierRound, String> {
    Ok(FrontierRound {
        proposed: get_usize(r, "proposed")?,
        unique: get_usize(r, "unique")?,
        fresh: get_usize(r, "fresh")?,
        cache_hits: get_usize(r, "cache_hits")?,
    })
}

/// The `error_histogram` member, empty when absent (`/1` journals).
fn histogram_from_json(j: &Json) -> BTreeMap<String, usize> {
    match j.get("error_histogram") {
        Some(Json::Obj(members)) => members
            .iter()
            .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n as usize)))
            .collect(),
        _ => BTreeMap::new(),
    }
}

fn check_header(header: &Json, explorer: &Explorer, start: &Machine) -> Result<(), String> {
    let schema = header.get_str("schema").ok_or("missing `schema`")?;
    if schema != JOURNAL_SCHEMA && schema != JOURNAL_SCHEMA_V1 {
        return Err(format!(
            "schema `{schema}`, expected `{JOURNAL_SCHEMA}` (or `{JOURNAL_SCHEMA_V1}`)"
        ));
    }
    let strategy = header.get_str("strategy").ok_or("missing `strategy`")?;
    if strategy != strategy_name(&explorer.strategy) {
        return Err(format!(
            "journal was written by a `{strategy}` run, this explorer is `{}`",
            strategy_name(&explorer.strategy)
        ));
    }
    let steps = get_usize(header, "max_steps")?;
    if steps != explorer.max_steps {
        return Err(format!("journal max_steps {steps} != explorer {}", explorer.max_steps));
    }
    // `/1` headers have no retry policy; validate only when present.
    if let Some(a) = header.get_u64("max_attempts") {
        if a as usize != explorer.retry.max_attempts {
            return Err(format!(
                "journal max_attempts {a} != explorer {}",
                explorer.retry.max_attempts
            ));
        }
    }
    let obj = header.get("objective").ok_or("missing `objective`")?;
    let journaled = Objective {
        runtime: obj.get_f64("runtime").ok_or("missing objective weight")?,
        area: obj.get_f64("area").ok_or("missing objective weight")?,
        power: obj.get_f64("power").ok_or("missing objective weight")?,
    };
    if journaled != explorer.objective {
        return Err("objective weights differ".to_owned());
    }
    let hash = header.get_str("start").ok_or("missing `start` hash")?;
    if hash != start_hash(start) {
        return Err("starting machine differs from the journaled run's".to_owned());
    }
    Ok(())
}

/// Splits a journal into `(line number, event)` pairs, verifying the
/// `/2` integrity envelope when present.
///
/// Version dispatch is structural: a `/2` journal wraps every line in
/// the `{"seq": …` envelope the writer emits, a `/1` journal starts
/// with a bare header object. For `/2`, every line's CRC must match
/// its content and the sequence numbers must count 0, 1, 2, … — any
/// violation is [`JournalError::Corrupt`] with the line number. For
/// both versions, an unparseable *final* line is tolerated as a torn
/// write from a kill; anywhere else it is [`JournalError::Parse`].
fn parse_lines(journal: &str) -> Result<Vec<(usize, Json)>, JournalError> {
    let lines: Vec<(usize, &str)> = journal
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let v2 = lines.first().is_some_and(|(_, l)| l.starts_with("{\"seq\""));
    let mut events = Vec::with_capacity(lines.len());
    for (idx, (line_no, text)) in lines.iter().enumerate() {
        let line = *line_no;
        let j = match Json::parse(text) {
            Ok(j) => j,
            // The final line may be a torn write from a kill;
            // everything before it must be intact.
            Err(_) if idx + 1 == lines.len() => break,
            Err(message) => return Err(JournalError::Parse { line, message }),
        };
        if !v2 {
            events.push((line, j));
            continue;
        }
        // Corruption is a post-mortem situation by definition — attach
        // a flight dump so the operator sees what the process was doing
        // when it hit the bad line.
        let corrupt = |message: String| JournalError::Corrupt {
            line,
            message: format!("{message} [{}]", obs::flight::capture("journal_corrupt")),
        };
        let seq = j.get_u64("seq").ok_or_else(|| corrupt("envelope missing `seq`".to_owned()))?;
        let stated =
            j.get_str("crc").ok_or_else(|| corrupt("envelope missing `crc`".to_owned()))?;
        let data =
            j.get("data").cloned().ok_or_else(|| corrupt("envelope missing `data`".to_owned()))?;
        // The CRC covers the raw bytes of the line before the
        // `, "crc"` trailer — exactly what the writer hashed, no
        // re-rendering involved.
        let trailer =
            text.rfind(", \"crc\": \"").ok_or_else(|| corrupt("missing crc trailer".to_owned()))?;
        let computed = crc32(&text.as_bytes()[..trailer]);
        if u32::from_str_radix(stated, 16) != Ok(computed) {
            return Err(corrupt(format!(
                "CRC mismatch: line says {stated}, content hashes to {computed:08x}"
            )));
        }
        if seq != idx as u64 {
            return Err(corrupt(format!("sequence broken: expected {idx}, found {seq}")));
        }
        events.push((line, data));
    }
    Ok(events)
}

/// Folds the event lines after the header into a [`ReplayCore`].
fn fold_events(events: impl Iterator<Item = (usize, Json)>) -> Result<ReplayCore, JournalError> {
    let mut core = ReplayCore::default();
    for (line, j) in events {
        let fail = |message: String| JournalError::Parse { line, message };
        match j.get_str("event") {
            Some("init") => {
                core.evaluated = get_usize(&j, "evaluated").map_err(fail)?;
                core.cache_hits = get_usize(&j, "cache_hits").map_err(fail)?;
                core.attempts = j.get_u64("attempts").map_or(core.evaluated, |n| n as usize);
                core.retried = j.get_u64("retried").map_or(0, |n| n as usize);
                core.error_histogram = histogram_from_json(&j);
                core.entries.extend(entries_from_json(&j).map_err(fail)?);
                core.steps.push(
                    step_from_json(j.get("step").ok_or("missing `step`".to_owned()).map_err(fail)?)
                        .map_err(fail)?,
                );
            }
            Some("round") => {
                let r = j.get("round").ok_or("missing `round`".to_owned()).map_err(fail)?;
                core.rounds.push(round_from_json(r).map_err(fail)?);
                core.evaluated = get_usize(&j, "evaluated").map_err(fail)?;
                core.cache_hits = get_usize(&j, "cache_hits").map_err(fail)?;
                core.skipped_errors = get_usize(&j, "skipped").map_err(fail)?;
                core.first_error = j.get_str("first_error").map(str::to_owned);
                core.attempts = j.get_u64("attempts").map_or(core.evaluated, |n| n as usize);
                core.retried = j.get_u64("retried").map_or(0, |n| n as usize);
                core.error_histogram = histogram_from_json(&j);
                core.entries.extend(entries_from_json(&j).map_err(fail)?);
                match j.get("accepted") {
                    Some(Json::Null) => core.finished = true,
                    Some(acc) => {
                        core.steps.push(step_from_json(acc).map_err(fail)?);
                        let text = acc
                            .get_str("machine")
                            .ok_or("accepted step missing `machine`".to_owned())
                            .map_err(fail)?;
                        core.current =
                            Some(isdl::load(text).map_err(|e| {
                                fail(format!("accepted machine does not load: {e}"))
                            })?);
                    }
                    None => return Err(fail("missing `accepted`".to_owned())),
                }
            }
            Some("snapshot") => {
                core.steps = j
                    .get("steps")
                    .and_then(Json::as_arr)
                    .ok_or("snapshot missing `steps`".to_owned())
                    .map_err(fail)?
                    .iter()
                    .map(step_from_json)
                    .collect::<Result<Vec<Step>, String>>()
                    .map_err(fail)?;
                core.rounds = j
                    .get("rounds")
                    .and_then(Json::as_arr)
                    .ok_or("snapshot missing `rounds`".to_owned())
                    .map_err(fail)?
                    .iter()
                    .map(round_from_json)
                    .collect::<Result<Vec<FrontierRound>, String>>()
                    .map_err(fail)?;
                core.evaluated = get_usize(&j, "evaluated").map_err(fail)?;
                core.cache_hits = get_usize(&j, "cache_hits").map_err(fail)?;
                core.skipped_errors = get_usize(&j, "skipped").map_err(fail)?;
                core.first_error = j.get_str("first_error").map(str::to_owned);
                core.attempts = j.get_u64("attempts").map_or(core.evaluated, |n| n as usize);
                core.retried = j.get_u64("retried").map_or(0, |n| n as usize);
                core.error_histogram = histogram_from_json(&j);
                core.entries = entries_from_json(&j).map_err(fail)?;
                core.current = match j.get("machine") {
                    Some(Json::Null) | None => None,
                    Some(Json::Str(text)) => Some(
                        isdl::load(text)
                            .map_err(|e| fail(format!("snapshot machine does not load: {e}")))?,
                    ),
                    Some(_) => {
                        return Err(fail("snapshot `machine` is not a string".to_owned()));
                    }
                };
                core.finished = matches!(j.get("finished"), Some(Json::Bool(true)));
            }
            Some("done") => core.finished = true,
            Some(other) => return Err(fail(format!("unknown event `{other}`"))),
            None => return Err(fail("event line without `event`".to_owned())),
        }
    }
    Ok(core)
}

impl Replay {
    /// Parses and validates `journal` against the explorer
    /// configuration and starting machine. A partial trailing line is
    /// ignored (the writing run was killed mid-write); any other
    /// malformed line is an error, and in a `/2` journal any integrity
    /// violation — anywhere — is [`JournalError::Corrupt`].
    pub(crate) fn parse(
        journal: &str,
        explorer: &Explorer,
        start: &Machine,
    ) -> Result<Self, JournalError> {
        Self::parse_partial(journal, explorer, start)?.ok_or_else(|| {
            JournalError::Mismatch(
                "journal records no initial evaluation; nothing to resume".to_owned(),
            )
        })
    }

    /// Like [`Replay::parse`], but tolerates a journal that holds no
    /// usable checkpoint yet — empty, a torn first line, or a
    /// header-only stub from a run killed before its `init` event —
    /// returning `Ok(None)` so the caller can start fresh instead.
    /// Corruption, malformed interior lines, and a header that belongs
    /// to a *different* run remain errors: those journals must never be
    /// silently replaced.
    pub(crate) fn parse_partial(
        journal: &str,
        explorer: &Explorer,
        start: &Machine,
    ) -> Result<Option<Self>, JournalError> {
        let mut events = parse_lines(journal)?.into_iter();
        let Some((header_line, header)) = events.next() else {
            return Ok(None);
        };
        check_header(&header, explorer, start).map_err(|message| {
            if header.get_str("schema").is_some() {
                JournalError::Mismatch(message)
            } else {
                JournalError::Parse { line: header_line, message }
            }
        })?;
        let core = fold_events(events)?;
        if core.steps.is_empty() {
            return Ok(None);
        }
        let mut replay = Replay {
            steps: core.steps,
            rounds: core.rounds,
            evaluated: core.evaluated,
            cache_hits: core.cache_hits,
            skipped_errors: core.skipped_errors,
            first_error: core.first_error,
            attempts: core.attempts,
            retried: core.retried,
            error_histogram: core.error_histogram,
            entries: core.entries,
            current: core.current.unwrap_or_else(|| start.clone()),
            finished: core.finished,
        };
        if replay.rounds.len() >= explorer.max_steps {
            replay.finished = true;
        }
        Ok(Some(replay))
    }

    /// The snapshot-serializable view of this replay.
    fn to_core(&self) -> ReplayCore {
        ReplayCore {
            steps: self.steps.clone(),
            rounds: self.rounds.clone(),
            evaluated: self.evaluated,
            cache_hits: self.cache_hits,
            skipped_errors: self.skipped_errors,
            first_error: self.first_error.clone(),
            attempts: self.attempts,
            retried: self.retried,
            error_histogram: self.error_histogram.clone(),
            entries: self.entries.clone(),
            current: Some(self.current.clone()),
            finished: self.finished,
        }
    }
}
