//! Append-only exploration journals (`archex-journal/1`) and their
//! replay — crash-safe checkpoint/resume for the Figure 1 loop.
//!
//! [`crate::Explorer::run_journaled`] streams one JSON line per
//! completed unit of work to a caller-supplied sink:
//!
//! 1. a **header** identifying the schema, the starting machine (by
//!    structural hash), and the explorer configuration;
//! 2. an **`init`** event with the initial candidate's accepted step
//!    and any cache entry it created;
//! 3. one **`round`** event per completed frontier round, carrying the
//!    round's [`crate::FrontierRound`] accounting, the cumulative run
//!    counters, every cache entry committed during the round (key =
//!    canonical ISDL text, outcome = full evaluation or rendered
//!    error), and the accepted step with the full ISDL text of the
//!    machine it moved to (`null` when no candidate improved);
//! 4. a final **`done`** event.
//!
//! Every event is a single line written after its round completed, so
//! a run killed at any point leaves a journal whose complete lines
//! describe only finished work; a partial trailing line (the kill
//! landed mid-write) is ignored by the parser.
//! [`crate::Explorer::resume`] replays the journal — preloading the
//! evaluation cache, restoring steps, rounds, and counters — and
//! continues the run, producing a final [`crate::Trace`] that is
//! `semantic_eq` to the uninterrupted run's.
//!
//! Transient errors ([`EvalError::is_transient`]) are never journaled,
//! mirroring the cache policy: a resumed run re-evaluates them.

use crate::eval::{EvalError, Evaluation, KernelRun, Metrics};
use crate::explore::{Counters, EvalCache, Explorer, FrontierRound, Objective, Step, Strategy};
use gensim::Stats;
use isdl::model::{FieldId, NtId, OpRef};
use isdl::Machine;
use obs::Json;
use std::collections::HashMap;
use std::fmt;
use std::io;

/// Schema identifier of the journal line format. Bump the suffix on
/// breaking changes.
pub const JOURNAL_SCHEMA: &str = "archex-journal/1";

/// Why journaling or resuming failed.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// The requested operation is not available for this configuration
    /// (journaling currently supports [`Strategy::Greedy`] only).
    Unsupported(&'static str),
    /// Writing a journal line failed.
    Io(String),
    /// A complete journal line failed to parse (1-based line number).
    Parse {
        /// 1-based line number within the journal.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The journal does not belong to this explorer configuration and
    /// starting machine.
    Mismatch(String),
    /// The (possibly resumed) run itself failed on its starting
    /// candidate.
    Eval(EvalError),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unsupported(m) => write!(f, "journaling unsupported: {m}"),
            Self::Io(m) => write!(f, "journal write failed: {m}"),
            Self::Parse { line, message } => {
                write!(f, "journal line {line} does not parse: {message}")
            }
            Self::Mismatch(m) => write!(f, "journal does not match this run: {m}"),
            Self::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<EvalError> for JournalError {
    fn from(e: EvalError) -> Self {
        Self::Eval(e)
    }
}

/// The structural-hash spelling used in headers (hex, not JSON
/// numbers — a 64-bit hash does not fit `f64` exactly).
fn start_hash(machine: &Machine) -> String {
    format!("{:016x}", EvalCache::structural_hash(machine))
}

fn strategy_name(s: Strategy) -> &'static str {
    match s {
        Strategy::Greedy => "greedy",
        Strategy::Beam { .. } => "beam",
    }
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

fn stats_to_json(s: &Stats) -> Json {
    Json::obj()
        .with("cycles", s.cycles)
        .with("instructions", s.instructions)
        .with("stall_cycles", s.stall_cycles)
        .with("field_busy", s.field_busy.iter().map(|&n| Json::from(n)).collect::<Json>())
}

fn kernel_run_to_json(k: &KernelRun) -> Json {
    let mut op_counts: Vec<(OpRef, u64)> = k.op_counts.iter().map(|(&r, &n)| (r, n)).collect();
    op_counts.sort_unstable();
    let mut nt_counts: Vec<((NtId, usize), u64)> =
        k.nt_option_counts.iter().map(|(&r, &n)| (r, n)).collect();
    nt_counts.sort_unstable();
    Json::obj()
        .with("name", k.name.as_str())
        .with("stats", stats_to_json(&k.stats))
        .with(
            "op_counts",
            op_counts
                .into_iter()
                .map(|(r, n)| {
                    Json::Arr(vec![Json::from(r.field.0), Json::from(r.op), Json::from(n)])
                })
                .collect::<Json>(),
        )
        .with(
            "nt_options",
            nt_counts
                .into_iter()
                .map(|((nt, o), n)| Json::Arr(vec![Json::from(nt.0), Json::from(o), Json::from(n)]))
                .collect::<Json>(),
        )
}

/// An [`Evaluation`] as JSON. The compiled listings are not
/// serialized — nothing downstream of the explorer reads them — and
/// come back empty from [`evaluation_from_json`].
fn evaluation_to_json(ev: &Evaluation) -> Json {
    Json::obj()
        .with("metrics", ev.metrics.to_json())
        .with("kernels", ev.kernel_stats.iter().map(kernel_run_to_json).collect::<Json>())
        .with("profile", ev.profile.clone())
}

/// Cache entries committed during one journaled unit of work:
/// key = canonical ISDL text, outcome = evaluation or permanent error.
pub(crate) type JournalEntries = Vec<(String, Result<Evaluation, EvalError>)>;

fn outcome_to_json(key: &str, outcome: &Result<Evaluation, EvalError>) -> Json {
    let j = Json::obj().with("key", key);
    match outcome {
        Ok(ev) => j.with("ok", evaluation_to_json(ev)),
        Err(e) => j.with("err", e.to_string()),
    }
}

fn entries_to_json(entries: &JournalEntries) -> Json {
    entries.iter().map(|(k, o)| outcome_to_json(k, o)).collect()
}

fn step_to_json(step: &Step) -> Json {
    Json::obj()
        .with("action", step.action.as_str())
        .with("score", step.score)
        .with("metrics", step.metrics.to_json())
        .with("profile", step.profile.clone())
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Streams journal events to a sink, one JSON line each.
pub(crate) struct JournalWriter<'a> {
    sink: &'a mut dyn io::Write,
}

impl<'a> JournalWriter<'a> {
    pub(crate) fn new(sink: &'a mut dyn io::Write) -> Self {
        Self { sink }
    }

    fn write(&mut self, j: &Json) -> Result<(), JournalError> {
        writeln!(self.sink, "{j}").map_err(|e| JournalError::Io(e.to_string()))
    }

    pub(crate) fn header(
        &mut self,
        explorer: &Explorer,
        start: &Machine,
    ) -> Result<(), JournalError> {
        let j = Json::obj()
            .with("schema", JOURNAL_SCHEMA)
            .with("machine", start.name.as_str())
            .with("strategy", strategy_name(explorer.strategy))
            .with("max_steps", explorer.max_steps)
            .with(
                "objective",
                Json::obj()
                    .with("runtime", explorer.objective.runtime)
                    .with("area", explorer.objective.area)
                    .with("power", explorer.objective.power),
            )
            .with("start", start_hash(start));
        self.write(&j)
    }

    pub(crate) fn init(
        &mut self,
        counters: &Counters,
        entries: &JournalEntries,
        step: &Step,
    ) -> Result<(), JournalError> {
        let j = Json::obj()
            .with("event", "init")
            .with("evaluated", counters.evaluated)
            .with("cache_hits", counters.cache_hits)
            .with("entries", entries_to_json(entries))
            .with("step", step_to_json(step));
        self.write(&j)
    }

    pub(crate) fn round(
        &mut self,
        round: &FrontierRound,
        counters: &Counters,
        entries: &JournalEntries,
        accepted: Option<(&Step, &Machine)>,
    ) -> Result<(), JournalError> {
        let j = Json::obj()
            .with("event", "round")
            .with(
                "round",
                Json::obj()
                    .with("proposed", round.proposed)
                    .with("unique", round.unique)
                    .with("fresh", round.fresh)
                    .with("cache_hits", round.cache_hits),
            )
            .with("evaluated", counters.evaluated)
            .with("cache_hits", counters.cache_hits)
            .with("skipped", counters.skipped_errors)
            .with("first_error", counters.first_error.as_deref().map_or(Json::Null, Json::from))
            .with("entries", entries_to_json(entries))
            .with(
                "accepted",
                accepted.map_or(Json::Null, |(step, machine)| {
                    step_to_json(step).with("machine", isdl::printer::print(machine))
                }),
            );
        self.write(&j)
    }

    pub(crate) fn done(&mut self) -> Result<(), JournalError> {
        self.write(&Json::obj().with("event", "done"))
    }
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

/// The state reconstructed from a journal: everything
/// [`crate::Explorer::resume`] needs to continue (or finish) the run.
pub(crate) struct Replay {
    pub steps: Vec<Step>,
    pub rounds: Vec<FrontierRound>,
    pub evaluated: usize,
    pub cache_hits: usize,
    pub skipped_errors: usize,
    pub first_error: Option<String>,
    /// Cache entries to preload, in journal order.
    pub entries: JournalEntries,
    /// The machine the run had moved to.
    pub current: Machine,
    /// Whether the journaled run had already finished (a `done` event,
    /// a round that accepted nothing, or `max_steps` rounds).
    pub finished: bool,
}

fn get_usize(j: &Json, key: &str) -> Result<usize, String> {
    j.get_u64(key).map(|n| n as usize).ok_or_else(|| format!("missing number `{key}`"))
}

fn metrics_from_json(j: &Json) -> Result<Metrics, String> {
    let u = |k: &str| j.get_u64(k).ok_or_else(|| format!("missing metric `{k}`"));
    let f = |k: &str| j.get_f64(k).ok_or_else(|| format!("missing metric `{k}`"));
    Ok(Metrics {
        cycles: u("cycles")?,
        instructions: u("instructions")?,
        stall_cycles: u("stall_cycles")?,
        cycle_ns: f("cycle_ns")?,
        runtime_us: f("runtime_us")?,
        area_cells: f("area_cells")?,
        power_mw: f("power_mw")?,
        lines_of_verilog: u("lines_of_verilog")? as usize,
        synthesis_time_s: f("synthesis_time_s")?,
    })
}

fn stats_from_json(j: &Json) -> Result<Stats, String> {
    let u = |k: &str| j.get_u64(k).ok_or_else(|| format!("missing stat `{k}`"));
    let busy = j
        .get("field_busy")
        .and_then(Json::as_arr)
        .ok_or("missing `field_busy`")?
        .iter()
        .map(|v| v.as_u64().ok_or("non-numeric field_busy entry".to_string()))
        .collect::<Result<Vec<u64>, String>>()?;
    Ok(Stats {
        cycles: u("cycles")?,
        instructions: u("instructions")?,
        stall_cycles: u("stall_cycles")?,
        field_busy: busy,
    })
}

fn triples(j: &Json, key: &str) -> Result<Vec<(u64, u64, u64)>, String> {
    j.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array `{key}`"))?
        .iter()
        .map(|t| {
            let t = t.as_arr().filter(|t| t.len() == 3).ok_or("malformed count triple")?;
            Ok((
                t[0].as_u64().ok_or("non-numeric triple")?,
                t[1].as_u64().ok_or("non-numeric triple")?,
                t[2].as_u64().ok_or("non-numeric triple")?,
            ))
        })
        .collect()
}

fn kernel_run_from_json(j: &Json) -> Result<KernelRun, String> {
    let name = j.get_str("name").ok_or("missing kernel `name`")?.to_owned();
    let stats = stats_from_json(j.get("stats").ok_or("missing kernel `stats`")?)?;
    let op_counts: HashMap<OpRef, u64> = triples(j, "op_counts")?
        .into_iter()
        .map(|(f, o, n)| (OpRef { field: FieldId(f as usize), op: o as usize }, n))
        .collect();
    let nt_option_counts: HashMap<(NtId, usize), u64> = triples(j, "nt_options")?
        .into_iter()
        .map(|(nt, o, n)| ((NtId(nt as usize), o as usize), n))
        .collect();
    Ok(KernelRun { name, stats, op_counts, nt_option_counts })
}

fn evaluation_from_json(j: &Json) -> Result<Evaluation, String> {
    let metrics = metrics_from_json(j.get("metrics").ok_or("missing `metrics`")?)?;
    let kernel_stats = j
        .get("kernels")
        .and_then(Json::as_arr)
        .ok_or("missing `kernels`")?
        .iter()
        .map(kernel_run_from_json)
        .collect::<Result<Vec<KernelRun>, String>>()?;
    // `profile` is optional: journals written before the profiler
    // existed simply resume without per-candidate summaries.
    let profile = j.get("profile").cloned().unwrap_or(Json::Null);
    Ok(Evaluation {
        metrics,
        kernel_stats,
        compiled: Vec::new(),
        profile,
        netlist_stats: Json::Null,
    })
}

fn entries_from_json(j: &Json) -> Result<JournalEntries, String> {
    j.get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing `entries`")?
        .iter()
        .map(|e| {
            let key = e.get_str("key").ok_or("entry missing `key`")?.to_owned();
            let outcome = if let Some(ok) = e.get("ok") {
                Ok(evaluation_from_json(ok)?)
            } else {
                let msg = e.get_str("err").ok_or("entry has neither `ok` nor `err`")?;
                Err(EvalError::Journaled(msg.to_owned()))
            };
            Ok((key, outcome))
        })
        .collect()
}

fn step_from_json(j: &Json) -> Result<Step, String> {
    Ok(Step {
        action: j.get_str("action").ok_or("step missing `action`")?.to_owned(),
        score: j.get_f64("score").ok_or("step missing `score`")?,
        metrics: metrics_from_json(j.get("metrics").ok_or("step missing `metrics`")?)?,
        profile: j.get("profile").cloned().unwrap_or(Json::Null),
    })
}

fn check_header(header: &Json, explorer: &Explorer, start: &Machine) -> Result<(), String> {
    let schema = header.get_str("schema").ok_or("missing `schema`")?;
    if schema != JOURNAL_SCHEMA {
        return Err(format!("schema `{schema}`, expected `{JOURNAL_SCHEMA}`"));
    }
    let strategy = header.get_str("strategy").ok_or("missing `strategy`")?;
    if strategy != strategy_name(explorer.strategy) {
        return Err(format!(
            "journal was written by a `{strategy}` run, this explorer is `{}`",
            strategy_name(explorer.strategy)
        ));
    }
    let steps = get_usize(header, "max_steps")?;
    if steps != explorer.max_steps {
        return Err(format!("journal max_steps {steps} != explorer {}", explorer.max_steps));
    }
    let obj = header.get("objective").ok_or("missing `objective`")?;
    let journaled = Objective {
        runtime: obj.get_f64("runtime").ok_or("missing objective weight")?,
        area: obj.get_f64("area").ok_or("missing objective weight")?,
        power: obj.get_f64("power").ok_or("missing objective weight")?,
    };
    if journaled != explorer.objective {
        return Err("objective weights differ".to_owned());
    }
    let hash = header.get_str("start").ok_or("missing `start` hash")?;
    if hash != start_hash(start) {
        return Err("starting machine differs from the journaled run's".to_owned());
    }
    Ok(())
}

impl Replay {
    /// Parses and validates `journal` against the explorer
    /// configuration and starting machine. A partial trailing line is
    /// ignored (the writing run was killed mid-write); any other
    /// malformed line is an error.
    pub(crate) fn parse(
        journal: &str,
        explorer: &Explorer,
        start: &Machine,
    ) -> Result<Self, JournalError> {
        let lines: Vec<(usize, &str)> = journal
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .filter(|(_, l)| !l.trim().is_empty())
            .collect();
        let mut events = Vec::with_capacity(lines.len());
        for (idx, (line_no, text)) in lines.iter().enumerate() {
            match Json::parse(text) {
                Ok(j) => events.push((*line_no, j)),
                // The final line may be a torn write from a kill;
                // everything before it must be intact.
                Err(_) if idx + 1 == lines.len() => {}
                Err(message) => return Err(JournalError::Parse { line: *line_no, message }),
            }
        }
        let mut it = events.into_iter();
        let Some((header_line, header)) = it.next() else {
            return Err(JournalError::Mismatch("journal is empty".to_owned()));
        };
        check_header(&header, explorer, start).map_err(|message| {
            if header.get_str("schema").is_some() {
                JournalError::Mismatch(message)
            } else {
                JournalError::Parse { line: header_line, message }
            }
        })?;

        let mut replay = Replay {
            steps: Vec::new(),
            rounds: Vec::new(),
            evaluated: 0,
            cache_hits: 0,
            skipped_errors: 0,
            first_error: None,
            entries: Vec::new(),
            current: start.clone(),
            finished: false,
        };
        for (line, j) in it {
            let fail = |message: String| JournalError::Parse { line, message };
            match j.get_str("event") {
                Some("init") => {
                    replay.evaluated = get_usize(&j, "evaluated").map_err(fail)?;
                    replay.cache_hits = get_usize(&j, "cache_hits").map_err(fail)?;
                    replay.entries.extend(entries_from_json(&j).map_err(fail)?);
                    replay.steps.push(
                        step_from_json(
                            j.get("step").ok_or("missing `step`".to_owned()).map_err(fail)?,
                        )
                        .map_err(fail)?,
                    );
                }
                Some("round") => {
                    let r = j.get("round").ok_or("missing `round`".to_owned()).map_err(fail)?;
                    replay.rounds.push(FrontierRound {
                        proposed: get_usize(r, "proposed").map_err(fail)?,
                        unique: get_usize(r, "unique").map_err(fail)?,
                        fresh: get_usize(r, "fresh").map_err(fail)?,
                        cache_hits: get_usize(r, "cache_hits").map_err(fail)?,
                    });
                    replay.evaluated = get_usize(&j, "evaluated").map_err(fail)?;
                    replay.cache_hits = get_usize(&j, "cache_hits").map_err(fail)?;
                    replay.skipped_errors = get_usize(&j, "skipped").map_err(fail)?;
                    replay.first_error = j.get_str("first_error").map(str::to_owned);
                    replay.entries.extend(entries_from_json(&j).map_err(fail)?);
                    match j.get("accepted") {
                        Some(Json::Null) => replay.finished = true,
                        Some(acc) => {
                            replay.steps.push(step_from_json(acc).map_err(fail)?);
                            let text = acc
                                .get_str("machine")
                                .ok_or("accepted step missing `machine`".to_owned())
                                .map_err(fail)?;
                            replay.current = isdl::load(text).map_err(|e| {
                                fail(format!("accepted machine does not load: {e}"))
                            })?;
                        }
                        None => return Err(fail("missing `accepted`".to_owned())),
                    }
                }
                Some("done") => replay.finished = true,
                Some(other) => return Err(fail(format!("unknown event `{other}`"))),
                None => return Err(fail("event line without `event`".to_owned())),
            }
        }
        if replay.steps.is_empty() {
            return Err(JournalError::Mismatch(
                "journal records no initial evaluation; nothing to resume".to_owned(),
            ));
        }
        if replay.rounds.len() >= explorer.max_steps {
            replay.finished = true;
        }
        Ok(replay)
    }
}
