//! Workload kernels for the exploration loop and the benchmark
//! harness — the DSP-flavoured programs the paper's embedded-systems
//! motivation implies (dot products, FIR filters, vector updates).
//!
//! Kernels are emitted fully unrolled over a small rotating set of
//! virtual registers, so they compile for any machine with a handful
//! of registers.

use crate::compiler::{AOp, Kernel, VReg};

/// Dot product of two `n`-element vectors: `out[16+?] = Σ x[i] · y[i]`.
///
/// Data layout: `x` at addresses `0..n`, `y` at `n..2n`, result stored
/// at `2n`.
#[must_use]
pub fn dot_product(n: u64) -> Kernel {
    let mut ops = Vec::new();
    let mut data = Vec::new();
    for i in 0..n {
        data.push((i, (i + 1) as i64)); // x[i] = i+1
        data.push((n + i, 2 * (i + 1) as i64)); // y[i] = 2(i+1)
    }
    ops.push(AOp::ClearAcc);
    for i in 0..n {
        ops.push(AOp::Load { d: VReg(0), addr: i });
        ops.push(AOp::Load { d: VReg(1), addr: n + i });
        ops.push(AOp::MulAcc { a: VReg(0), b: VReg(1) });
    }
    ops.push(AOp::ReadAcc { d: VReg(2) });
    ops.push(AOp::Store { addr: 2 * n, s: VReg(2) });
    ops.push(AOp::End);
    Kernel { name: format!("dot{n}"), ops, data }
}

/// The closed-form expected result of [`dot_product`].
#[must_use]
pub fn dot_product_expected(n: u64) -> u64 {
    (1..=n).map(|i| i * 2 * i).sum()
}

/// `taps`-tap FIR filter over `samples` input samples (valid region
/// only). Coefficients at `0..taps`, input at `taps..taps+samples`,
/// outputs at `taps+samples..`.
#[must_use]
pub fn fir(taps: u64, samples: u64) -> Kernel {
    let mut ops = Vec::new();
    let mut data = Vec::new();
    for i in 0..taps {
        data.push((i, 1 + i as i64)); // simple ramp coefficients
    }
    for i in 0..samples {
        data.push((taps + i, ((i * 3 + 1) % 17) as i64));
    }
    let out_base = taps + samples;
    let outputs = samples.saturating_sub(taps - 1);
    for o in 0..outputs {
        ops.push(AOp::ClearAcc);
        for t in 0..taps {
            ops.push(AOp::Load { d: VReg(0), addr: t });
            ops.push(AOp::Load { d: VReg(1), addr: taps + o + (taps - 1 - t) });
            ops.push(AOp::MulAcc { a: VReg(0), b: VReg(1) });
        }
        ops.push(AOp::ReadAcc { d: VReg(2) });
        ops.push(AOp::Store { addr: out_base + o, s: VReg(2) });
    }
    ops.push(AOp::End);
    Kernel { name: format!("fir{taps}x{samples}"), ops, data }
}

/// Element-wise vector update `z[i] = x[i] + y[i] - c` over `n`
/// elements — exercises add/sub and load-immediate, no multiplier.
#[must_use]
pub fn vector_update(n: u64) -> Kernel {
    let mut ops = Vec::new();
    let mut data = Vec::new();
    for i in 0..n {
        data.push((i, (10 + i) as i64));
        data.push((n + i, (5 + 2 * i) as i64));
    }
    ops.push(AOp::LoadImm { d: VReg(3), v: 4 }); // c
    for i in 0..n {
        ops.push(AOp::Load { d: VReg(0), addr: i });
        ops.push(AOp::Load { d: VReg(1), addr: n + i });
        ops.push(AOp::Add { d: VReg(2), a: VReg(0), b: VReg(1) });
        ops.push(AOp::Sub { d: VReg(2), a: VReg(2), b: VReg(3) });
        ops.push(AOp::Store { addr: 2 * n + i, s: VReg(2) });
    }
    ops.push(AOp::End);
    Kernel { name: format!("vecupd{n}"), ops, data }
}

/// Fully unrolled `n × n` matrix multiply: `C = A · B` with row-major
/// matrices. `A` at `0..n²`, `B` at `n²..2n²`, `C` at `2n²..3n²`.
/// Needs only three data registers, so it compiles for any machine
/// with a MAC unit.
#[must_use]
pub fn matmul(n: u64) -> Kernel {
    let mut ops = Vec::new();
    let mut data = Vec::new();
    for i in 0..n * n {
        data.push((i, (i % 7 + 1) as i64)); // A
        data.push((n * n + i, (i % 5 + 1) as i64)); // B
    }
    for r in 0..n {
        for c in 0..n {
            ops.push(AOp::ClearAcc);
            for k in 0..n {
                ops.push(AOp::Load { d: VReg(0), addr: r * n + k });
                ops.push(AOp::Load { d: VReg(1), addr: n * n + (k * n + c) });
                ops.push(AOp::MulAcc { a: VReg(0), b: VReg(1) });
            }
            ops.push(AOp::ReadAcc { d: VReg(2) });
            ops.push(AOp::Store { addr: 2 * n * n + (r * n + c), s: VReg(2) });
        }
    }
    ops.push(AOp::End);
    Kernel { name: format!("matmul{n}"), ops, data }
}

/// Reference result of [`matmul`] for checking simulator output.
#[must_use]
pub fn matmul_expected(n: u64) -> Vec<u64> {
    let a = |i: u64| i % 7 + 1;
    let b = |i: u64| i % 5 + 1;
    let mut out = Vec::new();
    for r in 0..n {
        for c in 0..n {
            out.push((0..n).map(|k| a(r * n + k) * b(k * n + c)).sum());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gensim::{StopReason, Xsim};
    use xasm::Assembler;

    fn run_on_toy(kernel: &Kernel) -> (isdl::Machine, Vec<u64>) {
        let m = isdl::load(isdl::samples::TOY).expect("loads");
        let compiled = crate::compiler::compile(&m, kernel).expect("compiles");
        let program = Assembler::new(&m).assemble(&compiled.asm).expect("assembles");
        let mut sim = Xsim::generate(&m).expect("generates");
        sim.load_program(&program);
        assert_eq!(sim.run(1_000_000), StopReason::Halted);
        let dm = m.storage_by_name("DM").expect("DM").0;
        let dump = (0..sim.state().depth(dm)).map(|a| sim.state().read_u64(dm, a)).collect();
        (m, dump)
    }

    #[test]
    fn dot_product_computes_correctly() {
        let k = dot_product(4);
        let (_, dump) = run_on_toy(&k);
        assert_eq!(dump[8], dot_product_expected(4)); // 2*(1+4+9+16) = 60
    }

    #[test]
    fn fir_produces_valid_outputs() {
        let k = fir(3, 6);
        let (_, dump) = run_on_toy(&k);
        // Reference computation.
        let coeff: Vec<u64> = (0..3).map(|i| 1 + i).collect();
        let input: Vec<u64> = (0..6).map(|i| (i * 3 + 1) % 17).collect();
        for o in 0..4 {
            let expect: u64 = (0..3).map(|t| coeff[t] * input[o + 2 - t]).sum();
            assert_eq!(dump[9 + o], expect, "output {o}");
        }
    }

    #[test]
    fn matmul_computes_correctly() {
        let k = matmul(3);
        let (_, dump) = run_on_toy(&k);
        let expect = matmul_expected(3);
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(dump[18 + i], e, "C[{i}]");
        }
    }

    #[test]
    fn vector_update_computes_correctly() {
        let k = vector_update(3);
        let (_, dump) = run_on_toy(&k);
        for i in 0..3u64 {
            let expect = (10 + i) + (5 + 2 * i) - 4;
            assert_eq!(dump[(6 + i) as usize], expect, "element {i}");
        }
    }
}
