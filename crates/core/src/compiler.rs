//! A small retargetable code generator.
//!
//! The paper's full retargetable compiler (AVIV, reference \[2\]) is
//! explicitly out of scope; the exploration loop still needs *some*
//! way to turn one workload into code for every candidate machine.
//! This module provides it: workloads are written against an abstract
//! accumulator/register machine ([`AOp`]), and each abstract operation
//! is matched to a concrete ISDL operation by *semantic
//! fingerprinting* — inspecting the resolved RTL action, not the
//! mnemonic. Remove an operation from a candidate and compilation
//! fails (or picks an alternative), exactly the feedback the
//! exploration loop needs.
//!
//! Kernels are emitted fully unrolled, which keeps the abstraction
//! honest across machines with different branching idioms.

use isdl::model::StorageKind;
use isdl::model::{Machine, OpRef, Operation, ParamType, TokenKind};
use isdl::rtl::{BinOp, RExpr, RExprKind, RLvalue, RStmt};
use std::collections::HashMap;
use std::fmt;

/// A virtual register of the abstract machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One abstract operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AOp {
    /// `d = imm`
    LoadImm {
        /// Destination.
        d: VReg,
        /// The immediate (must fit the target's widest load-immediate).
        v: u64,
    },
    /// `d = mem[addr]`
    Load {
        /// Destination.
        d: VReg,
        /// Absolute data address.
        addr: u64,
    },
    /// `mem[addr] = s`
    Store {
        /// Data address.
        addr: u64,
        /// Source register.
        s: VReg,
    },
    /// `d = a + b`
    Add {
        /// Destination.
        d: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// `d = a - b`
    Sub {
        /// Destination.
        d: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// `acc = 0`
    ClearAcc,
    /// `acc += a * b`
    MulAcc {
        /// Left factor.
        a: VReg,
        /// Right factor.
        b: VReg,
    },
    /// `d = acc`
    ReadAcc {
        /// Destination.
        d: VReg,
    },
    /// Self-loop program end.
    End,
}

/// An abstract workload: a name and its operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// Human-readable kernel name.
    pub name: String,
    /// The abstract program.
    pub ops: Vec<AOp>,
    /// Initial data-memory contents `(address, value)`.
    pub data: Vec<(u64, i64)>,
}

/// Why a kernel could not be compiled for a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// No operation with the required semantics exists.
    MissingCapability(&'static str),
    /// More live virtual registers than machine registers.
    OutOfRegisters,
    /// The generated assembly failed to assemble (internal error or
    /// an immediate out of range for the target).
    Assemble(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingCapability(c) => write!(f, "machine lacks a `{c}` operation"),
            Self::OutOfRegisters => write!(f, "not enough registers for the kernel"),
            Self::Assemble(e) => write!(f, "assembly failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// The discovered capabilities of a machine — which concrete
/// operations implement each abstract one.
#[derive(Debug, Clone)]
pub struct Capabilities {
    /// Register-file storage and register token prefix/count.
    reg_prefix: String,
    reg_count: u64,
    load_imm: Option<(OpRef, SlotShape)>,
    load: Option<(OpRef, SlotShape)>,
    store: Option<(OpRef, SlotShape)>,
    add: Option<(OpRef, SlotShape)>,
    sub: Option<(OpRef, SlotShape)>,
    clear_acc: Option<OpRef>,
    mul_acc: Option<(OpRef, SlotShape)>,
    read_acc: Option<(OpRef, SlotShape)>,
    jump: Option<OpRef>,
}

/// How a matched operation's parameters map to abstract operands.
///
/// `args[i]` tells how to print the `i`-th assembly operand:
#[derive(Debug, Clone, PartialEq, Eq)]
struct SlotShape {
    args: Vec<ArgRole>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ArgRole {
    /// Destination register.
    Dest,
    /// First source register; if the parameter is a non-terminal, the
    /// named option wraps the register.
    SrcA(Option<String>),
    /// Second source register (same wrapping rule).
    SrcB(Option<String>),
    /// The immediate / address value.
    Value,
}

impl Capabilities {
    /// Fingerprints every operation of `machine`.
    ///
    /// # Errors
    ///
    /// Fails only when the machine has no register file / register
    /// token at all.
    pub fn discover(machine: &Machine) -> Result<Self, CompileError> {
        let rf = machine
            .storages
            .iter()
            .position(|s| s.kind == StorageKind::RegisterFile)
            .ok_or(CompileError::MissingCapability("register file"))?;
        let (reg_prefix, reg_count) = machine
            .tokens
            .iter()
            .find_map(|t| match &t.kind {
                TokenKind::Register { prefix, count } => Some((prefix.clone(), *count)),
                _ => None,
            })
            .ok_or(CompileError::MissingCapability("register token"))?;
        let mut caps = Self {
            reg_prefix,
            reg_count,
            load_imm: None,
            load: None,
            store: None,
            add: None,
            sub: None,
            clear_acc: None,
            mul_acc: None,
            read_acc: None,
            jump: None,
        };
        for (r, op) in machine.all_ops() {
            caps.classify(machine, r, op, rf);
        }
        Ok(caps)
    }

    fn classify(&mut self, machine: &Machine, r: OpRef, op: &Operation, rf: usize) {
        // Only single-assignment actions are fingerprinted (plus an
        // optional side-effect, which is ignored for matching).
        let [RStmt::Assign { lv, rhs }] = op.action.as_slice() else {
            // A PC write inside any shape is a jump candidate.
            if writes_pc(machine, op) && op.params.len() == 1 {
                self.jump.get_or_insert(r);
            }
            return;
        };
        if writes_pc(machine, op) {
            if op.params.len() == 1 {
                self.jump.get_or_insert(r);
            }
            return;
        }
        let dest = classify_dest(machine, lv, rf, op);
        match dest {
            Some(Dest::Reg(dp)) => {
                // d <- imm (possibly extended)?
                if let Some(vp) = match_imm_value(rhs) {
                    if self.load_imm.is_none() {
                        self.load_imm = shape_for(op, &[(dp, ArgRole::Dest), (vp, ArgRole::Value)])
                            .map(|s| (r, s));
                    }
                    return;
                }
                // d <- DM[addr-token]?
                if let Some(vp) = match_mem_read(machine, rhs) {
                    if self.load.is_none() {
                        self.load = shape_for(op, &[(dp, ArgRole::Dest), (vp, ArgRole::Value)])
                            .map(|s| (r, s));
                    }
                    return;
                }
                // d <- a (+|-) b?
                if let Some((kind, ap, bp)) = match_reg_binop(machine, rhs, rf, op) {
                    let wrap_a = nt_reg_option(machine, op, ap);
                    let wrap_b = nt_reg_option(machine, op, bp);
                    let shape = shape_for(
                        op,
                        &[
                            (dp, ArgRole::Dest),
                            (ap, ArgRole::SrcA(wrap_a)),
                            (bp, ArgRole::SrcB(wrap_b)),
                        ],
                    );
                    match kind {
                        BinOp::Add if self.add.is_none() => {
                            self.add = shape.map(|s| (r, s));
                        }
                        BinOp::Sub if self.sub.is_none() => {
                            self.sub = shape.map(|s| (r, s));
                        }
                        _ => {}
                    }
                    return;
                }
                // d <- ACC?
                if is_acc_read(machine, rhs) && op.params.len() == 1 && self.read_acc.is_none() {
                    self.read_acc = shape_for(op, &[(dp, ArgRole::Dest)]).map(|s| (r, s));
                }
            }
            Some(Dest::Mem(vp)) => {
                // DM[addr] <- RF[s]?
                if let Some(sp) = match_reg_read(machine, rhs, rf, op) {
                    if self.store.is_none() {
                        let wrap = nt_reg_option(machine, op, sp);
                        self.store =
                            shape_for(op, &[(vp, ArgRole::Value), (sp, ArgRole::SrcA(wrap))])
                                .map(|s| (r, s));
                    }
                }
            }
            Some(Dest::Acc) => {
                // ACC <- const 0?
                if matches!(&rhs.kind, RExprKind::Lit(v) if v.is_zero()) && op.params.is_empty() {
                    self.clear_acc.get_or_insert(r);
                    return;
                }
                // ACC <- ACC + RF[a] * RF[b]?
                if let Some((ap, bp)) = match_mac(machine, rhs, rf, op) {
                    if self.mul_acc.is_none() {
                        let wrap_a = nt_reg_option(machine, op, ap);
                        let wrap_b = nt_reg_option(machine, op, bp);
                        self.mul_acc = shape_for(
                            op,
                            &[(ap, ArgRole::SrcA(wrap_a)), (bp, ArgRole::SrcB(wrap_b))],
                        )
                        .map(|s| (r, s));
                    }
                }
            }
            None => {}
        }
    }

    /// Which abstract operations this machine supports.
    #[must_use]
    pub fn summary(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.load_imm.is_some() {
            out.push("load-imm");
        }
        if self.load.is_some() {
            out.push("load");
        }
        if self.store.is_some() {
            out.push("store");
        }
        if self.add.is_some() {
            out.push("add");
        }
        if self.sub.is_some() {
            out.push("sub");
        }
        if self.clear_acc.is_some() {
            out.push("clear-acc");
        }
        if self.mul_acc.is_some() {
            out.push("mul-acc");
        }
        if self.read_acc.is_some() {
            out.push("read-acc");
        }
        if self.jump.is_some() {
            out.push("jump");
        }
        out
    }
}

enum Dest {
    Reg(usize),
    Mem(usize),
    Acc,
}

fn writes_pc(machine: &Machine, op: &Operation) -> bool {
    fn stmt_writes_pc(machine: &Machine, s: &RStmt) -> bool {
        match s {
            RStmt::Assign { lv, .. } => lv
                .root_storage()
                .is_some_and(|sid| machine.storage(sid).kind == StorageKind::ProgramCounter),
            RStmt::If { then_body, else_body, .. } => {
                then_body.iter().chain(else_body).any(|s| stmt_writes_pc(machine, s))
            }
            RStmt::Let { .. } => false,
        }
    }
    op.action.iter().any(|s| stmt_writes_pc(machine, s))
}

fn classify_dest(machine: &Machine, lv: &RLvalue, rf: usize, op: &Operation) -> Option<Dest> {
    match lv {
        RLvalue::StorageIndexed(sid, idx) => {
            let st = machine.storage(*sid);
            if sid.0 == rf {
                if let RExprKind::Param(p) = idx.kind {
                    return Some(Dest::Reg(p));
                }
                None
            } else if st.kind == StorageKind::DataMemory {
                if let RExprKind::Param(p) = idx.kind {
                    return Some(Dest::Mem(p));
                }
                None
            } else {
                None
            }
        }
        RLvalue::Storage(sid) => {
            let st = machine.storage(*sid);
            (st.kind == StorageKind::Register && op.params.len() <= 2).then_some(Dest::Acc)
        }
        _ => None,
    }
}

/// `zext(v, _)`, `sext(v, _)`, or plain `v` where `v` is a parameter.
fn match_imm_value(e: &RExpr) -> Option<usize> {
    match &e.kind {
        RExprKind::Param(p) => Some(*p),
        RExprKind::Ext(_, inner) => match inner.kind {
            RExprKind::Param(p) => Some(p),
            _ => None,
        },
        _ => None,
    }
}

/// `DM[addr-param]`.
fn match_mem_read(machine: &Machine, e: &RExpr) -> Option<usize> {
    if let RExprKind::StorageIndexed(sid, idx) = &e.kind {
        if machine.storage(*sid).kind == StorageKind::DataMemory {
            if let RExprKind::Param(p) = idx.kind {
                return Some(p);
            }
        }
    }
    None
}

/// `RF[reg-param]` or a non-terminal parameter with a register-direct
/// option.
fn match_reg_read(machine: &Machine, e: &RExpr, rf: usize, op: &Operation) -> Option<usize> {
    match &e.kind {
        RExprKind::StorageIndexed(sid, idx) if sid.0 == rf => match idx.kind {
            RExprKind::Param(p) => Some(p),
            _ => None,
        },
        RExprKind::Param(p) => {
            // A non-terminal works if one of its options reads RF.
            nt_reg_option(machine, op, *p).map(|_| *p)
        }
        _ => None,
    }
}

/// `RF[a] OP source` for add/sub.
fn match_reg_binop(
    machine: &Machine,
    e: &RExpr,
    rf: usize,
    op: &Operation,
) -> Option<(BinOp, usize, usize)> {
    if let RExprKind::Binary(kind @ (BinOp::Add | BinOp::Sub), a, b) = &e.kind {
        let ap = match_reg_read(machine, a, rf, op)?;
        let bp = match_reg_read(machine, b, rf, op)?;
        return Some((*kind, ap, bp));
    }
    None
}

/// `ACC + RF[a] * RF[b]` (either operand order).
fn match_mac(machine: &Machine, e: &RExpr, rf: usize, op: &Operation) -> Option<(usize, usize)> {
    if let RExprKind::Binary(BinOp::Add, x, y) = &e.kind {
        for (acc_side, mul_side) in [(x, y), (y, x)] {
            if matches!(acc_side.kind, RExprKind::Storage(_)) {
                if let RExprKind::Binary(BinOp::Mul, a, b) = &mul_side.kind {
                    let ap = match_reg_read(machine, a, rf, op)?;
                    let bp = match_reg_read(machine, b, rf, op)?;
                    return Some((ap, bp));
                }
            }
        }
    }
    None
}

/// A read of a plain (non-addressed) register — the accumulator.
fn is_acc_read(machine: &Machine, e: &RExpr) -> bool {
    matches!(&e.kind, RExprKind::Storage(sid)
        if machine.storage(*sid).kind == StorageKind::Register)
}

/// If parameter `p` is a non-terminal, the name of an option that is a
/// plain register read (to wrap operands as `option(Rk)`).
fn nt_reg_option(machine: &Machine, op: &Operation, p: usize) -> Option<String> {
    match op.params.get(p)?.ty {
        ParamType::Token(_) => None,
        ParamType::NonTerminal(nt) => {
            let ntd = &machine.nonterminals[nt.0];
            ntd.options
                .iter()
                .find(|o| {
                    matches!(
                        o.value.as_ref().map(|v| &v.kind),
                        Some(RExprKind::StorageIndexed(sid, idx))
                            if machine.storage(*sid).kind == StorageKind::RegisterFile
                                && matches!(idx.kind, RExprKind::Param(0))
                    ) && o.params.len() == 1
                })
                .map(|o| o.name.clone())
        }
    }
}

/// Builds the operand printing shape if the roles cover all parameters.
fn shape_for(op: &Operation, roles: &[(usize, ArgRole)]) -> Option<SlotShape> {
    let mut args = vec![None; op.params.len()];
    for (p, role) in roles {
        if *p >= args.len() || args[*p].is_some() {
            return None;
        }
        args[*p] = Some(role.clone());
    }
    let args: Option<Vec<ArgRole>> = args.into_iter().collect();
    args.map(|args| SlotShape { args })
}

/// A compiled kernel: target assembly plus statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Compiled {
    /// The generated assembly text.
    pub asm: String,
    /// Number of target instructions emitted.
    pub instructions: usize,
}

/// Compiles `kernel` for `machine`.
///
/// # Errors
///
/// [`CompileError::MissingCapability`] when no fingerprinted operation
/// implements an abstract one, [`CompileError::OutOfRegisters`] when
/// the kernel needs more registers than the machine has.
pub fn compile(machine: &Machine, kernel: &Kernel) -> Result<Compiled, CompileError> {
    let caps = Capabilities::discover(machine)?;
    let mut regs: HashMap<VReg, u64> = HashMap::new();
    let alloc = |v: VReg, regs: &mut HashMap<VReg, u64>| -> Result<u64, CompileError> {
        if let Some(&r) = regs.get(&v) {
            return Ok(r);
        }
        let next = regs.len() as u64;
        if next >= caps.reg_count {
            return Err(CompileError::OutOfRegisters);
        }
        regs.insert(v, next);
        Ok(next)
    };
    let mut lines: Vec<String> = Vec::new();
    for aop in &kernel.ops {
        match aop {
            AOp::LoadImm { d, v } => {
                let (r, shape) =
                    caps.load_imm.as_ref().ok_or(CompileError::MissingCapability("load-imm"))?;
                let d = alloc(*d, &mut regs)?;
                lines.push(render(machine, *r, shape, &caps, Some(d), None, None, Some(*v)));
            }
            AOp::Load { d, addr } => {
                let (r, shape) =
                    caps.load.as_ref().ok_or(CompileError::MissingCapability("load"))?;
                let d = alloc(*d, &mut regs)?;
                lines.push(render(machine, *r, shape, &caps, Some(d), None, None, Some(*addr)));
            }
            AOp::Store { addr, s } => {
                let (r, shape) =
                    caps.store.as_ref().ok_or(CompileError::MissingCapability("store"))?;
                let s = alloc(*s, &mut regs)?;
                lines.push(render(machine, *r, shape, &caps, None, Some(s), None, Some(*addr)));
            }
            AOp::Add { d, a, b } => {
                let (r, shape) = caps.add.as_ref().ok_or(CompileError::MissingCapability("add"))?;
                let (a, b) = (alloc(*a, &mut regs)?, alloc(*b, &mut regs)?);
                let d = alloc(*d, &mut regs)?;
                lines.push(render(machine, *r, shape, &caps, Some(d), Some(a), Some(b), None));
            }
            AOp::Sub { d, a, b } => {
                let (r, shape) = caps.sub.as_ref().ok_or(CompileError::MissingCapability("sub"))?;
                let (a, b) = (alloc(*a, &mut regs)?, alloc(*b, &mut regs)?);
                let d = alloc(*d, &mut regs)?;
                lines.push(render(machine, *r, shape, &caps, Some(d), Some(a), Some(b), None));
            }
            AOp::ClearAcc => {
                let r = caps.clear_acc.ok_or(CompileError::MissingCapability("clear-acc"))?;
                lines.push(machine.op_name(r));
            }
            AOp::MulAcc { a, b } => {
                let (r, shape) =
                    caps.mul_acc.as_ref().ok_or(CompileError::MissingCapability("mul-acc"))?;
                let (a, b) = (alloc(*a, &mut regs)?, alloc(*b, &mut regs)?);
                lines.push(render(machine, *r, shape, &caps, None, Some(a), Some(b), None));
            }
            AOp::ReadAcc { d } => {
                let (r, shape) =
                    caps.read_acc.as_ref().ok_or(CompileError::MissingCapability("read-acc"))?;
                let d = alloc(*d, &mut regs)?;
                lines.push(render(machine, *r, shape, &caps, Some(d), None, None, None));
            }
            AOp::End => {
                let r = caps.jump.ok_or(CompileError::MissingCapability("jump"))?;
                lines.push(format!("__end: {} __end", machine.op_name(r)));
            }
        }
    }
    let mut asm = lines.join("\n");
    asm.push('\n');
    if !kernel.data.is_empty() {
        asm.push_str(".data\n");
        let mut sorted = kernel.data.clone();
        sorted.sort_by_key(|&(a, _)| a);
        for (addr, v) in sorted {
            asm.push_str(&format!(".org {addr}\n.word {v}\n"));
        }
    }
    Ok(Compiled { instructions: lines.len(), asm })
}

#[allow(clippy::too_many_arguments)]
fn render(
    machine: &Machine,
    r: OpRef,
    shape: &SlotShape,
    caps: &Capabilities,
    d: Option<u64>,
    a: Option<u64>,
    b: Option<u64>,
    value: Option<u64>,
) -> String {
    // Qualified names survive mnemonic collisions across VLIW fields.
    let mut s = machine.op_name(r);
    for (i, role) in shape.args.iter().enumerate() {
        s.push_str(if i == 0 { " " } else { ", " });
        let reg = |n: u64| format!("{}{n}", caps.reg_prefix);
        match role {
            ArgRole::Dest => s.push_str(&reg(d.expect("dest provided"))),
            ArgRole::SrcA(wrap) => {
                let r = reg(a.expect("src a provided"));
                match wrap {
                    Some(opt) => s.push_str(&format!("{opt}({r})")),
                    None => s.push_str(&r),
                }
            }
            ArgRole::SrcB(wrap) => {
                let r = reg(b.expect("src b provided"));
                match wrap {
                    Some(opt) => s.push_str(&format!("{opt}({r})")),
                    None => s.push_str(&r),
                }
            }
            ArgRole::Value => s.push_str(&value.expect("value provided").to_string()),
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdl::samples::TOY;

    fn toy() -> Machine {
        isdl::load(TOY).expect("loads")
    }

    #[test]
    fn discovers_toy_capabilities() {
        let m = toy();
        let caps = Capabilities::discover(&m).expect("discovers");
        let summary = caps.summary();
        for need in
            ["load-imm", "load", "store", "add", "sub", "clear-acc", "mul-acc", "read-acc", "jump"]
        {
            assert!(summary.contains(&need), "toy should support {need}: {summary:?}");
        }
    }

    #[test]
    fn compiles_and_runs_dot_product() {
        let m = toy();
        let kernel = Kernel {
            name: "dot2".into(),
            ops: vec![
                AOp::Load { d: VReg(0), addr: 0 },
                AOp::Load { d: VReg(1), addr: 1 },
                AOp::Load { d: VReg(2), addr: 2 },
                AOp::Load { d: VReg(3), addr: 3 },
                AOp::ClearAcc,
                AOp::MulAcc { a: VReg(0), b: VReg(2) },
                AOp::MulAcc { a: VReg(1), b: VReg(3) },
                AOp::ReadAcc { d: VReg(4) },
                AOp::Store { addr: 16, s: VReg(4) },
                AOp::End,
            ],
            data: vec![(0, 2), (1, 3), (2, 10), (3, 100)],
        };
        let compiled = compile(&m, &kernel).expect("compiles");
        assert!(compiled.asm.contains("mac"), "mac fingerprinted:\n{}", compiled.asm);
        // Execute on XSIM to prove the generated code is correct.
        let program = xasm::Assembler::new(&m).assemble(&compiled.asm).expect("assembles");
        let mut sim = gensim::Xsim::generate(&m).expect("generates");
        sim.load_program(&program);
        assert_eq!(sim.run(10_000), gensim::StopReason::Halted);
        let dm = m.storage_by_name("DM").expect("DM").0;
        assert_eq!(sim.state().read_u64(dm, 16), 2 * 10 + 3 * 100);
    }

    #[test]
    fn add_uses_nt_wrapped_operand() {
        let m = toy();
        let kernel = Kernel {
            name: "add".into(),
            ops: vec![
                AOp::LoadImm { d: VReg(0), v: 20 },
                AOp::LoadImm { d: VReg(1), v: 22 },
                AOp::Add { d: VReg(2), a: VReg(0), b: VReg(1) },
                AOp::Store { addr: 0, s: VReg(2) },
                AOp::End,
            ],
            data: vec![],
        };
        let compiled = compile(&m, &kernel).expect("compiles");
        assert!(
            compiled.asm.contains("reg(R"),
            "toy add's third operand is an NT:\n{}",
            compiled.asm
        );
        let program = xasm::Assembler::new(&m).assemble(&compiled.asm).expect("assembles");
        let mut sim = gensim::Xsim::generate(&m).expect("generates");
        sim.load_program(&program);
        assert_eq!(sim.run(10_000), gensim::StopReason::Halted);
        let dm = m.storage_by_name("DM").expect("DM").0;
        assert_eq!(sim.state().read_u64(dm, 0), 42);
    }

    #[test]
    fn missing_capability_detected() {
        // A machine without any multiply-accumulate.
        let m = isdl::load(
            r#"
            machine "nomac" { format { word 16; } }
            storage { imem IM 16 x 64; pc PC 6; regfile RF 16 x 4; dmem DM 16 x 16; }
            tokens { token REG reg("R", 4); token U8 imm(8, unsigned); }
            field F {
                op li(d: REG, v: U8) { encode { word[15:12] = 1; word[11:10] = d; word[7:0] = v; } action { RF[d] <- zext(v, 16); } }
                op jmp(t: U8) { encode { word[15:12] = 2; word[7:0] = t; } action { PC <- trunc(t, 6); } }
                op nop() { encode { word[15:12] = 0; } }
            }
            "#,
        )
        .expect("loads");
        let kernel = Kernel { name: "mac".into(), ops: vec![AOp::ClearAcc], data: vec![] };
        let e = compile(&m, &kernel).expect_err("should fail");
        assert_eq!(e, CompileError::MissingCapability("clear-acc"));
    }

    #[test]
    fn out_of_registers_detected() {
        let m = toy(); // 8 registers
        let ops: Vec<AOp> = (0..9).map(|i| AOp::LoadImm { d: VReg(i), v: u64::from(i) }).collect();
        let kernel = Kernel { name: "many".into(), ops, data: vec![] };
        assert_eq!(compile(&m, &kernel).expect_err("too many"), CompileError::OutOfRegisters);
    }
}
