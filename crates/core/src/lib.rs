#![warn(missing_docs)]

//! Architecture exploration by iterative improvement — the complete
//! Figure 1 loop of the paper.
//!
//! This crate ties the generated tools together into the methodology
//! the paper proposes:
//!
//! 1. an application (a [`compiler::Kernel`]) is compiled for the
//!    candidate by the small retargetable code generator
//!    ([`compiler`]), which matches abstract operations to the
//!    candidate's ISDL operations by semantic fingerprinting;
//! 2. the program runs on the GENSIM-generated XSIM simulator for
//!    cycle counts and utilization statistics;
//! 3. the HGEN-generated hardware model supplies the cycle length,
//!    die size, and power ([`eval`]);
//! 4. the explorer ([`explore`]) derives improvement mutations from
//!    the measurements — removing unused operations and fields, adding
//!    constraints that unlock resource sharing — and iterates until no
//!    candidate improves the objective.
//!
//! # Examples
//!
//! ```
//! use archex::explore::Explorer;
//! use archex::workloads;
//!
//! let start = isdl::load(isdl::samples::TOY)?;
//! let kernels = vec![workloads::dot_product(2)];
//! let explorer = Explorer { max_steps: 2, ..Explorer::default() };
//! let trace = explorer.run(&start, &kernels)?;
//! assert!(!trace.steps.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod compiler;
pub mod eval;
pub mod explore;
pub mod fault;
pub mod journal;
pub mod watchdog;
pub mod workloads;

pub use compiler::{compile, AOp, Capabilities, CompileError, Compiled, Kernel, VReg};
pub use eval::{
    evaluate, evaluate_contained, evaluate_with, BudgetKind, EvalError, EvalOptions, Evaluation,
    Metrics, NetlistCheck, SimBudget, Stage,
};
pub use explore::{
    apply_mutation, chrome_trace, EvalCache, ExploreObs, Explorer, FrontierRound, Mutation,
    Objective, Progress, ProgressSink, RetryPolicy, SpanRec, Step, Strategy, Trace, EXPLORE_SCHEMA,
    PROGRESS_SCHEMA,
};
pub use fault::{FaultKind, FaultPlan};
pub use journal::{compact, JournalError, SyncFile, JOURNAL_SCHEMA, JOURNAL_SCHEMA_V1};
pub use watchdog::Deadline;
