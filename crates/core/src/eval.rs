//! Candidate evaluation: one pass around the Figure 1 loop.
//!
//! A candidate architecture is evaluated by (1) compiling the workload
//! with the retargetable code generator, (2) running it on the
//! generated XSIM simulator for the cycle count and utilization
//! statistics, and (3) synthesizing the hardware model for the cycle
//! length and physical costs. Runtime = cycles × cycle length; die
//! size and power come from the technology report — exactly the
//! "Evaluation Statistics & Measurements" box of the paper's Figure 1.

use crate::compiler::{compile, CompileError, Compiled, Kernel};
use crate::fault::FaultPlan;
use crate::watchdog::Deadline;
use gensim::{Stats, StopReason, Xsim};
use hgen::{synthesize, HgenOptions};
use isdl::model::{NtId, OpRef};
use isdl::Machine;
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::Once;
use xasm::{Assembler, Disassembler, Operand};

/// A stage of the evaluation pipeline (the boxes of the paper's
/// Figure 1 loop) — used to attribute panics and to address
/// fault-injection points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Retargetable code generation.
    Compile,
    /// Assembling the generated source.
    Assemble,
    /// Simulator generation (GENSIM).
    Gensim,
    /// Running the kernel on XSIM.
    Simulate,
    /// Hardware synthesis (HGEN).
    Synthesize,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 5] =
        [Stage::Compile, Stage::Assemble, Stage::Gensim, Stage::Simulate, Stage::Synthesize];

    /// The stable lower-case name (used in journals and messages).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Compile => "compile",
            Self::Assemble => "assemble",
            Self::Gensim => "gensim",
            Self::Simulate => "simulate",
            Self::Synthesize => "synthesize",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which simulation budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// The cycle budget.
    Cycles,
    /// The retired-instruction fuel budget.
    Instructions,
}

/// Per-kernel simulation budgets: a candidate whose simulator spins
/// (a low-IPC machine, a miscompiled loop) is cut off and reported as
/// [`EvalError::BudgetExhausted`] instead of hanging the exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimBudget {
    /// Maximum cycles per kernel run.
    pub max_cycles: u64,
    /// Maximum retired instructions per kernel run (fuel).
    pub max_instructions: u64,
}

impl Default for SimBudget {
    fn default() -> Self {
        Self { max_cycles: 10_000_000, max_instructions: u64::MAX }
    }
}

/// Everything that parameterizes one evaluation besides the machine
/// and the kernels: synthesis options, budgets, fault injection,
/// profiling, the netlist cross-check, and an optional armed
/// wall-clock [`Deadline`]. Bundled so the evaluation entry points
/// keep a fixed shape as supervision knobs accrete.
#[derive(Debug, Clone, Default)]
pub struct EvalOptions<'a> {
    /// Hardware synthesis options.
    pub hgen: HgenOptions,
    /// Per-kernel simulation budgets.
    pub budget: SimBudget,
    /// Deterministic fault injection (tests only; `None` in
    /// production).
    pub fault: Option<&'a FaultPlan>,
    /// Run each kernel's simulator with cycle attribution enabled.
    pub profile: bool,
    /// Post-synthesis netlist cross-check.
    pub netlist: NetlistCheck,
    /// An armed wall-clock deadline. Checked cooperatively on entry to
    /// every stage and on the simulator fuel path; expiry surfaces as
    /// the transient [`EvalError::DeadlineExceeded`].
    pub deadline: Option<Deadline>,
}

/// Optional post-synthesis netlist cross-check: re-run every kernel on
/// the HGEN-generated netlist and require bit-identical architectural
/// state against the ILS — the hw_equivalence invariant, applied to
/// every candidate an exploration evaluates instead of only the fixed
/// test corpus. Off by default because it multiplies evaluation cost
/// by the hardware/ILS cycle ratio; see `docs/SIMULATORS.md` for which
/// backend to pick when turning it on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NetlistCheck {
    /// No cross-check (the production default).
    #[default]
    Off,
    /// Cross-check with the given netlist backend; a mismatch fails
    /// the candidate with [`EvalError::NetlistMismatch`].
    Run(vlog::SimBackend),
}

/// The merged measurements for one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Total cycles over all kernels (including stalls).
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Stall cycles included in `cycles`.
    pub stall_cycles: u64,
    /// Achievable cycle length from the hardware model, ns.
    pub cycle_ns: f64,
    /// Workload runtime: `cycles × cycle_ns`, in µs.
    pub runtime_us: f64,
    /// Die size estimate, grid cells.
    pub area_cells: f64,
    /// Dynamic power estimate at the achievable frequency, mW.
    pub power_mw: f64,
    /// Lines of generated Verilog.
    pub lines_of_verilog: usize,
    /// HGEN wall-clock time, seconds.
    pub synthesis_time_s: f64,
}

impl Metrics {
    /// Equality over everything the candidate machine determines,
    /// ignoring `synthesis_time_s` — wall-clock time differs between
    /// two otherwise identical runs.
    #[must_use]
    pub fn semantic_eq(&self, other: &Self) -> bool {
        self.cycles == other.cycles
            && self.instructions == other.instructions
            && self.stall_cycles == other.stall_cycles
            && self.cycle_ns == other.cycle_ns
            && self.runtime_us == other.runtime_us
            && self.area_cells == other.area_cells
            && self.power_mw == other.power_mw
            && self.lines_of_verilog == other.lines_of_verilog
    }

    /// The metrics as a JSON object (field names match the struct;
    /// used inside the `archex-explore/1` schema).
    #[must_use]
    pub fn to_json(&self) -> obs::Json {
        obs::Json::obj()
            .with("cycles", self.cycles)
            .with("instructions", self.instructions)
            .with("stall_cycles", self.stall_cycles)
            .with("cycle_ns", self.cycle_ns)
            .with("runtime_us", self.runtime_us)
            .with("area_cells", self.area_cells)
            .with("power_mw", self.power_mw)
            .with("lines_of_verilog", self.lines_of_verilog)
            .with("synthesis_time_s", self.synthesis_time_s)
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles ({} stalls) x {:.1} ns = {:.2} us | {} cells | {:.1} mW",
            self.cycles,
            self.stall_cycles,
            self.cycle_ns,
            self.runtime_us,
            self.area_cells as u64,
            self.power_mw
        )
    }
}

/// One kernel's measured run.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Kernel name.
    pub name: String,
    /// Cycle/instruction/stall counters and field utilization.
    pub stats: Stats,
    /// Per-operation execution counts.
    pub op_counts: HashMap<OpRef, u64>,
    /// Static occurrence count of each non-terminal option in the
    /// compiled program (feeds the remove-unused-addressing-mode
    /// mutation).
    pub nt_option_counts: HashMap<(NtId, usize), u64>,
}

/// Counts non-terminal option occurrences in an assembled program.
fn count_nt_options(machine: &Machine, program: &xasm::Program) -> HashMap<(NtId, usize), u64> {
    // An undecodable machine yields no counts (the mutation that feeds
    // on them simply proposes nothing).
    let Ok(d) = Disassembler::try_new(machine) else {
        return HashMap::new();
    };
    let mut out = HashMap::new();
    let mut addr = 0u64;
    while (addr as usize) < program.words.len() {
        let end = (addr as usize + d.max_size() as usize).min(program.words.len());
        let Ok(instr) = d.decode(&program.words[addr as usize..end], addr) else {
            addr += 1;
            continue;
        };
        for op in &instr.ops {
            for arg in &op.args {
                count_operand(arg, &mut out);
            }
        }
        addr += u64::from(instr.size);
    }
    out
}

fn count_operand(arg: &Operand, out: &mut HashMap<(NtId, usize), u64>) {
    if let Operand::NonTerminal { nt, option, args } = arg {
        *out.entry((*nt, *option)).or_insert(0) += 1;
        for a in args {
            count_operand(a, out);
        }
    }
}

/// A full evaluation: metrics plus the raw per-kernel outputs.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The merged measurements.
    pub metrics: Metrics,
    /// Per-kernel simulator statistics (utilization feeds mutations).
    pub kernel_stats: Vec<KernelRun>,
    /// The compiled kernels (for inspection / listings).
    pub compiled: Vec<Compiled>,
    /// Compact per-kernel cycle-attribution summary (top regions by
    /// cycles, top stalled PCs with causes), or `Json::Null` when the
    /// evaluation ran unprofiled. Excluded from every `semantic_eq`.
    pub profile: obs::Json,
    /// Per-kernel `vlog-stats/1` blocks from the netlist cross-check,
    /// or `Json::Null` when the check was [`NetlistCheck::Off`].
    /// Observational, like `profile`.
    pub netlist_stats: obs::Json,
    /// The RTL middle-end's `opt` block (schedule, per-pass
    /// sub-blocks, and counters — the `opt` object of `xsim-stats/1`)
    /// from the first kernel's simulator. The pipeline runs once per
    /// (operation, phase), so every kernel of a candidate reports the
    /// same block. Observational, like `profile`.
    pub opt: obs::Json,
}

/// Why a candidate failed evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The workload does not compile for this candidate.
    Compile(String, CompileError),
    /// Generated assembly failed to assemble (an internal error).
    Assemble(String),
    /// The simulation stopped abnormally (illegal instruction, PC out
    /// of range, execution fault).
    SimulationDiverged(String),
    /// Simulator generation failed (missing PC / instruction memory /
    /// inconsistent encodings).
    Gensim(String),
    /// Hardware synthesis failed.
    Synthesis(String),
    /// A stage of the toolchain panicked; the panic was contained and
    /// the candidate skipped. *Transient*: never cached, because a
    /// panic may be environmental (e.g. a debug assertion tripped by a
    /// build-mode difference) rather than a property of the machine.
    ToolchainPanic {
        /// The pipeline stage that panicked.
        stage: Stage,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A kernel run exhausted its [`SimBudget`]. *Transient*: a bigger
    /// budget might pass, so the outcome is not cached.
    BudgetExhausted {
        /// The kernel that ran out.
        kernel: String,
        /// Which budget ran out.
        kind: BudgetKind,
    },
    /// The generated netlist disagreed with the ILS on final
    /// architectural state during a [`NetlistCheck`] run — a generator
    /// bug, the worst kind of silent wrong answer.
    NetlistMismatch {
        /// The kernel whose final state diverged.
        kernel: String,
        /// Which storage/cell differed (or why the netlist failed to
        /// elaborate or run).
        message: String,
    },
    /// The evaluation's wall-clock [`Deadline`] expired. *Transient*:
    /// elapsed wall-clock time is a property of this attempt (machine
    /// load, scheduling), not of the candidate, so the outcome is
    /// never cached or journaled — a retry or a later run with a
    /// larger deadline re-evaluates the candidate.
    DeadlineExceeded {
        /// The stage that observed the expiry.
        stage: Stage,
        /// Wall-clock milliseconds elapsed when the expiry was
        /// observed.
        elapsed_ms: u64,
    },
    /// An error replayed from a journal, preserved as its rendered
    /// message (the structured form is not serialized).
    Journaled(String),
}

impl EvalError {
    /// Whether this failure is *transient* — possibly an artifact of
    /// the run (budget too small, environmental panic) rather than a
    /// property of the candidate machine. Transient errors are never
    /// persisted in the [`crate::EvalCache`] or a journal, so a later
    /// run (or a retry with a bigger budget) re-evaluates the
    /// candidate.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Self::ToolchainPanic { .. }
                | Self::BudgetExhausted { .. }
                | Self::DeadlineExceeded { .. }
        )
    }

    /// The stable per-variant key used by `Trace::error_histogram`
    /// (and the `archex-explore/1` / `bench/1` schemas).
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Self::Compile(..) => "compile",
            Self::Assemble(_) => "assemble",
            Self::SimulationDiverged(_) => "simulation_diverged",
            Self::Gensim(_) => "gensim",
            Self::Synthesis(_) => "synthesis",
            Self::ToolchainPanic { .. } => "toolchain_panic",
            Self::BudgetExhausted { .. } => "budget_exhausted",
            Self::NetlistMismatch { .. } => "netlist_mismatch",
            Self::DeadlineExceeded { .. } => "deadline_exceeded",
            Self::Journaled(_) => "journaled",
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Compile(k, e) => write!(f, "kernel `{k}` does not compile: {e}"),
            Self::Assemble(e) => write!(f, "assembly failed: {e}"),
            Self::SimulationDiverged(k) => write!(f, "kernel `{k}` did not halt"),
            Self::Gensim(e) => write!(f, "simulator generation failed: {e}"),
            Self::Synthesis(e) => write!(f, "hardware synthesis failed: {e}"),
            Self::ToolchainPanic { stage, message } => {
                write!(f, "toolchain panicked during {stage}: {message}")
            }
            Self::BudgetExhausted { kernel, kind: BudgetKind::Cycles } => {
                write!(f, "kernel `{kernel}` exhausted its cycle budget")
            }
            Self::BudgetExhausted { kernel, kind: BudgetKind::Instructions } => {
                write!(f, "kernel `{kernel}` exhausted its instruction fuel")
            }
            Self::NetlistMismatch { kernel, message } => {
                write!(f, "netlist cross-check failed on kernel `{kernel}`: {message}")
            }
            Self::DeadlineExceeded { stage, elapsed_ms } => {
                write!(f, "wall-clock deadline exceeded during {stage} after {elapsed_ms} ms")
            }
            Self::Journaled(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for EvalError {}

thread_local! {
    /// The pipeline stage the current thread is executing, for panic
    /// attribution.
    static CURRENT_STAGE: Cell<Option<Stage>> = const { Cell::new(None) };
    /// Whether panics on this thread are being contained (suppresses
    /// the default hook's stderr backtrace spam).
    static CONTAINED: Cell<bool> = const { Cell::new(false) };
    /// The flight-dump reference taken by the contained panic hook
    /// while it still had the panic location, handed back to
    /// [`evaluate_contained`] for the diagnostic log event. It is
    /// deliberately *not* embedded in the error message: those messages
    /// feed `Trace::first_error` and the journal, which must stay
    /// byte-identical across thread counts, while dump paths and tails
    /// are scheduling-dependent.
    static PANIC_CAPTURE: Cell<Option<String>> = const { Cell::new(None) };
}

/// Chains a panic hook that stays silent while a panic is being
/// contained on the panicking thread, and defers to the previous hook
/// otherwise. Installed once per process. While containing, the hook
/// is the one place that still sees the panic *location*, so it
/// records the site on the flight ring and takes a dump whose tail
/// names the stage that was executing.
fn install_contained_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if CONTAINED.with(Cell::get) {
                let stage = CURRENT_STAGE.with(Cell::get).map_or("?", Stage::name);
                let location = info.location().map_or_else(String::new, ToString::to_string);
                obs::flight::note(
                    "eval.panic",
                    stage,
                    obs::Json::obj().with("location", location.as_str()),
                );
                PANIC_CAPTURE.with(|c| c.set(Some(obs::flight::capture("toolchain_panic"))));
            } else {
                prev(info);
            }
        }));
    });
}

/// Marks entry into `stage` (for panic attribution and the flight
/// recorder), enforces the wall-clock deadline, and triggers a
/// matching injected fault, if any.
fn enter_stage(stage: Stage, opts: &EvalOptions<'_>, kernel: &str) -> Result<(), EvalError> {
    CURRENT_STAGE.with(|c| c.set(Some(stage)));
    obs::flight::note("eval.stage", stage.name(), obs::Json::obj().with("kernel", kernel));
    if let Some(d) = &opts.deadline {
        if d.expired() {
            // The dump is the diagnostic here — `DeadlineExceeded`
            // carries no message, but the file (when a dump dir is
            // configured) shows what every worker was doing when the
            // clock ran out.
            let _ = obs::flight::capture("deadline_exceeded");
            return Err(EvalError::DeadlineExceeded { stage, elapsed_ms: d.elapsed_ms() });
        }
    }
    match opts.fault {
        Some(f) if f.stage == stage => f.trigger(kernel),
        _ => Ok(()),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluates `machine` on the given kernels with the default
/// [`SimBudget`] and no fault injection.
///
/// # Errors
///
/// See [`EvalError`]; exploration treats any error as "candidate
/// infeasible".
pub fn evaluate(
    machine: &Machine,
    kernels: &[Kernel],
    hgen_options: HgenOptions,
) -> Result<Evaluation, EvalError> {
    evaluate_with(machine, kernels, &EvalOptions { hgen: hgen_options, ..EvalOptions::default() })
}

/// Evaluates `machine` with panic containment: any panic inside the
/// compile→assemble→simulate→synthesize pipeline is caught and
/// reported as [`EvalError::ToolchainPanic`] naming the stage, so a
/// single broken candidate cannot take down an exploration run.
///
/// # Errors
///
/// See [`EvalError`].
pub fn evaluate_contained(
    machine: &Machine,
    kernels: &[Kernel],
    opts: &EvalOptions<'_>,
) -> Result<Evaluation, EvalError> {
    install_contained_panic_hook();
    CONTAINED.with(|c| c.set(true));
    let outcome =
        std::panic::catch_unwind(AssertUnwindSafe(|| evaluate_with(machine, kernels, opts)));
    CONTAINED.with(|c| c.set(false));
    let stage = CURRENT_STAGE.with(Cell::take);
    match outcome {
        Ok(r) => r,
        Err(payload) => {
            let stage = stage.unwrap_or(Stage::Compile);
            let message = panic_message(payload.as_ref());
            if let Some(note) = PANIC_CAPTURE.with(Cell::take) {
                obs::log::event_with(obs::Level::Warn, "eval.panic", "contained", || {
                    obs::Json::obj()
                        .with("stage", stage.name())
                        .with("message", message.as_str())
                        .with("flight", note.as_str())
                });
            }
            Err(EvalError::ToolchainPanic { stage, message })
        }
    }
}

/// Evaluates `machine` on the given kernels under explicit
/// [`EvalOptions`]: budgets, fault injection, profiling, the netlist
/// cross-check, and an optional wall-clock deadline. Panics are *not*
/// contained here — use [`evaluate_contained`] for that. When
/// `opts.profile` is set each kernel's simulator runs with cycle
/// attribution enabled and the returned [`Evaluation::profile`]
/// carries the compact summary. When `opts.netlist` is
/// [`NetlistCheck::Run`] each kernel is replayed on the generated
/// netlist after synthesis and the final architectural state must
/// match the ILS bit-for-bit.
///
/// # Errors
///
/// See [`EvalError`]; exploration treats any error as "candidate
/// infeasible".
#[allow(clippy::too_many_lines)]
pub fn evaluate_with(
    machine: &Machine,
    kernels: &[Kernel],
    opts: &EvalOptions<'_>,
) -> Result<Evaluation, EvalError> {
    let (hgen_options, budget, profile, netlist) =
        (opts.hgen, opts.budget, opts.profile, opts.netlist);
    let assembler = Assembler::new(machine);
    let mut total = Stats::default();
    let mut kernel_stats = Vec::new();
    let mut compiled_all = Vec::new();
    let mut kernel_profiles = Vec::new();
    let mut opt_block = obs::Json::Null;
    let mut check_runs: Vec<(xasm::Program, Xsim<'_>)> = Vec::new();
    for kernel in kernels {
        enter_stage(Stage::Compile, opts, &kernel.name)?;
        let compiled =
            compile(machine, kernel).map_err(|e| EvalError::Compile(kernel.name.clone(), e))?;
        enter_stage(Stage::Assemble, opts, &kernel.name)?;
        let program =
            assembler.assemble(&compiled.asm).map_err(|e| EvalError::Assemble(e.to_string()))?;
        enter_stage(Stage::Gensim, opts, &kernel.name)?;
        let mut sim = Xsim::generate(machine).map_err(|e| EvalError::Gensim(e.to_string()))?;
        sim.load_program(&program);
        if profile {
            sim.enable_profile();
        }
        if let Some(d) = &opts.deadline {
            sim.set_cancel(d.flag());
        }
        enter_stage(Stage::Simulate, opts, &kernel.name)?;
        match sim.run_fuel(budget.max_cycles, budget.max_instructions) {
            StopReason::Halted => {}
            StopReason::CycleLimit => {
                return Err(EvalError::BudgetExhausted {
                    kernel: kernel.name.clone(),
                    kind: BudgetKind::Cycles,
                });
            }
            StopReason::FuelExhausted => {
                return Err(EvalError::BudgetExhausted {
                    kernel: kernel.name.clone(),
                    kind: BudgetKind::Instructions,
                });
            }
            StopReason::Cancelled => {
                let _ = obs::flight::capture("deadline_exceeded");
                return Err(EvalError::DeadlineExceeded {
                    stage: Stage::Simulate,
                    elapsed_ms: opts.deadline.as_ref().map_or(0, Deadline::elapsed_ms),
                });
            }
            _ => return Err(EvalError::SimulationDiverged(kernel.name.clone())),
        }
        let stats = sim.stats().clone();
        total.cycles += stats.cycles;
        total.instructions += stats.instructions;
        total.stall_cycles += stats.stall_cycles;
        if total.field_busy.len() < stats.field_busy.len() {
            total.field_busy.resize(stats.field_busy.len(), 0);
        }
        for (i, &b) in stats.field_busy.iter().enumerate() {
            total.field_busy[i] += b;
        }
        if profile {
            kernel_profiles.push((kernel.name.clone(), gensim::profile_json(&sim)));
        }
        if matches!(opt_block, obs::Json::Null) {
            opt_block = gensim::stats_json(&sim).get("opt").cloned().unwrap_or(obs::Json::Null);
        }
        kernel_stats.push(KernelRun {
            name: kernel.name.clone(),
            op_counts: sim.op_counts(),
            nt_option_counts: count_nt_options(machine, &program),
            stats,
        });
        compiled_all.push(compiled);
        if netlist != NetlistCheck::Off {
            check_runs.push((program, sim));
        }
    }

    enter_stage(Stage::Synthesize, opts, kernels.first().map_or("", |k| k.name.as_str()))?;
    let hw = synthesize(machine, hgen_options).map_err(|e| EvalError::Synthesis(e.to_string()))?;
    let mut netlist_stats = obs::Json::Null;
    if let NetlistCheck::Run(backend) = netlist {
        let mut per_kernel = Vec::new();
        for ((program, xsim), kernel) in check_runs.iter().zip(kernels) {
            let stats = netlist_cross_check(machine, &hw, backend, &kernel.name, program, xsim)?;
            per_kernel.push(stats.with("kernel", kernel.name.as_str()));
        }
        netlist_stats = obs::Json::obj()
            .with("backend", backend.name())
            .with("kernels", obs::Json::Arr(per_kernel));
    }
    let runtime_us = total.cycles as f64 * hw.report.cycle_ns / 1_000.0;
    Ok(Evaluation {
        metrics: Metrics {
            cycles: total.cycles,
            instructions: total.instructions,
            stall_cycles: total.stall_cycles,
            cycle_ns: hw.report.cycle_ns,
            runtime_us,
            area_cells: hw.report.area_cells,
            power_mw: hw.report.power_mw,
            lines_of_verilog: hw.lines_of_verilog,
            synthesis_time_s: hw.synthesis_time_s,
        },
        kernel_stats,
        compiled: compiled_all,
        profile: if profile { profile_summary(&kernel_profiles) } else { obs::Json::Null },
        netlist_stats,
        opt: opt_block,
    })
}

/// Replays one halted kernel on the HGEN netlist with the chosen
/// backend and compares every data-carrying storage against the ILS.
/// Returns the netlist simulator's `vlog-stats/1` block on success.
fn netlist_cross_check(
    machine: &Machine,
    hw: &hgen::HgenResult,
    backend: vlog::SimBackend,
    kernel: &str,
    program: &xasm::Program,
    xsim: &Xsim<'_>,
) -> Result<obs::Json, EvalError> {
    let fail = |message: String| {
        // A generator bug is exactly what the recorder exists for —
        // take a dump and reference it on the log stream. The error
        // message itself stays free of dump paths/tails: mismatch
        // outcomes are cached and journaled, and those bytes must not
        // depend on scheduling.
        let note = obs::flight::capture("netlist_mismatch");
        obs::log::event_with(obs::Level::Error, "eval.netlist", "mismatch", || {
            obs::Json::obj()
                .with("kernel", kernel)
                .with("message", message.as_str())
                .with("flight", note.as_str())
        });
        EvalError::NetlistMismatch { kernel: kernel.to_owned(), message }
    };
    let mut sim = hw.simulator(backend).map_err(|e| fail(e.to_string()))?;
    let imem = &machine.storage(machine.imem.expect("validated machines have an imem")).name;
    let w = machine.word_width;
    for (a, word) in program.words.iter().enumerate() {
        sim.poke_memory(imem, a as u64, word.trunc(w).zext(w)).map_err(|e| fail(e.to_string()))?;
    }
    if let Some(dm) =
        machine.storages.iter().find(|s| s.kind == isdl::model::StorageKind::DataMemory)
    {
        for &(addr, v) in &program.data {
            sim.poke_memory(&dm.name, addr, bitv::BitVector::from_i64(v, dm.width))
                .map_err(|e| fail(e.to_string()))?;
        }
    }
    // The hardware stalls at most as many extra cycles as the ILS
    // charged, and compiled kernels end in a state-neutral self-loop.
    sim.clock(4 * xsim.stats().cycles + 16).map_err(|e| fail(e.to_string()))?;
    for (i, s) in machine.storages.iter().enumerate() {
        use isdl::model::StorageKind::{InstructionMemory, ProgramCounter};
        if matches!(s.kind, ProgramCounter | InstructionMemory) {
            continue;
        }
        for a in 0..s.cells() {
            let soft = xsim.state().read(isdl::rtl::StorageId(i), a);
            let hard = if s.kind.is_addressed() {
                sim.peek_memory(&s.name, a).map_err(|e| fail(e.to_string()))?
            } else {
                sim.peek(&s.name).map_err(|e| fail(e.to_string()))?
            };
            if *soft != hard {
                return Err(fail(format!(
                    "{}[{a}]: ILS {soft}, netlist ({backend}) {hard}",
                    s.name
                )));
            }
        }
    }
    Ok(vlog::stats_json(&sim))
}

/// Compresses full `xsim-profile/1` documents into the per-candidate
/// summary an exploration step carries: per kernel, the top 3 regions
/// by cycles and the top 3 stalled PCs (with their causes). Ordering
/// is deterministic — ties keep address order.
fn profile_summary(kernel_profiles: &[(String, obs::Json)]) -> obs::Json {
    use obs::Json;
    let kernels: Vec<Json> = kernel_profiles
        .iter()
        .map(|(name, full)| {
            let mut regions: Vec<&Json> =
                full.get("regions").and_then(Json::as_arr).unwrap_or(&[]).iter().collect();
            regions.sort_by_key(|r| std::cmp::Reverse(r.get_u64("cycles")));
            let top_regions: Vec<Json> = regions
                .into_iter()
                .take(3)
                .map(|r| {
                    Json::obj()
                        .with("name", r.get_str("name").unwrap_or(""))
                        .with("cycles", r.get_u64("cycles").unwrap_or(0))
                        .with("stall_cycles", r.get_u64("stall_cycles").unwrap_or(0))
                })
                .collect();
            let mut stalled: Vec<&Json> = full
                .get("pcs")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .filter(|p| p.get_u64("stall_cycles").unwrap_or(0) > 0)
                .collect();
            stalled.sort_by_key(|p| std::cmp::Reverse(p.get_u64("stall_cycles")));
            let top_stall_pcs: Vec<Json> = stalled
                .into_iter()
                .take(3)
                .map(|p| {
                    Json::obj()
                        .with("pc", p.get_u64("pc").unwrap_or(0))
                        .with("stall_cycles", p.get_u64("stall_cycles").unwrap_or(0))
                        .with("stall_cause", p.get("stall_cause").cloned().unwrap_or(Json::Null))
                })
                .collect();
            Json::obj()
                .with("kernel", name.as_str())
                .with("top_regions", Json::Arr(top_regions))
                .with("top_stall_pcs", Json::Arr(top_stall_pcs))
        })
        .collect();
    Json::obj().with("kernels", Json::Arr(kernels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn evaluates_toy_on_dot_product() {
        let m = isdl::load(isdl::samples::TOY).expect("loads");
        let kernels = vec![workloads::dot_product(4)];
        let ev = evaluate(&m, &kernels, HgenOptions::default()).expect("evaluates");
        assert!(ev.metrics.cycles > 10);
        assert!(ev.metrics.cycle_ns > 0.0);
        assert!(ev.metrics.runtime_us > 0.0);
        assert!(ev.metrics.area_cells > 0.0);
        assert_eq!(ev.kernel_stats.len(), 1);
        assert_eq!(ev.compiled.len(), 1);
    }

    #[test]
    fn infeasible_candidate_reports_compile_error() {
        // acc16 has no register file, so the workload cannot compile.
        let m = isdl::load(isdl::samples::ACC16).expect("loads");
        let e = evaluate(&m, &[workloads::dot_product(2)], HgenOptions::default())
            .expect_err("should fail");
        assert!(matches!(e, EvalError::Compile(_, _)));
    }

    #[test]
    fn starved_budgets_report_which_limit_tripped() {
        let m = isdl::load(isdl::samples::TOY).expect("loads");
        let kernels = vec![workloads::dot_product(4)];
        let hgen = HgenOptions::default();
        let starved = SimBudget { max_instructions: 3, ..SimBudget::default() };
        let opts = EvalOptions { hgen, budget: starved, ..EvalOptions::default() };
        let e = evaluate_with(&m, &kernels, &opts).expect_err("fuel starved");
        assert!(
            matches!(&e, EvalError::BudgetExhausted { kind: BudgetKind::Instructions, .. }),
            "got {e}"
        );
        assert!(e.is_transient());
        let starved = SimBudget { max_cycles: 3, ..SimBudget::default() };
        let opts = EvalOptions { hgen, budget: starved, ..EvalOptions::default() };
        let e = evaluate_with(&m, &kernels, &opts).expect_err("cycle starved");
        assert!(
            matches!(&e, EvalError::BudgetExhausted { kind: BudgetKind::Cycles, .. }),
            "got {e}"
        );
        // A generous budget changes nothing about the result.
        let ev = evaluate_with(&m, &kernels, &EvalOptions { hgen, ..EvalOptions::default() })
            .expect("default budget is ample");
        assert!(ev.metrics.cycles > 10);
    }

    #[test]
    fn netlist_check_passes_and_carries_vlog_stats() {
        let m = isdl::load(isdl::samples::TOY).expect("loads");
        let kernels = vec![workloads::dot_product(3)];
        let hgen = HgenOptions::default();
        let plain = evaluate_with(&m, &kernels, &EvalOptions { hgen, ..EvalOptions::default() })
            .expect("evaluates");
        for backend in [vlog::SimBackend::Event, vlog::SimBackend::Levelized] {
            let checked = evaluate_with(
                &m,
                &kernels,
                &EvalOptions {
                    hgen,
                    netlist: NetlistCheck::Run(backend),
                    ..EvalOptions::default()
                },
            )
            .expect("cross-check agrees");
            assert!(plain.metrics.semantic_eq(&checked.metrics), "check is observational");
            assert_eq!(checked.netlist_stats.get_str("backend"), Some(backend.name()));
            let ks = checked
                .netlist_stats
                .get("kernels")
                .and_then(obs::Json::as_arr)
                .expect("per-kernel stats");
            assert_eq!(ks.len(), 1);
            assert_eq!(ks[0].get_str("schema"), Some("vlog-stats/1"));
            assert!(ks[0].get_u64("cycles").unwrap_or(0) > 0);
        }
        assert_eq!(plain.netlist_stats, obs::Json::Null);
    }

    #[test]
    fn profiled_evaluation_carries_a_summary_and_changes_nothing_else() {
        let m = isdl::load(isdl::samples::TOY).expect("loads");
        let kernels = vec![workloads::fir(3, 6)];
        let hgen = HgenOptions::default();
        let plain = evaluate_with(&m, &kernels, &EvalOptions { hgen, ..EvalOptions::default() })
            .expect("evaluates");
        let profiled = evaluate_with(
            &m,
            &kernels,
            &EvalOptions { hgen, profile: true, ..EvalOptions::default() },
        )
        .expect("evaluates profiled");
        assert!(plain.metrics.semantic_eq(&profiled.metrics), "profiling is observational");
        assert_eq!(plain.profile, obs::Json::Null);
        let ks = profiled.profile.get("kernels").and_then(obs::Json::as_arr).expect("kernels");
        assert_eq!(ks.len(), 1);
        assert_eq!(ks[0].get_str("kernel"), Some("fir3x6"));
        let regions = ks[0].get("top_regions").and_then(obs::Json::as_arr).expect("regions");
        assert!(!regions.is_empty());
        let total: u64 = regions.iter().filter_map(|r| r.get_u64("cycles")).sum();
        assert!(total > 0, "top regions attribute real cycles");
    }
}
