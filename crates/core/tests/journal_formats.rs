//! Journal format gates: the checked-in `archex-journal/1` fixture
//! must still resume bit-identically under the `/2` reader
//! (backward compatibility), every corruption of a `/2` journal must
//! be rejected with a line-numbered [`JournalError`], and
//! [`archex::journal::compact`] must produce a journal that resumes to
//! the same final trace.

use archex::{compact, workloads, EvalCache, Explorer, JournalError};

/// The explorer configuration the `toy_v1.jsonl` fixture was written
/// with (pre-`/2` writer: TOY machine, `dot_product(3)`, 6 steps,
/// 2 threads).
fn fixture_explorer() -> Explorer {
    Explorer { max_steps: 6, threads: 2, ..Explorer::default() }
}

fn toy() -> isdl::Machine {
    isdl::load(isdl::samples::TOY).expect("TOY fixture loads")
}

fn v1_fixture() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/toy_v1.jsonl");
    std::fs::read_to_string(path).expect("v1 fixture is checked in")
}

/// Runs the fixture's exploration journaled with the current writer,
/// returning (trace, `/2` journal text).
fn journaled_run(e: &Explorer) -> (archex::Trace, String) {
    let kernels = vec![workloads::dot_product(3)];
    let mut sink = Vec::new();
    let trace = e
        .run_journaled(&toy(), &kernels, &EvalCache::new(), &mut sink)
        .expect("journaled run completes");
    (trace, String::from_utf8(sink).expect("journal is UTF-8"))
}

#[test]
fn v1_fixture_resumes_bit_identically_under_the_v2_reader() {
    let e = fixture_explorer();
    let kernels = vec![workloads::dot_product(3)];
    let fresh = e.run(&toy(), &kernels).expect("fresh run");
    let journal = v1_fixture();
    assert!(
        journal.lines().next().is_some_and(|l| l.contains("archex-journal/1")),
        "fixture is a v1 journal"
    );

    // The complete fixture replays without re-evaluating anything.
    let resumed =
        e.resume(&toy(), &kernels, &EvalCache::new(), &journal).expect("v1 journal resumes");
    assert!(
        fresh.semantic_eq(&resumed),
        "v1 fixture no longer replays the run it recorded:\n  fresh   {:?}\n  resumed {:?}",
        fresh.steps.iter().map(|s| &s.action).collect::<Vec<_>>(),
        resumed.steps.iter().map(|s| &s.action).collect::<Vec<_>>(),
    );

    // Every kill prefix of the fixture resumes to the same trace.
    let lines: Vec<&str> = journal.lines().collect();
    for k in 2..=lines.len() {
        let partial = lines[..k].join("\n");
        let resumed = e
            .resume(&toy(), &kernels, &EvalCache::new(), &partial)
            .unwrap_or_else(|err| panic!("v1 resume from {k} lines failed: {err}"));
        assert!(fresh.semantic_eq(&resumed), "v1 resume from {k} lines diverges");
    }
}

#[test]
fn corruption_anywhere_is_rejected_with_the_line_number() {
    let e = fixture_explorer();
    let kernels = vec![workloads::dot_product(3)];
    let (_, journal) = journaled_run(&e);
    let lines: Vec<&str> = journal.lines().collect();
    assert!(lines.len() >= 4, "need interior lines to corrupt");
    let resume = |journal: &str| e.resume(&toy(), &kernels, &EvalCache::new(), journal);

    // Flipped CRC byte: the stated CRC no longer matches the content.
    let mut corrupt: Vec<String> = lines.iter().map(|l| (*l).to_owned()).collect();
    let crc_pos = corrupt[2].rfind("\"crc\": \"").expect("crc trailer") + "\"crc\": \"".len();
    let old = corrupt[2].as_bytes()[crc_pos];
    corrupt[2].replace_range(crc_pos..=crc_pos, if old == b'0' { "1" } else { "0" });
    let err = resume(&corrupt.join("\n")).expect_err("flipped CRC byte rejected");
    assert!(matches!(err, JournalError::Corrupt { line: 3, .. }), "flipped CRC byte: got {err}");

    // Flipped data byte (interior, not the final line): CRC mismatch.
    let mut corrupt: Vec<String> = lines.iter().map(|l| (*l).to_owned()).collect();
    let pos = corrupt[1].find("\"event\"").expect("event key");
    corrupt[1].replace_range(pos + 1..pos + 2, "E");
    let err = resume(&corrupt.join("\n")).expect_err("flipped data byte rejected");
    assert!(matches!(err, JournalError::Corrupt { line: 2, .. }), "flipped data byte: got {err}");

    // Truncated mid-file line: unparseable JSON that is *not* the
    // final line must never be skipped as a torn write.
    let mut corrupt: Vec<String> = lines.iter().map(|l| (*l).to_owned()).collect();
    let half = corrupt[2].len() / 2;
    corrupt[2].truncate(half);
    let err = resume(&corrupt.join("\n")).expect_err("truncated interior line rejected");
    assert!(
        matches!(err, JournalError::Parse { line: 3, .. }),
        "truncated interior line: got {err}"
    );

    // Duplicated line: its CRC is valid but the sequence breaks.
    let mut corrupt: Vec<String> = lines.iter().map(|l| (*l).to_owned()).collect();
    corrupt.insert(2, corrupt[1].clone());
    let err = resume(&corrupt.join("\n")).expect_err("duplicated seq rejected");
    assert!(matches!(err, JournalError::Corrupt { line: 3, .. }), "duplicated seq: got {err}");

    // A torn *final* line stays tolerated — that is the one corruption
    // an append-only kill can legitimately produce.
    let mut torn: Vec<String> = lines.iter().map(|l| (*l).to_owned()).collect();
    let last = torn.len() - 1;
    let half = torn[last].len() / 2;
    torn[last].truncate(half);
    resume(&torn.join("\n")).expect("torn final line still resumes");
}

#[test]
fn compact_resumes_to_the_same_final_trace() {
    let e = fixture_explorer();
    let kernels = vec![workloads::dot_product(3)];
    let (full, journal) = journaled_run(&e);

    // Compacting the complete journal: two lines, same final trace.
    let compacted = compact(&journal).expect("journal compacts");
    assert_eq!(compacted.lines().count(), 2, "header + snapshot");
    assert!(compacted.len() < journal.len(), "compaction shrank the journal");
    let resumed = e
        .resume(&toy(), &kernels, &EvalCache::new(), &compacted)
        .expect("compacted journal resumes");
    assert!(full.semantic_eq(&resumed), "compaction changed the replayed trace");

    // Compacting a kill prefix: the resumed run continues from the
    // snapshot and still converges to the uninterrupted trace.
    let lines: Vec<&str> = journal.lines().collect();
    let prefix = lines[..3].join("\n");
    let compacted = compact(&prefix).expect("prefix compacts");
    let resumed = e
        .resume(&toy(), &kernels, &EvalCache::new(), &compacted)
        .expect("compacted prefix resumes");
    assert!(full.semantic_eq(&resumed), "compacted prefix diverged on resume");

    // Compacting a v1 journal upgrades it to `/2`.
    let compacted = compact(&v1_fixture()).expect("v1 journal compacts");
    assert!(
        compacted.lines().next().is_some_and(|l| l.contains("archex-journal/2")),
        "compaction upgrades the schema"
    );
    let resumed = e
        .resume(&toy(), &kernels, &EvalCache::new(), &compacted)
        .expect("compacted v1 journal resumes");
    let fresh = e.run(&toy(), &kernels).expect("fresh run");
    assert!(fresh.semantic_eq(&resumed), "compacted v1 journal diverged on resume");

    // Corrupt journals are never compacted.
    let mut corrupt: Vec<String> = journal.lines().map(str::to_owned).collect();
    corrupt.insert(2, corrupt[1].clone());
    let err = compact(&corrupt.join("\n")).expect_err("corrupt journal rejected");
    assert!(matches!(err, JournalError::Corrupt { line: 3, .. }), "got {err}");
}
