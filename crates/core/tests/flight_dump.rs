//! The flight recorder's crash path, end to end at the library level:
//! a contained toolchain panic must leave a well-formed `flight-dump/1`
//! file whose tail names the panicking stage, and the diagnostic log
//! stream must reference the dump — while the error message itself
//! (which feeds `Trace::first_error` and the journal) stays free of
//! scheduling-dependent dump paths.
//!
//! Everything lives in ONE test function: the dump directory and the
//! log dispatcher are process-wide, and separate `#[test]`s would race
//! on them.

use archex::{workloads, Explorer, FaultPlan, Stage, Strategy};
use obs::Json;
use std::sync::{Arc, Mutex};

/// A `Write` sink whose bytes stay readable through a shared handle.
#[derive(Clone, Default)]
struct Buf(Arc<Mutex<Vec<u8>>>);

impl Buf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().expect("buf lock").clone()).expect("utf8")
    }
}

impl std::io::Write for Buf {
    fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buf lock").extend_from_slice(b);
        Ok(b.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn contained_panic_writes_parseable_flight_dump_referenced_from_the_log() {
    let dir = std::env::temp_dir().join(format!("archex-flight-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("dump dir");
    obs::flight::set_dump_dir(Some(dir.clone()));
    let log = Buf::default();
    obs::log::init(obs::LogFilter::parse("warn").expect("filter"), Box::new(log.clone()));

    let start = isdl::load(isdl::samples::TOY).expect("TOY fixture loads");
    let kernels = vec![workloads::dot_product(3)];
    let dumps_before = obs::flight::dump_count();
    let trace = Explorer {
        max_steps: 4,
        strategy: Strategy::Greedy,
        threads: 2,
        fault_plan: Some(FaultPlan::panic_at(Stage::Simulate, 2)),
        ..Explorer::default()
    }
    .run(&start, &kernels)
    .expect("a single contained panic never fails the run");

    // The panic was contained, counted, and attributed.
    assert_eq!(trace.skipped_errors, 1);
    let first = trace.first_error.as_deref().expect("first error recorded");
    assert!(first.contains("toolchain panic"), "attributed: {first}");
    assert!(
        !first.contains("flight"),
        "dump references must stay out of journaled error messages: {first}"
    );
    assert!(trace.obs.flight_dumps >= 1, "the run counted its own dump");
    assert!(obs::flight::dump_count() > dumps_before);

    // Exactly the panic's dump file exists and is well-formed.
    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("dump dir readable")
        .map(|e| e.expect("entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight-") && n.ends_with(".json"))
        })
        .collect();
    assert_eq!(dumps.len(), 1, "one panic, one dump: {dumps:?}");
    let doc = Json::parse(&std::fs::read_to_string(&dumps[0]).expect("dump readable"))
        .expect("dump parses");
    assert_eq!(doc.get_str("schema"), Some(obs::flight::DUMP_SCHEMA));
    assert_eq!(doc.get_str("reason"), Some("toolchain_panic"));
    let events = doc.get("events").and_then(Json::as_arr).expect("events array");
    assert!(!events.is_empty());
    // The tail names the panicking stage: the hook's own note is the
    // last event on the ring at dump time.
    let last = events.last().expect("non-empty");
    assert_eq!(last.get_str("target"), Some("eval.panic"));
    assert_eq!(last.get_str("msg"), Some("simulate"));

    // The diagnostic log event references the dump by path.
    obs::log::flush();
    let dump_path = dumps[0].display().to_string();
    let diagnostic = log
        .text()
        .lines()
        .map(|l| Json::parse(l).expect("log line parses"))
        .find(|j| j.get_str("target") == Some("eval.panic"))
        .expect("eval.panic diagnostic logged");
    assert_eq!(diagnostic.get_str("schema"), Some(obs::log::LOG_SCHEMA));
    let fields = diagnostic.get("fields").expect("fields");
    assert_eq!(fields.get_str("stage"), Some("simulate"));
    let flight = fields.get_str("flight").expect("flight reference");
    assert!(flight.contains(&dump_path), "references the dump file: {flight}");

    obs::log::shutdown();
    obs::flight::set_dump_dir(None);
    std::fs::remove_dir_all(&dir).ok();
}
