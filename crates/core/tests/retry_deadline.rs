//! The supervised-runtime policies: deterministic retry of transient
//! faults ([`RetryPolicy`]) and wall-clock deadlines
//! ([`EvalError::DeadlineExceeded`]). A retried run must converge to
//! the clean run's trace (`semantic_eq`) at every thread count, and a
//! deadline-exceeded candidate is skipped as transient — never cached,
//! never journaled.

use archex::{
    evaluate_contained, workloads, Deadline, EvalCache, EvalError, EvalOptions, Explorer,
    FaultPlan, RetryPolicy, Stage,
};
use std::time::Duration;

fn toy() -> isdl::Machine {
    isdl::load(isdl::samples::TOY).expect("TOY fixture loads")
}

fn explorer(threads: usize) -> Explorer {
    Explorer { max_steps: 6, threads, ..Explorer::default() }
}

#[test]
fn retry_converges_to_the_clean_trace_at_every_thread_count() {
    let kernels = vec![workloads::dot_product(2)];
    let clean = explorer(1).run(&toy(), &kernels).expect("clean run");
    assert_eq!(clean.retried, 0);
    assert_eq!(clean.attempts, clean.evaluated);
    assert!(clean.error_histogram.is_empty());

    // The fault fires on the first two attempts of fresh evaluation
    // #2; max_attempts = 3 leaves one clean attempt, so the candidate
    // recovers and the search proceeds exactly as undisturbed.
    for threads in [1, 2, 4] {
        let e = Explorer {
            fault_plan: Some(FaultPlan::panic_at(Stage::Simulate, 2).failing(2)),
            retry: RetryPolicy { max_attempts: 3 },
            ..explorer(threads)
        };
        let trace = e.run(&toy(), &kernels).expect("retried run completes");
        assert!(
            clean.semantic_eq(&trace),
            "retry at {threads} threads diverged from the clean run:\n  clean {:?}\n  retry {:?}",
            clean.steps.iter().map(|s| &s.action).collect::<Vec<_>>(),
            trace.steps.iter().map(|s| &s.action).collect::<Vec<_>>(),
        );
        assert_eq!(trace.skipped_errors, 0, "the recovered candidate was not skipped");
        assert_eq!(trace.retried, 2, "both faulted attempts were retried");
        assert_eq!(trace.attempts, trace.evaluated + 2);
        assert_eq!(trace.error_histogram.get("toolchain_panic"), Some(&2));
    }
}

#[test]
fn retry_exhaustion_skips_the_candidate_and_counts_every_attempt() {
    let kernels = vec![workloads::dot_product(2)];
    // A permanent transient: the fault fires on every attempt, so
    // max_attempts = 3 burns three attempts and then skips.
    let e = Explorer {
        fault_plan: Some(FaultPlan::panic_at(Stage::Simulate, 2).failing(usize::MAX)),
        retry: RetryPolicy { max_attempts: 3 },
        ..explorer(2)
    };
    let trace = e.run(&toy(), &kernels).expect("run completes around the fault");
    assert_eq!(trace.skipped_errors, 1, "the exhausted candidate was skipped");
    assert_eq!(trace.retried, 2);
    assert_eq!(trace.error_histogram.get("toolchain_panic"), Some(&3));

    // The skip path is the same one a non-retrying run takes.
    let no_retry = Explorer {
        fault_plan: Some(FaultPlan::panic_at(Stage::Simulate, 2).failing(usize::MAX)),
        ..explorer(2)
    };
    let baseline = no_retry.run(&toy(), &kernels).expect("non-retried run completes");
    assert!(baseline.semantic_eq(&trace), "retry exhaustion changed the search outcome");
}

#[test]
fn permanent_errors_are_never_retried() {
    let kernels = vec![workloads::dot_product(2)];
    let e = Explorer {
        fault_plan: Some(
            FaultPlan::error_at(Stage::Synthesize, 2, EvalError::Synthesis("injected".to_owned()))
                .failing(usize::MAX),
        ),
        retry: RetryPolicy { max_attempts: 5 },
        ..explorer(1)
    };
    let trace = e.run(&toy(), &kernels).expect("run completes around the fault");
    assert_eq!(trace.skipped_errors, 1);
    assert_eq!(trace.retried, 0, "a permanent error burned exactly one attempt");
    assert_eq!(trace.error_histogram.get("synthesis"), Some(&1));
}

#[test]
fn retry_counters_flow_into_the_explore_schema() {
    let kernels = vec![workloads::dot_product(2)];
    let e = Explorer {
        fault_plan: Some(FaultPlan::panic_at(Stage::Simulate, 2).failing(2)),
        retry: RetryPolicy { max_attempts: 3 },
        ..explorer(1)
    };
    let trace = e.run(&toy(), &kernels).expect("retried run completes");
    let j = trace.to_json();
    assert_eq!(j.get_u64("attempts"), Some(trace.attempts as u64));
    assert_eq!(j.get_u64("retried"), Some(2));
    let histogram = j.get("error_histogram").expect("histogram serialized");
    assert_eq!(histogram.get_u64("toolchain_panic"), Some(2));
}

#[test]
fn an_expired_deadline_surfaces_as_a_transient_stage_error() {
    let kernels = vec![workloads::dot_product(2)];
    // Force expiry deterministically: the deadline's shared flag is
    // exactly what the watchdog would set, without racing a timer.
    let deadline = Deadline::arm(Duration::from_secs(600));
    deadline.flag().store(true, std::sync::atomic::Ordering::Relaxed);
    let opts = EvalOptions { deadline: Some(deadline), ..EvalOptions::default() };
    let err = evaluate_contained(&toy(), &kernels, &opts).expect_err("expired deadline fails");
    let EvalError::DeadlineExceeded { stage, .. } = err else {
        panic!("expected DeadlineExceeded, got {err}");
    };
    assert_eq!(stage, Stage::Compile, "expiry is caught on entry to the first stage");
    assert!(
        EvalError::DeadlineExceeded { stage, elapsed_ms: 0 }.is_transient(),
        "deadline expiry must never be cached"
    );
}

#[test]
fn deadline_exceeded_candidates_are_never_cached_or_journaled() {
    let kernels = vec![workloads::dot_product(2)];
    let fault = FaultPlan::error_at(
        Stage::Simulate,
        2,
        EvalError::DeadlineExceeded { stage: Stage::Simulate, elapsed_ms: 7 },
    );
    let clean = explorer(2).run(&toy(), &kernels).expect("clean run");

    // Not cached: a re-run over the same cache with the fault disarmed
    // re-evaluates the candidate and converges to the clean trace.
    let cache = EvalCache::new();
    let e = Explorer { fault_plan: Some(fault.clone()), ..explorer(2) };
    let faulted = e.run_cached(&toy(), &kernels, &cache).expect("deadline skip is not fatal");
    assert_eq!(faulted.skipped_errors, 1, "the deadline-exceeded candidate was skipped");
    assert_eq!(faulted.error_histogram.get("deadline_exceeded"), Some(&1));
    let rerun = explorer(2).run_cached(&toy(), &kernels, &cache).expect("re-run");
    assert_eq!(rerun.skipped_errors, 0, "no poisoned entry survived the deadline");
    assert_eq!(rerun.machine, clean.machine, "re-run converges to the clean result");
    assert!(
        rerun.steps.len() == clean.steps.len()
            && rerun.steps.iter().zip(&clean.steps).all(|(a, b)| a.semantic_eq(b)),
        "re-run takes the clean run's path"
    );

    // Not journaled: no cache entry in the journal records a deadline
    // outcome (the diagnostic `first_error` counter may mention it,
    // but nothing a resume would preload).
    let mut sink = Vec::new();
    let e = Explorer { fault_plan: Some(fault), ..explorer(2) };
    let trace =
        e.run_journaled(&toy(), &kernels, &EvalCache::new(), &mut sink).expect("journaled run");
    assert_eq!(trace.skipped_errors, 1);
    let journal = String::from_utf8(sink).expect("journal is UTF-8");
    for line in journal.lines() {
        let envelope = obs::Json::parse(line).expect("journal line parses");
        let Some(data) = envelope.get("data") else { continue };
        let Some(entries) = data.get("entries").and_then(obs::Json::as_arr) else { continue };
        for entry in entries {
            assert!(
                entry.get_str("err").is_none_or(|m| !m.contains("deadline")),
                "transient deadline outcome leaked into the journal: {entry}"
            );
        }
    }
    let resumed = e.resume(&toy(), &kernels, &EvalCache::new(), &journal).expect("journal resumes");
    assert!(trace.semantic_eq(&resumed), "the journal restores the faulted run's trace");
}
