//! Journaled checkpoint/resume: a greedy run streams an
//! `archex-journal/2` line per completed round; killing the run after
//! any prefix of those lines and resuming from the journal must
//! reproduce the uninterrupted run's trace exactly (`semantic_eq`),
//! including every counter.

use archex::{workloads, EvalCache, Explorer, JournalError, Strategy, JOURNAL_SCHEMA};

fn toy() -> isdl::Machine {
    isdl::load(isdl::samples::TOY).expect("TOY fixture loads")
}

fn explorer() -> Explorer {
    Explorer { max_steps: 6, threads: 2, ..Explorer::default() }
}

/// Runs journaled and returns (trace, journal text).
fn journaled_run(e: &Explorer) -> (archex::Trace, String) {
    let kernels = vec![workloads::dot_product(3)];
    let mut sink = Vec::new();
    let trace = e
        .run_journaled(&toy(), &kernels, &EvalCache::new(), &mut sink)
        .expect("journaled run completes");
    (trace, String::from_utf8(sink).expect("journal is UTF-8"))
}

#[test]
fn journaled_run_matches_plain_run_and_emits_schema() {
    let e = explorer();
    let kernels = vec![workloads::dot_product(3)];
    let plain = e.run(&toy(), &kernels).expect("plain run");
    let (trace, journal) = journaled_run(&e);
    assert!(plain.semantic_eq(&trace), "journaling changed the search");

    let lines: Vec<&str> = journal.lines().collect();
    assert!(lines.len() >= 3, "header, init, and done at minimum");
    let envelope = obs::Json::parse(lines[0]).expect("header line parses");
    assert_eq!(envelope.get_u64("seq"), Some(0), "lines are numbered from 0");
    assert_eq!(envelope.get_str("crc").map(str::len), Some(8), "8-hex CRC trailer");
    let header = envelope.get("data").expect("envelope carries the event");
    assert_eq!(header.get_str("schema"), Some(JOURNAL_SCHEMA));
    assert_eq!(header.get_str("strategy"), Some("greedy"));
    let last = obs::Json::parse(lines[lines.len() - 1]).expect("last line parses");
    assert_eq!(
        last.get("data").and_then(|d| d.get_str("event")),
        Some("done"),
        "completed run ends with `done`"
    );
    // Every line is valid single-line JSON (the kill-atomicity unit)
    // with a consecutive sequence number.
    for (i, l) in lines.iter().enumerate() {
        let envelope = obs::Json::parse(l).expect("every journal line parses on its own");
        assert_eq!(envelope.get_u64("seq"), Some(i as u64), "line {i} sequence");
    }
}

#[test]
fn resume_after_kill_reproduces_the_uninterrupted_trace() {
    let e = explorer();
    let kernels = vec![workloads::dot_product(3)];
    let (full, journal) = journaled_run(&e);
    let lines: Vec<&str> = journal.lines().collect();

    // Kill after every possible prefix that contains at least the
    // header and the init event.
    for k in 2..=lines.len() {
        let partial = lines[..k].join("\n");
        let resumed = e
            .resume(&toy(), &kernels, &EvalCache::new(), &partial)
            .unwrap_or_else(|err| panic!("resume from {k} lines failed: {err}"));
        assert!(
            full.semantic_eq(&resumed),
            "resume from {k}/{} journal lines diverges:\n  full    {:?} (evaluated {}, hits {})\n  resumed {:?} (evaluated {}, hits {})",
            lines.len(),
            full.steps.iter().map(|s| &s.action).collect::<Vec<_>>(),
            full.evaluated,
            full.cache_hits,
            resumed.steps.iter().map(|s| &s.action).collect::<Vec<_>>(),
            resumed.evaluated,
            resumed.cache_hits,
        );
    }
}

#[test]
fn resume_tolerates_a_torn_final_line() {
    let e = explorer();
    let kernels = vec![workloads::dot_product(3)];
    let (full, journal) = journaled_run(&e);
    let lines: Vec<&str> = journal.lines().collect();
    assert!(lines.len() > 3, "need a round line to tear");

    // A kill mid-write leaves a truncated final line; the parser must
    // discard it wholesale and resume from the previous event.
    let torn_line = &lines[3][..lines[3].len() / 2];
    let torn = [&lines[..3].join("\n"), "\n", torn_line].concat();
    let resumed =
        e.resume(&toy(), &kernels, &EvalCache::new(), &torn).expect("torn journal still resumes");
    assert!(full.semantic_eq(&resumed), "torn final line perturbed the resumed trace");
}

#[test]
fn resume_rejects_a_mismatched_journal() {
    let e = explorer();
    let kernels = vec![workloads::dot_product(3)];
    let (_, journal) = journaled_run(&e);

    // Different explorer configuration.
    let other = Explorer { max_steps: 9, ..explorer() };
    let err = other.resume(&toy(), &kernels, &EvalCache::new(), &journal).expect_err("mismatch");
    assert!(matches!(err, JournalError::Mismatch(_)), "got {err}");

    // Different starting machine.
    let acc16 = isdl::load(isdl::samples::ACC16).expect("loads");
    let err = e.resume(&acc16, &kernels, &EvalCache::new(), &journal).expect_err("mismatch");
    assert!(matches!(err, JournalError::Mismatch(_)), "got {err}");

    // Corrupt interior line: an error, not silent truncation.
    let mut lines: Vec<String> = journal.lines().map(str::to_owned).collect();
    lines[1] = "{not json".to_owned();
    let err = e
        .resume(&toy(), &kernels, &EvalCache::new(), &lines.join("\n"))
        .expect_err("corrupt interior line");
    assert!(matches!(err, JournalError::Parse { line: 2, .. }), "got {err}");

    // Empty journal.
    let err = e.resume(&toy(), &kernels, &EvalCache::new(), "").expect_err("empty journal");
    assert!(matches!(err, JournalError::Mismatch(_)), "got {err}");
}

#[test]
fn beam_journaling_is_rejected_loudly() {
    let e = Explorer { strategy: Strategy::Beam { width: 3 }, ..explorer() };
    let kernels = vec![workloads::dot_product(3)];
    let err = e
        .run_journaled(&toy(), &kernels, &EvalCache::new(), &mut Vec::new())
        .expect_err("beam journaling unsupported");
    let JournalError::Unsupported(msg) = &err else { panic!("got {err}") };
    assert!(
        msg.contains("strategy `beam`") && msg.contains("supported strategies: greedy"),
        "diagnostic names the strategy and the supported set: {msg}"
    );
    let err =
        e.resume(&toy(), &kernels, &EvalCache::new(), "").expect_err("beam resume unsupported");
    let JournalError::Unsupported(msg) = &err else { panic!("got {err}") };
    assert!(
        msg.contains("strategy `beam`") && msg.contains("supported strategies: greedy"),
        "diagnostic names the strategy and the supported set: {msg}"
    );
}
