//! Determinism of the parallel exploration engine: the trace must be
//! bit-identical (up to wall-clock synthesis time) at every thread
//! count, for every strategy. The frontier is deduplicated and cached
//! before work is spawned, and the reduction runs serially in proposal
//! order, so worker scheduling can never leak into the result.

use archex::{workloads, EvalCache, Explorer, FaultPlan, Stage, Strategy};

fn toy() -> isdl::Machine {
    isdl::load(isdl::samples::TOY).expect("TOY fixture loads")
}

fn explorer(strategy: Strategy, threads: usize) -> Explorer {
    Explorer { max_steps: 6, strategy, threads, ..Explorer::default() }
}

#[test]
fn parallel_greedy_trace_matches_serial() {
    let kernels = vec![workloads::dot_product(3)];
    let serial = explorer(Strategy::Greedy, 1).run(&toy(), &kernels).expect("explores");
    let parallel = explorer(Strategy::Greedy, 4).run(&toy(), &kernels).expect("explores");
    assert!(serial.steps.len() > 1, "the run actually improved something");
    assert!(
        serial.semantic_eq(&parallel),
        "greedy trace depends on thread count:\n  serial   {:?}\n  parallel {:?}",
        serial.steps.iter().map(|s| &s.action).collect::<Vec<_>>(),
        parallel.steps.iter().map(|s| &s.action).collect::<Vec<_>>(),
    );
}

#[test]
fn parallel_beam_trace_matches_serial() {
    let kernels = vec![workloads::dot_product(3)];
    let strategy = Strategy::Beam { width: 3 };
    let serial = explorer(strategy, 1).run(&toy(), &kernels).expect("explores");
    let parallel = explorer(strategy, 4).run(&toy(), &kernels).expect("explores");
    assert!(
        serial.semantic_eq(&parallel),
        "beam trace depends on thread count:\n  serial   {:?}\n  parallel {:?}",
        serial.steps.iter().map(|s| &s.action).collect::<Vec<_>>(),
        parallel.steps.iter().map(|s| &s.action).collect::<Vec<_>>(),
    );
}

#[test]
fn serial_runs_are_deterministic() {
    // Two identically configured runs must agree with *themselves*
    // before thread-count comparisons mean anything — this guards the
    // proposal ordering against hash-map iteration order.
    let kernels = vec![workloads::dot_product(3)];
    for strategy in [Strategy::Greedy, Strategy::Beam { width: 3 }] {
        let a = explorer(strategy, 1).run(&toy(), &kernels).expect("explores");
        let b = explorer(strategy, 1).run(&toy(), &kernels).expect("explores");
        assert!(a.semantic_eq(&b), "{strategy:?} differs between identical runs");
    }
}

#[test]
fn beam_run_hits_the_cache() {
    // Sibling beam entries propose overlapping mutations; the memoized
    // frontier must convert those duplicates into cache hits.
    let kernels = vec![workloads::dot_product(3)];
    let trace = explorer(Strategy::Beam { width: 3 }, 2).run(&toy(), &kernels).expect("explores");
    assert!(trace.cache_hits > 0, "beam search re-proposed nothing?");
    assert!(trace.evaluated < trace.candidates_evaluated());
    assert_eq!(trace.skipped_errors, 0, "TOY neighbours all evaluate");
    assert!(trace.first_error.is_none());
}

#[test]
fn observability_counters_are_thread_count_invariant() {
    // The embedded observability must not undermine determinism: the
    // per-round frontier accounting (proposed / unique / fresh / cache
    // hits) is part of `semantic_eq` and must be byte-identical at any
    // thread count. Only the timing summaries may differ.
    let kernels = vec![workloads::dot_product(3)];
    for strategy in [Strategy::Greedy, Strategy::Beam { width: 3 }] {
        let serial = explorer(strategy, 1).run(&toy(), &kernels).expect("explores");
        let parallel = explorer(strategy, 4).run(&toy(), &kernels).expect("explores");
        assert!(!serial.obs.rounds.is_empty(), "rounds were recorded");
        assert_eq!(
            serial.obs.rounds, parallel.obs.rounds,
            "{strategy:?} frontier accounting depends on thread count"
        );
        for trace in [&serial, &parallel] {
            let evaluated: usize = trace.obs.rounds.iter().map(|r| r.fresh).sum::<usize>() + 1; // the initial candidate is evaluated outside the rounds
            assert_eq!(evaluated, trace.evaluated, "round fresh counts sum to `evaluated`");
            let hits: usize = trace.obs.rounds.iter().map(|r| r.cache_hits).sum();
            assert_eq!(hits, trace.cache_hits, "round hit counts sum to `cache_hits`");
            for r in &trace.obs.rounds {
                assert!(r.unique <= r.proposed);
                assert!(r.fresh <= r.unique);
                assert_eq!(r.cache_hits, r.proposed - r.fresh);
            }
        }
    }
}

#[test]
fn thread_evals_sum_to_evaluated() {
    let kernels = vec![workloads::dot_product(3)];
    for threads in [1, 4] {
        let trace = explorer(Strategy::Greedy, threads).run(&toy(), &kernels).expect("explores");
        let total: u64 = trace.obs.thread_evals.iter().sum();
        assert_eq!(total as usize, trace.evaluated, "threads={threads}");
        assert_eq!(trace.obs.thread_evals.len(), threads);
        // The instrumented run measured every fresh evaluation.
        assert_eq!(trace.obs.eval_latency_us.count as usize, trace.evaluated);
        assert!(trace.obs.wall_s > 0.0);
    }
}

#[test]
fn uninstrumented_run_is_semantically_identical() {
    let kernels = vec![workloads::dot_product(3)];
    let on = explorer(Strategy::Greedy, 2).run(&toy(), &kernels).expect("explores");
    let off = Explorer { instrument: false, ..explorer(Strategy::Greedy, 2) }
        .run(&toy(), &kernels)
        .expect("explores");
    assert!(on.semantic_eq(&off), "instrumentation changed the search");
    assert_eq!(off.obs.eval_latency_us.count, 0, "no timing collected when disabled");
    assert_eq!(off.obs.wall_s, 0.0);
    let total: u64 = off.obs.thread_evals.iter().sum();
    assert_eq!(total as usize, off.evaluated, "eval counts stay on when timing is off");
}

#[test]
fn trace_json_is_schema_valid() {
    let kernels = vec![workloads::dot_product(3)];
    let trace = explorer(Strategy::Greedy, 2).run(&toy(), &kernels).expect("explores");
    let text = trace.to_json().to_pretty();
    let parsed = obs::Json::parse(&text).expect("trace JSON parses");
    assert_eq!(parsed.get_str("schema"), Some(archex::EXPLORE_SCHEMA));
    assert_eq!(parsed.get_u64("evaluated"), Some(trace.evaluated as u64));
    let rounds = parsed
        .get("obs")
        .and_then(|o| o.get("rounds"))
        .and_then(|r| r.as_arr())
        .expect("obs.rounds present");
    assert_eq!(rounds.len(), trace.obs.rounds.len());
    assert_eq!(
        rounds[0].get_u64("proposed"),
        Some(trace.obs.rounds[0].proposed as u64),
        "round JSON mirrors the struct"
    );
}

#[test]
fn skip_counters_are_exact_and_thread_count_invariant_under_faults() {
    // An injected mid-run panic must produce *exactly* one skip, the
    // same `first_error` string, and identical round accounting at
    // every thread count — error handling is part of the determinism
    // contract, not an exception to it.
    let kernels = vec![workloads::dot_product(3)];
    let fault = FaultPlan::panic_at(Stage::Simulate, 3);
    let traces: Vec<_> = [1, 2, 4]
        .into_iter()
        .map(|threads| {
            Explorer { fault_plan: Some(fault.clone()), ..explorer(Strategy::Greedy, threads) }
                .run(&toy(), &kernels)
                .expect("faulted run completes")
        })
        .collect();
    for t in &traces {
        assert_eq!(t.skipped_errors, 1, "exactly the armed evaluation was skipped");
        let first = t.first_error.as_deref().expect("first error recorded");
        assert!(first.contains("toolchain panic"), "skip is attributed: {first}");
    }
    for t in &traces[1..] {
        assert!(traces[0].semantic_eq(t), "faulted trace depends on thread count");
        assert_eq!(traces[0].first_error, t.first_error);
        assert_eq!(traces[0].obs.rounds, t.obs.rounds);
    }
}

#[test]
fn shared_cache_carries_across_runs() {
    let kernels = vec![workloads::dot_product(3)];
    let cache = EvalCache::new();
    let e = explorer(Strategy::Greedy, 2);
    let first = e.run_cached(&toy(), &kernels, &cache).expect("explores");
    let warm = e.run_cached(&toy(), &kernels, &cache).expect("explores");
    assert!(first.evaluated > 0);
    assert_eq!(warm.evaluated, 0, "second run re-evaluated a cached machine");
    assert_eq!(warm.cache_hits, first.candidates_evaluated());
    assert_eq!(first.machine, warm.machine);
    assert!(cache.hit_count() >= warm.cache_hits);
}

#[test]
fn progress_heartbeats_emit_jsonl_and_human_lines() {
    use std::sync::{Arc, Mutex};
    /// A `Write` sink whose bytes stay readable through a shared handle.
    #[derive(Clone, Default)]
    struct Buf(Arc<Mutex<Vec<u8>>>);
    impl Buf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().expect("buf lock").clone()).expect("utf8")
        }
        fn sink(&self) -> archex::ProgressSink {
            Arc::new(Mutex::new(self.clone()))
        }
    }
    impl std::io::Write for Buf {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("buf lock").extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let jsonl = Buf::default();
    let human = Buf::default();
    let dir = std::env::temp_dir().join(format!("archex-progress-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics = dir.join("metrics.prom");
    let progress = archex::Progress {
        interval_ms: 0, // beat every round
        jsonl: Some(jsonl.sink()),
        human: Some(human.sink()),
        metrics_out: Some(metrics.clone()),
    };
    let kernels = vec![workloads::dot_product(3)];
    let trace =
        Explorer { progress: Some(progress), instrument: true, ..explorer(Strategy::Greedy, 2) }
            .run(&toy(), &kernels)
            .expect("explores");

    assert!(trace.obs.heartbeats > 0, "at least one beat per finished round");
    // Heartbeats never feed the determinism contract.
    let plain = explorer(Strategy::Greedy, 2).run(&toy(), &kernels).expect("explores");
    assert!(trace.semantic_eq(&plain), "progress reporting changed the search");

    let text = jsonl.text();
    let lines: Vec<_> = text.lines().collect();
    assert_eq!(lines.len() as u64, trace.obs.heartbeats, "one JSONL line per beat");
    for (i, line) in lines.iter().enumerate() {
        let j = obs::Json::parse(line).expect("heartbeat line parses");
        assert_eq!(j.get_str("schema"), Some(archex::PROGRESS_SCHEMA));
        assert_eq!(j.get_u64("seq"), Some(i as u64 + 1), "seq is 1-based and dense");
        assert_eq!(j.get_u64("round"), Some(i as u64 + 1));
        assert!(j.get_u64("frontier").expect("frontier") > 0);
        assert!(j.get_f64("hit_rate").expect("hit_rate") <= 1.0);
        assert!(j.get_f64("eta_s").is_some());
        assert!(j.get("errors").is_some(), "error histogram object present");
    }

    let text = human.text();
    assert_eq!(text.lines().count() as u64, trace.obs.heartbeats);
    assert!(text.lines().all(|l| l.starts_with("[explore] round ")), "one-liner format");

    // The Prometheus textfile was (re)written atomically each beat and
    // reflects the instrumented registry.
    let prom = std::fs::read_to_string(&metrics).expect("metrics file written");
    assert!(prom.contains("obs_enabled 1"), "rendered from the live registry:\n{prom}");
    assert!(prom.contains("explore_frontier"), "gauge exported");
    std::fs::remove_dir_all(&dir).ok();
}
