//! Determinism of the parallel exploration engine: the trace must be
//! bit-identical (up to wall-clock synthesis time) at every thread
//! count, for every strategy. The frontier is deduplicated and cached
//! before work is spawned, and the reduction runs serially in proposal
//! order, so worker scheduling can never leak into the result.

use archex::{workloads, EvalCache, Explorer, Strategy};

fn toy() -> isdl::Machine {
    isdl::load(isdl::samples::TOY).expect("TOY fixture loads")
}

fn explorer(strategy: Strategy, threads: usize) -> Explorer {
    Explorer { max_steps: 6, strategy, threads, ..Explorer::default() }
}

#[test]
fn parallel_greedy_trace_matches_serial() {
    let kernels = vec![workloads::dot_product(3)];
    let serial = explorer(Strategy::Greedy, 1).run(&toy(), &kernels).expect("explores");
    let parallel = explorer(Strategy::Greedy, 4).run(&toy(), &kernels).expect("explores");
    assert!(serial.steps.len() > 1, "the run actually improved something");
    assert!(
        serial.semantic_eq(&parallel),
        "greedy trace depends on thread count:\n  serial   {:?}\n  parallel {:?}",
        serial.steps.iter().map(|s| &s.action).collect::<Vec<_>>(),
        parallel.steps.iter().map(|s| &s.action).collect::<Vec<_>>(),
    );
}

#[test]
fn parallel_beam_trace_matches_serial() {
    let kernels = vec![workloads::dot_product(3)];
    let strategy = Strategy::Beam { width: 3 };
    let serial = explorer(strategy, 1).run(&toy(), &kernels).expect("explores");
    let parallel = explorer(strategy, 4).run(&toy(), &kernels).expect("explores");
    assert!(
        serial.semantic_eq(&parallel),
        "beam trace depends on thread count:\n  serial   {:?}\n  parallel {:?}",
        serial.steps.iter().map(|s| &s.action).collect::<Vec<_>>(),
        parallel.steps.iter().map(|s| &s.action).collect::<Vec<_>>(),
    );
}

#[test]
fn serial_runs_are_deterministic() {
    // Two identically configured runs must agree with *themselves*
    // before thread-count comparisons mean anything — this guards the
    // proposal ordering against hash-map iteration order.
    let kernels = vec![workloads::dot_product(3)];
    for strategy in [Strategy::Greedy, Strategy::Beam { width: 3 }] {
        let a = explorer(strategy, 1).run(&toy(), &kernels).expect("explores");
        let b = explorer(strategy, 1).run(&toy(), &kernels).expect("explores");
        assert!(a.semantic_eq(&b), "{strategy:?} differs between identical runs");
    }
}

#[test]
fn beam_run_hits_the_cache() {
    // Sibling beam entries propose overlapping mutations; the memoized
    // frontier must convert those duplicates into cache hits.
    let kernels = vec![workloads::dot_product(3)];
    let trace = explorer(Strategy::Beam { width: 3 }, 2).run(&toy(), &kernels).expect("explores");
    assert!(trace.cache_hits > 0, "beam search re-proposed nothing?");
    assert!(trace.evaluated < trace.candidates_evaluated());
    assert_eq!(trace.skipped_errors, 0, "TOY neighbours all evaluate");
    assert!(trace.first_error.is_none());
}

#[test]
fn shared_cache_carries_across_runs() {
    let kernels = vec![workloads::dot_product(3)];
    let cache = EvalCache::new();
    let e = explorer(Strategy::Greedy, 2);
    let first = e.run_cached(&toy(), &kernels, &cache).expect("explores");
    let warm = e.run_cached(&toy(), &kernels, &cache).expect("explores");
    assert!(first.evaluated > 0);
    assert_eq!(warm.evaluated, 0, "second run re-evaluated a cached machine");
    assert_eq!(warm.cache_hits, first.candidates_evaluated());
    assert_eq!(first.machine, warm.machine);
    assert!(cache.hit_count() >= warm.cache_hits);
}
