//! Fault containment in the exploration loop: an injected toolchain
//! failure — a genuine panic, a simulated divergence, or a synthetic
//! error — must never abort the run or perturb its determinism. The
//! faulted candidate is skipped and counted; everything else proceeds
//! exactly as in a clean run, at every thread count.

use archex::{
    evaluate_contained, workloads, EvalCache, EvalError, EvalOptions, Explorer, FaultPlan,
    SimBudget, Stage,
};

fn toy() -> isdl::Machine {
    isdl::load(isdl::samples::TOY).expect("TOY fixture loads")
}

fn explorer(threads: usize, fault: Option<FaultPlan>) -> Explorer {
    Explorer { max_steps: 6, threads, fault_plan: fault, ..Explorer::default() }
}

#[test]
fn contained_panic_becomes_an_error_naming_the_stage() {
    let kernels = vec![workloads::dot_product(2)];
    for stage in Stage::ALL {
        let fault = FaultPlan::panic_at(stage, 0);
        let opts = EvalOptions { fault: Some(&fault), ..EvalOptions::default() };
        let err = evaluate_contained(&toy(), &kernels, &opts).expect_err("the armed panic fired");
        match err {
            EvalError::ToolchainPanic { stage: s, message } => {
                assert_eq!(s, stage, "panic attributed to the stage it fired in");
                assert!(message.contains("injected fault"), "payload preserved: {message}");
            }
            other => panic!("expected ToolchainPanic, got {other}"),
        }
    }
}

#[test]
fn panic_mid_pipeline_completes_the_run() {
    let kernels = vec![workloads::dot_product(2)];
    let clean = explorer(1, None).run(&toy(), &kernels).expect("clean run explores");
    assert_eq!(clean.skipped_errors, 0);
    assert!(clean.evaluated > 3, "need enough evaluations to fault one mid-run");

    // Fault a fresh evaluation in the middle of the run (not the
    // initial one — that is the only fatal position).
    let fault = FaultPlan::panic_at(Stage::Simulate, 2);
    let trace = explorer(1, Some(fault)).run(&toy(), &kernels).expect("faulted run completes");
    assert_eq!(trace.skipped_errors, 1, "exactly the armed evaluation was skipped");
    let first = trace.first_error.as_deref().expect("first error recorded");
    assert!(
        first.contains("toolchain panic") && first.contains("simulate"),
        "error names the fault class and stage: {first}"
    );
    // The run still made progress and evaluated everything else.
    assert!(trace.steps.len() > 1, "exploration survived the panic");
}

#[test]
fn faulted_trace_is_thread_count_invariant() {
    let kernels = vec![workloads::dot_product(2)];
    for kind in [
        FaultPlan::panic_at(Stage::Gensim, 2),
        FaultPlan::diverge_at(2),
        FaultPlan::error_at(Stage::Synthesize, 2, EvalError::Synthesis("injected".to_owned())),
    ] {
        let traces: Vec<_> = [1, 2, 4]
            .into_iter()
            .map(|threads| {
                explorer(threads, Some(kind.clone()))
                    .run(&toy(), &kernels)
                    .expect("faulted run completes")
            })
            .collect();
        for t in &traces[1..] {
            assert!(
                traces[0].semantic_eq(t),
                "fault `{kind}` perturbs the trace across thread counts:\n  1T {:?} (skipped {}, {:?})\n  nT {:?} (skipped {}, {:?})",
                traces[0].steps.iter().map(|s| &s.action).collect::<Vec<_>>(),
                traces[0].skipped_errors,
                traces[0].first_error,
                t.steps.iter().map(|s| &s.action).collect::<Vec<_>>(),
                t.skipped_errors,
                t.first_error,
            );
        }
        assert!(traces[0].skipped_errors >= 1, "fault `{kind}` fired");
    }
}

#[test]
fn fault_at_the_initial_evaluation_is_the_run_error() {
    let kernels = vec![workloads::dot_product(2)];
    let fault = FaultPlan::panic_at(Stage::Compile, 0);
    let err = explorer(1, Some(fault)).run(&toy(), &kernels).expect_err("initial eval faulted");
    assert!(matches!(err, EvalError::ToolchainPanic { stage: Stage::Compile, .. }), "got {err}");
}

#[test]
fn transient_errors_are_not_cached_but_permanent_ones_are() {
    let kernels = vec![workloads::dot_product(2)];

    // A contained panic is transient: the faulted candidate must not
    // leave a poisoned cache entry, so a re-run over the same cache
    // (with the fault disarmed) re-evaluates it and converges to the
    // clean result.
    let clean = explorer(2, None).run(&toy(), &kernels).expect("clean run");
    let cache = EvalCache::new();
    let fault = FaultPlan::panic_at(Stage::Simulate, 2);
    let faulted =
        explorer(2, Some(fault)).run_cached(&toy(), &kernels, &cache).expect("faulted run");
    assert_eq!(faulted.skipped_errors, 1);
    let retry = explorer(2, None).run_cached(&toy(), &kernels, &cache).expect("retry");
    assert_eq!(retry.skipped_errors, 0, "no poisoned entry survived the fault");
    assert!(retry.evaluated >= 1, "the faulted candidate was re-evaluated");
    assert_eq!(retry.machine, clean.machine, "retry converges to the clean result");
    assert!(
        retry.steps.iter().zip(&clean.steps).all(|(a, b)| a.semantic_eq(b))
            && retry.steps.len() == clean.steps.len(),
        "retry takes the clean run's path"
    );

    // A synthetic *permanent* error is cached: the retry sees the
    // stored error (a cache hit, not a fresh evaluation) and skips the
    // candidate again.
    let cache = EvalCache::new();
    let fault =
        FaultPlan::error_at(Stage::Synthesize, 2, EvalError::Synthesis("injected".to_owned()));
    let faulted =
        explorer(2, Some(fault)).run_cached(&toy(), &kernels, &cache).expect("faulted run");
    assert_eq!(faulted.skipped_errors, 1);
    let retry = explorer(2, None).run_cached(&toy(), &kernels, &cache).expect("retry");
    assert_eq!(retry.evaluated, 0, "every candidate, including the error, was cached");
    assert_eq!(retry.skipped_errors, faulted.skipped_errors, "the stored error is replayed");
    assert_eq!(retry.first_error, faulted.first_error);
}

#[test]
fn budget_exhaustion_is_transient_and_reported() {
    let kernels = vec![workloads::dot_product(2)];
    // Starve every simulation of fuel: the initial evaluation itself
    // exhausts the budget and the run reports it.
    let starved = Explorer {
        max_steps: 2,
        budget: SimBudget { max_instructions: 1, ..SimBudget::default() },
        ..Explorer::default()
    };
    let err = starved.run(&toy(), &kernels).expect_err("starved run fails fast");
    assert!(matches!(err, EvalError::BudgetExhausted { .. }), "got {err}");
    assert!(err.is_transient(), "budget exhaustion must never be cached");
}
