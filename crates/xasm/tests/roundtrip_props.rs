//! Property-based round-trip: for random operand values, assembling an
//! operation and disassembling the resulting word must recover exactly
//! the operation and operands (the reversibility the paper's Axiom 1
//! guarantees), and the formatted text must re-assemble to the same
//! word.

use bitv::BitVector;
use isdl::samples::{SPAM, TOY};
use proptest::prelude::*;
use xasm::{Assembler, Disassembler};

/// Builds a random TOY instruction line from operand choices.
fn toy_line(op: usize, regs: [u8; 3], imm: u8, mode: bool, target: u16) -> String {
    let (d, a, b) = (regs[0] % 8, regs[1] % 8, regs[2] % 8);
    let src = if mode { format!("ind(R{b})") } else { format!("reg(R{b})") };
    match op % 8 {
        0 => format!("add R{d}, R{a}, {src}"),
        1 => format!("sub R{d}, R{a}, {src}"),
        2 => format!("and R{d}, R{a}, {src}"),
        3 => format!("xor R{d}, R{a}, {src}"),
        4 => format!("li R{d}, {imm}"),
        5 => format!("st {imm}, R{a}"),
        6 => format!("jmp {}", target % 1024),
        _ => format!("mac R{a}, R{b}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn toy_assemble_disassemble_format_reassemble(
        op in 0usize..8,
        regs in proptest::array::uniform3(0u8..8),
        imm in 0u8..=255,
        mode in any::<bool>(),
        target in 0u16..1024,
        parallel_mv in any::<bool>(),
        mv_regs in proptest::array::uniform2(0u8..8),
    ) {
        let machine = isdl::load(TOY).expect("loads");
        let asm = Assembler::new(&machine);
        let d = Disassembler::new(&machine);

        let mut line = toy_line(op, regs, imm, mode, target);
        if parallel_mv {
            line.push_str(&format!(" | mv R{}, R{}", mv_regs[0], mv_regs[1]));
        }
        let program = asm.assemble(&line).expect("assembles");
        prop_assert_eq!(program.words.len(), 1);

        // Decode and re-format.
        let instr = d.decode(&program.words, 0).expect("decodes");
        let text = d.format_instr(&instr);

        // The formatted text re-assembles to the identical word.
        let again = asm.assemble(&text).expect("formatted text assembles");
        prop_assert_eq!(&again.words[0], &program.words[0], "line `{}` -> `{}`", line, text);
    }

    #[test]
    fn spam_signature_apply_extract_roundtrip(
        field in 0usize..7,
        opi in 0usize..12,
        raw in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let machine = isdl::load(SPAM).expect("loads");
        let field = field % machine.fields.len();
        let opi = opi % machine.fields[field].ops.len();
        let op = &machine.fields[field].ops[opi];
        let d = Disassembler::new(&machine);
        let r = isdl::model::OpRef { field: isdl::model::FieldId(field), op: opi };
        let sig = d.signature(r);

        // Random parameter values of the right widths.
        let params: Vec<BitVector> = op
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let w = machine.param_encoding_width(p.ty);
                BitVector::from_u64(raw[i % raw.len()], w)
            })
            .collect();
        let word = sig.apply(&BitVector::zero(sig.width()), &params);
        prop_assert!(sig.matches(&word), "own encoding must match");
        for (i, p) in op.params.iter().enumerate() {
            let w = machine.param_encoding_width(p.ty);
            prop_assert_eq!(
                sig.extract_param(&word, i, w),
                params[i].clone(),
                "parameter {} of {}.{}",
                i,
                machine.fields[field].name,
                op.name
            );
        }
    }

    #[test]
    fn random_words_never_panic_the_disassembler(
        words in proptest::collection::vec(any::<u64>(), 1..4),
    ) {
        let machine = isdl::load(TOY).expect("loads");
        let d = Disassembler::new(&machine);
        let bvs: Vec<BitVector> =
            words.iter().map(|&w| BitVector::from_u64(w, 32)).collect();
        // Any bit pattern either decodes or reports IllegalInstruction;
        // it must never panic.
        if let Ok(instr) = d.decode(&bvs, 0) {
            // Whatever decoded must re-encode onto the same word
            // (over the assigned bits) via the assembler path.
            let text = d.format_instr(&instr);
            let _ = Assembler::new(&machine).assemble(&text);
        }
    }
}
