//! The signature-matching disassembler (Figure 4 of the paper).
//!
//! For every operation in every field (and every option of every
//! non-terminal) a [`Signature`] is precomputed. Decoding an
//! instruction then:
//!
//! 1. matches the *constant* part of each operation's signature against
//!    the instruction word — by the decodability validation this match
//!    is unique within a field;
//! 2. reverses every parameter encoding symbolically (the paper's
//!    Axiom 1 guarantees each parameter symbol depends on one parameter
//!    only);
//! 3. recurses into non-terminal parameters using the extracted return
//!    value as the sub-word to match options against.
//!
//! Decoding is total: any input either produces a [`DecodedInstr`] or a
//! [`DisasmError`] diagnostic — arbitrary binary never panics.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::error::DisasmError;
use bitv::BitVector;
use isdl::model::{Machine, NtId, OpRef, Operation, ParamType, TokenKind};
use isdl::signature::Signature;
use std::fmt::Write as _;

/// A decoded operand value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A token operand: the raw encoded value (register index,
    /// immediate bits, or enum position).
    Token(BitVector),
    /// A non-terminal operand: which option matched and its operands.
    NonTerminal {
        /// The non-terminal.
        nt: NtId,
        /// Index of the matched option.
        option: usize,
        /// The option's decoded operands.
        args: Vec<Operand>,
    },
}

/// One decoded operation (one field's slot of an instruction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedOp {
    /// Which operation matched.
    pub op: OpRef,
    /// Its decoded operands, in parameter order.
    pub args: Vec<Operand>,
}

/// A fully decoded VLIW instruction: one operation per field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedInstr {
    /// One entry per machine field, in field order.
    pub ops: Vec<DecodedOp>,
    /// Instruction size in words (maximum over the selected
    /// operations' `size` costs).
    pub size: u32,
}

impl DecodedInstr {
    /// The per-field selection vector (op index per field), as used by
    /// constraint checking.
    #[must_use]
    pub fn selection(&self) -> Vec<usize> {
        self.ops.iter().map(|o| o.op.op).collect()
    }
}

/// A signature-based disassembler for one machine.
///
/// Construction precomputes every operation and option signature, so
/// per-word decoding is cheap — the simulator uses this for its
/// off-line disassembly pass at load time.
#[derive(Debug)]
pub struct Disassembler<'m> {
    machine: &'m Machine,
    /// `field_sigs[f][o]` = signature of op `o` of field `f`, over that
    /// op's own `size * word_width` bits.
    field_sigs: Vec<Vec<Signature>>,
    /// `nt_sigs[n][o]` = signature of option `o` of non-terminal `n`.
    nt_sigs: Vec<Vec<Signature>>,
    max_size: u32,
}

impl<'m> Disassembler<'m> {
    /// Builds the disassembler for `machine`.
    ///
    /// # Panics
    ///
    /// Panics if the machine's encodings are internally inconsistent;
    /// machines produced by [`isdl::load`] never are. Use
    /// [`Disassembler::try_new`] when the machine comes from an
    /// untrusted generator.
    #[must_use]
    pub fn new(machine: &'m Machine) -> Self {
        match Self::try_new(machine) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the disassembler for `machine`, reporting inconsistent
    /// encodings as a diagnostic instead of panicking.
    ///
    /// # Errors
    ///
    /// [`DisasmError::InconsistentEncoding`] naming the operation or
    /// option whose signature could not be derived.
    pub fn try_new(machine: &'m Machine) -> Result<Self, DisasmError> {
        let mut field_sigs = Vec::with_capacity(machine.fields.len());
        for f in &machine.fields {
            let mut sigs = Vec::with_capacity(f.ops.len());
            for o in &f.ops {
                let sig = Signature::from_encoding(&o.encode, o.costs.size * machine.word_width)
                    .map_err(|e| DisasmError::InconsistentEncoding {
                        context: format!("{}.{}: {e}", f.name, o.name),
                    })?;
                sigs.push(sig);
            }
            field_sigs.push(sigs);
        }
        let mut nt_sigs = Vec::with_capacity(machine.nonterminals.len());
        for nt in &machine.nonterminals {
            let mut sigs = Vec::with_capacity(nt.options.len());
            for o in &nt.options {
                let sig = Signature::from_encoding(&o.encode, nt.width).map_err(|e| {
                    DisasmError::InconsistentEncoding {
                        context: format!("{}.{}: {e}", nt.name, o.name),
                    }
                })?;
                sigs.push(sig);
            }
            nt_sigs.push(sigs);
        }
        Ok(Self { machine, field_sigs, nt_sigs, max_size: machine.max_op_size() })
    }

    /// The machine this disassembler was generated from.
    #[must_use]
    pub fn machine(&self) -> &'m Machine {
        self.machine
    }

    /// Maximum instruction size in words; callers should supply this
    /// many words to [`Self::decode`] when available.
    #[must_use]
    pub fn max_size(&self) -> u32 {
        self.max_size
    }

    /// The precomputed signature of an operation.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn signature(&self, r: OpRef) -> &Signature {
        &self.field_sigs[r.field.0][r.op]
    }

    /// Decodes one instruction starting at `words[0]`. `addr` is used
    /// only for error reporting. Fewer than [`Self::max_size`] words may
    /// be supplied near the end of memory; missing words read as zero.
    ///
    /// # Errors
    ///
    /// [`DisasmError::IllegalInstruction`] if some field has no
    /// matching operation, [`DisasmError::Truncated`] if the matched
    /// instruction needs more words than remain.
    pub fn decode(&self, words: &[BitVector], addr: u64) -> Result<DecodedInstr, DisasmError> {
        let w = self.machine.word_width;
        let wide_width = self.max_size * w;
        // Build the wide instruction image: word k occupies bits
        // [k*w + w - 1 : k*w].
        let mut wide = BitVector::zero(wide_width);
        for (k, word) in words.iter().take(self.max_size as usize).enumerate() {
            let k = k as u32;
            wide = wide.with_slice(k * w + w - 1, k * w, &word.trunc(w).zext(w));
        }
        let mut ops = Vec::with_capacity(self.machine.fields.len());
        let mut size = 1;
        for (fi, field) in self.machine.fields.iter().enumerate() {
            let mut matched = None;
            for (oi, sig) in self.field_sigs[fi].iter().enumerate() {
                if sig.matches(&wide) {
                    matched = Some(oi);
                    break;
                }
            }
            let Some(oi) = matched else {
                return Err(DisasmError::IllegalInstruction { field: field.name.clone(), addr });
            };
            let op = &field.ops[oi];
            size = size.max(op.costs.size);
            let sig = &self.field_sigs[fi][oi];
            let args = self.decode_args(op, sig, &wide, addr)?;
            ops.push(DecodedOp { op: OpRef { field: isdl::model::FieldId(fi), op: oi }, args });
        }
        if size as usize > words.len() {
            return Err(DisasmError::Truncated { addr });
        }
        Ok(DecodedInstr { ops, size })
    }

    fn decode_args(
        &self,
        op: &Operation,
        sig: &Signature,
        word: &BitVector,
        addr: u64,
    ) -> Result<Vec<Operand>, DisasmError> {
        let mut args = Vec::with_capacity(op.params.len());
        for (pi, p) in op.params.iter().enumerate() {
            let enc_w = self.machine.param_encoding_width(p.ty);
            let raw = sig.extract_param(word, pi, enc_w);
            args.push(match p.ty {
                ParamType::Token(_) => Operand::Token(raw),
                ParamType::NonTerminal(n) => self.decode_nt(n, &raw, addr)?,
            });
        }
        Ok(args)
    }

    fn decode_nt(&self, nt_id: NtId, sub: &BitVector, addr: u64) -> Result<Operand, DisasmError> {
        let nt = &self.machine.nonterminals[nt_id.0];
        for (oi, sig) in self.nt_sigs[nt_id.0].iter().enumerate() {
            if sig.matches(sub) {
                let option = &nt.options[oi];
                let args = self.decode_args(option, sig, sub, addr)?;
                return Ok(Operand::NonTerminal { nt: nt_id, option: oi, args });
            }
        }
        // A validated machine's options cover all generated encodings,
        // but arbitrary binary (or a buggy generator) may still miss.
        // Formerly this fell back to a raw token operand, which blew up
        // later inside RTL execution; surface it at decode time instead.
        Err(DisasmError::UndecodableOperand { nt: nt.name.clone(), addr })
    }

    /// Formats a decoded instruction back into assembly text, using the
    /// token definitions for operand spellings.
    #[must_use]
    pub fn format_instr(&self, instr: &DecodedInstr) -> String {
        let mut parts = Vec::new();
        for d in &instr.ops {
            let field = &self.machine.fields[d.op.field.0];
            // Skip trailing pure-nop slots for readability, but always
            // print at least one op.
            if Some(d.op.op) == field.nop && instr.ops.len() > 1 {
                continue;
            }
            parts.push(self.format_op(d));
        }
        if parts.is_empty() {
            // Every field was its nop: print the first field's nop.
            parts.push(self.format_op(&instr.ops[0]));
        }
        parts.join(" | ")
    }

    fn format_op(&self, d: &DecodedOp) -> String {
        let op = self.machine.op(d.op);
        let mut s = op.name.clone();
        for (i, (param, arg)) in op.params.iter().zip(&d.args).enumerate() {
            s.push_str(if i == 0 { " " } else { ", " });
            self.format_operand(param.ty, arg, &mut s);
        }
        s
    }

    fn format_operand(&self, ty: ParamType, arg: &Operand, out: &mut String) {
        match (ty, arg) {
            (ParamType::Token(t), Operand::Token(v)) => {
                let tok = &self.machine.tokens[t.0];
                match &tok.kind {
                    TokenKind::Register { prefix, .. } => {
                        let _ = write!(out, "{prefix}{}", v.to_u64_lossy());
                    }
                    TokenKind::Immediate { signed } => {
                        if *signed {
                            let _ = write!(out, "{}", v.to_i64().unwrap_or_default());
                        } else {
                            let _ = write!(out, "{}", v.to_u64_lossy());
                        }
                    }
                    TokenKind::Enum { names } => {
                        let idx = v.to_u64_lossy() as usize;
                        match names.get(idx) {
                            Some(n) => out.push_str(n),
                            None => {
                                let _ = write!(out, "<enum {idx}>");
                            }
                        }
                    }
                }
            }
            (ParamType::NonTerminal(n), Operand::NonTerminal { option, args, .. }) => {
                let nt = &self.machine.nonterminals[n.0];
                let opt = &nt.options[*option];
                out.push_str(&opt.name);
                out.push('(');
                for (i, (p, a)) in opt.params.iter().zip(args).enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.format_operand(p.ty, a, out);
                }
                out.push(')');
            }
            // Mismatched shapes only arise from undecodable raw bits.
            (_, Operand::Token(v)) => {
                let _ = write!(out, "<raw {v}>");
            }
            (_, Operand::NonTerminal { .. }) => out.push_str("<bad operand>"),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use isdl::samples::TOY;

    fn decode_one(machine: &Machine, word: u64) -> DecodedInstr {
        let d = Disassembler::new(machine);
        d.decode(&[BitVector::from_u64(word, machine.word_width)], 0).expect("decodes")
    }

    #[test]
    fn decode_add_with_nt() {
        let m = isdl::load(TOY).expect("loads");
        // add R2, R1, reg(R3): op 00001, d=2, a=1, s=0b0011; MOVE nop.
        let word = (0b00001u64 << 27) | (2 << 24) | (1 << 21) | (0b0011 << 17);
        let i = decode_one(&m, word);
        let add = &i.ops[0];
        assert_eq!(m.op_name(add.op), "ALU.add");
        assert_eq!(add.args[0], Operand::Token(BitVector::from_u64(2, 3)));
        match &add.args[2] {
            Operand::NonTerminal { option, args, .. } => {
                assert_eq!(*option, 0); // reg
                assert_eq!(args[0], Operand::Token(BitVector::from_u64(3, 3)));
            }
            other => panic!("expected non-terminal operand, got {other:?}"),
        }
        assert_eq!(m.op_name(i.ops[1].op), "MOVE.nop");
    }

    #[test]
    fn decode_indirect_option() {
        let m = isdl::load(TOY).expect("loads");
        // sub R0, R1, ind(R2): op 00010, s = 0b1010.
        let word = (0b00010u64 << 27) | (1 << 21) | (0b1010 << 17);
        let i = decode_one(&m, word);
        match &i.ops[0].args[2] {
            Operand::NonTerminal { option, .. } => assert_eq!(*option, 1),
            other => panic!("expected non-terminal, got {other:?}"),
        }
    }

    #[test]
    fn illegal_instruction() {
        let m = isdl::load(TOY).expect("loads");
        let d = Disassembler::new(&m);
        // ALU opcode 11111 is undefined.
        let word = BitVector::from_u64(0b11111u64 << 27, 32);
        let e = d.decode(&[word], 4).expect_err("illegal");
        assert!(
            matches!(e, DisasmError::IllegalInstruction { ref field, addr: 4 } if field == "ALU")
        );
    }

    #[test]
    fn format_round_trip_text() {
        let m = isdl::load(TOY).expect("loads");
        let d = Disassembler::new(&m);
        let word = (0b00101u64 << 27) | (4 << 24) | (0x2A << 16); // li R4, 42
        let i = d.decode(&[BitVector::from_u64(word, 32)], 0).expect("decodes");
        assert_eq!(d.format_instr(&i), "li R4, 42");
    }

    #[test]
    fn format_parallel_ops() {
        let m = isdl::load(TOY).expect("loads");
        let d = Disassembler::new(&m);
        // add R2, R1, reg(R3) | mv R4, R5
        let word = (0b00001u64 << 27)
            | (2 << 24)
            | (1 << 21)
            | (0b0011 << 17)
            | (0b001 << 13)
            | (4 << 10)
            | (5 << 7);
        let i = d.decode(&[BitVector::from_u64(word, 32)], 0).expect("decodes");
        assert_eq!(d.format_instr(&i), "add R2, R1, reg(R3) | mv R4, R5");
    }

    #[test]
    fn all_nops_formats_one() {
        let m = isdl::load(TOY).expect("loads");
        let d = Disassembler::new(&m);
        let i = d.decode(&[BitVector::zero(32)], 0).expect("decodes");
        assert_eq!(d.format_instr(&i), "nop");
    }
}
