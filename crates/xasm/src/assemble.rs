//! The retargetable assembler.
//!
//! Two passes: the first parses lines, resolves operation names and
//! sizes, and lays out addresses (so labels get values); the second
//! binds operands, checks the ISDL constraints on every instruction,
//! and encodes through the operation signatures.

use crate::error::AsmError;
use bitv::BitVector;
use isdl::model::{FieldId, Machine, NtId, OpRef, Operation, ParamType, TokenKind};
use isdl::signature::Signature;
use std::collections::HashMap;

/// An assembled program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The instruction-memory image, one instruction-word-width value
    /// per address, starting at address 0. Unwritten locations are zero.
    pub words: Vec<BitVector>,
    /// Data-memory initialisation: `(address, value)` pairs emitted by
    /// `.word` directives after a `.data` section switch. The loader
    /// sizes each value to the data-memory width.
    pub data: Vec<(u64, i64)>,
    /// Label values (word addresses in their section).
    pub labels: HashMap<String, u64>,
    /// Code-section labels only, sorted by address — each opens a
    /// profiling region that extends to the next label. Data labels
    /// are excluded because their addresses alias the code address
    /// space (`labels` flattens both sections into one map).
    pub code_labels: Vec<(u64, String)>,
    /// `(address, source text)` pairs for listings and debugging.
    pub listing: Vec<(u64, String)>,
    /// Entry address (the `start` label if defined, else 0).
    pub entry: u64,
}

/// A retargetable assembler for one machine.
#[derive(Debug)]
pub struct Assembler<'m> {
    machine: &'m Machine,
    field_sigs: Vec<Vec<Signature>>,
    nt_sigs: Vec<Vec<Signature>>,
}

/// A parsed operand.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Arg {
    /// An integer literal (possibly negative).
    Int(i64),
    /// A bare symbol: register name, enum spelling, or label.
    Sym(String),
    /// `name(args…)` — a non-terminal option.
    Call(String, Vec<Arg>),
}

/// Per-field operation slots of one parsed instruction.
type InstrSlots = Vec<(OpRef, Vec<Arg>)>;

/// One line item after pass 1.
#[derive(Debug)]
enum Item {
    Instr {
        addr: u64,
        line: u32,
        text: String,
        /// One `(op, args)` per machine field, in field order.
        slots: Vec<(OpRef, Vec<Arg>)>,
        size: u32,
    },
    Word {
        addr: u64,
        line: u32,
        value: BitVector,
    },
}

impl<'m> Assembler<'m> {
    /// Creates an assembler for `machine`.
    ///
    /// # Panics
    ///
    /// Panics if the machine's encodings are inconsistent; machines
    /// from [`isdl::load`] never are.
    #[must_use]
    pub fn new(machine: &'m Machine) -> Self {
        let field_sigs = machine
            .fields
            .iter()
            .map(|f| {
                f.ops
                    .iter()
                    .map(|o| {
                        Signature::from_encoding(&o.encode, o.costs.size * machine.word_width)
                            .expect("validated machine")
                    })
                    .collect()
            })
            .collect();
        let nt_sigs = machine
            .nonterminals
            .iter()
            .map(|nt| {
                nt.options
                    .iter()
                    .map(|o| {
                        Signature::from_encoding(&o.encode, nt.width).expect("validated machine")
                    })
                    .collect()
            })
            .collect();
        Self { machine, field_sigs, nt_sigs }
    }

    /// Assembles source text into a [`Program`].
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] with the offending line for unknown
    /// operations, malformed or out-of-range operands, undefined
    /// labels, constraint violations, and overlapping code.
    pub fn assemble(&self, src: &str) -> Result<Program, AsmError> {
        // ---- pass 1: parse, resolve ops, lay out addresses ----
        let mut items = Vec::new();
        let mut data: Vec<(u64, i64)> = Vec::new();
        let mut labels: HashMap<String, u64> = HashMap::new();
        let mut code_labels: Vec<(u64, String)> = Vec::new();
        let mut text_pc: u64 = 0;
        let mut data_pc: u64 = 0;
        let mut in_data = false;
        for (lineno, raw) in src.lines().enumerate() {
            let line = lineno as u32 + 1;
            let mut text = strip_comment(raw).trim();
            // Labels (possibly several).
            while let Some((label, rest)) = split_label(text) {
                let here = if in_data { data_pc } else { text_pc };
                if labels.insert(label.to_owned(), here).is_some() {
                    return Err(AsmError::new(line, format!("label `{label}` defined twice")));
                }
                if !in_data {
                    code_labels.push((here, label.to_owned()));
                }
                text = rest.trim();
            }
            if text.is_empty() {
                continue;
            }
            if text == ".data" {
                in_data = true;
                continue;
            }
            if text == ".text" {
                in_data = false;
                continue;
            }
            if let Some(rest) = text.strip_prefix(".org") {
                let a = parse_int(rest.trim())
                    .ok_or_else(|| AsmError::new(line, "bad .org operand"))?
                    as u64;
                if in_data {
                    data_pc = a;
                } else {
                    text_pc = a;
                }
                continue;
            }
            if let Some(rest) = text.strip_prefix(".word") {
                let v = parse_int(rest.trim())
                    .ok_or_else(|| AsmError::new(line, "bad .word operand"))?;
                if in_data {
                    data.push((data_pc, v));
                    data_pc += 1;
                } else {
                    items.push(Item::Word {
                        addr: text_pc,
                        line,
                        value: BitVector::from_i64(v, self.machine.word_width),
                    });
                    text_pc += 1;
                }
                continue;
            }
            if in_data {
                return Err(AsmError::new(
                    line,
                    "instructions are not allowed in the .data section",
                ));
            }
            let (slots, size) = self.parse_instr(text, line)?;
            items.push(Item::Instr { addr: text_pc, line, text: text.to_owned(), slots, size });
            text_pc += u64::from(size);
        }

        // ---- pass 2: bind operands and encode ----
        let mut image: HashMap<u64, (BitVector, u32)> = HashMap::new();
        let mut listing = Vec::new();
        let w = self.machine.word_width;
        for item in &items {
            match item {
                Item::Word { addr, line, value } => {
                    if image.insert(*addr, (value.clone(), *line)).is_some() {
                        return Err(AsmError::new(
                            *line,
                            format!("address {addr:#x} written twice"),
                        ));
                    }
                }
                Item::Instr { addr, line, text, slots, size } => {
                    let selection: Vec<usize> = slots.iter().map(|(r, _)| r.op).collect();
                    if let Some(ci) = self.machine.check_constraints(&selection) {
                        return Err(AsmError::new(
                            *line,
                            format!(
                                "instruction violates constraint #{ci}: {}",
                                slots
                                    .iter()
                                    .map(|(r, _)| self.machine.op_name(*r))
                                    .collect::<Vec<_>>()
                                    .join(" | ")
                            ),
                        ));
                    }
                    let mut wide = BitVector::zero(size * w);
                    for (r, args) in slots {
                        let op = self.machine.op(*r);
                        let params = self.bind_args(op, args, &labels, *line)?;
                        let sig = &self.field_sigs[r.field.0][r.op];
                        // The signature spans the op's own size; apply on
                        // a matching prefix then merge.
                        let own_w = sig.width();
                        let prefix = wide.trunc(own_w);
                        let applied = sig.apply(&prefix, &params);
                        wide = wide.with_slice(own_w - 1, 0, &applied);
                    }
                    for k in 0..*size {
                        let word = wide.slice(k * w + w - 1, k * w);
                        let a = addr + u64::from(k);
                        if image.insert(a, (word, *line)).is_some() {
                            return Err(AsmError::new(
                                *line,
                                format!("address {a:#x} written twice"),
                            ));
                        }
                    }
                    listing.push((*addr, text.clone()));
                }
            }
        }

        let len = image.keys().max().map_or(0, |m| m + 1);
        let mut words = vec![BitVector::zero(w); len as usize];
        for (a, (v, _)) in image {
            words[a as usize] = v;
        }
        let entry = labels.get("start").copied().unwrap_or(0);
        // `.org` can lay regions out of source order; sort (stably, so
        // two labels on one address keep their source order).
        code_labels.sort_by_key(|(a, _)| *a);
        Ok(Program { words, data, labels, code_labels, listing, entry })
    }

    /// Parses one instruction line into per-field slots, inserting nop
    /// defaults for omitted fields.
    fn parse_instr(&self, text: &str, line: u32) -> Result<(InstrSlots, u32), AsmError> {
        let mut slots: Vec<Option<(OpRef, Vec<Arg>)>> = vec![None; self.machine.fields.len()];
        for part in split_top(text, '|') {
            let part = part.trim();
            if part.is_empty() {
                return Err(AsmError::new(line, "empty operation slot"));
            }
            let (head, rest) =
                part.split_once(char::is_whitespace).map_or((part, ""), |(h, r)| (h, r));
            let r = self.resolve_op(head, line)?;
            let args = parse_args(rest, line)?;
            let slot = &mut slots[r.field.0];
            if slot.is_some() {
                return Err(AsmError::new(
                    line,
                    format!(
                        "two operations given for field `{}`",
                        self.machine.fields[r.field.0].name
                    ),
                ));
            }
            *slot = Some((r, args));
        }
        let mut out = Vec::with_capacity(slots.len());
        let mut size = 1;
        for (fi, slot) in slots.into_iter().enumerate() {
            let (r, args) = match slot {
                Some(s) => s,
                None => {
                    let field = &self.machine.fields[fi];
                    let nop = field.nop.ok_or_else(|| {
                        AsmError::new(
                            line,
                            format!("field `{}` has no operation and no `nop` default", field.name),
                        )
                    })?;
                    (OpRef { field: FieldId(fi), op: nop }, Vec::new())
                }
            };
            size = size.max(self.machine.op(r).costs.size);
            out.push((r, args));
        }
        Ok((out, size))
    }

    /// Resolves `name` or `FIELD.name` to an operation.
    fn resolve_op(&self, head: &str, line: u32) -> Result<OpRef, AsmError> {
        if let Some((field, op)) = head.split_once('.') {
            return self
                .machine
                .op_by_name(field, op)
                .ok_or_else(|| AsmError::new(line, format!("unknown operation `{head}`")));
        }
        // An unqualified name picks the *first* field defining it —
        // VLIWs commonly repeat mnemonics across issue slots (both
        // SPAM ALUs define `add`); the second slot is reached with the
        // qualified `FIELD.op` form.
        for (fi, f) in self.machine.fields.iter().enumerate() {
            if let Some(oi) = f.ops.iter().position(|o| o.name == head) {
                return Ok(OpRef { field: FieldId(fi), op: oi });
            }
        }
        Err(AsmError::new(line, format!("unknown operation `{head}`")))
    }

    /// Binds parsed args to an operation's parameters, producing the
    /// encoded value of each parameter.
    fn bind_args(
        &self,
        op: &Operation,
        args: &[Arg],
        labels: &HashMap<String, u64>,
        line: u32,
    ) -> Result<Vec<BitVector>, AsmError> {
        if args.len() != op.params.len() {
            return Err(AsmError::new(
                line,
                format!(
                    "operation `{}` takes {} operand(s), {} given",
                    op.name,
                    op.params.len(),
                    args.len()
                ),
            ));
        }
        op.params.iter().zip(args).map(|(p, a)| self.bind_one(p.ty, a, labels, line)).collect()
    }

    fn bind_one(
        &self,
        ty: ParamType,
        arg: &Arg,
        labels: &HashMap<String, u64>,
        line: u32,
    ) -> Result<BitVector, AsmError> {
        match ty {
            ParamType::Token(t) => {
                let tok = &self.machine.tokens[t.0];
                match (&tok.kind, arg) {
                    (TokenKind::Register { prefix, count }, Arg::Sym(s)) => {
                        let idx = s
                            .strip_prefix(prefix.as_str())
                            .and_then(|d| d.parse::<u64>().ok())
                            .filter(|&i| i < *count)
                            .ok_or_else(|| {
                                AsmError::new(
                                    line,
                                    format!("`{s}` is not a valid {prefix}-register"),
                                )
                            })?;
                        Ok(BitVector::from_u64(idx, tok.width))
                    }
                    (TokenKind::Enum { names }, Arg::Sym(s)) => {
                        let idx = names.iter().position(|n| n == s).ok_or_else(|| {
                            AsmError::new(
                                line,
                                format!("`{s}` is not one of: {}", names.join(", ")),
                            )
                        })?;
                        Ok(BitVector::from_u64(idx as u64, tok.width))
                    }
                    (TokenKind::Immediate { signed }, Arg::Int(v)) => {
                        self.fit_imm(*v, tok.width, *signed, line)
                    }
                    (TokenKind::Immediate { signed }, Arg::Sym(s)) => {
                        let v = labels
                            .get(s)
                            .copied()
                            .ok_or_else(|| AsmError::new(line, format!("undefined label `{s}`")))?;
                        self.fit_imm(v as i64, tok.width, *signed, line)
                    }
                    (_, a) => Err(AsmError::new(
                        line,
                        format!("operand {a:?} does not fit token `{}`", tok.name),
                    )),
                }
            }
            ParamType::NonTerminal(n) => {
                let Arg::Call(name, sub) = arg else {
                    return Err(AsmError::new(
                        line,
                        format!(
                            "operand for non-terminal `{}` must be written option(args…)",
                            self.machine.nonterminals[n.0].name
                        ),
                    ));
                };
                self.bind_nt(n, name, sub, labels, line)
            }
        }
    }

    fn bind_nt(
        &self,
        n: NtId,
        option_name: &str,
        args: &[Arg],
        labels: &HashMap<String, u64>,
        line: u32,
    ) -> Result<BitVector, AsmError> {
        let nt = &self.machine.nonterminals[n.0];
        let oi = nt.options.iter().position(|o| o.name == option_name).ok_or_else(|| {
            AsmError::new(line, format!("non-terminal `{}` has no option `{option_name}`", nt.name))
        })?;
        let option = &nt.options[oi];
        let params = self.bind_args(option, args, labels, line)?;
        let sig = &self.nt_sigs[n.0][oi];
        Ok(sig.apply(&BitVector::zero(nt.width), &params))
    }

    fn fit_imm(&self, v: i64, width: u32, signed: bool, line: u32) -> Result<BitVector, AsmError> {
        let ok = if signed {
            let half = 1i128 << (width - 1);
            (i128::from(v) >= -half) && (i128::from(v) < half)
        } else {
            v >= 0 && (width >= 64 || (v as u64) < (1u64 << width))
        };
        if !ok {
            return Err(AsmError::new(
                line,
                format!(
                    "immediate {v} does not fit a {width}-bit {} field",
                    if signed { "signed" } else { "unsigned" }
                ),
            ));
        }
        Ok(BitVector::from_i64(v, width))
    }
}

/// Removes `;`, `//` and `#` comments (not inside strings — the
/// dialect has none).
fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for (i, c) in line.char_indices() {
        if c == ';' || c == '#' {
            end = i;
            break;
        }
        if c == '/' && line[i + 1..].starts_with('/') {
            end = i;
            break;
        }
    }
    &line[..end]
}

/// If the line starts with `label:`, returns `(label, rest)`.
fn split_label(text: &str) -> Option<(&str, &str)> {
    let colon = text.find(':')?;
    let (head, rest) = text.split_at(colon);
    let head = head.trim();
    if !head.is_empty()
        && head.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && head.chars().next().is_some_and(|c| !c.is_ascii_digit())
    {
        Some((head, &rest[1..]))
    } else {
        None
    }
}

/// Splits at top-level occurrences of `sep` (not inside parentheses).
fn split_top(text: &str, sep: char) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            c if c == sep && depth == 0 => {
                out.push(&text[start..i]);
                start = i + c.len_utf8();
            }
            _ => {}
        }
    }
    out.push(&text[start..]);
    out
}

fn parse_args(rest: &str, line: u32) -> Result<Vec<Arg>, AsmError> {
    let rest = rest.trim();
    if rest.is_empty() {
        return Ok(Vec::new());
    }
    split_top(rest, ',').into_iter().map(|a| parse_arg(a.trim(), line)).collect()
}

fn parse_arg(text: &str, line: u32) -> Result<Arg, AsmError> {
    if text.is_empty() {
        return Err(AsmError::new(line, "empty operand"));
    }
    if let Some(v) = parse_int(text) {
        return Ok(Arg::Int(v));
    }
    if let Some(open) = text.find('(') {
        if text.ends_with(')') {
            let name = text[..open].trim();
            let inner = &text[open + 1..text.len() - 1];
            let args = parse_args(inner, line)?;
            return Ok(Arg::Call(name.to_owned(), args));
        }
        return Err(AsmError::new(line, format!("unbalanced parentheses in `{text}`")));
    }
    if text.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Ok(Arg::Sym(text.to_owned()));
    }
    Err(AsmError::new(line, format!("cannot parse operand `{text}`")))
}

fn parse_int(text: &str) -> Option<i64> {
    let (neg, t) = match text.strip_prefix('-') {
        Some(t) => (true, t),
        None => (false, text),
    };
    let v = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(h, 16).ok()?
    } else if let Some(b) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        i64::from_str_radix(b, 2).ok()?
    } else if t.chars().all(|c| c.is_ascii_digit()) && !t.is_empty() {
        t.parse().ok()?
    } else {
        return None;
    };
    Some(if neg { -v } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Disassembler;
    use isdl::samples::{ACC16, TOY};

    fn toy() -> Machine {
        isdl::load(TOY).expect("toy loads")
    }

    #[test]
    fn assemble_single_op() {
        let m = toy();
        let p = Assembler::new(&m).assemble("li R4, 42").expect("assembles");
        assert_eq!(p.words.len(), 1);
        let expect = (0b00101u64 << 27) | (4 << 24) | (42 << 16);
        assert_eq!(p.words[0].to_u64_lossy(), expect);
    }

    #[test]
    fn assemble_parallel_ops() {
        let m = toy();
        let p = Assembler::new(&m).assemble("add R2, R1, reg(R3) | mv R4, R5").expect("assembles");
        let expect = (0b00001u64 << 27)
            | (2 << 24)
            | (1 << 21)
            | (0b0011 << 17)
            | (0b001 << 13)
            | (4 << 10)
            | (5 << 7);
        assert_eq!(p.words[0].to_u64_lossy(), expect);
    }

    #[test]
    fn labels_resolve_forward_and_back() {
        let m = toy();
        let src = "start: li R1, 0\nloop: add R1, R1, reg(R1)\n jz done\n jmp loop\ndone: nop\n";
        let p = Assembler::new(&m).assemble(src).expect("assembles");
        assert_eq!(p.labels["start"], 0);
        assert_eq!(p.labels["loop"], 1);
        assert_eq!(p.labels["done"], 4);
        assert_eq!(p.entry, 0);
        // jz done at address 2 encodes target 4.
        assert_eq!(p.words[2].slice(25, 16).to_u64_lossy(), 4);
    }

    #[test]
    fn org_and_word_directives() {
        let m = toy();
        let p = Assembler::new(&m).assemble(".org 4\n.word 0xDEAD\nnop\n").expect("assembles");
        assert_eq!(p.words.len(), 6);
        assert_eq!(p.words[4].to_u64_lossy(), 0xDEAD);
        assert!(p.words[0].is_zero());
    }

    #[test]
    fn constraint_violation_rejected() {
        let m = toy();
        let e = Assembler::new(&m)
            .assemble("mac R1, R2 | mvacc R3")
            .expect_err("constraint should fire");
        assert!(e.msg.contains("constraint"));
    }

    #[test]
    fn operand_errors() {
        let m = toy();
        let asm = Assembler::new(&m);
        assert!(asm.assemble("li R9, 1").is_err()); // no R9
        assert!(asm.assemble("li R1, 256").is_err()); // imm8 overflow
        assert!(asm.assemble("li R1").is_err()); // arity
        assert!(asm.assemble("add R1, R2, R3").is_err()); // NT needs option syntax
        assert!(asm.assemble("add R1, R2, bogus(R3)").is_err()); // unknown option
        assert!(asm.assemble("frobnicate R1").is_err()); // unknown op
        assert!(asm.assemble("jmp nowhere").is_err()); // undefined label
    }

    #[test]
    fn duplicate_label_rejected() {
        let m = toy();
        let e = Assembler::new(&m).assemble("a: nop\na: nop").expect_err("dup label");
        assert!(e.msg.contains("defined twice"));
    }

    #[test]
    fn two_ops_same_field_rejected() {
        let m = toy();
        let e = Assembler::new(&m).assemble("li R1, 1 | li R2, 2").expect_err("two ALU ops");
        assert!(e.msg.contains("field"));
    }

    #[test]
    fn comments_and_blank_lines() {
        let m = toy();
        let p = Assembler::new(&m)
            .assemble("; full line\n   # hash\nnop // trailing\n\n")
            .expect("assembles");
        assert_eq!(p.words.len(), 1);
    }

    #[test]
    fn round_trip_through_disassembler() {
        let m = toy();
        let src = "li R4, 42\nadd R2, R1, reg(R3) | mv R4, R5\nsub R0, R1, ind(R2)\nmac R6, R7\n";
        let p = Assembler::new(&m).assemble(src).expect("assembles");
        let d = Disassembler::new(&m);
        let mut texts = Vec::new();
        for (addr, w) in p.words.iter().enumerate() {
            let i = d.decode(std::slice::from_ref(w), addr as u64).expect("decodes");
            texts.push(d.format_instr(&i));
        }
        assert_eq!(
            texts,
            vec![
                "li R4, 42",
                "add R2, R1, reg(R3) | mv R4, R5",
                "sub R0, R1, ind(R2)",
                "mac R6, R7",
            ]
        );
    }

    #[test]
    fn acc16_program_assembles() {
        let m = isdl::load(ACC16).expect("loads");
        let src = "start: ldi 10\nloop: subm one\n jnz loop\n halt\n.data\n.org 60\none: .word 1\n";
        let p = Assembler::new(&m).assemble(src).expect("assembles");
        assert_eq!(p.labels["one"], 60);
        assert_eq!(p.data, vec![(60, 1)]);
    }

    #[test]
    fn code_labels_exclude_data_and_sort_by_address() {
        let m = isdl::load(ACC16).expect("loads");
        // `tail` is laid out *before* `start` in source via `.org`;
        // `one` is a data label and must not appear.
        let src = "\
.org 4
tail: halt
.org 0
start: ldi 10
loop: subm one
 jnz loop
 jmp tail
.data
.org 60
one: .word 1
";
        let p = Assembler::new(&m).assemble(src).expect("assembles");
        assert_eq!(
            p.code_labels,
            vec![(0, "start".to_owned()), (1, "loop".to_owned()), (4, "tail".to_owned())]
        );
    }

    #[test]
    fn negative_immediates() {
        let m = isdl::load(
            r#"machine "m" { format { word 16; } }
               storage { register A 8; }
               tokens { token S8 imm(8, signed); }
               field F {
                   op addi(v: S8) { encode { word[15:12] = 0b0001; word[7:0] = v; } action { A <- A + v; } }
                   op nop() { encode { word[15:12] = 0; } }
               }"#,
        )
        .expect("loads");
        let p = Assembler::new(&m).assemble("addi -3").expect("assembles");
        assert_eq!(p.words[0].slice(7, 0).to_u64_lossy(), 0xFD);
        assert!(Assembler::new(&m).assemble("addi -200").is_err());
        assert!(Assembler::new(&m).assemble("addi 127").is_ok());
        assert!(Assembler::new(&m).assemble("addi 128").is_err());
    }
}

impl Program {
    /// Renders the instruction image in Verilog `$readmemh` format
    /// (one hex word per line, `@` address markers where gaps occur).
    #[must_use]
    pub fn to_hex(&self) -> String {
        let mut out = String::new();
        for w in &self.words {
            out.push_str(&format!("{w:x}\n"));
        }
        out
    }

    /// Parses a `$readmemh`-style image back into words of the given
    /// width. Supports `@addr` markers and `//` comments.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed line.
    pub fn words_from_hex(text: &str, width: u32) -> Result<Vec<bitv::BitVector>, String> {
        let mut words: Vec<bitv::BitVector> = Vec::new();
        let mut addr = 0usize;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split("//").next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(a) = line.strip_prefix('@') {
                addr = usize::from_str_radix(a.trim(), 16)
                    .map_err(|e| format!("line {}: bad @address: {e}", lineno + 1))?;
                continue;
            }
            let v: bitv::BitVector = format!("{width}'h{line}")
                .parse()
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if words.len() <= addr {
                words.resize(addr + 1, bitv::BitVector::zero(width));
            }
            words[addr] = v;
            addr += 1;
        }
        Ok(words)
    }
}

#[cfg(test)]
mod hex_tests {
    use super::*;
    use isdl::samples::ACC16;

    #[test]
    fn hex_round_trip() {
        let m = isdl::load(ACC16).expect("loads");
        let p = Assembler::new(&m).assemble("ldi 7\naddm 1\nsta 0\nhalt\n").expect("assembles");
        let hex = p.to_hex();
        let words = Program::words_from_hex(&hex, m.word_width).expect("parses");
        assert_eq!(words, p.words);
    }

    #[test]
    fn hex_with_address_markers_and_comments() {
        let words = Program::words_from_hex("// header\n@2\nbeef\ncafe\n", 16).expect("parses");
        assert_eq!(words.len(), 4);
        assert!(words[0].is_zero());
        assert_eq!(words[2].to_u64_lossy(), 0xbeef);
        assert_eq!(words[3].to_u64_lossy(), 0xcafe);
        assert!(Program::words_from_hex("@zz\n", 16).is_err());
        assert!(Program::words_from_hex("xyz\n", 16).is_err());
    }
}
