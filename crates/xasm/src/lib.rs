#![warn(missing_docs)]

//! Retargetable assembler and disassembler generated from ISDL.
//!
//! The paper's flow (Figure 1) feeds application code through a
//! retargetable assembler into the XSIM simulator, and the simulator
//! itself contains a built-in disassembler that reverses the assembly
//! function *off-line* at program-load time (§3.3.2). Both directions
//! are driven entirely by the ISDL description:
//!
//! * [`Assembler`] parses a VLIW assembly dialect, resolves labels,
//!   checks the description's constraints on every instruction, and
//!   encodes operations through their bitfield assignments.
//! * [`Disassembler`] implements the signature-matching algorithm of
//!   Figure 4: it matches the constant part of each operation signature
//!   against the instruction word (unique by the decodability checks),
//!   then symbolically reverses the parameter encodings, recursing
//!   through non-terminals.
//!
//! # Assembly dialect
//!
//! ```text
//! ; comment                 -- `;`, `//` and `#` all start comments
//! loop:                     -- labels
//!     add R1, R2, reg(R3) | mv R4, R5   -- one op per field, `|`-separated
//!     li  R1, 0x2A                      -- omitted fields take their `nop`
//!     jz  loop                          -- labels as immediate operands
//! .org 0x10                 -- set the location counter (word address)
//! .word 0xDEADBEEF          -- raw data word
//! ```
//!
//! Non-terminal operands are written `option(args…)`, e.g. `reg(R3)` or
//! `ind(R2)` for an addressing-mode non-terminal.
//!
//! # Examples
//!
//! ```
//! use xasm::Assembler;
//!
//! let machine = isdl::load(isdl::samples::TOY)?;
//! let program = Assembler::new(&machine).assemble(
//!     "start: li R1, 5\n       add R2, R1, reg(R1) | mv R3, R1\n",
//! )?;
//! assert_eq!(program.words.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod assemble;
mod disasm;
mod error;

pub use assemble::{Assembler, Program};
pub use disasm::{DecodedInstr, DecodedOp, Disassembler, Operand};
pub use error::{AsmError, DisasmError};
