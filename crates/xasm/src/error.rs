//! Error types for assembly and disassembly.

use std::error::Error;
use std::fmt;

/// Error produced while assembling source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line (0 if not line-specific).
    pub line: u32,
    /// What went wrong.
    pub msg: String,
}

impl AsmError {
    /// Creates an error at the given line.
    #[must_use]
    pub fn new(line: u32, msg: impl Into<String>) -> Self {
        Self { line, msg: msg.into() }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.msg)
        } else {
            write!(f, "assembly error at line {}: {}", self.line, self.msg)
        }
    }
}

impl Error for AsmError {}

/// Error produced while disassembling a binary word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DisasmError {
    /// No operation signature of some field matched the word — an
    /// illegal instruction (Figure 4's `ILLEGAL INSTRUCTION` outcome).
    IllegalInstruction {
        /// The field whose match failed.
        field: String,
        /// Word address of the instruction.
        addr: u64,
    },
    /// The word stream ended before a multi-word operation completed.
    Truncated {
        /// Word address of the instruction.
        addr: u64,
    },
    /// A non-terminal operand's extracted bits matched none of the
    /// non-terminal's options — the operation matched, but its operand
    /// sub-word is not a valid encoding.
    UndecodableOperand {
        /// The non-terminal whose options all failed to match.
        nt: String,
        /// Word address of the instruction.
        addr: u64,
    },
    /// The machine's encodings are internally inconsistent: a
    /// signature could not be derived for an operation or option.
    /// Machines produced by `isdl::load` never trigger this.
    InconsistentEncoding {
        /// Which operation or option failed (`field.op` / `nt.option`).
        context: String,
    },
}

impl fmt::Display for DisasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::IllegalInstruction { field, addr } => {
                write!(f, "illegal instruction at word {addr:#x}: no operation of field `{field}` matches")
            }
            Self::Truncated { addr } => {
                write!(f, "truncated instruction at word {addr:#x}")
            }
            Self::UndecodableOperand { nt, addr } => {
                write!(f, "undecodable operand at word {addr:#x}: no option of non-terminal `{nt}` matches")
            }
            Self::InconsistentEncoding { context } => {
                write!(f, "inconsistent encoding for `{context}`: no signature derivable")
            }
        }
    }
}

impl Error for DisasmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asm_error_display() {
        assert!(AsmError::new(3, "bad operand").to_string().contains("line 3"));
        assert!(!AsmError::new(0, "global").to_string().contains("line"));
    }

    #[test]
    fn disasm_error_display() {
        let e = DisasmError::IllegalInstruction { field: "ALU".into(), addr: 16 };
        assert!(e.to_string().contains("0x10"));
        assert!(e.to_string().contains("ALU"));
    }
}
