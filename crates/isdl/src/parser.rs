//! Recursive-descent parser for ISDL descriptions.
//!
//! Grammar sketch (see the crate docs for a complete example):
//!
//! ```text
//! description  := section*
//! section      := machine | storage | tokens | nonterminals | field
//!               | constraints | archinfo
//! machine      := "machine" STRING "{" "format" "{" "word" INT ";" "}" "}"
//! storage      := "storage" "{" (storage_def | alias_def)* "}"
//! storage_def  := KIND IDENT INT ("x" INT)? ";"
//! alias_def    := "alias" IDENT "=" IDENT ("[" INT "]")? ("[" INT ":" INT "]")? ";"
//! tokens       := "tokens" "{" token_def* "}"
//! token_def    := "token" IDENT ( "reg" "(" STRING "," INT ")"
//!               | "imm" "(" INT "," ("signed"|"unsigned") ")"
//!               | "enum" "(" STRING ("," STRING)* ")" ) ";"
//! nonterminals := "nonterminals" "{" nt_def* "}"
//! nt_def       := "nonterminal" IDENT "width" INT "{" option* "}"
//! option       := "option" IDENT "(" params? ")" "{" parts "}"
//! field        := "field" IDENT "{" op* "}"
//! op           := "op" IDENT "(" params? ")" "{" parts "}"
//! parts        := (encode | value | action | sideeffect | cost | timing)*
//! constraints  := "constraints" "{" ( "forbid" opref ("," opref)+ ";"
//!               | "assert" cexpr ";" )* "}"
//! archinfo     := "archinfo" "{" ( "share" IDENT ":" opref ("," opref)* ";"
//!               | "cycle_ns" NUMBER ";" )* "}"
//! ```
//!
//! RTL statements are `lvalue <- expr ;` and
//! `if (expr) { ... } else { ... }`; the expression grammar uses
//! C-like precedence with explicit signed variants (`<s`, `/s`, …).

use crate::ast::*;
use crate::error::{ErrorKind, IsdlError, Pos};
use crate::lexer::{lex, SpannedTok, Tok};
use bitv::BitVector;

/// The ISDL parser. Create one with [`Parser::new`] and call
/// [`Parser::parse_description`].
#[derive(Debug)]
pub struct Parser {
    toks: Vec<SpannedTok>,
    i: usize,
}

impl Parser {
    /// Lexes `src` and prepares a parser over the token stream.
    ///
    /// # Errors
    ///
    /// Returns lexical errors.
    pub fn new(src: &str) -> Result<Self, IsdlError> {
        Ok(Self { toks: lex(src)?, i: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> IsdlError {
        IsdlError::new(ErrorKind::Syntax, self.pos(), msg)
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), IsdlError> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected `{p}`, found {other}"))),
        }
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Tok::Punct(q) if *q == p)
    }

    fn eat_if_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), IsdlError> {
        if self.at_kw(kw) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected keyword `{kw}`, found {}", self.peek())))
        }
    }

    fn eat_if_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, IsdlError> {
        match self.peek() {
            Tok::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn int(&mut self) -> Result<u64, IsdlError> {
        match self.peek() {
            Tok::Int(v) => {
                let v = *v;
                self.bump();
                Ok(v)
            }
            other => Err(self.err(format!("expected integer, found {other}"))),
        }
    }

    fn int_u32(&mut self) -> Result<u32, IsdlError> {
        let v = self.int()?;
        u32::try_from(v).map_err(|_| self.err(format!("integer {v} too large")))
    }

    fn string(&mut self) -> Result<String, IsdlError> {
        match self.peek() {
            Tok::Str(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected string, found {other}"))),
        }
    }

    /// Parses a complete description (all sections, any order, sections
    /// may repeat and accumulate).
    ///
    /// # Errors
    ///
    /// Returns the first syntax error encountered.
    pub fn parse_description(&mut self) -> Result<Description, IsdlError> {
        let mut d = Description::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Ident(kw) => match kw.as_str() {
                    "machine" => self.parse_machine(&mut d)?,
                    "storage" => self.parse_storage(&mut d)?,
                    "tokens" => self.parse_tokens(&mut d)?,
                    "nonterminals" => self.parse_nonterminals(&mut d)?,
                    "field" => self.parse_field(&mut d)?,
                    "constraints" => self.parse_constraints(&mut d)?,
                    "archinfo" => self.parse_archinfo(&mut d)?,
                    other => {
                        return Err(self.err(format!(
                            "expected a section keyword (machine/storage/tokens/nonterminals/field/constraints/archinfo), found `{other}`"
                        )))
                    }
                },
                other => return Err(self.err(format!("expected a section, found {other}"))),
            }
        }
        Ok(d)
    }

    fn parse_machine(&mut self, d: &mut Description) -> Result<(), IsdlError> {
        self.eat_kw("machine")?;
        d.name = self.string()?;
        self.eat_punct("{")?;
        while !self.eat_if_punct("}") {
            self.eat_kw("format")?;
            self.eat_punct("{")?;
            while !self.eat_if_punct("}") {
                self.eat_kw("word")?;
                d.word_width = Some(self.int_u32()?);
                self.eat_punct(";")?;
            }
        }
        Ok(())
    }

    fn parse_storage(&mut self, d: &mut Description) -> Result<(), IsdlError> {
        self.eat_kw("storage")?;
        self.eat_punct("{")?;
        while !self.eat_if_punct("}") {
            let pos = self.pos();
            if self.eat_if_kw("alias") {
                let name = self.ident()?;
                self.eat_punct("=")?;
                let target = self.ident()?;
                let mut index = None;
                let mut range = None;
                if self.eat_if_punct("[") {
                    let a = self.int()?;
                    if self.eat_if_punct(":") {
                        let b = self.int_u32()?;
                        range =
                            Some((u32::try_from(a).map_err(|_| self.err("range too large"))?, b));
                    } else {
                        index = Some(a);
                    }
                    self.eat_punct("]")?;
                    if range.is_none() && self.eat_if_punct("[") {
                        let hi = self.int_u32()?;
                        self.eat_punct(":")?;
                        let lo = self.int_u32()?;
                        self.eat_punct("]")?;
                        range = Some((hi, lo));
                    }
                }
                self.eat_punct(";")?;
                d.aliases.push(AliasDef { name, target, index, range, pos });
                continue;
            }
            let kind = match self.ident()?.as_str() {
                "imem" => StorageKindAst::InstructionMemory,
                "dmem" => StorageKindAst::DataMemory,
                "regfile" => StorageKindAst::RegisterFile,
                "register" => StorageKindAst::Register,
                "creg" => StorageKindAst::ControlRegister,
                "mmio" => StorageKindAst::MemoryMappedIo,
                "pc" => StorageKindAst::ProgramCounter,
                "stack" => StorageKindAst::Stack,
                other => {
                    return Err(IsdlError::new(
                        ErrorKind::Syntax,
                        pos,
                        format!("unknown storage kind `{other}`"),
                    ))
                }
            };
            let name = self.ident()?;
            let width = self.int_u32()?;
            let depth = if self.eat_if_kw("x") { Some(self.int()?) } else { None };
            self.eat_punct(";")?;
            d.storages.push(StorageDef { name, kind, width, depth, pos });
        }
        Ok(())
    }

    fn parse_tokens(&mut self, d: &mut Description) -> Result<(), IsdlError> {
        self.eat_kw("tokens")?;
        self.eat_punct("{")?;
        while !self.eat_if_punct("}") {
            let pos = self.pos();
            self.eat_kw("token")?;
            let name = self.ident()?;
            let kind = match self.ident()?.as_str() {
                "reg" => {
                    self.eat_punct("(")?;
                    let prefix = self.string()?;
                    self.eat_punct(",")?;
                    let count = self.int()?;
                    self.eat_punct(")")?;
                    TokenKindAst::Register { prefix, count }
                }
                "imm" => {
                    self.eat_punct("(")?;
                    let width = self.int_u32()?;
                    self.eat_punct(",")?;
                    let signed = match self.ident()?.as_str() {
                        "signed" => true,
                        "unsigned" => false,
                        other => {
                            return Err(self
                                .err(format!("expected `signed` or `unsigned`, found `{other}`")))
                        }
                    };
                    self.eat_punct(")")?;
                    TokenKindAst::Immediate { width, signed }
                }
                "enum" => {
                    self.eat_punct("(")?;
                    let mut names = vec![self.string()?];
                    while self.eat_if_punct(",") {
                        names.push(self.string()?);
                    }
                    self.eat_punct(")")?;
                    TokenKindAst::Enum { names }
                }
                other => {
                    return Err(
                        self.err(format!("expected token kind (reg/imm/enum), found `{other}`"))
                    )
                }
            };
            self.eat_punct(";")?;
            d.tokens.push(TokenDef { name, kind, pos });
        }
        Ok(())
    }

    fn parse_nonterminals(&mut self, d: &mut Description) -> Result<(), IsdlError> {
        self.eat_kw("nonterminals")?;
        self.eat_punct("{")?;
        while !self.eat_if_punct("}") {
            let pos = self.pos();
            self.eat_kw("nonterminal")?;
            let name = self.ident()?;
            self.eat_kw("width")?;
            let width = self.int_u32()?;
            self.eat_punct("{")?;
            let mut options = Vec::new();
            while !self.eat_if_punct("}") {
                options.push(self.parse_operation("option")?);
            }
            d.nonterminals.push(NonTerminalDef { name, width, options, pos });
        }
        Ok(())
    }

    fn parse_field(&mut self, d: &mut Description) -> Result<(), IsdlError> {
        let pos = self.pos();
        self.eat_kw("field")?;
        let name = self.ident()?;
        self.eat_punct("{")?;
        let mut ops = Vec::new();
        while !self.eat_if_punct("}") {
            ops.push(self.parse_operation("op")?);
        }
        d.fields.push(FieldDef { name, ops, pos });
        Ok(())
    }

    fn parse_operation(&mut self, intro_kw: &str) -> Result<OperationDef, IsdlError> {
        let pos = self.pos();
        self.eat_kw(intro_kw)?;
        let name = self.ident()?;
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.at_punct(")") {
            loop {
                let ppos = self.pos();
                let pname = self.ident()?;
                self.eat_punct(":")?;
                let ty = self.ident()?;
                params.push(ParamDef { name: pname, ty, pos: ppos });
                if !self.eat_if_punct(",") {
                    break;
                }
            }
        }
        self.eat_punct(")")?;
        self.eat_punct("{")?;
        let mut op = OperationDef {
            name,
            params,
            encode: Vec::new(),
            value: None,
            action: Vec::new(),
            side_effects: Vec::new(),
            costs: CostsDef::default(),
            timing: TimingDef::default(),
            pos,
        };
        while !self.eat_if_punct("}") {
            match self.peek() {
                Tok::Ident(kw) => match kw.as_str() {
                    "encode" => {
                        self.bump();
                        self.eat_punct("{")?;
                        while !self.eat_if_punct("}") {
                            op.encode.push(self.parse_bit_assign()?);
                        }
                    }
                    "value" => {
                        self.bump();
                        self.eat_punct("{")?;
                        op.value = Some(self.parse_expr()?);
                        self.eat_punct("}")?;
                    }
                    "action" => {
                        self.bump();
                        self.eat_punct("{")?;
                        while !self.eat_if_punct("}") {
                            op.action.push(self.parse_stmt()?);
                        }
                    }
                    "sideeffect" => {
                        self.bump();
                        self.eat_punct("{")?;
                        while !self.eat_if_punct("}") {
                            op.side_effects.push(self.parse_stmt()?);
                        }
                    }
                    "cost" => {
                        self.bump();
                        self.eat_punct("{")?;
                        while !self.eat_if_punct("}") {
                            match self.ident()?.as_str() {
                                "cycle" => op.costs.cycle = self.int_u32()?,
                                "stall" => op.costs.stall = self.int_u32()?,
                                "size" => op.costs.size = self.int_u32()?,
                                other => {
                                    return Err(self.err(format!(
                                        "expected cycle/stall/size, found `{other}`"
                                    )))
                                }
                            }
                            self.eat_punct(";")?;
                        }
                    }
                    "timing" => {
                        self.bump();
                        self.eat_punct("{")?;
                        while !self.eat_if_punct("}") {
                            match self.ident()?.as_str() {
                                "latency" => op.timing.latency = self.int_u32()?,
                                "usage" => op.timing.usage = self.int_u32()?,
                                other => {
                                    return Err(self.err(format!(
                                        "expected latency/usage, found `{other}`"
                                    )))
                                }
                            }
                            self.eat_punct(";")?;
                        }
                    }
                    other => {
                        return Err(self.err(format!(
                            "expected an operation part (encode/value/action/sideeffect/cost/timing), found `{other}`"
                        )))
                    }
                },
                other => return Err(self.err(format!("expected an operation part, found {other}"))),
            }
        }
        Ok(op)
    }

    fn parse_bit_assign(&mut self) -> Result<BitAssignDef, IsdlError> {
        let pos = self.pos();
        // Accept `word[...]` or `val[...]` — semantically identical; the
        // keyword documents whether an op or a non-terminal is encoding.
        match self.peek() {
            Tok::Ident(s) if s == "word" || s == "val" => {
                self.bump();
            }
            other => return Err(self.err(format!("expected `word` or `val`, found {other}"))),
        }
        self.eat_punct("[")?;
        let hi = self.int_u32()?;
        let lo = if self.eat_if_punct(":") { self.int_u32()? } else { hi };
        self.eat_punct("]")?;
        self.eat_punct("=")?;
        let rhs = match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                if hi < lo {
                    return Err(self.err("bit range high below low"));
                }
                BitRhsDef::Const(BitVector::from_u64(v, hi - lo + 1))
            }
            Tok::Sized(bv) => {
                self.bump();
                BitRhsDef::Const(bv)
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat_if_punct("[") {
                    let phi = self.int_u32()?;
                    let plo = if self.eat_if_punct(":") { self.int_u32()? } else { phi };
                    self.eat_punct("]")?;
                    BitRhsDef::ParamSlice { name, hi: phi, lo: plo }
                } else {
                    BitRhsDef::Param(name)
                }
            }
            other => {
                return Err(self.err(format!(
                    "expected constant or parameter on bitfield right-hand side, found {other}"
                )))
            }
        };
        self.eat_punct(";")?;
        Ok(BitAssignDef { hi, lo, rhs, pos })
    }

    fn parse_constraints(&mut self, d: &mut Description) -> Result<(), IsdlError> {
        self.eat_kw("constraints")?;
        self.eat_punct("{")?;
        while !self.eat_if_punct("}") {
            let pos = self.pos();
            if self.eat_if_kw("forbid") {
                let mut ops = vec![self.parse_op_ref()?];
                while self.eat_if_punct(",") {
                    ops.push(self.parse_op_ref()?);
                }
                self.eat_punct(";")?;
                d.constraints.push(ConstraintDef::Forbid { ops, pos });
            } else if self.eat_if_kw("assert") {
                let expr = self.parse_cexpr()?;
                self.eat_punct(";")?;
                d.constraints.push(ConstraintDef::Assert { expr, pos });
            } else {
                return Err(
                    self.err(format!("expected `forbid` or `assert`, found {}", self.peek()))
                );
            }
        }
        Ok(())
    }

    fn parse_op_ref(&mut self) -> Result<OpRefDef, IsdlError> {
        let field = self.ident()?;
        self.eat_punct(".")?;
        let op = self.ident()?;
        Ok(OpRefDef { field, op })
    }

    fn parse_cexpr(&mut self) -> Result<ConstraintExpr, IsdlError> {
        let mut lhs = self.parse_cterm()?;
        while self.eat_if_punct("|") || self.eat_if_punct("||") {
            let rhs = self.parse_cterm()?;
            lhs = ConstraintExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cterm(&mut self) -> Result<ConstraintExpr, IsdlError> {
        let mut lhs = self.parse_cfactor()?;
        while self.eat_if_punct("&") || self.eat_if_punct("&&") {
            let rhs = self.parse_cfactor()?;
            lhs = ConstraintExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cfactor(&mut self) -> Result<ConstraintExpr, IsdlError> {
        if self.eat_if_punct("!") || self.eat_if_punct("~") {
            return Ok(ConstraintExpr::Not(Box::new(self.parse_cfactor()?)));
        }
        if self.eat_if_punct("(") {
            let e = self.parse_cexpr()?;
            self.eat_punct(")")?;
            return Ok(e);
        }
        Ok(ConstraintExpr::Op(self.parse_op_ref()?))
    }

    fn parse_archinfo(&mut self, d: &mut Description) -> Result<(), IsdlError> {
        self.eat_kw("archinfo")?;
        self.eat_punct("{")?;
        while !self.eat_if_punct("}") {
            let pos = self.pos();
            if self.eat_if_kw("share") {
                let name = self.ident()?;
                self.eat_punct(":")?;
                let mut ops = vec![self.parse_op_ref()?];
                while self.eat_if_punct(",") {
                    ops.push(self.parse_op_ref()?);
                }
                self.eat_punct(";")?;
                d.archinfo.shares.push(ShareHintDef { name, ops, pos });
            } else if self.eat_if_kw("cycle_ns") {
                // number: INT ('.' INT)?
                let whole = self.int()?;
                let mut v = whole as f64;
                if self.eat_if_punct(".") {
                    let frac_pos = self.i;
                    let frac = self.int()?;
                    let digits = match &self.toks[frac_pos].tok {
                        Tok::Int(_) => {
                            // Count decimal digits of the fractional literal.
                            if frac == 0 {
                                1
                            } else {
                                (frac as f64).log10().floor() as u32 + 1
                            }
                        }
                        _ => 1,
                    };
                    v += frac as f64 / 10f64.powi(digits as i32);
                }
                d.archinfo.cycle_ns = Some(v);
                self.eat_punct(";")?;
            } else {
                return Err(
                    self.err(format!("expected `share` or `cycle_ns`, found {}", self.peek()))
                );
            }
        }
        Ok(())
    }

    // ----- RTL statements & expressions -----

    fn parse_stmt(&mut self) -> Result<Stmt, IsdlError> {
        let pos = self.pos();
        if self.at_kw("if") {
            self.bump();
            self.eat_punct("(")?;
            let cond = self.parse_expr()?;
            self.eat_punct(")")?;
            self.eat_punct("{")?;
            let mut then_body = Vec::new();
            while !self.eat_if_punct("}") {
                then_body.push(self.parse_stmt()?);
            }
            let mut else_body = Vec::new();
            if self.eat_if_kw("else") {
                if self.at_kw("if") {
                    else_body.push(self.parse_stmt()?);
                } else {
                    self.eat_punct("{")?;
                    while !self.eat_if_punct("}") {
                        else_body.push(self.parse_stmt()?);
                    }
                }
            }
            return Ok(Stmt::If { cond, then_body, else_body, pos });
        }
        let lv = self.parse_expr()?;
        self.eat_punct("<-")?;
        let rhs = self.parse_expr()?;
        self.eat_punct(";")?;
        Ok(Stmt::Assign { lv, rhs, pos })
    }

    /// Parses one RTL expression.
    ///
    /// # Errors
    ///
    /// Returns a syntax error if the token stream is not an expression.
    pub fn parse_expr(&mut self) -> Result<Expr, IsdlError> {
        let c = self.parse_lor()?;
        if self.eat_if_punct("?") {
            let t = self.parse_expr()?;
            self.eat_punct(":")?;
            let f = self.parse_expr()?;
            return Ok(Expr::Cond(Box::new(c), Box::new(t), Box::new(f)));
        }
        Ok(c)
    }

    fn parse_lor(&mut self) -> Result<Expr, IsdlError> {
        let mut lhs = self.parse_land()?;
        while self.eat_if_punct("||") {
            let rhs = self.parse_land()?;
            lhs = Expr::Binary(BinOp::LOr, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_land(&mut self) -> Result<Expr, IsdlError> {
        let mut lhs = self.parse_bor()?;
        while self.eat_if_punct("&&") {
            let rhs = self.parse_bor()?;
            lhs = Expr::Binary(BinOp::LAnd, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_bor(&mut self) -> Result<Expr, IsdlError> {
        let mut lhs = self.parse_bxor()?;
        while self.at_punct("|") {
            self.bump();
            let rhs = self.parse_bxor()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_bxor(&mut self) -> Result<Expr, IsdlError> {
        let mut lhs = self.parse_band()?;
        while self.at_punct("^") {
            self.bump();
            let rhs = self.parse_band()?;
            lhs = Expr::Binary(BinOp::Xor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_band(&mut self) -> Result<Expr, IsdlError> {
        let mut lhs = self.parse_cmp()?;
        while self.at_punct("&") {
            self.bump();
            let rhs = self.parse_cmp()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, IsdlError> {
        let lhs = self.parse_shift()?;
        // (op, swap_operands)
        let table: &[(&str, BinOp, bool)] = &[
            ("==", BinOp::Eq, false),
            ("!=", BinOp::Ne, false),
            ("<=s", BinOp::Sle, false),
            ("<s", BinOp::Slt, false),
            (">=s", BinOp::Sle, true),
            (">s", BinOp::Slt, true),
            ("<=", BinOp::Ule, false),
            ("<", BinOp::Ult, false),
            (">=", BinOp::Ule, true),
            (">", BinOp::Ult, true),
        ];
        for (p, op, swap) in table {
            if self.at_punct(p) {
                self.bump();
                let rhs = self.parse_shift()?;
                let (a, b) = if *swap { (rhs, lhs) } else { (lhs, rhs) };
                return Ok(Expr::Binary(*op, Box::new(a), Box::new(b)));
            }
        }
        Ok(lhs)
    }

    fn parse_shift(&mut self) -> Result<Expr, IsdlError> {
        let mut lhs = self.parse_add()?;
        loop {
            let op = if self.at_punct("<<") {
                BinOp::Shl
            } else if self.at_punct(">>>") {
                BinOp::Ashr
            } else if self.at_punct(">>") {
                BinOp::Lshr
            } else {
                break;
            };
            self.bump();
            let rhs = self.parse_add()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_add(&mut self) -> Result<Expr, IsdlError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = if self.at_punct("+") {
                BinOp::Add
            } else if self.at_punct("-") {
                BinOp::Sub
            } else {
                break;
            };
            self.bump();
            let rhs = self.parse_mul()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, IsdlError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = if self.at_punct("*") {
                BinOp::Mul
            } else if self.at_punct("/s") {
                BinOp::SDiv
            } else if self.at_punct("%s") {
                BinOp::SRem
            } else if self.at_punct("/") {
                BinOp::UDiv
            } else if self.at_punct("%") {
                BinOp::URem
            } else {
                break;
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, IsdlError> {
        if self.eat_if_punct("-") {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.parse_unary()?)));
        }
        if self.eat_if_punct("~") {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.parse_unary()?)));
        }
        if self.eat_if_punct("!") {
            return Ok(Expr::Unary(UnOp::LNot, Box::new(self.parse_unary()?)));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, IsdlError> {
        let mut e = self.parse_primary()?;
        while self.at_punct("[") {
            self.bump();
            // Lookahead: `INT : INT ]` is a slice; anything else an index.
            let save = self.i;
            if let Tok::Int(hi) = self.peek().clone() {
                self.bump();
                if self.eat_if_punct(":") {
                    let lo = self.int_u32()?;
                    self.eat_punct("]")?;
                    let hi = u32::try_from(hi).map_err(|_| self.err("slice bound too large"))?;
                    e = Expr::Slice(Box::new(e), hi, lo);
                    continue;
                }
                self.i = save;
            }
            let idx = self.parse_expr()?;
            self.eat_punct("]")?;
            e = Expr::Index(Box::new(e), Box::new(idx));
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, IsdlError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::IntLit(v))
            }
            Tok::Sized(bv) => {
                self.bump();
                Ok(Expr::Lit(bv))
            }
            Tok::Punct("(") => {
                self.bump();
                let e = self.parse_expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                let ext = match name.as_str() {
                    "zext" => Some(ExtKind::Zext),
                    "sext" => Some(ExtKind::Sext),
                    "trunc" => Some(ExtKind::Trunc),
                    _ => None,
                };
                if let Some(kind) = ext {
                    self.bump();
                    self.eat_punct("(")?;
                    let e = self.parse_expr()?;
                    self.eat_punct(",")?;
                    let w = self.int_u32()?;
                    self.eat_punct(")")?;
                    return Ok(Expr::Ext(kind, Box::new(e), w));
                }
                if name == "concat" {
                    self.bump();
                    self.eat_punct("(")?;
                    let mut parts = vec![self.parse_expr()?];
                    while self.eat_if_punct(",") {
                        parts.push(self.parse_expr()?);
                    }
                    self.eat_punct(")")?;
                    return Ok(Expr::Concat(parts));
                }
                self.bump();
                Ok(Expr::Name(name, pos))
            }
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_desc(src: &str) -> Description {
        Parser::new(src).expect("lexes").parse_description().expect("parses")
    }

    fn parse_one_expr(src: &str) -> Expr {
        Parser::new(src).expect("lexes").parse_expr().expect("parses")
    }

    #[test]
    fn machine_and_format() {
        let d = parse_desc(r#"machine "m" { format { word 32; } }"#);
        assert_eq!(d.name, "m");
        assert_eq!(d.word_width, Some(32));
    }

    #[test]
    fn storage_section() {
        let d = parse_desc(
            "storage { regfile RF 32 x 16; register ACC 40; pc PC 16; imem IM 32 x 1024;
                       dmem DM 32 x 4096; alias LO = ACC[15:0]; }",
        );
        assert_eq!(d.storages.len(), 5);
        assert_eq!(d.storages[0].kind, StorageKindAst::RegisterFile);
        assert_eq!(d.storages[0].depth, Some(16));
        assert_eq!(d.storages[1].depth, None);
        assert_eq!(d.aliases.len(), 1);
        assert_eq!(d.aliases[0].range, Some((15, 0)));
    }

    #[test]
    fn alias_with_index_and_range() {
        let d = parse_desc(
            "storage { regfile RF 32 x 16; alias SP = RF[15]; alias SPL = RF[15][15:0]; }",
        );
        assert_eq!(d.aliases[0].index, Some(15));
        assert_eq!(d.aliases[0].range, None);
        assert_eq!(d.aliases[1].index, Some(15));
        assert_eq!(d.aliases[1].range, Some((15, 0)));
    }

    #[test]
    fn tokens_section() {
        let d = parse_desc(
            r#"tokens { token REG reg("R", 16); token IMM imm(8, signed);
                        token CC enum("eq", "ne", "lt"); }"#,
        );
        assert_eq!(d.tokens.len(), 3);
        assert_eq!(d.tokens[0].kind, TokenKindAst::Register { prefix: "R".into(), count: 16 });
        assert_eq!(d.tokens[1].kind, TokenKindAst::Immediate { width: 8, signed: true });
    }

    #[test]
    fn field_with_op_parts() {
        let d = parse_desc(
            r#"
            field ALU {
                op add(d: REG, a: REG, b: REG) {
                    encode { word[31:28] = 0b0001; word[27:24] = d; word[23:20] = a; word[19:16] = b; }
                    action { RF[d] <- RF[a] + RF[b]; }
                    sideeffect { Z <- (RF[a] + RF[b]) == 0; }
                    cost { cycle 1; stall 2; size 1; }
                    timing { latency 3; usage 1; }
                }
            }
            "#,
        );
        let op = &d.fields[0].ops[0];
        assert_eq!(op.name, "add");
        assert_eq!(op.params.len(), 3);
        assert_eq!(op.encode.len(), 4);
        assert_eq!(op.action.len(), 1);
        assert_eq!(op.side_effects.len(), 1);
        assert_eq!(op.costs, CostsDef { cycle: 1, stall: 2, size: 1 });
        assert_eq!(op.timing, TimingDef { latency: 3, usage: 1 });
    }

    #[test]
    fn nonterminal_with_value() {
        let d = parse_desc(
            r#"
            nonterminals {
                nonterminal SRC width 5 {
                    option reg(r: REG) {
                        encode { val[4] = 0; val[3:0] = r; }
                        value { RF[r] }
                    }
                    option indirect(a: REG) {
                        encode { val[4] = 1; val[3:0] = a; }
                        value { DM[RF[a]] }
                    }
                }
            }
            "#,
        );
        let nt = &d.nonterminals[0];
        assert_eq!(nt.width, 5);
        assert_eq!(nt.options.len(), 2);
        assert!(nt.options[0].value.is_some());
    }

    #[test]
    fn constraints_section() {
        let d = parse_desc("constraints { forbid MOVE.mv2, MEM.load; assert !(A.x & B.y) | C.z; }");
        assert_eq!(d.constraints.len(), 2);
        match &d.constraints[1] {
            ConstraintDef::Assert { expr, .. } => {
                assert!(matches!(expr, ConstraintExpr::Or(_, _)));
            }
            _ => panic!("expected assert"),
        }
    }

    #[test]
    fn archinfo_section() {
        let d = parse_desc("archinfo { share bus1: MOVE.mv, MEM.load; cycle_ns 12.5; }");
        assert_eq!(d.archinfo.shares.len(), 1);
        assert_eq!(d.archinfo.shares[0].ops.len(), 2);
        assert!((d.archinfo.cycle_ns.expect("set") - 12.5).abs() < 1e-9);
    }

    #[test]
    fn expr_precedence() {
        // a + b * c parses as a + (b * c)
        let e = parse_one_expr("a + b * c");
        match e {
            Expr::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(*rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn expr_comparison_swap() {
        // a > b becomes Ult(b, a)
        let e = parse_one_expr("a > b");
        match e {
            Expr::Binary(BinOp::Ult, lhs, _) => {
                assert!(matches!(*lhs, Expr::Name(ref n, _) if n == "b"));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn expr_slice_vs_index() {
        let e = parse_one_expr("RF[a][7:0]");
        match e {
            Expr::Slice(inner, 7, 0) => {
                assert!(matches!(*inner, Expr::Index(_, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn expr_ext_and_concat() {
        assert!(matches!(parse_one_expr("sext(a, 16)"), Expr::Ext(ExtKind::Sext, _, 16)));
        assert!(matches!(parse_one_expr("concat(a, b, c)"), Expr::Concat(v) if v.len() == 3));
    }

    #[test]
    fn expr_ternary() {
        assert!(matches!(parse_one_expr("a == b ? c : d"), Expr::Cond(_, _, _)));
    }

    #[test]
    fn if_else_stmt() {
        let d = parse_desc(
            r#"
            field F {
                op jz(t: IMM) {
                    encode { word[7:4] = 9; word[3:0] = t; }
                    action { if (ACC == 0) { PC <- zext(t, 16); } else { PC <- PC + 1; } }
                }
            }
            "#,
        );
        assert!(matches!(d.fields[0].ops[0].action[0], Stmt::If { .. }));
    }

    #[test]
    fn signed_ops_parse() {
        assert!(matches!(parse_one_expr("a <s b"), Expr::Binary(BinOp::Slt, _, _)));
        assert!(matches!(parse_one_expr("a /s b"), Expr::Binary(BinOp::SDiv, _, _)));
        assert!(matches!(parse_one_expr("a >s b"), Expr::Binary(BinOp::Slt, _, _)));
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(Parser::new("field F { op x() { bogus { } } }")
            .expect("lexes")
            .parse_description()
            .is_err());
        assert!(Parser::new("storage { weird X 8; }").expect("lexes").parse_description().is_err());
        assert!(Parser::new("field F { op x(] }").expect("lexes").parse_description().is_err());
    }

    #[test]
    fn encode_single_bit_and_sized_const() {
        let d = parse_desc(
            r#"field F { op x(p: T) { encode { word[5] = 1; word[4:1] = 4'b1010; word[0] = p[3]; } } }"#,
        );
        let enc = &d.fields[0].ops[0].encode;
        assert_eq!(enc[0].hi, 5);
        assert_eq!(enc[0].lo, 5);
        assert_eq!(enc[1].rhs, BitRhsDef::Const(BitVector::from_u64(0b1010, 4)));
        assert_eq!(enc[2].rhs, BitRhsDef::ParamSlice { name: "p".into(), hi: 3, lo: 3 });
    }
}
