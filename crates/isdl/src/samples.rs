//! Small, self-contained sample machine descriptions used across the
//! suite's tests and documentation.
//!
//! The flagship SPAM / SPAM2 VLIW fixtures used by the paper's
//! evaluation live in the repository's `fixtures/` directory; the
//! machines here are deliberately small so unit tests stay readable.

/// A 2-way VLIW toy machine: a 16-bit datapath with an ALU field
/// (bits 31:16) and a parallel MOVE field (bits 15:0), one
/// addressing-mode non-terminal, a constraint, and a share hint.
///
/// # Examples
///
/// ```
/// let m = isdl::load(isdl::samples::TOY)?;
/// assert_eq!(m.name, "toy");
/// assert_eq!(m.fields.len(), 2);
/// # Ok::<(), isdl::IsdlError>(())
/// ```
pub const TOY: &str = r#"
machine "toy" { format { word 32; } }

storage {
    imem IM 32 x 1024;
    dmem DM 16 x 256;
    regfile RF 16 x 8;
    register ACC 16;
    creg Z 1;
    pc PC 10;
}

tokens {
    token REG reg("R", 8);
    token UIMM8 imm(8, unsigned);
    token A8 imm(8, unsigned);
    token A10 imm(10, unsigned);
}

nonterminals {
    // Source operand: register direct or register indirect into DM.
    nonterminal SRC width 4 {
        option reg(r: REG) {
            encode { val[3] = 0; val[2:0] = r; }
            value { RF[r] }
        }
        option ind(r: REG) {
            encode { val[3] = 1; val[2:0] = r; }
            value { DM[trunc(RF[r], 8)] }
        }
    }
}

// ALU field: instruction bits 31:16.
field ALU {
    op add(d: REG, a: REG, s: SRC) {
        encode { word[31:27] = 0b00001; word[26:24] = d; word[23:21] = a; word[20:17] = s; }
        action { RF[d] <- RF[a] + s; }
        sideeffect { Z <- (RF[a] + s) == 0; }
        cost { cycle 1; }
        timing { latency 1; }
    }
    op sub(d: REG, a: REG, s: SRC) {
        encode { word[31:27] = 0b00010; word[26:24] = d; word[23:21] = a; word[20:17] = s; }
        action { RF[d] <- RF[a] - s; }
        sideeffect { Z <- (RF[a] - s) == 0; }
    }
    op and(d: REG, a: REG, s: SRC) {
        encode { word[31:27] = 0b00011; word[26:24] = d; word[23:21] = a; word[20:17] = s; }
        action { RF[d] <- RF[a] & s; }
    }
    op xor(d: REG, a: REG, s: SRC) {
        encode { word[31:27] = 0b00100; word[26:24] = d; word[23:21] = a; word[20:17] = s; }
        action { RF[d] <- RF[a] ^ s; }
    }
    op li(d: REG, v: UIMM8) {
        encode { word[31:27] = 0b00101; word[26:24] = d; word[23:16] = v; }
        action { RF[d] <- zext(v, 16); }
    }
    op ld(d: REG, a: A8) {
        encode { word[31:27] = 0b00110; word[26:24] = d; word[23:16] = a; }
        action { RF[d] <- DM[a]; }
        cost { cycle 1; stall 1; }
        timing { latency 2; }
    }
    op st(a: A8, s: REG) {
        encode { word[31:27] = 0b00111; word[26:24] = s; word[23:16] = a; }
        action { DM[a] <- RF[s]; }
    }
    op jmp(t: A10) {
        encode { word[31:27] = 0b01000; word[25:16] = t; }
        action { PC <- t; }
        cost { cycle 1; stall 1; }
    }
    op jz(t: A10) {
        encode { word[31:27] = 0b01001; word[25:16] = t; }
        action { if (ACC == 0) { PC <- t; } }
        cost { cycle 1; stall 1; }
    }
    op mac(a: REG, b: REG) {
        encode { word[31:27] = 0b01010; word[26:24] = a; word[23:21] = b; }
        action { ACC <- ACC + RF[a] * RF[b]; }
        cost { cycle 1; stall 1; }
        timing { latency 2; }
    }
    op clracc() {
        encode { word[31:27] = 0b01011; }
        action { ACC <- 16'd0; }
    }
    op nop() {
        encode { word[31:27] = 0b00000; }
    }
}

// MOVE field: instruction bits 15:0, executes in parallel with ALU.
field MOVE {
    op mv(d: REG, s: REG) {
        encode { word[15:13] = 0b001; word[12:10] = d; word[9:7] = s; }
        action { RF[d] <- RF[s]; }
    }
    op mvacc(d: REG) {
        encode { word[15:13] = 0b010; word[12:10] = d; }
        action { RF[d] <- ACC; }
    }
    op nop() {
        encode { word[15:13] = 0b000; }
    }
}

constraints {
    // The accumulator write port is shared: MAC may not retire in the
    // same instruction that reads ACC into the register file.
    forbid ALU.mac, MOVE.mvacc;
}

archinfo {
    share accbus: ALU.mac, MOVE.mvacc;
    cycle_ns 10;
}
"#;

/// A single-field 16-bit accumulator machine, handy when a test only
/// needs sequential (non-VLIW) behaviour.
///
/// # Examples
///
/// ```
/// let m = isdl::load(isdl::samples::ACC16)?;
/// assert_eq!(m.fields.len(), 1);
/// # Ok::<(), isdl::IsdlError>(())
/// ```
pub const ACC16: &str = r#"
machine "acc16" { format { word 16; } }

storage {
    imem IM 16 x 256;
    dmem DM 16 x 64;
    register ACC 16;
    pc PC 8;
}

tokens {
    token A6 imm(6, unsigned);
    token U8 imm(8, unsigned);
    token T8 imm(8, unsigned);
}

field MAIN {
    op lda(a: A6)  { encode { word[15:12] = 0b0001; word[5:0] = a; } action { ACC <- DM[a]; } }
    op sta(a: A6)  { encode { word[15:12] = 0b0010; word[5:0] = a; } action { DM[a] <- ACC; } }
    op addm(a: A6) { encode { word[15:12] = 0b0011; word[5:0] = a; } action { ACC <- ACC + DM[a]; } }
    op subm(a: A6) { encode { word[15:12] = 0b0100; word[5:0] = a; } action { ACC <- ACC - DM[a]; } }
    op ldi(v: U8)  { encode { word[15:12] = 0b0101; word[7:0] = v; } action { ACC <- zext(v, 16); } }
    op jmp(t: T8)  { encode { word[15:12] = 0b0110; word[7:0] = t; } action { PC <- t; } }
    op jnz(t: T8)  { encode { word[15:12] = 0b0111; word[7:0] = t; } action { if (ACC != 0) { PC <- t; } } }
    op shl1()      { encode { word[15:12] = 0b1000; } action { ACC <- ACC << 16'd1; } }
    op halt()      { encode { word[15:12] = 0b1111; } }
    op nop()       { encode { word[15:12] = 0b0000; } }
}
"#;

/// A 16-bit accumulator machine written the way a naive front end
/// emits RTL: operands promoted to a 128-bit intermediate type before
/// multiplying, common subexpressions spelled out twice, and
/// template-residue identity arithmetic left in place. It exists to
/// exercise the RTL middle-end ([`crate::opt`]): unoptimized, `wmul`
/// exceeds the simulator's 64-bit bytecode lanes; width narrowing
/// brings it back, CSE shares the repeated sum in `sqs`, and the
/// algebraic pass deletes `redund`'s no-ops. `wdiv`/`wrem` divide by a
/// power of two through the same 128-bit promotion — narrowing alone
/// cannot rescue a division, so they stay wide until level 3's
/// strength reduction runs; `dsum` reads the same memory cell twice
/// for the load-forwarding pass. All of it is bit-identical to the
/// obvious hand-written forms.
///
/// # Examples
///
/// ```
/// let m = isdl::load(isdl::samples::WIDEMUL)?;
/// assert_eq!(m.name, "widemul");
/// # Ok::<(), isdl::IsdlError>(())
/// ```
pub const WIDEMUL: &str = r#"
machine "widemul" { format { word 16; } }

storage {
    imem IM 16 x 64;
    dmem DM 16 x 16;
    register A 16;
    register B 16;
    pc PC 6;
}

tokens {
    token U8 imm(8, unsigned);
    token A4 imm(4, unsigned);
}

field MAIN {
    op lia(v: U8)  { encode { word[15:12] = 0b0001; word[7:0] = v; } action { A <- zext(v, 16); } }
    op lib(v: U8)  { encode { word[15:12] = 0b0010; word[7:0] = v; } action { B <- zext(v, 16); } }
    // Front-end style widening multiply: promote, multiply, truncate.
    op wmul()      { encode { word[15:12] = 0b0011; } action { A <- trunc(zext(A, 128) * zext(B, 128), 16); } }
    // Squared sum with the sum written out twice (no front-end CSE).
    op sqs()       { encode { word[15:12] = 0b0100; } action { A <- (A + B) * (A + B); } }
    // Identity arithmetic a template-based generator leaves behind.
    op redund()    { encode { word[15:12] = 0b0101; } action { A <- ((A + 16'd0) ^ 16'd0) | (A & A); } }
    op sta(a: A4)  { encode { word[15:12] = 0b0110; word[3:0] = a; } action { DM[a] <- A; } }
    op lda(a: A4)  { encode { word[15:12] = 0b0111; word[3:0] = a; } action { A <- DM[a]; } }
    // Front-end style widening divide/remainder by a power of two:
    // narrowing cannot see through a division, so at levels <= 2 these
    // force the simulator's wide fallback; strength reduction (level 3)
    // turns them into shifts and masks that narrow back into the u64
    // lane.
    op wdiv()      { encode { word[15:12] = 0b1000; } action { A <- trunc(zext(A, 128) / 128'd16, 16); } }
    op wrem()      { encode { word[15:12] = 0b1001; } action { B <- trunc(zext(B, 128) % 128'd16, 16); } }
    // The same indexed load spelled out twice (no front-end CSE of
    // memory reads) -- load forwarding's showcase.
    op dsum(a: A4) { encode { word[15:12] = 0b1010; word[3:0] = a; } action { A <- DM[a] + DM[a]; } }
    op halt()      { encode { word[15:12] = 0b1111; } }
    op nop()       { encode { word[15:12] = 0b0000; } }
}
"#;

/// The paper's 4-way VLIW evaluation target (Table 1 and Table 2's
/// first row): four operation fields plus three parallel move fields
/// in a 128-bit instruction word. See `fixtures/spam.isdl`.
pub const SPAM: &str = include_str!("../../../fixtures/spam.isdl");

/// The paper's simpler 3-way VLIW (Table 2's second row). See
/// `fixtures/spam2.isdl`.
pub const SPAM2: &str = include_str!("../../../fixtures/spam2.isdl");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_loads() {
        let m = crate::load(TOY).expect("toy sample loads");
        assert_eq!(m.name, "toy");
        assert_eq!(m.fields.len(), 2);
        assert_eq!(m.nonterminals.len(), 1);
        assert_eq!(m.constraints.len(), 1);
        assert_eq!(m.share_hints.len(), 1);
        assert_eq!(m.fields[0].ops.len(), 12);
    }

    #[test]
    fn spam_loads() {
        let m = crate::load(SPAM).expect("spam fixture loads");
        assert_eq!(m.word_width, 128);
        assert_eq!(m.fields.len(), 7, "4 operation fields + 3 move fields");
        assert_eq!(m.constraints.len(), 10);
        assert_eq!(m.share_hints.len(), 2);
    }

    #[test]
    fn spam2_loads() {
        let m = crate::load(SPAM2).expect("spam2 fixture loads");
        assert_eq!(m.word_width, 48);
        assert_eq!(m.fields.len(), 3);
    }

    #[test]
    fn acc16_loads() {
        let m = crate::load(ACC16).expect("acc16 sample loads");
        assert_eq!(m.fields[0].ops.len(), 10);
        assert!(m.pc.is_some());
    }

    #[test]
    fn widemul_loads() {
        let m = crate::load(WIDEMUL).expect("widemul sample loads");
        assert_eq!(m.name, "widemul");
        assert_eq!(m.fields.len(), 1);
        assert_eq!(m.fields[0].ops.len(), 12);
        assert!(m.pc.is_some());
    }

    #[test]
    fn widemul_gives_the_middle_end_work() {
        // The sample exists to exercise the optimizer; if a rewrite of
        // its RTL ever makes it clean, the differential corpus loses
        // its only machine with guaranteed eliminations.
        let m = crate::load(WIDEMUL).expect("widemul sample loads");
        let mut stats = crate::opt::OptStats::default();
        for f in &m.fields {
            for op in &f.ops {
                for phase in [&op.action, &op.side_effects] {
                    let _ = crate::opt::optimize_stmts(
                        phase,
                        crate::opt::OptLevel::default(),
                        &mut stats,
                    );
                }
            }
        }
        assert!(stats.nodes_eliminated() > 0, "redund/sqs must shrink: {stats:?}");
        assert!(stats.cse_hits > 0, "sqs repeats (A + B): {stats:?}");
        assert!(stats.narrowed > 0, "wmul's 128-bit multiply must narrow: {stats:?}");
    }

    #[test]
    fn widemul_level3_retires_the_wide_divides() {
        // wdiv/wrem keep a >64-bit intermediate at level 2 (narrowing
        // cannot cross a division) and lose it at level 3 (strength
        // reduction turns the divide into a shift the narrower can
        // slice through). This is the sample's reason to exist for the
        // level-3 pipeline; if it ever optimizes clean at level 2 the
        // opt3-vs-opt2 ablation loses its subject.
        let m = crate::load(WIDEMUL).expect("widemul sample loads");
        let max_width = |level: crate::opt::OptLevel| {
            let mut w = 0u32;
            let mut stats = crate::opt::OptStats::default();
            for f in &m.fields {
                for op in &f.ops {
                    if op.name != "wdiv" && op.name != "wrem" {
                        continue;
                    }
                    for phase in [&op.action, &op.side_effects] {
                        for s in crate::opt::optimize_stmts(phase, level, &mut stats) {
                            s.walk_exprs(&mut |e| w = w.max(e.width));
                        }
                    }
                }
            }
            (w, stats)
        };
        let (w2, s2) = max_width(crate::opt::OptLevel::Aggressive);
        assert!(w2 > 64, "level 2 must leave the wide divides wide, got max width {w2}");
        assert_eq!(s2.strength_reduced, 0);
        let (w3, s3) = max_width(crate::opt::OptLevel::Full);
        assert!(w3 <= 64, "level 3 must collapse wdiv/wrem into the u64 lane, got {w3}");
        assert!(s3.strength_reduced >= 2, "both divide and remainder reduce: {s3:?}");
    }
}
