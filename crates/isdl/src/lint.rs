//! Description lints: valid-but-suspect patterns worth surfacing.
//!
//! Semantic analysis rejects *incorrect* descriptions; lints flag
//! *wasteful* ones — exactly the dead weight the exploration loop ends
//! up paying for in decode logic and datapath area. `isdlc check`
//! prints these.

use crate::model::{Machine, ParamType, StorageKind};
use crate::rtl::{RExprKind, RLvalue, RStmt};
use std::collections::HashSet;
use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// A token no operation or option uses.
    UnusedToken {
        /// Token name.
        name: String,
    },
    /// A non-terminal no operation references.
    UnusedNonTerminal {
        /// Non-terminal name.
        name: String,
    },
    /// A field without an operation named `nop` — the assembler cannot
    /// default it, so every instruction must name the field.
    FieldWithoutNop {
        /// Field name.
        name: String,
    },
    /// A storage element no RTL reads or writes (and which is not the
    /// PC / instruction memory the tools themselves use).
    UnusedStorage {
        /// Storage name.
        name: String,
    },
    /// An operation with neither action nor side effects that is not
    /// named `nop`.
    EffectlessOperation {
        /// `FIELD.op` name.
        name: String,
    },
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnusedToken { name } => write!(f, "token `{name}` is never used"),
            Self::UnusedNonTerminal { name } => {
                write!(f, "non-terminal `{name}` is never used")
            }
            Self::FieldWithoutNop { name } => {
                write!(f, "field `{name}` has no `nop`: the assembler cannot default it")
            }
            Self::UnusedStorage { name } => {
                write!(f, "storage `{name}` is never read or written")
            }
            Self::EffectlessOperation { name } => {
                write!(f, "operation `{name}` has no action or side effects")
            }
        }
    }
}

/// Runs every lint over a validated machine.
#[must_use]
pub fn lint(machine: &Machine) -> Vec<Lint> {
    let mut out = Vec::new();

    // Token / non-terminal usage.
    let mut used_tokens = HashSet::new();
    let mut used_nts = HashSet::new();
    let all_operations = machine
        .fields
        .iter()
        .flat_map(|f| f.ops.iter())
        .chain(machine.nonterminals.iter().flat_map(|n| n.options.iter()));
    for op in all_operations {
        for p in &op.params {
            match p.ty {
                ParamType::Token(t) => {
                    used_tokens.insert(t.0);
                }
                ParamType::NonTerminal(n) => {
                    used_nts.insert(n.0);
                }
            }
        }
    }
    for (i, t) in machine.tokens.iter().enumerate() {
        if !used_tokens.contains(&i) {
            out.push(Lint::UnusedToken { name: t.name.clone() });
        }
    }
    for (i, nt) in machine.nonterminals.iter().enumerate() {
        if !used_nts.contains(&i) {
            out.push(Lint::UnusedNonTerminal { name: nt.name.clone() });
        }
    }

    // nop defaults.
    for f in &machine.fields {
        if f.nop.is_none() {
            out.push(Lint::FieldWithoutNop { name: f.name.clone() });
        }
    }

    // Storage usage across all RTL (including non-terminal values).
    let mut touched = HashSet::new();
    let touch_stmt = |s: &RStmt, touched: &mut HashSet<usize>| {
        s.walk_exprs(&mut |e| {
            if let RExprKind::Storage(id) | RExprKind::StorageIndexed(id, _) = &e.kind {
                touched.insert(id.0);
            }
        });
        collect_lv_storages(s, touched);
    };
    for (_, op) in machine.all_ops() {
        for s in op.action.iter().chain(&op.side_effects) {
            touch_stmt(s, &mut touched);
        }
    }
    for nt in &machine.nonterminals {
        for o in &nt.options {
            if let Some(v) = &o.value {
                v.walk(&mut |e| {
                    if let RExprKind::Storage(id) | RExprKind::StorageIndexed(id, _) = &e.kind {
                        touched.insert(id.0);
                    }
                });
            }
            for s in o.action.iter().chain(&o.side_effects) {
                touch_stmt(s, &mut touched);
            }
        }
    }
    for (i, s) in machine.storages.iter().enumerate() {
        let infrastructural =
            matches!(s.kind, StorageKind::ProgramCounter | StorageKind::InstructionMemory);
        if !infrastructural && !touched.contains(&i) {
            out.push(Lint::UnusedStorage { name: s.name.clone() });
        }
    }

    // Effectless non-nop operations.
    for (r, op) in machine.all_ops() {
        if op.is_nop() && op.name != "nop" {
            out.push(Lint::EffectlessOperation { name: machine.op_name(r) });
        }
    }

    out
}

fn collect_lv_storages(s: &RStmt, touched: &mut HashSet<usize>) {
    match s {
        RStmt::Assign { lv, .. } => {
            let mut cur = lv;
            loop {
                match cur {
                    RLvalue::Storage(id) | RLvalue::StorageIndexed(id, _) => {
                        touched.insert(id.0);
                        break;
                    }
                    RLvalue::Slice { base, .. } => cur = base,
                    RLvalue::Param(_) => break,
                }
            }
        }
        RStmt::If { then_body, else_body, .. } => {
            for s in then_body.iter().chain(else_body) {
                collect_lv_storages(s, touched);
            }
        }
        RStmt::Let { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_fixtures_have_no_lints() {
        for src in [crate::samples::TOY, crate::samples::SPAM, crate::samples::SPAM2] {
            let m = crate::load(src).expect("loads");
            let lints = lint(&m);
            assert!(lints.is_empty(), "unexpected lints: {lints:?}");
        }
    }

    #[test]
    fn acc16_halt_is_effectless_by_design() {
        let m = crate::load(crate::samples::ACC16).expect("loads");
        let lints = lint(&m);
        assert_eq!(
            lints,
            vec![Lint::EffectlessOperation { name: "MAIN.halt".into() }],
            "halt is intentionally effectless; everything else is clean"
        );
    }

    #[test]
    fn detects_every_lint_kind() {
        let m = crate::load(
            r#"
            machine "lints" { format { word 16; } }
            storage {
                imem IM 16 x 16;
                pc PC 4;
                register A 16;
                register GHOST 8;
            }
            tokens {
                token U4 imm(4, unsigned);
                token DEAD imm(2, unsigned);
            }
            nonterminals {
                nonterminal ORPHAN width 1 {
                    option only() { encode { val[0] = 1; } value { trunc(A, 1) } }
                }
            }
            field NONOP {
                op inc(v: U4) { encode { word[15:12] = 0b0001; word[3:0] = v; } action { A <- A + zext(v, 16); } }
                op idle() { encode { word[15:12] = 0b0000; } }
            }
            "#,
        )
        .expect("loads");
        let lints = lint(&m);
        assert!(lints.contains(&Lint::UnusedToken { name: "DEAD".into() }), "{lints:?}");
        assert!(lints.contains(&Lint::UnusedNonTerminal { name: "ORPHAN".into() }), "{lints:?}");
        assert!(lints.contains(&Lint::FieldWithoutNop { name: "NONOP".into() }), "{lints:?}");
        assert!(lints.contains(&Lint::UnusedStorage { name: "GHOST".into() }), "{lints:?}");
        assert!(
            lints.contains(&Lint::EffectlessOperation { name: "NONOP.idle".into() }),
            "{lints:?}"
        );
    }

    #[test]
    fn display_messages_are_actionable() {
        let l = Lint::FieldWithoutNop { name: "ALU".into() };
        assert!(l.to_string().contains("cannot default"));
    }
}
