#![deny(missing_docs)]

//! The ISDL machine-description language.
//!
//! ISDL (Instruction Set Description Language, Hadjiyiannis/Hanono/
//! Devadas, DAC 1997) is a *behavioral* machine-description language that
//! explicitly lists the instruction set of a target architecture, with
//! special emphasis on VLIW machines. This crate implements the language
//! front-end used by every generated tool in the suite: the assembler /
//! disassembler (`xasm`), the XSIM simulator generator (`gensim`), and
//! the HGEN hardware synthesizer (`hgen`).
//!
//! A description consists of the six ISDL sections:
//!
//! 1. **format** — the instruction word width,
//! 2. **global definitions** — `tokens` (assembly syntax elements) and
//!    `nonterminals` (shared patterns such as addressing modes),
//! 3. **storage** — every visible state element (memories, register
//!    files, registers, PC, stack, …),
//! 4. **instruction set** — a list of *fields*, each a list of mutually
//!    exclusive *operations*; a VLIW instruction picks one operation per
//!    field,
//! 5. **constraints** — boolean restrictions on which operation
//!    combinations form valid instructions,
//! 6. **optional architectural information** — resource-sharing hints
//!    and physical parameters.
//!
//! Each operation carries the six parts the paper lists: assembly
//! syntax, bitfield assignments, action RTL, side-effect RTL, costs
//! (`cycle`, `stall`, `size`) and timing (`latency`, `usage`).
//!
//! # Pipeline
//!
//! [`parse`] turns source text into a raw AST; [`analyze`] resolves
//! names, checks widths and the decodability axiom, and produces the
//! [`model::Machine`] every downstream tool consumes. [`load`] does both.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//! machine "tiny" { format { word 16; } }
//! storage {
//!     regfile RF 8 x 4;
//!     pc PC 8;
//!     imem IM 16 x 256;
//! }
//! tokens { token REG reg("R", 4); }
//! field ALU {
//!     op add(d: REG, a: REG, b: REG) {
//!         encode { word[15:12] = 0b0001; word[11:10] = d; word[9:8] = a; word[7:6] = b; }
//!         action { RF[d] <- RF[a] + RF[b]; }
//!         cost { cycle 1; }
//!         timing { latency 1; }
//!     }
//!     op nop() { encode { word[15:12] = 0b0000; } }
//! }
//! "#;
//! let machine = isdl::load(src)?;
//! assert_eq!(machine.word_width, 16);
//! assert_eq!(machine.fields.len(), 1);
//! # Ok::<(), isdl::IsdlError>(())
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lint;
pub mod model;
pub mod opt;
pub mod parser;
pub mod printer;
pub mod rtl;
pub mod samples;
pub mod sema;
pub mod signature;

pub use error::IsdlError;
pub use model::Machine;

/// Parses ISDL source text into a raw (unresolved) AST.
///
/// # Errors
///
/// Returns an [`IsdlError`] describing the first lexical or syntactic
/// problem, with line/column information.
pub fn parse(src: &str) -> Result<ast::Description, IsdlError> {
    parser::Parser::new(src)?.parse_description()
}

/// Resolves and validates a parsed description into a [`Machine`].
///
/// # Errors
///
/// Returns an [`IsdlError`] for name-resolution failures, width
/// mismatches, overlapping field encodings, undecodable operation pairs,
/// or violations of the single-parameter encoding axiom (Axiom 1 of the
/// paper).
pub fn analyze(desc: &ast::Description) -> Result<Machine, IsdlError> {
    sema::analyze(desc)
}

/// Parses and validates ISDL source in one step.
///
/// # Errors
///
/// Any error [`parse`] or [`analyze`] can produce.
pub fn load(src: &str) -> Result<Machine, IsdlError> {
    analyze(&parse(src)?)
}
