//! The resolved machine model — what every generated tool consumes.
//!
//! A [`Machine`] is produced by [`crate::sema::analyze`] from a parsed
//! description. All names are resolved to indices, all RTL is
//! width-annotated ([`crate::rtl`]), and the decodability checks of the
//! paper's Axiom 1 have already passed.

use crate::ast::{CostsDef, TimingDef};
use crate::rtl::{RExpr, RLvalue, RStmt, StorageId};
use bitv::BitVector;
use std::fmt;

/// Identifier of a token definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenId(pub usize);

/// Identifier of a non-terminal definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NtId(pub usize);

/// Identifier of an instruction-set field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub usize);

/// Reference to an operation: field index + operation index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpRef {
    /// The field.
    pub field: FieldId,
    /// Index of the operation within the field.
    pub op: usize,
}

impl fmt::Display for OpRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "field#{}.op#{}", self.field.0, self.op)
    }
}

/// The ISDL storage classes (resolved form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageKind {
    /// Instruction memory.
    InstructionMemory,
    /// Data memory.
    DataMemory,
    /// Register file.
    RegisterFile,
    /// Single register.
    Register,
    /// Control register.
    ControlRegister,
    /// Memory-mapped I/O region.
    MemoryMappedIo,
    /// Program counter.
    ProgramCounter,
    /// Hardware stack.
    Stack,
}

impl StorageKind {
    /// Whether this storage class has addressable locations.
    #[must_use]
    pub fn is_addressed(self) -> bool {
        matches!(
            self,
            Self::InstructionMemory
                | Self::DataMemory
                | Self::RegisterFile
                | Self::MemoryMappedIo
                | Self::Stack
        )
    }
}

impl fmt::Display for StorageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::InstructionMemory => "imem",
            Self::DataMemory => "dmem",
            Self::RegisterFile => "regfile",
            Self::Register => "register",
            Self::ControlRegister => "creg",
            Self::MemoryMappedIo => "mmio",
            Self::ProgramCounter => "pc",
            Self::Stack => "stack",
        };
        f.write_str(s)
    }
}

/// One storage element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Storage {
    /// Name.
    pub name: String,
    /// Storage class.
    pub kind: StorageKind,
    /// Width of one cell in bits.
    pub width: u32,
    /// Number of cells for addressed kinds; `None` for plain registers.
    pub depth: Option<u64>,
}

impl Storage {
    /// Number of cells (1 for non-addressed storage).
    #[must_use]
    pub fn cells(&self) -> u64 {
        self.depth.unwrap_or(1)
    }
}

/// An alias: alternative name for a sub-part of the state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alias {
    /// Alias name.
    pub name: String,
    /// Aliased storage.
    pub target: StorageId,
    /// Cell index within an addressed storage.
    pub index: Option<u64>,
    /// Bit range within the cell.
    pub range: Option<(u32, u32)>,
}

/// A resolved token definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token name.
    pub name: String,
    /// Token class.
    pub kind: TokenKind,
    /// Width in bits of the token's return (encoded) value.
    pub width: u32,
}

/// Resolved token classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// `prefix0 .. prefix{count-1}`; value = index.
    Register {
        /// Assembly prefix.
        prefix: String,
        /// Number of registers.
        count: u64,
    },
    /// Immediate of the given signedness.
    Immediate {
        /// Whether assembly accepts negative literals.
        signed: bool,
    },
    /// Enumerated spellings; value = position.
    Enum {
        /// Accepted spellings.
        names: Vec<String>,
    },
}

/// A resolved non-terminal.
#[derive(Debug, Clone, PartialEq)]
pub struct NonTerminal {
    /// Name.
    pub name: String,
    /// Width in bits of the return value the options encode into.
    pub width: u32,
    /// Width of the datapath value produced by `value` clauses
    /// (`None` if no option has a value clause).
    pub value_width: Option<u32>,
    /// The options (operations without field membership).
    pub options: Vec<Operation>,
}

/// A parameter type: token or non-terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamType {
    /// A token parameter.
    Token(TokenId),
    /// A non-terminal parameter.
    NonTerminal(NtId),
}

/// A resolved formal parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Name (used in diagnostics and assembly listings).
    pub name: String,
    /// Its type.
    pub ty: ParamType,
}

/// Right-hand side of a resolved bitfield assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitRhs {
    /// Constant bits.
    Const(BitVector),
    /// Bits `hi..=lo` of parameter `index`'s encoded value.
    Param {
        /// Parameter index.
        index: usize,
        /// High bit of the parameter value (inclusive).
        hi: u32,
        /// Low bit of the parameter value (inclusive).
        lo: u32,
    },
}

/// A resolved bitfield assignment: instruction-word bits `hi..=lo`
/// receive `rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitAssign {
    /// High instruction-word bit (inclusive).
    pub hi: u32,
    /// Low instruction-word bit (inclusive).
    pub lo: u32,
    /// Value placed there.
    pub rhs: BitRhs,
}

/// Operation costs (re-exported from the AST; defaults
/// `cycle 1; stall 0; size 1;`).
pub type Costs = CostsDef;

/// Operation timing (defaults `latency 1; usage 1;`).
pub type Timing = TimingDef;

/// A resolved operation (or non-terminal option) with the six
/// definition parts of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    /// Name (part 1, with `params`).
    pub name: String,
    /// Formal parameters (part 1).
    pub params: Vec<Param>,
    /// Bitfield assignments (part 2).
    pub encode: Vec<BitAssign>,
    /// For non-terminal options: the value expression.
    pub value: Option<RExpr>,
    /// For non-terminal options whose value has l-value shape: the
    /// destination form, enabling use as an assignment target.
    pub value_lvalue: Option<RLvalue>,
    /// Action RTL (part 3).
    pub action: Vec<RStmt>,
    /// Side-effect RTL (part 4).
    pub side_effects: Vec<RStmt>,
    /// Costs (part 5).
    pub costs: Costs,
    /// Timing (part 6).
    pub timing: Timing,
}

impl Operation {
    /// Whether this operation performs no state change.
    #[must_use]
    pub fn is_nop(&self) -> bool {
        self.action.is_empty() && self.side_effects.is_empty()
    }
}

/// An instruction-set field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// The mutually exclusive operations of this field.
    pub ops: Vec<Operation>,
    /// Index of an operation named `nop`, used as the assembler default
    /// when the field is omitted.
    pub nop: Option<usize>,
}

/// A resolved constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// The listed operations may not all appear in one instruction.
    Forbid(Vec<OpRef>),
    /// General boolean expression every instruction must satisfy.
    Assert(CExpr),
}

/// Resolved boolean constraint expression over operation presence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CExpr {
    /// The operation is the one selected in its field.
    Op(OpRef),
    /// Negation.
    Not(Box<CExpr>),
    /// Conjunction.
    And(Box<CExpr>, Box<CExpr>),
    /// Disjunction.
    Or(Box<CExpr>, Box<CExpr>),
}

impl CExpr {
    /// Evaluates against a selection of one operation per field.
    /// `selected[f]` is the op index chosen in field `f`.
    #[must_use]
    pub fn eval(&self, selected: &[usize]) -> bool {
        match self {
            Self::Op(r) => selected.get(r.field.0).is_some_and(|&o| o == r.op),
            Self::Not(e) => !e.eval(selected),
            Self::And(a, b) => a.eval(selected) && b.eval(selected),
            Self::Or(a, b) => a.eval(selected) || b.eval(selected),
        }
    }
}

impl Constraint {
    /// Whether the selection (one op index per field) satisfies this
    /// constraint.
    #[must_use]
    pub fn check(&self, selected: &[usize]) -> bool {
        match self {
            Self::Forbid(ops) => {
                !ops.iter().all(|r| selected.get(r.field.0).is_some_and(|&o| o == r.op))
            }
            Self::Assert(e) => e.eval(selected),
        }
    }
}

/// A resource-sharing hint from the `archinfo` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareHint {
    /// Resource name.
    pub name: String,
    /// Operations sharing it.
    pub ops: Vec<OpRef>,
}

/// A fully resolved, validated machine description.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Architecture name.
    pub name: String,
    /// Instruction word width in bits.
    pub word_width: u32,
    /// Storage elements.
    pub storages: Vec<Storage>,
    /// Aliases.
    pub aliases: Vec<Alias>,
    /// Tokens.
    pub tokens: Vec<Token>,
    /// Non-terminals.
    pub nonterminals: Vec<NonTerminal>,
    /// Instruction-set fields.
    pub fields: Vec<Field>,
    /// Constraints.
    pub constraints: Vec<Constraint>,
    /// Resource-sharing hints.
    pub share_hints: Vec<ShareHint>,
    /// Target clock period hint in nanoseconds.
    pub cycle_ns_hint: Option<f64>,
    /// The program counter storage, if declared.
    pub pc: Option<StorageId>,
    /// The instruction memory, if declared.
    pub imem: Option<StorageId>,
}

impl Machine {
    /// The storage with the given id.
    #[must_use]
    pub fn storage(&self, id: StorageId) -> &Storage {
        &self.storages[id.0]
    }

    /// Looks up a storage by name.
    #[must_use]
    pub fn storage_by_name(&self, name: &str) -> Option<(StorageId, &Storage)> {
        self.storages
            .iter()
            .enumerate()
            .find(|(_, s)| s.name == name)
            .map(|(i, s)| (StorageId(i), s))
    }

    /// The operation referenced by `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range (resolved refs never are).
    #[must_use]
    pub fn op(&self, r: OpRef) -> &Operation {
        &self.fields[r.field.0].ops[r.op]
    }

    /// Human-readable `FIELD.op` name for diagnostics.
    #[must_use]
    pub fn op_name(&self, r: OpRef) -> String {
        format!("{}.{}", self.fields[r.field.0].name, self.fields[r.field.0].ops[r.op].name)
    }

    /// Looks up an operation by `field` and `op` name.
    #[must_use]
    pub fn op_by_name(&self, field: &str, op: &str) -> Option<OpRef> {
        let (fi, f) = self.fields.iter().enumerate().find(|(_, f)| f.name == field)?;
        let oi = f.ops.iter().position(|o| o.name == op)?;
        Some(OpRef { field: FieldId(fi), op: oi })
    }

    /// Width in bits of a parameter's *encoded* form (what the bitfield
    /// assignments place into the word).
    #[must_use]
    pub fn param_encoding_width(&self, ty: ParamType) -> u32 {
        match ty {
            ParamType::Token(t) => self.tokens[t.0].width,
            ParamType::NonTerminal(n) => self.nonterminals[n.0].width,
        }
    }

    /// Width in bits of a parameter's *datapath value* (what `Param(i)`
    /// evaluates to in RTL): the token return value, or the
    /// non-terminal's common value width.
    ///
    /// Returns `None` for a non-terminal with no value clauses.
    #[must_use]
    pub fn param_value_width(&self, ty: ParamType) -> Option<u32> {
        match ty {
            ParamType::Token(t) => Some(self.tokens[t.0].width),
            ParamType::NonTerminal(n) => self.nonterminals[n.0].value_width,
        }
    }

    /// The maximum operation size (in instruction words) over all
    /// fields — the number of words a fetch may need.
    #[must_use]
    pub fn max_op_size(&self) -> u32 {
        self.fields.iter().flat_map(|f| f.ops.iter()).map(|o| o.costs.size).max().unwrap_or(1)
    }

    /// Iterates over all `(OpRef, &Operation)` pairs in field order.
    pub fn all_ops(&self) -> impl Iterator<Item = (OpRef, &Operation)> {
        self.fields.iter().enumerate().flat_map(|(fi, f)| {
            f.ops.iter().enumerate().map(move |(oi, o)| (OpRef { field: FieldId(fi), op: oi }, o))
        })
    }

    /// Checks a full selection (one op per field) against every
    /// constraint; returns the first violated constraint's index.
    #[must_use]
    pub fn check_constraints(&self, selected: &[usize]) -> Option<usize> {
        self.constraints.iter().position(|c| !c.check(selected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_kind_addressing() {
        assert!(StorageKind::DataMemory.is_addressed());
        assert!(StorageKind::RegisterFile.is_addressed());
        assert!(!StorageKind::Register.is_addressed());
        assert!(!StorageKind::ProgramCounter.is_addressed());
    }

    #[test]
    fn cexpr_eval() {
        let a = CExpr::Op(OpRef { field: FieldId(0), op: 1 });
        let b = CExpr::Op(OpRef { field: FieldId(1), op: 0 });
        let e = CExpr::Not(Box::new(CExpr::And(Box::new(a), Box::new(b))));
        assert!(!e.eval(&[1, 0]));
        assert!(e.eval(&[1, 1]));
        assert!(e.eval(&[0, 0]));
    }

    #[test]
    fn forbid_constraint() {
        let c = Constraint::Forbid(vec![
            OpRef { field: FieldId(0), op: 0 },
            OpRef { field: FieldId(1), op: 2 },
        ]);
        assert!(!c.check(&[0, 2]));
        assert!(c.check(&[0, 1]));
        assert!(c.check(&[1, 2]));
    }
}
