//! Raw (unresolved) abstract syntax tree for ISDL descriptions.
//!
//! The parser produces these types; [`crate::sema`] resolves names and
//! widths into the [`crate::model`] types every downstream tool uses.
//! All names here are plain strings with source positions so that
//! diagnostics can point at the offending definition.

use crate::error::Pos;
use bitv::BitVector;

/// A complete parsed description (the six ISDL sections, merged).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Description {
    /// Architecture name from the `machine "name" { ... }` header.
    pub name: String,
    /// Instruction word width in bits (format section).
    pub word_width: Option<u32>,
    /// Storage definitions in declaration order.
    pub storages: Vec<StorageDef>,
    /// Alias definitions.
    pub aliases: Vec<AliasDef>,
    /// Token definitions (global definitions section).
    pub tokens: Vec<TokenDef>,
    /// Non-terminal definitions (global definitions section).
    pub nonterminals: Vec<NonTerminalDef>,
    /// Instruction-set fields in declaration order.
    pub fields: Vec<FieldDef>,
    /// Constraints.
    pub constraints: Vec<ConstraintDef>,
    /// Optional architectural information.
    pub archinfo: ArchInfoDef,
}

/// One storage element declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageDef {
    /// Declared name.
    pub name: String,
    /// Storage class keyword.
    pub kind: StorageKindAst,
    /// Element width in bits.
    pub width: u32,
    /// Number of addressable locations (for addressed kinds).
    pub depth: Option<u64>,
    /// Source position.
    pub pos: Pos,
}

/// The ISDL storage classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageKindAst {
    /// Instruction memory.
    InstructionMemory,
    /// Data memory.
    DataMemory,
    /// Register file.
    RegisterFile,
    /// Single register.
    Register,
    /// Control register.
    ControlRegister,
    /// Memory-mapped I/O region.
    MemoryMappedIo,
    /// Program counter.
    ProgramCounter,
    /// Hardware stack.
    Stack,
}

/// An alias: an alternative name for a sub-part of the state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AliasDef {
    /// The alias name.
    pub name: String,
    /// The storage it aliases.
    pub target: String,
    /// Cell index within an addressed storage.
    pub index: Option<u64>,
    /// Optional bit range `hi:lo` within the cell.
    pub range: Option<(u32, u32)>,
    /// Source position.
    pub pos: Pos,
}

/// A token definition (assembly-syntax element).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenDef {
    /// Token name (conventionally upper-case).
    pub name: String,
    /// Kind of token.
    pub kind: TokenKindAst,
    /// Source position.
    pub pos: Pos,
}

/// The supported token classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKindAst {
    /// Register-style tokens: `prefix` followed by an index `0..count`.
    /// The return value is the index.
    Register {
        /// Assembly prefix, e.g. `"R"`.
        prefix: String,
        /// Number of registers.
        count: u64,
    },
    /// Immediate value of the given width and signedness.
    Immediate {
        /// Bit width of the encoded immediate.
        width: u32,
        /// Whether assembly accepts negative values (two's complement).
        signed: bool,
    },
    /// Enumerated symbols; the return value is the list position.
    Enum {
        /// The accepted spellings.
        names: Vec<String>,
    },
}

/// A non-terminal definition (abstracts a common operation pattern,
/// e.g. an addressing mode).
#[derive(Debug, Clone, PartialEq)]
pub struct NonTerminalDef {
    /// Non-terminal name.
    pub name: String,
    /// Width in bits of the return value (the varying-width binary
    /// sub-word options encode into).
    pub width: u32,
    /// The options.
    pub options: Vec<OperationDef>,
    /// Source position.
    pub pos: Pos,
}

/// An instruction-set field: a set of mutually exclusive operations
/// (roughly one functional unit).
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// The operations of this field.
    pub ops: Vec<OperationDef>,
    /// Source position.
    pub pos: Pos,
}

/// One operation (or non-terminal option) with its six definition parts.
#[derive(Debug, Clone, PartialEq)]
pub struct OperationDef {
    /// Operation name (empty for anonymous use; non-terminal options are
    /// named too in this dialect, which also names the addressing mode).
    pub name: String,
    /// Formal parameters.
    pub params: Vec<ParamDef>,
    /// Bitfield assignments (part 2).
    pub encode: Vec<BitAssignDef>,
    /// For non-terminal options: the value expression (reads) which must
    /// have l-value shape if the option is ever used as a destination.
    pub value: Option<Expr>,
    /// Action RTL (part 3).
    pub action: Vec<Stmt>,
    /// Side-effect RTL (part 4).
    pub side_effects: Vec<Stmt>,
    /// Costs (part 5).
    pub costs: CostsDef,
    /// Timing (part 6).
    pub timing: TimingDef,
    /// Source position.
    pub pos: Pos,
}

/// A formal parameter: name and the token / non-terminal it ranges over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDef {
    /// Parameter name as used in RTL and encode blocks.
    pub name: String,
    /// The token or non-terminal name.
    pub ty: String,
    /// Source position.
    pub pos: Pos,
}

/// One bitfield assignment `word[h:l] = rhs;` (or `val[h:l]` inside a
/// non-terminal option).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitAssignDef {
    /// High bit (inclusive).
    pub hi: u32,
    /// Low bit (inclusive).
    pub lo: u32,
    /// Right-hand side.
    pub rhs: BitRhsDef,
    /// Source position.
    pub pos: Pos,
}

/// Right-hand side of a bitfield assignment. Restricted so the encoding
/// is symbolically reversible (Axiom 1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitRhsDef {
    /// A constant.
    Const(BitVector),
    /// A parameter's full encoded value.
    Param(String),
    /// A bit range of a parameter's encoded value.
    ParamSlice {
        /// Parameter name.
        name: String,
        /// High bit of the parameter value (inclusive).
        hi: u32,
        /// Low bit of the parameter value (inclusive).
        lo: u32,
    },
}

/// Operation costs (paper part 5). Unspecified entries default to
/// `cycle 1; stall 0; size 1;`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostsDef {
    /// Cycles taken in the absence of stalls.
    pub cycle: u32,
    /// Additional cycles possible during a pipeline stall.
    pub stall: u32,
    /// Instruction words occupied.
    pub size: u32,
}

impl Default for CostsDef {
    fn default() -> Self {
        Self { cycle: 1, stall: 0, size: 1 }
    }
}

/// Operation timing (paper part 6). Unspecified entries default to
/// `latency 1; usage 1;`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingDef {
    /// Cycles until results become visible (1 = next cycle).
    pub latency: u32,
    /// Cycles until the functional unit is free again.
    pub usage: u32,
}

impl Default for TimingDef {
    fn default() -> Self {
        Self { latency: 1, usage: 1 }
    }
}

/// A constraint definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintDef {
    /// `forbid F.op, G.op2;` — the listed operations may not all be
    /// present in one instruction.
    Forbid {
        /// The operations (as `field.op` references).
        ops: Vec<OpRefDef>,
        /// Source position.
        pos: Pos,
    },
    /// `assert <boolexpr>;` — a general boolean combination that every
    /// valid instruction must satisfy.
    Assert {
        /// The boolean expression over operation presence.
        expr: ConstraintExpr,
        /// Source position.
        pos: Pos,
    },
}

/// Reference to an operation as `field.op`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OpRefDef {
    /// Field name.
    pub field: String,
    /// Operation name within the field.
    pub op: String,
}

/// Boolean expression over operation presence in an instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintExpr {
    /// The named operation is selected in its field.
    Op(OpRefDef),
    /// Logical negation.
    Not(Box<ConstraintExpr>),
    /// Logical conjunction.
    And(Box<ConstraintExpr>, Box<ConstraintExpr>),
    /// Logical disjunction.
    Or(Box<ConstraintExpr>, Box<ConstraintExpr>),
}

/// Optional architectural information.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArchInfoDef {
    /// Resource-sharing hints: named shared resources and the operations
    /// that use them (so HGEN can put them on one bus / unit).
    pub shares: Vec<ShareHintDef>,
    /// Target clock period hint in nanoseconds.
    pub cycle_ns: Option<f64>,
}

/// One `share name: F.op, G.op;` hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareHintDef {
    /// Resource name.
    pub name: String,
    /// Operations sharing it.
    pub ops: Vec<OpRefDef>,
    /// Source position.
    pub pos: Pos,
}

// ----- RTL expressions and statements (shared with the model) -----

/// Binary RTL operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division.
    UDiv,
    /// Unsigned remainder.
    URem,
    /// Signed division.
    SDiv,
    /// Signed remainder.
    SRem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Lshr,
    /// Arithmetic shift right.
    Ashr,
    /// Equality (produces 1 bit).
    Eq,
    /// Inequality (produces 1 bit).
    Ne,
    /// Unsigned less-than (1 bit).
    Ult,
    /// Unsigned less-or-equal (1 bit).
    Ule,
    /// Signed less-than (1 bit).
    Slt,
    /// Signed less-or-equal (1 bit).
    Sle,
    /// Short-circuit logical AND (operands reduced to booleans, 1 bit).
    LAnd,
    /// Short-circuit logical OR (1 bit).
    LOr,
}

/// Unary RTL operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Two's-complement negation.
    Neg,
    /// Bitwise NOT.
    Not,
    /// Logical NOT (1 bit: 1 iff operand is zero).
    LNot,
}

/// Width-changing conversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtKind {
    /// Zero extension.
    Zext,
    /// Sign extension.
    Sext,
    /// Truncation.
    Trunc,
}

/// An RTL expression (unresolved: names are strings).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A sized literal.
    Lit(BitVector),
    /// An unsized integer literal; its width is inferred during
    /// semantic analysis.
    IntLit(u64),
    /// A name: storage, alias, or parameter (resolved later).
    Name(String, Pos),
    /// Indexing an addressed storage: `DM[addr]`.
    Index(Box<Expr>, Box<Expr>),
    /// Bit slice `e[h:l]`.
    Slice(Box<Expr>, u32, u32),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Ternary conditional `c ? t : f`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Width conversion: `zext(e, w)`, `sext(e, w)`, `trunc(e, w)`.
    Ext(ExtKind, Box<Expr>, u32),
    /// Concatenation `concat(a, b, ...)` — first argument is most
    /// significant.
    Concat(Vec<Expr>),
}

/// An RTL statement (unresolved).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Assignment `lvalue <- expr;`.
    Assign {
        /// Destination.
        lv: Expr,
        /// Source value.
        rhs: Expr,
        /// Source position.
        pos: Pos,
    },
    /// Conditional.
    If {
        /// Condition (true iff non-zero).
        cond: Expr,
        /// Statements when true.
        then_body: Vec<Stmt>,
        /// Statements when false.
        else_body: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
}
