//! Pretty-printing a resolved [`Machine`] back to ISDL source.
//!
//! The paper's architecture-synthesis flow passes *descriptions*
//! between tools ("the output of the architecture synthesis system is
//! an ISDL description"); the exploration loop in `archex` mutates
//! resolved machines, and this printer turns any of them back into
//! loadable ISDL text. The round trip is exact:
//! `load(print(m)) == m` for every valid machine (property-tested).
//!
//! Aliases are printed for documentation but RTL is emitted in its
//! resolved (alias-expanded) form, which is what the machine model
//! stores.

use crate::model::*;
use crate::rtl::{BinOp, ExtKind, RExpr, RExprKind, RLvalue, RStmt, UnOp};
use std::fmt::Write as _;

/// Renders `machine` as ISDL source that [`crate::load`] accepts and
/// resolves to an equal machine.
#[must_use]
pub fn print(machine: &Machine) -> String {
    let mut out = String::new();
    let p = Printer { m: machine };
    let _ = write!(
        out,
        "machine \"{}\" {{ format {{ word {}; }} }}\n\n",
        machine.name, machine.word_width
    );

    // storage
    out.push_str("storage {\n");
    for s in &machine.storages {
        match s.depth {
            Some(d) => {
                let _ = writeln!(out, "    {} {} {} x {};", kind_kw(s.kind), s.name, s.width, d);
            }
            None => {
                let _ = writeln!(out, "    {} {} {};", kind_kw(s.kind), s.name, s.width);
            }
        }
    }
    for a in &machine.aliases {
        let target = &machine.storage(a.target).name;
        let mut rhs = target.clone();
        if let Some(i) = a.index {
            let _ = write!(rhs, "[{i}]");
        }
        if let Some((hi, lo)) = a.range {
            let _ = write!(rhs, "[{hi}:{lo}]");
        }
        let _ = writeln!(out, "    alias {} = {rhs};", a.name);
    }
    out.push_str("}\n\n");

    // tokens
    if !machine.tokens.is_empty() {
        out.push_str("tokens {\n");
        for t in &machine.tokens {
            match &t.kind {
                TokenKind::Register { prefix, count } => {
                    let _ = writeln!(out, "    token {} reg(\"{prefix}\", {count});", t.name);
                }
                TokenKind::Immediate { signed } => {
                    let sgn = if *signed { "signed" } else { "unsigned" };
                    let _ = writeln!(out, "    token {} imm({}, {sgn});", t.name, t.width);
                }
                TokenKind::Enum { names } => {
                    let list =
                        names.iter().map(|n| format!("\"{n}\"")).collect::<Vec<_>>().join(", ");
                    let _ = writeln!(out, "    token {} enum({list});", t.name);
                }
            }
        }
        out.push_str("}\n\n");
    }

    // non-terminals
    if !machine.nonterminals.is_empty() {
        out.push_str("nonterminals {\n");
        for nt in &machine.nonterminals {
            let _ = writeln!(out, "    nonterminal {} width {} {{", nt.name, nt.width);
            for o in &nt.options {
                p.print_operation(&mut out, o, "option", "val", 2);
            }
            out.push_str("    }\n");
        }
        out.push_str("}\n\n");
    }

    // fields
    for f in &machine.fields {
        let _ = writeln!(out, "field {} {{", f.name);
        for o in &f.ops {
            p.print_operation(&mut out, o, "op", "word", 1);
        }
        out.push_str("}\n\n");
    }

    // constraints
    if !machine.constraints.is_empty() {
        out.push_str("constraints {\n");
        for c in &machine.constraints {
            match c {
                Constraint::Forbid(ops) => {
                    let list =
                        ops.iter().map(|r| machine.op_name(*r)).collect::<Vec<_>>().join(", ");
                    let _ = writeln!(out, "    forbid {list};");
                }
                Constraint::Assert(e) => {
                    let _ = writeln!(out, "    assert {};", p.cexpr(e));
                }
            }
        }
        out.push_str("}\n\n");
    }

    // archinfo
    if !machine.share_hints.is_empty() || machine.cycle_ns_hint.is_some() {
        out.push_str("archinfo {\n");
        for h in &machine.share_hints {
            let list = h.ops.iter().map(|r| machine.op_name(*r)).collect::<Vec<_>>().join(", ");
            let _ = writeln!(out, "    share {}: {list};", h.name);
        }
        if let Some(ns) = machine.cycle_ns_hint {
            // The grammar reads `INT ('.' INT)?`; print with enough
            // digits to round-trip typical hint values.
            if (ns.fract()).abs() < 1e-9 {
                let _ = writeln!(out, "    cycle_ns {};", ns as u64);
            } else {
                let _ = writeln!(out, "    cycle_ns {ns};");
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Renders one statement list in the same notation [`print()`] uses for
/// `action` blocks, one statement per line, unindented.
///
/// This is the canonical form behind `--dump-rtl`: optimizer-introduced
/// `let` temporaries render as `let tN <- ...;` (diagnostic notation —
/// the parseable grammar has no `let`), everything else exactly as the
/// round-tripping printer writes it.
#[must_use]
pub fn print_stmts(machine: &Machine, op: &Operation, stmts: &[RStmt]) -> String {
    let p = Printer { m: machine };
    let mut out = String::new();
    for s in stmts {
        p.stmt(&mut out, s, op, 0);
    }
    out
}

fn kind_kw(k: StorageKind) -> &'static str {
    match k {
        StorageKind::InstructionMemory => "imem",
        StorageKind::DataMemory => "dmem",
        StorageKind::RegisterFile => "regfile",
        StorageKind::Register => "register",
        StorageKind::ControlRegister => "creg",
        StorageKind::MemoryMappedIo => "mmio",
        StorageKind::ProgramCounter => "pc",
        StorageKind::Stack => "stack",
    }
}

struct Printer<'m> {
    m: &'m Machine,
}

impl Printer<'_> {
    fn print_operation(
        &self,
        out: &mut String,
        o: &Operation,
        intro: &str,
        word_kw: &str,
        depth: usize,
    ) {
        let pad = "    ".repeat(depth);
        let params = o
            .params
            .iter()
            .map(|p| {
                let ty = match p.ty {
                    ParamType::Token(t) => self.m.tokens[t.0].name.clone(),
                    ParamType::NonTerminal(n) => self.m.nonterminals[n.0].name.clone(),
                };
                format!("{}: {ty}", p.name)
            })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "{pad}{intro} {}({params}) {{", o.name);
        let inner = "    ".repeat(depth + 1);

        if !o.encode.is_empty() {
            let _ = write!(out, "{inner}encode {{ ");
            for a in &o.encode {
                let range = if a.hi == a.lo {
                    format!("[{}]", a.hi)
                } else {
                    format!("[{}:{}]", a.hi, a.lo)
                };
                let rhs = match &a.rhs {
                    BitRhs::Const(c) => format!("{}'h{c:x}", c.width()),
                    BitRhs::Param { index, hi, lo } => {
                        let name = &o.params[*index].name;
                        let full = self.m.param_encoding_width(o.params[*index].ty);
                        if *lo == 0 && *hi + 1 == full {
                            name.clone()
                        } else if hi == lo {
                            format!("{name}[{hi}]")
                        } else {
                            format!("{name}[{hi}:{lo}]")
                        }
                    }
                };
                let _ = write!(out, "{word_kw}{range} = {rhs}; ");
            }
            out.push_str("}\n");
        }
        if let Some(v) = &o.value {
            let _ = writeln!(out, "{inner}value {{ {} }}", self.expr(v, o));
        }
        if !o.action.is_empty() {
            let _ = writeln!(out, "{inner}action {{");
            for s in &o.action {
                self.stmt(out, s, o, depth + 2);
            }
            let _ = writeln!(out, "{inner}}}");
        }
        if !o.side_effects.is_empty() {
            let _ = writeln!(out, "{inner}sideeffect {{");
            for s in &o.side_effects {
                self.stmt(out, s, o, depth + 2);
            }
            let _ = writeln!(out, "{inner}}}");
        }
        let _ = writeln!(
            out,
            "{inner}cost {{ cycle {}; stall {}; size {}; }}",
            o.costs.cycle, o.costs.stall, o.costs.size
        );
        let _ = writeln!(
            out,
            "{inner}timing {{ latency {}; usage {}; }}",
            o.timing.latency, o.timing.usage
        );
        let _ = writeln!(out, "{pad}}}");
    }

    fn stmt(&self, out: &mut String, s: &RStmt, o: &Operation, depth: usize) {
        let pad = "    ".repeat(depth);
        match s {
            RStmt::Assign { lv, rhs } => {
                let _ = writeln!(out, "{pad}{} <- {};", self.lvalue(lv, o), self.expr(rhs, o));
            }
            RStmt::If { cond, then_body, else_body } => {
                let _ = writeln!(out, "{pad}if ({}) {{", self.expr(cond, o));
                for t in then_body {
                    self.stmt(out, t, o, depth + 1);
                }
                if else_body.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    for e in else_body {
                        self.stmt(out, e, o, depth + 1);
                    }
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            // Optimizer-introduced temporaries never appear in machine
            // descriptions (the optimizer runs consumer-side), so this
            // rendering is diagnostic only, not part of the canonical
            // parseable grammar.
            RStmt::Let { tmp, rhs } => {
                let _ = writeln!(out, "{pad}let t{tmp} <- {};", self.expr(rhs, o));
            }
        }
    }

    fn lvalue(&self, lv: &RLvalue, o: &Operation) -> String {
        match lv {
            RLvalue::Storage(id) => self.m.storage(*id).name.clone(),
            RLvalue::StorageIndexed(id, idx) => {
                format!("{}[{}]", self.m.storage(*id).name, self.expr(idx, o))
            }
            RLvalue::Slice { base, hi, lo } => {
                format!("{}[{hi}:{lo}]", self.lvalue(base, o))
            }
            RLvalue::Param(i) => o.params[*i].name.clone(),
        }
    }

    fn expr(&self, e: &RExpr, o: &Operation) -> String {
        match &e.kind {
            RExprKind::Lit(v) => format!("{}'h{v:x}", v.width()),
            RExprKind::Storage(id) => self.m.storage(*id).name.clone(),
            RExprKind::StorageIndexed(id, idx) => {
                format!("{}[{}]", self.m.storage(*id).name, self.expr(idx, o))
            }
            RExprKind::Param(i) => o.params[*i].name.clone(),
            RExprKind::Slice(inner, hi, lo) => {
                // Slices attach to postfix position; parenthesize the
                // operand to stay parseable for any shape.
                format!("({})[{hi}:{lo}]", self.expr(inner, o))
            }
            RExprKind::Unary(op, inner) => {
                let sym = match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "~",
                    UnOp::LNot => "!",
                };
                format!("{sym}({})", self.expr(inner, o))
            }
            RExprKind::Binary(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::UDiv => "/",
                    BinOp::URem => "%",
                    BinOp::SDiv => "/s",
                    BinOp::SRem => "%s",
                    BinOp::And => "&",
                    BinOp::Or => "|",
                    BinOp::Xor => "^",
                    BinOp::Shl => "<<",
                    BinOp::Lshr => ">>",
                    BinOp::Ashr => ">>>",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::Ult => "<",
                    BinOp::Ule => "<=",
                    BinOp::Slt => "<s",
                    BinOp::Sle => "<=s",
                    BinOp::LAnd => "&&",
                    BinOp::LOr => "||",
                };
                format!("({} {sym} {})", self.expr(a, o), self.expr(b, o))
            }
            RExprKind::Cond(c, t, f) => {
                format!("({} ? {} : {})", self.expr(c, o), self.expr(t, o), self.expr(f, o))
            }
            RExprKind::Ext(kind, inner) => {
                let f = match kind {
                    ExtKind::Zext => "zext",
                    ExtKind::Sext => "sext",
                    ExtKind::Trunc => "trunc",
                };
                format!("{f}({}, {})", self.expr(inner, o), e.width)
            }
            RExprKind::Concat(parts) => {
                let list = parts.iter().map(|p| self.expr(p, o)).collect::<Vec<_>>().join(", ");
                format!("concat({list})")
            }
            // Diagnostic rendering only; see the `RStmt::Let` arm.
            RExprKind::Tmp(i) => format!("t{i}"),
        }
    }

    fn cexpr(&self, e: &CExpr) -> String {
        match e {
            CExpr::Op(r) => self.m.op_name(*r),
            CExpr::Not(x) => format!("!({})", self.cexpr(x)),
            CExpr::And(a, b) => format!("({} & {})", self.cexpr(a), self.cexpr(b)),
            CExpr::Or(a, b) => format!("({} | {})", self.cexpr(a), self.cexpr(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::{ACC16, SPAM, SPAM2, TOY};

    fn roundtrip(src: &str) {
        let m1 = crate::load(src).expect("original loads");
        let text = print(&m1);
        let m2 = crate::load(&text).unwrap_or_else(|e| panic!("printed ISDL loads: {e}\n{text}"));
        assert_eq!(m1, m2, "round-trip must be exact");
    }

    #[test]
    fn toy_round_trips() {
        roundtrip(TOY);
    }

    #[test]
    fn acc16_round_trips() {
        roundtrip(ACC16);
    }

    #[test]
    fn spam_round_trips() {
        roundtrip(SPAM);
    }

    #[test]
    fn spam2_round_trips() {
        roundtrip(SPAM2);
    }

    #[test]
    fn aliases_and_multiword_round_trip() {
        roundtrip(
            r#"
            machine "rt" { format { word 16; } }
            storage {
                imem IM 16 x 64; pc PC 8; register A 16; regfile RF 16 x 4;
                alias LO = A[7:0];
                alias SP = RF[3];
            }
            tokens { token REG reg("R", 4); token IMM16 imm(16, signed); token CC enum("eq", "ne"); }
            field F {
                op limm(d: REG, v: IMM16) {
                    encode { word[15:12] = 0b0001; word[11:10] = d; word[31:16] = v; }
                    action { RF[d] <- v; }
                    cost { size 2; }
                }
                op swap() {
                    encode { word[15:12] = 0b0010; }
                    action { A <- concat(trunc(A, 8), (A)[15:8]); }
                }
                op csel(d: REG, c: CC) {
                    encode { word[15:12] = 0b0011; word[11:10] = d; word[0] = c; }
                    action { RF[d] <- (c == 1'h0 ? A : ~(A)); }
                }
                op nop() { encode { word[15:12] = 0b0000; } }
            }
            "#,
        );
    }
}
