//! Semantic analysis: resolves a parsed [`crate::ast::Description`]
//! into a validated [`Machine`].
//!
//! Responsibilities:
//!
//! * name resolution (storages, aliases, tokens, non-terminals,
//!   parameters, constraint operation references),
//! * width checking and unsized-literal inference for all RTL,
//! * encoding validation — range checks, the single-parameter axiom
//!   (enforced structurally), full coverage of every parameter's bits,
//!   and no double assignment,
//! * decodability — every pair of operations in one field (and every
//!   pair of options in one non-terminal) must be distinguishable by
//!   constant signature bits, and different fields must assign disjoint
//!   instruction-word bits,
//! * structural sanity — at most one program counter and one
//!   instruction memory, addressed storages have depths, etc.

use crate::ast::{self, BinOp, ExtKind, UnOp};
use crate::error::{ErrorKind, IsdlError, Pos};
use crate::model::*;
use crate::rtl::{RExpr, RExprKind, RLvalue, RStmt, StorageId};
use crate::signature::Signature;
use bitv::BitVector;
use std::collections::HashMap;

/// Number of bits needed to address `n` items (at least 1).
#[must_use]
pub fn ceil_log2(n: u64) -> u32 {
    if n <= 1 {
        1
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// Runs semantic analysis. See the module docs for what is checked.
///
/// # Errors
///
/// Returns the first rule violation found, with a position where
/// available.
pub fn analyze(desc: &ast::Description) -> Result<Machine, IsdlError> {
    Analyzer::new(desc)?.run()
}

struct Analyzer<'a> {
    desc: &'a ast::Description,
    word_width: u32,
    storages: Vec<Storage>,
    storage_ids: HashMap<String, StorageId>,
    aliases: Vec<Alias>,
    alias_ids: HashMap<String, usize>,
    tokens: Vec<Token>,
    token_ids: HashMap<String, TokenId>,
    nonterminals: Vec<NonTerminal>,
    nt_ids: HashMap<String, NtId>,
}

fn err(kind: ErrorKind, pos: Pos, msg: impl Into<String>) -> IsdlError {
    IsdlError::new(kind, pos, msg)
}

impl<'a> Analyzer<'a> {
    fn new(desc: &'a ast::Description) -> Result<Self, IsdlError> {
        let word_width = desc.word_width.ok_or_else(|| {
            err(
                ErrorKind::Semantic,
                Pos::unknown(),
                "missing format section: instruction word width not declared",
            )
        })?;
        if word_width == 0 {
            return Err(err(ErrorKind::Semantic, Pos::unknown(), "word width must be non-zero"));
        }
        Ok(Self {
            desc,
            word_width,
            storages: Vec::new(),
            storage_ids: HashMap::new(),
            aliases: Vec::new(),
            alias_ids: HashMap::new(),
            tokens: Vec::new(),
            token_ids: HashMap::new(),
            nonterminals: Vec::new(),
            nt_ids: HashMap::new(),
        })
    }

    fn run(mut self) -> Result<Machine, IsdlError> {
        self.resolve_storages()?;
        self.resolve_aliases()?;
        self.resolve_tokens()?;
        self.resolve_nonterminals()?;
        let fields = self.resolve_fields()?;
        self.check_cross_field_overlap(&fields)?;
        let constraints = self.resolve_constraints(&fields)?;
        let share_hints = self.resolve_share_hints(&fields)?;

        let pc = self.single_storage_of(StorageKind::ProgramCounter)?;
        let imem = self.single_storage_of(StorageKind::InstructionMemory)?;

        Ok(Machine {
            name: self.desc.name.clone(),
            word_width: self.word_width,
            storages: self.storages,
            aliases: self.aliases,
            tokens: self.tokens,
            nonterminals: self.nonterminals,
            fields,
            constraints,
            share_hints,
            cycle_ns_hint: self.desc.archinfo.cycle_ns,
            pc,
            imem,
        })
    }

    fn single_storage_of(&self, kind: StorageKind) -> Result<Option<StorageId>, IsdlError> {
        let mut found = None;
        for (i, s) in self.storages.iter().enumerate() {
            if s.kind == kind {
                if found.is_some() {
                    return Err(err(
                        ErrorKind::Semantic,
                        Pos::unknown(),
                        format!("more than one `{kind}` storage declared"),
                    ));
                }
                found = Some(StorageId(i));
            }
        }
        Ok(found)
    }

    fn resolve_storages(&mut self) -> Result<(), IsdlError> {
        for s in &self.desc.storages {
            if self.storage_ids.contains_key(&s.name) {
                return Err(err(
                    ErrorKind::Duplicate,
                    s.pos,
                    format!("storage `{}` defined twice", s.name),
                ));
            }
            if s.width == 0 {
                return Err(err(ErrorKind::Width, s.pos, "storage width must be non-zero"));
            }
            let kind = match s.kind {
                ast::StorageKindAst::InstructionMemory => StorageKind::InstructionMemory,
                ast::StorageKindAst::DataMemory => StorageKind::DataMemory,
                ast::StorageKindAst::RegisterFile => StorageKind::RegisterFile,
                ast::StorageKindAst::Register => StorageKind::Register,
                ast::StorageKindAst::ControlRegister => StorageKind::ControlRegister,
                ast::StorageKindAst::MemoryMappedIo => StorageKind::MemoryMappedIo,
                ast::StorageKindAst::ProgramCounter => StorageKind::ProgramCounter,
                ast::StorageKindAst::Stack => StorageKind::Stack,
            };
            if kind.is_addressed() {
                match s.depth {
                    Some(0) | None => {
                        return Err(err(
                            ErrorKind::Semantic,
                            s.pos,
                            format!("storage `{}` of kind `{kind}` needs a non-zero depth", s.name),
                        ))
                    }
                    Some(_) => {}
                }
            } else if s.depth.is_some() {
                return Err(err(
                    ErrorKind::Semantic,
                    s.pos,
                    format!("storage `{}` of kind `{kind}` cannot have a depth", s.name),
                ));
            }
            self.storage_ids.insert(s.name.clone(), StorageId(self.storages.len()));
            self.storages.push(Storage {
                name: s.name.clone(),
                kind,
                width: s.width,
                depth: s.depth,
            });
        }
        Ok(())
    }

    fn resolve_aliases(&mut self) -> Result<(), IsdlError> {
        for a in &self.desc.aliases {
            if self.alias_ids.contains_key(&a.name) || self.storage_ids.contains_key(&a.name) {
                return Err(err(
                    ErrorKind::Duplicate,
                    a.pos,
                    format!("alias `{}` collides with an existing name", a.name),
                ));
            }
            let target = *self.storage_ids.get(&a.target).ok_or_else(|| {
                err(ErrorKind::Undefined, a.pos, format!("alias target `{}` not found", a.target))
            })?;
            let st = &self.storages[target.0];
            if st.kind.is_addressed() {
                let Some(index) = a.index else {
                    return Err(err(
                        ErrorKind::Semantic,
                        a.pos,
                        format!("alias of addressed storage `{}` needs a cell index", a.target),
                    ));
                };
                if index >= st.cells() {
                    return Err(err(
                        ErrorKind::Semantic,
                        a.pos,
                        format!("alias index {index} out of range for `{}`", a.target),
                    ));
                }
            } else if a.index.is_some() {
                return Err(err(
                    ErrorKind::Semantic,
                    a.pos,
                    format!("alias of register `{}` cannot have a cell index", a.target),
                ));
            }
            if let Some((hi, lo)) = a.range {
                if hi < lo || hi >= st.width {
                    return Err(err(
                        ErrorKind::Width,
                        a.pos,
                        format!("alias bit range {hi}:{lo} out of range for `{}`", a.target),
                    ));
                }
            }
            self.alias_ids.insert(a.name.clone(), self.aliases.len());
            self.aliases.push(Alias {
                name: a.name.clone(),
                target,
                index: a.index,
                range: a.range,
            });
        }
        Ok(())
    }

    fn resolve_tokens(&mut self) -> Result<(), IsdlError> {
        for t in &self.desc.tokens {
            if self.token_ids.contains_key(&t.name) {
                return Err(err(
                    ErrorKind::Duplicate,
                    t.pos,
                    format!("token `{}` defined twice", t.name),
                ));
            }
            let (kind, width) = match &t.kind {
                ast::TokenKindAst::Register { prefix, count } => {
                    if *count == 0 {
                        return Err(err(
                            ErrorKind::Semantic,
                            t.pos,
                            "register token count is zero",
                        ));
                    }
                    (
                        TokenKind::Register { prefix: prefix.clone(), count: *count },
                        ceil_log2(*count),
                    )
                }
                ast::TokenKindAst::Immediate { width, signed } => {
                    if *width == 0 {
                        return Err(err(ErrorKind::Width, t.pos, "immediate token width is zero"));
                    }
                    (TokenKind::Immediate { signed: *signed }, *width)
                }
                ast::TokenKindAst::Enum { names } => {
                    if names.is_empty() {
                        return Err(err(ErrorKind::Semantic, t.pos, "enum token has no names"));
                    }
                    (TokenKind::Enum { names: names.clone() }, ceil_log2(names.len() as u64))
                }
            };
            self.token_ids.insert(t.name.clone(), TokenId(self.tokens.len()));
            self.tokens.push(Token { name: t.name.clone(), kind, width });
        }
        Ok(())
    }

    fn resolve_nonterminals(&mut self) -> Result<(), IsdlError> {
        for nt in &self.desc.nonterminals {
            if self.nt_ids.contains_key(&nt.name) || self.token_ids.contains_key(&nt.name) {
                return Err(err(
                    ErrorKind::Duplicate,
                    nt.pos,
                    format!("non-terminal `{}` collides with an existing name", nt.name),
                ));
            }
            if nt.width == 0 {
                return Err(err(ErrorKind::Width, nt.pos, "non-terminal width must be non-zero"));
            }
            if nt.options.is_empty() {
                return Err(err(
                    ErrorKind::Semantic,
                    nt.pos,
                    format!("non-terminal `{}` has no options", nt.name),
                ));
            }
            let mut options = Vec::new();
            let mut value_width: Option<u32> = None;
            for o in &nt.options {
                let op = self.resolve_operation(o, nt.width, true)?;
                if let Some(v) = &op.value {
                    match value_width {
                        None => value_width = Some(v.width),
                        Some(w) if w == v.width => {}
                        Some(w) => {
                            return Err(err(
                                ErrorKind::Width,
                                o.pos,
                                format!(
                                    "option `{}` value width {} disagrees with earlier options ({w}) of `{}`",
                                    o.name, v.width, nt.name
                                ),
                            ))
                        }
                    }
                }
                options.push(op);
            }
            self.check_pairwise_decodable(
                &options,
                nt.width,
                &format!("non-terminal `{}`", nt.name),
            )?;
            self.nt_ids.insert(nt.name.clone(), NtId(self.nonterminals.len()));
            self.nonterminals.push(NonTerminal {
                name: nt.name.clone(),
                width: nt.width,
                value_width,
                options,
            });
        }
        Ok(())
    }

    fn resolve_fields(&mut self) -> Result<Vec<Field>, IsdlError> {
        let mut fields = Vec::new();
        let mut seen = HashMap::new();
        for f in &self.desc.fields {
            if seen.insert(f.name.clone(), ()).is_some() {
                return Err(err(
                    ErrorKind::Duplicate,
                    f.pos,
                    format!("field `{}` defined twice", f.name),
                ));
            }
            if f.ops.is_empty() {
                return Err(err(
                    ErrorKind::Semantic,
                    f.pos,
                    format!("field `{}` has no operations", f.name),
                ));
            }
            let mut ops = Vec::new();
            let mut op_names = HashMap::new();
            for o in &f.ops {
                if op_names.insert(o.name.clone(), ()).is_some() {
                    return Err(err(
                        ErrorKind::Duplicate,
                        o.pos,
                        format!("operation `{}` defined twice in field `{}`", o.name, f.name),
                    ));
                }
                let enc_width = o.costs.size * self.word_width;
                let op = self.resolve_operation(o, enc_width, false)?;
                ops.push(op);
            }
            // Decodability uses each op's own encoding width; compare on
            // the overlap (min width), which Signature handles.
            self.check_pairwise_decodable_ops(&ops, &format!("field `{}`", f.name))?;
            let nop = ops.iter().position(|o| o.name == "nop");
            fields.push(Field { name: f.name.clone(), ops, nop });
        }
        if fields.is_empty() {
            return Err(err(
                ErrorKind::Semantic,
                Pos::unknown(),
                "no instruction-set fields defined",
            ));
        }
        Ok(fields)
    }

    fn op_signature(&self, op: &Operation, enc_width: u32) -> Result<Signature, IsdlError> {
        Signature::from_encoding(&op.encode, enc_width)
    }

    fn check_pairwise_decodable(
        &self,
        ops: &[Operation],
        enc_width: u32,
        what: &str,
    ) -> Result<(), IsdlError> {
        let sigs: Vec<Signature> =
            ops.iter().map(|o| self.op_signature(o, enc_width)).collect::<Result<_, _>>()?;
        for i in 0..sigs.len() {
            for j in (i + 1)..sigs.len() {
                if !sigs[i].distinguishable_from(&sigs[j]) {
                    return Err(err(
                        ErrorKind::Decode,
                        Pos::unknown(),
                        format!(
                            "{what}: `{}` and `{}` cannot be distinguished by constant bits",
                            ops[i].name, ops[j].name
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_pairwise_decodable_ops(&self, ops: &[Operation], what: &str) -> Result<(), IsdlError> {
        let sigs: Vec<Signature> = ops
            .iter()
            .map(|o| self.op_signature(o, o.costs.size * self.word_width))
            .collect::<Result<_, _>>()?;
        for i in 0..sigs.len() {
            for j in (i + 1)..sigs.len() {
                if !sigs[i].distinguishable_from(&sigs[j]) {
                    return Err(err(
                        ErrorKind::Decode,
                        Pos::unknown(),
                        format!(
                            "{what}: `{}` and `{}` cannot be distinguished by constant bits",
                            ops[i].name, ops[j].name
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_cross_field_overlap(&self, fields: &[Field]) -> Result<(), IsdlError> {
        let max_w = fields
            .iter()
            .flat_map(|f| f.ops.iter())
            .map(|o| o.costs.size * self.word_width)
            .max()
            .unwrap_or(self.word_width);
        let mut masks: Vec<BitVector> = Vec::new();
        for f in fields {
            let mut m = BitVector::zero(max_w);
            for o in &f.ops {
                let w = o.costs.size * self.word_width;
                let sig = self.op_signature(o, w)?;
                m = m.or(&sig.assigned_mask().zext(max_w));
            }
            masks.push(m);
        }
        for i in 0..fields.len() {
            for j in (i + 1)..fields.len() {
                let both = masks[i].and(&masks[j]);
                if !both.is_zero() {
                    return Err(err(
                        ErrorKind::Decode,
                        Pos::unknown(),
                        format!(
                            "fields `{}` and `{}` assign overlapping instruction bits",
                            fields[i].name, fields[j].name
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    fn resolve_constraints(&self, fields: &[Field]) -> Result<Vec<Constraint>, IsdlError> {
        let mut out = Vec::new();
        for c in &self.desc.constraints {
            match c {
                ast::ConstraintDef::Forbid { ops, pos } => {
                    if ops.len() < 2 {
                        return Err(err(
                            ErrorKind::Semantic,
                            *pos,
                            "`forbid` needs at least two operations",
                        ));
                    }
                    let ops = ops
                        .iter()
                        .map(|r| self.resolve_op_ref(r, fields, *pos))
                        .collect::<Result<Vec<_>, _>>()?;
                    out.push(Constraint::Forbid(ops));
                }
                ast::ConstraintDef::Assert { expr, pos } => {
                    out.push(Constraint::Assert(self.resolve_cexpr(expr, fields, *pos)?));
                }
            }
        }
        Ok(out)
    }

    fn resolve_cexpr(
        &self,
        e: &ast::ConstraintExpr,
        fields: &[Field],
        pos: Pos,
    ) -> Result<CExpr, IsdlError> {
        Ok(match e {
            ast::ConstraintExpr::Op(r) => CExpr::Op(self.resolve_op_ref(r, fields, pos)?),
            ast::ConstraintExpr::Not(x) => {
                CExpr::Not(Box::new(self.resolve_cexpr(x, fields, pos)?))
            }
            ast::ConstraintExpr::And(a, b) => CExpr::And(
                Box::new(self.resolve_cexpr(a, fields, pos)?),
                Box::new(self.resolve_cexpr(b, fields, pos)?),
            ),
            ast::ConstraintExpr::Or(a, b) => CExpr::Or(
                Box::new(self.resolve_cexpr(a, fields, pos)?),
                Box::new(self.resolve_cexpr(b, fields, pos)?),
            ),
        })
    }

    fn resolve_op_ref(
        &self,
        r: &ast::OpRefDef,
        fields: &[Field],
        pos: Pos,
    ) -> Result<OpRef, IsdlError> {
        let (fi, f) =
            fields.iter().enumerate().find(|(_, f)| f.name == r.field).ok_or_else(|| {
                err(ErrorKind::Undefined, pos, format!("field `{}` not found", r.field))
            })?;
        let oi = f.ops.iter().position(|o| o.name == r.op).ok_or_else(|| {
            err(
                ErrorKind::Undefined,
                pos,
                format!("operation `{}` not found in field `{}`", r.op, r.field),
            )
        })?;
        Ok(OpRef { field: FieldId(fi), op: oi })
    }

    fn resolve_share_hints(&self, fields: &[Field]) -> Result<Vec<ShareHint>, IsdlError> {
        self.desc
            .archinfo
            .shares
            .iter()
            .map(|h| {
                let ops = h
                    .ops
                    .iter()
                    .map(|r| self.resolve_op_ref(r, fields, h.pos))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ShareHint { name: h.name.clone(), ops })
            })
            .collect()
    }

    // ----- operations -----

    fn resolve_operation(
        &self,
        o: &ast::OperationDef,
        enc_width: u32,
        is_nt_option: bool,
    ) -> Result<Operation, IsdlError> {
        if o.costs.cycle == 0 || o.costs.size == 0 {
            return Err(err(
                ErrorKind::Semantic,
                o.pos,
                format!("operation `{}`: cycle and size costs must be non-zero", o.name),
            ));
        }
        if o.timing.latency == 0 || o.timing.usage == 0 {
            return Err(err(
                ErrorKind::Semantic,
                o.pos,
                format!("operation `{}`: latency and usage must be non-zero", o.name),
            ));
        }

        // Parameters.
        let mut params = Vec::new();
        let mut scope = HashMap::new();
        for p in &o.params {
            let ty = if let Some(&t) = self.token_ids.get(&p.ty) {
                ParamType::Token(t)
            } else if let Some(&n) = self.nt_ids.get(&p.ty) {
                ParamType::NonTerminal(n)
            } else {
                return Err(err(
                    ErrorKind::Undefined,
                    p.pos,
                    format!("parameter type `{}` is not a token or non-terminal", p.ty),
                ));
            };
            if scope.insert(p.name.clone(), params.len()).is_some() {
                return Err(err(
                    ErrorKind::Duplicate,
                    p.pos,
                    format!("parameter `{}` defined twice", p.name),
                ));
            }
            params.push(Param { name: p.name.clone(), ty });
        }

        // Encoding.
        let mut encode = Vec::new();
        let mut param_cover: Vec<Vec<bool>> =
            params.iter().map(|p| vec![false; self.param_enc_width(p.ty) as usize]).collect();
        for a in &o.encode {
            let span =
                a.hi.checked_sub(a.lo)
                    .map(|d| d + 1)
                    .ok_or_else(|| err(ErrorKind::Encoding, a.pos, "bit range high below low"))?;
            if a.hi >= enc_width {
                return Err(err(
                    ErrorKind::Encoding,
                    a.pos,
                    format!(
                        "bit {} out of range: operation `{}` encodes into {enc_width} bits",
                        a.hi, o.name
                    ),
                ));
            }
            let rhs = match &a.rhs {
                ast::BitRhsDef::Const(c) => {
                    if c.width() != span {
                        return Err(err(
                            ErrorKind::Width,
                            a.pos,
                            format!(
                                "constant width {} does not match range width {span}",
                                c.width()
                            ),
                        ));
                    }
                    BitRhs::Const(c.clone())
                }
                ast::BitRhsDef::Param(name) => {
                    let &index = scope.get(name).ok_or_else(|| {
                        err(ErrorKind::Undefined, a.pos, format!("parameter `{name}` not found"))
                    })?;
                    let pw = self.param_enc_width(params[index].ty);
                    if pw != span {
                        return Err(err(
                            ErrorKind::Width,
                            a.pos,
                            format!(
                                "parameter `{name}` is {pw} bits but the bit range is {span} bits; \
                                 use an explicit slice"
                            ),
                        ));
                    }
                    mark_cover(&mut param_cover[index], pw - 1, 0, a.pos)?;
                    BitRhs::Param { index, hi: pw - 1, lo: 0 }
                }
                ast::BitRhsDef::ParamSlice { name, hi, lo } => {
                    let &index = scope.get(name).ok_or_else(|| {
                        err(ErrorKind::Undefined, a.pos, format!("parameter `{name}` not found"))
                    })?;
                    let pw = self.param_enc_width(params[index].ty);
                    if *hi < *lo || *hi >= pw {
                        return Err(err(
                            ErrorKind::Encoding,
                            a.pos,
                            format!("slice {hi}:{lo} out of range for {pw}-bit parameter `{name}`"),
                        ));
                    }
                    if hi - lo + 1 != span {
                        return Err(err(
                            ErrorKind::Width,
                            a.pos,
                            format!("parameter slice {hi}:{lo} does not match range width {span}"),
                        ));
                    }
                    mark_cover(&mut param_cover[index], *hi, *lo, a.pos)?;
                    BitRhs::Param { index, hi: *hi, lo: *lo }
                }
            };
            encode.push(BitAssign { hi: a.hi, lo: a.lo, rhs });
        }
        // Every bit of every parameter must be encoded somewhere, or the
        // disassembler could not reverse the assembly function.
        for (pi, cover) in param_cover.iter().enumerate() {
            if let Some(bit) = cover.iter().position(|&c| !c) {
                return Err(err(
                    ErrorKind::Encoding,
                    o.pos,
                    format!(
                        "operation `{}`: bit {bit} of parameter `{}` is never encoded, so the \
                         encoding is not reversible",
                        o.name, params[pi].name
                    ),
                ));
            }
        }
        // Validate overall signature construction (overlaps, etc).
        Signature::from_encoding(&encode, enc_width).map_err(|e| {
            err(e.kind(), o.pos, format!("operation `{}`: {}", o.name, e.message()))
        })?;

        // Value clause.
        let mut value = None;
        let mut value_lvalue = None;
        if let Some(v) = &o.value {
            if !is_nt_option {
                return Err(err(
                    ErrorKind::Semantic,
                    o.pos,
                    format!(
                        "operation `{}`: only non-terminal options may have a value clause",
                        o.name
                    ),
                ));
            }
            let rexpr = self.resolve_expr(v, None, &params, &scope)?;
            // Try to derive an l-value form for destination use.
            value_lvalue = self.try_resolve_lvalue(v, &params, &scope).ok();
            value = Some(rexpr);
        }

        // RTL bodies.
        let action = o
            .action
            .iter()
            .map(|s| self.resolve_stmt(s, &params, &scope))
            .collect::<Result<Vec<_>, _>>()?;
        let side_effects = o
            .side_effects
            .iter()
            .map(|s| self.resolve_stmt(s, &params, &scope))
            .collect::<Result<Vec<_>, _>>()?;

        Ok(Operation {
            name: o.name.clone(),
            params,
            encode,
            value,
            value_lvalue,
            action,
            side_effects,
            costs: o.costs,
            timing: o.timing,
        })
    }

    fn param_enc_width(&self, ty: ParamType) -> u32 {
        match ty {
            ParamType::Token(t) => self.tokens[t.0].width,
            ParamType::NonTerminal(n) => self.nonterminals[n.0].width,
        }
    }

    fn param_value_width(&self, ty: ParamType) -> Option<u32> {
        match ty {
            ParamType::Token(t) => Some(self.tokens[t.0].width),
            ParamType::NonTerminal(n) => self.nonterminals[n.0].value_width,
        }
    }

    // ----- RTL resolution -----

    fn resolve_stmt(
        &self,
        s: &ast::Stmt,
        params: &[Param],
        scope: &HashMap<String, usize>,
    ) -> Result<RStmt, IsdlError> {
        match s {
            ast::Stmt::Assign { lv, rhs, pos } => {
                let lv = self.resolve_lvalue(lv, params, scope, *pos)?;
                let lw = lv.width_with(&|id| self.storages[id.0].width, &|i| {
                    self.param_value_width(params[i].ty).unwrap_or(0)
                });
                let rhs = self.resolve_expr(rhs, Some(lw), params, scope)?;
                if rhs.width != lw {
                    return Err(err(
                        ErrorKind::Width,
                        *pos,
                        format!(
                            "assignment width mismatch: destination is {lw} bits, value is {} bits",
                            rhs.width
                        ),
                    ));
                }
                Ok(RStmt::Assign { lv, rhs })
            }
            ast::Stmt::If { cond, then_body, else_body, pos } => {
                let cond = self.resolve_expr(cond, Some(1), params, scope).map_err(|e| {
                    err(e.kind(), *pos, format!("in if condition: {}", e.message()))
                })?;
                let then_body = then_body
                    .iter()
                    .map(|s| self.resolve_stmt(s, params, scope))
                    .collect::<Result<Vec<_>, _>>()?;
                let else_body = else_body
                    .iter()
                    .map(|s| self.resolve_stmt(s, params, scope))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(RStmt::If { cond, then_body, else_body })
            }
        }
    }

    fn resolve_lvalue(
        &self,
        e: &ast::Expr,
        params: &[Param],
        scope: &HashMap<String, usize>,
        pos: Pos,
    ) -> Result<RLvalue, IsdlError> {
        self.try_resolve_lvalue(e, params, scope).map_err(|m| err(ErrorKind::Semantic, pos, m))
    }

    fn try_resolve_lvalue(
        &self,
        e: &ast::Expr,
        params: &[Param],
        scope: &HashMap<String, usize>,
    ) -> Result<RLvalue, String> {
        match e {
            ast::Expr::Name(name, _) => {
                if let Some(&pi) = scope.get(name) {
                    return match params[pi].ty {
                        ParamType::NonTerminal(n) => {
                            let nt = &self.nonterminals[n.0];
                            if nt
                                .options
                                .iter()
                                .any(|o| o.value.is_some() && o.value_lvalue.is_none())
                            {
                                Err(format!(
                                    "non-terminal `{}` has options whose value is not assignable",
                                    nt.name
                                ))
                            } else if nt.value_width.is_none() {
                                Err(format!("non-terminal `{}` has no value clauses", nt.name))
                            } else {
                                Ok(RLvalue::Param(pi))
                            }
                        }
                        ParamType::Token(_) => {
                            Err(format!("cannot assign to token parameter `{name}`"))
                        }
                    };
                }
                if let Some(&sid) = self.storage_ids.get(name) {
                    let st = &self.storages[sid.0];
                    if st.kind.is_addressed() {
                        return Err(format!(
                            "addressed storage `{name}` needs an index to be written"
                        ));
                    }
                    return Ok(RLvalue::Storage(sid));
                }
                if let Some(&ai) = self.alias_ids.get(name) {
                    return Ok(self.alias_lvalue(&self.aliases[ai]));
                }
                Err(format!("`{name}` is not assignable"))
            }
            ast::Expr::Index(base, idx) => {
                let ast::Expr::Name(name, pos) = base.as_ref() else {
                    return Err("only storages can be indexed in a destination".to_owned());
                };
                let Some(&sid) = self.storage_ids.get(name) else {
                    return Err(format!("`{name}` is not an addressed storage"));
                };
                let st = &self.storages[sid.0];
                let Some(depth) = st.depth else {
                    return Err(format!("storage `{name}` is not addressed"));
                };
                let idx = self
                    .resolve_expr(idx, Some(ceil_log2(depth)), params, scope)
                    .map_err(|e| format!("bad index at {pos}: {e}"))?;
                Ok(RLvalue::StorageIndexed(sid, idx))
            }
            ast::Expr::Slice(inner, hi, lo) => {
                let base = self.try_resolve_lvalue(inner, params, scope)?;
                let bw = base.width_with(&|id| self.storages[id.0].width, &|i| {
                    self.param_value_width(params[i].ty).unwrap_or(0)
                });
                if hi < lo || *hi >= bw {
                    return Err(format!("slice {hi}:{lo} out of range for {bw}-bit destination"));
                }
                Ok(RLvalue::Slice { base: Box::new(base), hi: *hi, lo: *lo })
            }
            _ => Err("expression is not assignable".to_owned()),
        }
    }

    fn alias_lvalue(&self, a: &Alias) -> RLvalue {
        let base = match a.index {
            Some(i) => {
                let st = &self.storages[a.target.0];
                let iw = ceil_log2(st.cells());
                RLvalue::StorageIndexed(a.target, RExpr::lit(BitVector::from_u64(i, iw)))
            }
            None => RLvalue::Storage(a.target),
        };
        match a.range {
            Some((hi, lo)) => RLvalue::Slice { base: Box::new(base), hi, lo },
            None => base,
        }
    }

    fn alias_expr(&self, a: &Alias) -> RExpr {
        let st = &self.storages[a.target.0];
        let base = match a.index {
            Some(i) => {
                let iw = ceil_log2(st.cells());
                RExpr {
                    kind: RExprKind::StorageIndexed(
                        a.target,
                        Box::new(RExpr::lit(BitVector::from_u64(i, iw))),
                    ),
                    width: st.width,
                }
            }
            None => RExpr { kind: RExprKind::Storage(a.target), width: st.width },
        };
        match a.range {
            Some((hi, lo)) => {
                RExpr { width: hi - lo + 1, kind: RExprKind::Slice(Box::new(base), hi, lo) }
            }
            None => base,
        }
    }

    /// Resolves an expression. `expected` supplies the width for
    /// unsized integer literals.
    fn resolve_expr(
        &self,
        e: &ast::Expr,
        expected: Option<u32>,
        params: &[Param],
        scope: &HashMap<String, usize>,
    ) -> Result<RExpr, IsdlError> {
        match e {
            ast::Expr::Lit(bv) => Ok(RExpr::lit(bv.clone())),
            ast::Expr::IntLit(v) => {
                let w = expected.ok_or_else(|| {
                    err(
                        ErrorKind::Width,
                        Pos::unknown(),
                        format!(
                            "cannot infer width of literal {v}; use a sized literal like 8'd{v}"
                        ),
                    )
                })?;
                Ok(RExpr::lit(BitVector::from_u64(*v, w)))
            }
            ast::Expr::Name(name, pos) => {
                if let Some(&pi) = scope.get(name) {
                    let w = self.param_value_width(params[pi].ty).ok_or_else(|| {
                        err(
                            ErrorKind::Semantic,
                            *pos,
                            format!("parameter `{name}`'s non-terminal has no value clause"),
                        )
                    })?;
                    return Ok(RExpr { kind: RExprKind::Param(pi), width: w });
                }
                if let Some(&sid) = self.storage_ids.get(name) {
                    let st = &self.storages[sid.0];
                    if st.kind.is_addressed() {
                        return Err(err(
                            ErrorKind::Semantic,
                            *pos,
                            format!("addressed storage `{name}` needs an index"),
                        ));
                    }
                    return Ok(RExpr { kind: RExprKind::Storage(sid), width: st.width });
                }
                if let Some(&ai) = self.alias_ids.get(name) {
                    return Ok(self.alias_expr(&self.aliases[ai]));
                }
                Err(err(ErrorKind::Undefined, *pos, format!("`{name}` is not defined")))
            }
            ast::Expr::Index(base, idx) => {
                let ast::Expr::Name(name, pos) = base.as_ref() else {
                    return Err(err(
                        ErrorKind::Semantic,
                        Pos::unknown(),
                        "only storages can be indexed",
                    ));
                };
                let Some(&sid) = self.storage_ids.get(name) else {
                    return Err(err(
                        ErrorKind::Undefined,
                        *pos,
                        format!("`{name}` is not an addressed storage"),
                    ));
                };
                let st = &self.storages[sid.0];
                let Some(depth) = st.depth else {
                    return Err(err(
                        ErrorKind::Semantic,
                        *pos,
                        format!("storage `{name}` is not addressed"),
                    ));
                };
                let idx = self.resolve_expr(idx, Some(ceil_log2(depth)), params, scope)?;
                Ok(RExpr { width: st.width, kind: RExprKind::StorageIndexed(sid, Box::new(idx)) })
            }
            ast::Expr::Slice(inner, hi, lo) => {
                let inner = self.resolve_expr(inner, None, params, scope)?;
                if hi < lo || *hi >= inner.width {
                    return Err(err(
                        ErrorKind::Width,
                        Pos::unknown(),
                        format!("slice {hi}:{lo} out of range for {}-bit value", inner.width),
                    ));
                }
                Ok(RExpr { width: hi - lo + 1, kind: RExprKind::Slice(Box::new(inner), *hi, *lo) })
            }
            ast::Expr::Unary(op, inner) => {
                let (exp, rw) = match op {
                    UnOp::Neg | UnOp::Not => (expected, None),
                    UnOp::LNot => (None, Some(1)),
                };
                let inner = self.resolve_expr(inner, exp, params, scope)?;
                let width = rw.unwrap_or(inner.width);
                Ok(RExpr { width, kind: RExprKind::Unary(*op, Box::new(inner)) })
            }
            ast::Expr::Binary(op, a, b) => self.resolve_binary(*op, a, b, expected, params, scope),
            ast::Expr::Cond(c, t, f) => {
                let c = self.resolve_expr(c, Some(1), params, scope)?;
                let (t, f) = self.resolve_same_width(t, f, expected, params, scope)?;
                let width = t.width;
                Ok(RExpr { width, kind: RExprKind::Cond(Box::new(c), Box::new(t), Box::new(f)) })
            }
            ast::Expr::Ext(kind, inner, w) => {
                let inner = self.resolve_expr(inner, None, params, scope)?;
                if *w == 0 {
                    return Err(err(ErrorKind::Width, Pos::unknown(), "extension width is zero"));
                }
                match kind {
                    ExtKind::Trunc if *w > inner.width => {
                        return Err(err(
                            ErrorKind::Width,
                            Pos::unknown(),
                            format!("cannot truncate {}-bit value to {w} bits", inner.width),
                        ))
                    }
                    ExtKind::Zext | ExtKind::Sext if *w < inner.width => {
                        return Err(err(
                            ErrorKind::Width,
                            Pos::unknown(),
                            format!("cannot extend {}-bit value down to {w} bits", inner.width),
                        ))
                    }
                    _ => {}
                }
                Ok(RExpr { width: *w, kind: RExprKind::Ext(*kind, Box::new(inner)) })
            }
            ast::Expr::Concat(parts) => {
                let parts = parts
                    .iter()
                    .map(|p| self.resolve_expr(p, None, params, scope))
                    .collect::<Result<Vec<_>, _>>()?;
                let width = parts.iter().map(|p| p.width).sum();
                Ok(RExpr { width, kind: RExprKind::Concat(parts) })
            }
        }
    }

    fn resolve_same_width(
        &self,
        a: &ast::Expr,
        b: &ast::Expr,
        expected: Option<u32>,
        params: &[Param],
        scope: &HashMap<String, usize>,
    ) -> Result<(RExpr, RExpr), IsdlError> {
        let a_unsized = matches!(a, ast::Expr::IntLit(_));
        let b_unsized = matches!(b, ast::Expr::IntLit(_));
        let (ra, rb) = if a_unsized && !b_unsized {
            let rb = self.resolve_expr(b, expected, params, scope)?;
            let ra = self.resolve_expr(a, Some(rb.width), params, scope)?;
            (ra, rb)
        } else {
            let ra = self.resolve_expr(a, expected, params, scope)?;
            let rb = self.resolve_expr(b, Some(ra.width), params, scope)?;
            (ra, rb)
        };
        if ra.width != rb.width {
            return Err(err(
                ErrorKind::Width,
                Pos::unknown(),
                format!("operand widths differ: {} vs {} bits", ra.width, rb.width),
            ));
        }
        Ok((ra, rb))
    }

    fn resolve_binary(
        &self,
        op: BinOp,
        a: &ast::Expr,
        b: &ast::Expr,
        expected: Option<u32>,
        params: &[Param],
        scope: &HashMap<String, usize>,
    ) -> Result<RExpr, IsdlError> {
        use BinOp::*;
        match op {
            Add | Sub | Mul | UDiv | URem | SDiv | SRem | And | Or | Xor => {
                let (ra, rb) = self.resolve_same_width(a, b, expected, params, scope)?;
                let width = ra.width;
                Ok(RExpr { width, kind: RExprKind::Binary(op, Box::new(ra), Box::new(rb)) })
            }
            Eq | Ne | Ult | Ule | Slt | Sle => {
                let (ra, rb) = self.resolve_same_width(a, b, None, params, scope)?;
                Ok(RExpr { width: 1, kind: RExprKind::Binary(op, Box::new(ra), Box::new(rb)) })
            }
            LAnd | LOr => {
                let ra = self.resolve_expr(a, Some(1), params, scope)?;
                let rb = self.resolve_expr(b, Some(1), params, scope)?;
                Ok(RExpr { width: 1, kind: RExprKind::Binary(op, Box::new(ra), Box::new(rb)) })
            }
            Shl | Lshr | Ashr => {
                let ra = self.resolve_expr(a, expected, params, scope)?;
                let rb = self.resolve_expr(b, Some(32), params, scope)?;
                let width = ra.width;
                Ok(RExpr { width, kind: RExprKind::Binary(op, Box::new(ra), Box::new(rb)) })
            }
        }
    }
}

fn mark_cover(cover: &mut [bool], hi: u32, lo: u32, pos: Pos) -> Result<(), IsdlError> {
    for b in lo..=hi {
        let slot = &mut cover[b as usize];
        if *slot {
            return Err(err(ErrorKind::Encoding, pos, format!("parameter bit {b} encoded twice")));
        }
        *slot = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn machine(src: &str) -> Machine {
        analyze(&parse(src).expect("parses")).expect("analyzes")
    }

    fn analyze_err(src: &str) -> IsdlError {
        analyze(&parse(src).expect("parses")).expect_err("should fail analysis")
    }

    const TINY: &str = r#"
        machine "tiny" { format { word 16; } }
        storage {
            regfile RF 8 x 4;
            register ACC 8;
            pc PC 8;
            imem IM 16 x 256;
            dmem DM 8 x 256;
        }
        tokens {
            token REG reg("R", 4);
            token IMM8 imm(8, unsigned);
        }
        field ALU {
            op add(d: REG, a: REG, b: REG) {
                encode { word[15:13] = 0b001; word[12:11] = d; word[10:9] = a; word[8:7] = b; }
                action { RF[d] <- RF[a] + RF[b]; }
            }
            op li(d: REG, v: IMM8) {
                encode { word[15:13] = 0b010; word[12:11] = d; word[7:0] = v; }
                action { RF[d] <- v; }
            }
            op nop() { encode { word[15:13] = 0b000; } }
        }
    "#;

    #[test]
    fn tiny_machine_resolves() {
        let m = machine(TINY);
        assert_eq!(m.word_width, 16);
        assert_eq!(m.storages.len(), 5);
        assert_eq!(m.tokens.len(), 2);
        assert_eq!(m.fields[0].ops.len(), 3);
        assert_eq!(m.fields[0].nop, Some(2));
        assert!(m.pc.is_some());
        assert!(m.imem.is_some());
        let add = &m.fields[0].ops[0];
        assert_eq!(add.params.len(), 3);
        assert_eq!(add.action.len(), 1);
    }

    #[test]
    fn token_widths() {
        let m = machine(TINY);
        assert_eq!(m.tokens[0].width, 2); // 4 registers -> 2 bits
        assert_eq!(m.tokens[1].width, 8);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 1);
        assert_eq!(ceil_log2(1), 1);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
    }

    #[test]
    fn missing_format_rejected() {
        let e = analyze_err("storage { register A 8; } field F { op nop() { encode { } } }");
        assert_eq!(e.kind(), ErrorKind::Semantic);
    }

    #[test]
    fn undecodable_pair_rejected() {
        let e = analyze_err(
            r#"
            machine "m" { format { word 8; } }
            tokens { token T imm(4, unsigned); }
            field F {
                op a(p: T) { encode { word[7:6] = 0b01; word[3:0] = p; } }
                op b(p: T) { encode { word[5:4] = 0b10; word[3:0] = p; } }
            }
            "#,
        );
        assert_eq!(e.kind(), ErrorKind::Decode);
    }

    #[test]
    fn cross_field_overlap_rejected() {
        let e = analyze_err(
            r#"
            machine "m" { format { word 8; } }
            field A { op x() { encode { word[7:4] = 0b0001; } } }
            field B { op y() { encode { word[4:1] = 0b0001; } } }
            "#,
        );
        assert_eq!(e.kind(), ErrorKind::Decode);
    }

    #[test]
    fn uncovered_param_rejected() {
        let e = analyze_err(
            r#"
            machine "m" { format { word 8; } }
            tokens { token T imm(4, unsigned); }
            field F { op x(p: T) { encode { word[7:5] = 0b001; word[1:0] = p[1:0]; } } }
            "#,
        );
        assert_eq!(e.kind(), ErrorKind::Encoding);
        assert!(e.message().contains("never encoded"));
    }

    #[test]
    fn width_mismatch_in_action_rejected() {
        let e = analyze_err(
            r#"
            machine "m" { format { word 8; } }
            storage { register A 8; register B 16; }
            field F { op x() { encode { word[7:0] = 8'h01; } action { A <- B; } } }
            "#,
        );
        assert_eq!(e.kind(), ErrorKind::Width);
    }

    #[test]
    fn unsized_literal_infers_from_destination() {
        let m = machine(
            r#"
            machine "m" { format { word 8; } }
            storage { register A 12; }
            field F { op x() { encode { word[7:0] = 8'h01; } action { A <- A + 3; } } }
            "#,
        );
        let RStmt::Assign { rhs, .. } = &m.fields[0].ops[0].action[0] else {
            panic!("expected assignment")
        };
        assert_eq!(rhs.width, 12);
    }

    #[test]
    fn nonterminal_value_widths_must_agree() {
        let e = analyze_err(
            r#"
            machine "m" { format { word 8; } }
            storage { register A 8; register B 16; }
            nonterminals {
                nonterminal SRC width 1 {
                    option a() { encode { val[0] = 0; } value { A } }
                    option b() { encode { val[0] = 1; } value { B } }
                }
            }
            field F { op x(s: SRC) { encode { word[7] = 1; word[0] = s; } action { A <- s; } } }
            "#,
        );
        assert_eq!(e.kind(), ErrorKind::Width);
    }

    #[test]
    fn nonterminal_as_destination() {
        let m = machine(
            r#"
            machine "m" { format { word 8; } }
            storage { register A 8; regfile RF 8 x 4; dmem DM 8 x 16; }
            tokens { token REG reg("R", 4); }
            nonterminals {
                nonterminal DST width 3 {
                    option reg(r: REG) { encode { val[2] = 0; val[1:0] = r; } value { RF[r] } }
                    option mem(r: REG) { encode { val[2] = 1; val[1:0] = r; } value { DM[trunc(RF[r], 4)] } }
                }
            }
            field F {
                op st(d: DST) { encode { word[7:4] = 0b1000; word[2:0] = d; } action { d <- A; } }
                op nop() { encode { word[7:4] = 0b0000; } }
            }
            "#,
        );
        let st = &m.fields[0].ops[0];
        assert!(matches!(st.action[0], RStmt::Assign { lv: RLvalue::Param(0), .. }));
        let nt = &m.nonterminals[0];
        assert!(nt.options[0].value_lvalue.is_some());
        assert!(nt.options[1].value_lvalue.is_some());
    }

    #[test]
    fn alias_expands_in_rtl() {
        let m = machine(
            r#"
            machine "m" { format { word 8; } }
            storage { register ACC 16; alias LO = ACC[7:0]; }
            field F { op x() { encode { word[7:0] = 8'h01; } action { LO <- LO + 1; } } }
            "#,
        );
        let RStmt::Assign { lv, .. } = &m.fields[0].ops[0].action[0] else {
            panic!("expected assignment")
        };
        assert!(matches!(lv, RLvalue::Slice { hi: 7, lo: 0, .. }));
    }

    #[test]
    fn duplicate_names_rejected() {
        assert_eq!(
            analyze_err(
                r#"machine "m" { format { word 8; } }
                   storage { register A 8; register A 8; }
                   field F { op nop() { encode { word[0] = 1; } } }"#
            )
            .kind(),
            ErrorKind::Duplicate
        );
        assert_eq!(
            analyze_err(
                r#"machine "m" { format { word 8; } }
                   tokens { token T imm(4, signed); token T imm(4, signed); }
                   field F { op nop() { encode { word[0] = 1; } } }"#
            )
            .kind(),
            ErrorKind::Duplicate
        );
    }

    #[test]
    fn two_pcs_rejected() {
        let e = analyze_err(
            r#"machine "m" { format { word 8; } }
               storage { pc P1 8; pc P2 8; }
               field F { op nop() { encode { word[0] = 1; } } }"#,
        );
        assert!(e.message().contains("more than one"));
    }

    #[test]
    fn constraints_resolve() {
        let m = machine(
            r#"
            machine "m" { format { word 8; } }
            field A { op x() { encode { word[7] = 1; } } op nop() { encode { word[7] = 0; } } }
            field B { op y() { encode { word[6] = 1; } } op nop() { encode { word[6] = 0; } } }
            constraints { forbid A.x, B.y; }
            "#,
        );
        assert_eq!(m.constraints.len(), 1);
        // Selecting x (index 0 in A) and y (index 0 in B) violates it.
        assert_eq!(m.check_constraints(&[0, 0]), Some(0));
        assert_eq!(m.check_constraints(&[0, 1]), None);
    }

    #[test]
    fn undefined_constraint_ref_rejected() {
        let e = analyze_err(
            r#"machine "m" { format { word 8; } }
               field A { op nop() { encode { word[0] = 1; } } }
               constraints { forbid A.nope, A.nop; }"#,
        );
        assert_eq!(e.kind(), ErrorKind::Undefined);
    }

    #[test]
    fn multiword_op_encodes_past_first_word() {
        let m = machine(
            r#"
            machine "m" { format { word 16; } }
            storage { register A 16; }
            tokens { token IMM16 imm(16, unsigned); }
            field F {
                op limm(v: IMM16) {
                    encode { word[15:12] = 0b1111; word[31:16] = v; }
                    action { A <- v; }
                    cost { size 2; }
                }
                op nop() { encode { word[15:12] = 0b0000; } }
            }
            "#,
        );
        assert_eq!(m.max_op_size(), 2);
    }

    #[test]
    fn size_zero_rejected() {
        let e = analyze_err(
            r#"machine "m" { format { word 8; } }
               field F { op x() { encode { word[0] = 1; } cost { size 0; } } }"#,
        );
        assert_eq!(e.kind(), ErrorKind::Semantic);
    }

    #[test]
    fn share_hints_resolve() {
        let m = machine(
            r#"
            machine "m" { format { word 8; } }
            field A { op x() { encode { word[7] = 1; } } op nop() { encode { word[7] = 0; } } }
            archinfo { share bus: A.x, A.nop; cycle_ns 10; }
            "#,
        );
        assert_eq!(m.share_hints.len(), 1);
        assert_eq!(m.cycle_ns_hint, Some(10.0));
    }
}
