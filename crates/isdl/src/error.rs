//! Diagnostics for the ISDL front-end.

use std::error::Error;
use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos {
    /// 1-based line number (0 means "unknown").
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// Creates a position.
    #[must_use]
    pub fn new(line: u32, col: u32) -> Self {
        Self { line, col }
    }

    /// The "unknown" position used by synthesized nodes.
    #[must_use]
    pub fn unknown() -> Self {
        Self { line: 0, col: 0 }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "<unknown>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// The error type for every fallible ISDL front-end operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsdlError {
    kind: ErrorKind,
    pos: Pos,
    msg: String,
}

/// Broad classification of an [`IsdlError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// Malformed character stream (bad literal, stray character, …).
    Lex,
    /// Token stream does not match the grammar.
    Syntax,
    /// Reference to an undefined name.
    Undefined,
    /// Same name defined twice in one namespace.
    Duplicate,
    /// RTL or encoding width mismatch.
    Width,
    /// Violation of the single-parameter encoding axiom or an
    /// unreversible encoding.
    Encoding,
    /// Two operations of one field cannot be distinguished, or two
    /// fields assign the same instruction bit.
    Decode,
    /// Any other semantic rule violation.
    Semantic,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Lex => "lexical error",
            Self::Syntax => "syntax error",
            Self::Undefined => "undefined name",
            Self::Duplicate => "duplicate definition",
            Self::Width => "width error",
            Self::Encoding => "encoding error",
            Self::Decode => "decode error",
            Self::Semantic => "semantic error",
        };
        f.write_str(s)
    }
}

impl IsdlError {
    /// Creates an error of the given kind at the given position.
    #[must_use]
    pub fn new(kind: ErrorKind, pos: Pos, msg: impl Into<String>) -> Self {
        Self { kind, pos, msg: msg.into() }
    }

    /// The error classification.
    #[must_use]
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// Where the error was detected.
    #[must_use]
    pub fn pos(&self) -> Pos {
        self.pos
    }

    /// The human-readable detail message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for IsdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.kind, self.pos, self.msg)
    }
}

impl Error for IsdlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_kind() {
        let e = IsdlError::new(ErrorKind::Width, Pos::new(3, 7), "expected 8 bits, found 16");
        let s = e.to_string();
        assert!(s.contains("width error"));
        assert!(s.contains("3:7"));
        assert!(s.contains("expected 8 bits"));
    }

    #[test]
    fn unknown_position_displays_placeholder() {
        let e = IsdlError::new(ErrorKind::Semantic, Pos::unknown(), "x");
        assert!(e.to_string().contains("<unknown>"));
    }
}
