//! Load forwarding within one operation phase.
//!
//! The phase-semantics contract makes this pass both simple and
//! hazard-free: within a phase every read observes *cycle-start*
//! state, and writes are staged for commit at end-of-cycle (plus
//! latency). A store therefore never feeds a same-phase load of the
//! same location — the load still sees the old value — so classic
//! store-to-load forwarding would be *unsound* here. What is sound,
//! and what this pass does, is load-to-load forwarding: two
//! structurally identical reads of an addressed storage cell
//! (`DM[addr]`) within a phase must yield the same value, no matter
//! what stores sit between them, so the read is performed once,
//! hoisted into an [`RStmt::Let`], and every occurrence becomes a
//! [`RExprKind::Tmp`](crate::rtl::RExprKind::Tmp) reference.
//!
//! Only indexed reads are forwarded. Plain register reads
//! ([`RExprKind::Storage`](crate::rtl::RExprKind::Storage)) are free
//! leaves in every backend — naming them would add indirection without
//! removing work. Reads whose address expression already references a
//! temporary are left alone; they are picked up on a later fixpoint
//! iteration once the address stabilizes.

use super::rewrite::hoist_where;
use super::OptStats;
use crate::rtl::{RExpr, RExprKind, RStmt};

/// Hoists repeated indexed loads into `Let` temporaries.
pub(super) fn forward(stmts: Vec<RStmt>, st: &mut OptStats, changed: &mut bool) -> Vec<RStmt> {
    let (out, hoisted) = hoist_where(stmts, 2, &forwardable);
    for h in &hoisted {
        st.loads_forwarded += h.occurrences - 1;
        *changed = true;
    }
    out
}

/// An indexed load whose address is self-contained (no temporaries),
/// so hoisting it to the top of the phase cannot break def-before-use
/// ordering.
fn forwardable(e: &RExpr) -> bool {
    if !matches!(e.kind, RExprKind::StorageIndexed(_, _)) {
        return false;
    }
    let mut has_tmp = false;
    e.walk(&mut |x| has_tmp |= matches!(x.kind, RExprKind::Tmp(_)));
    !has_tmp
}
