//! Decode-subexpression naming for cross-op sharing.
//!
//! A *decode subexpression* computes purely over instruction-word
//! parameters and literals — immediate extensions, scaled offsets,
//! address arithmetic. The same shapes recur across the operations of
//! a field because front ends template-expand them, and inside one
//! operation phase they are loop-invariant: nothing they read can
//! change during the cycle.
//!
//! This pass hoists every *maximal* such subexpression into an
//! [`RStmt::Let`], even at a single occurrence. Within a phase that is
//! at worst neutral (the value is computed exactly as often as
//! before); the payoff is cross-op: HGEN lowers each `Let` to a named
//! auxiliary wire and content-addresses those wires, so two operations
//! whose decode computations lower to the same expression share one
//! wire — and the logic driving it — in the generated netlist.
//! Maximality keeps the temporary count proportional to the number of
//! distinct computations rather than their node counts.

use super::rewrite::hoist_where;
use super::OptStats;
use crate::rtl::{RExpr, RExprKind, RLvalue, RStmt};
use std::collections::HashSet;

/// Hoists maximal parameter-only subexpressions into `Let`
/// temporaries.
pub(super) fn name_decode_exprs(stmts: Vec<RStmt>, st: &mut OptStats) -> Vec<RStmt> {
    // Collect maximal candidates: descend from each statement's root
    // expressions and stop at the first qualifying node — anything
    // below it is nested, not maximal.
    let mut keys: HashSet<String> = HashSet::new();
    for s in &stmts {
        collect_stmt(s, &mut keys);
    }
    if keys.is_empty() {
        return stmts;
    }
    let (out, hoisted) =
        hoist_where(stmts, 1, &|e| eligible(e) && keys.contains(&format!("{e:?}")));
    for h in &hoisted {
        st.decode_shared += h.occurrences;
    }
    out
}

fn collect_stmt(s: &RStmt, out: &mut HashSet<String>) {
    match s {
        RStmt::Assign { lv, rhs } => {
            collect_maximal(rhs, out);
            collect_lvalue(lv, out);
        }
        RStmt::If { cond, then_body, else_body } => {
            collect_maximal(cond, out);
            for s in then_body.iter().chain(else_body) {
                collect_stmt(s, out);
            }
        }
        RStmt::Let { rhs, .. } => collect_maximal(rhs, out),
    }
}

fn collect_lvalue(lv: &RLvalue, out: &mut HashSet<String>) {
    match lv {
        RLvalue::StorageIndexed(_, idx) => collect_maximal(idx, out),
        RLvalue::Slice { base, .. } => collect_lvalue(base, out),
        RLvalue::Storage(_) | RLvalue::Param(_) => {}
    }
}

/// Records `e` if it qualifies (and stops — children are nested, not
/// maximal), otherwise recurses into its children.
fn collect_maximal(e: &RExpr, out: &mut HashSet<String>) {
    if eligible(e) {
        out.insert(format!("{e:?}"));
        return;
    }
    for c in e.children() {
        collect_maximal(c, out);
    }
}

/// Performs work, reads no machine state, and depends on at least one
/// instruction parameter.
fn eligible(e: &RExpr) -> bool {
    if matches!(
        e.kind,
        RExprKind::Lit(_)
            | RExprKind::Storage(_)
            | RExprKind::StorageIndexed(_, _)
            | RExprKind::Param(_)
            | RExprKind::Tmp(_)
    ) {
        return false;
    }
    let mut pure = true;
    let mut has_param = false;
    e.walk(&mut |x| match x.kind {
        RExprKind::Storage(_) | RExprKind::StorageIndexed(_, _) | RExprKind::Tmp(_) => pure = false,
        RExprKind::Param(_) => has_param = true,
        _ => {}
    });
    pure && has_param
}
