//! Dead-write elimination.
//!
//! Within one phase, reads observe cycle-start state and staged
//! writes commit in statement order with later writes winning. An
//! unconditional write is therefore dead — removable without any
//! observable difference in architectural state — when a later
//! unconditional write in the same statement list targets the same
//! destination and covers at least the same bit range. Index
//! expressions are pure, so syntactically equal destinations are
//! dynamically equal destinations.
//!
//! Writes nested under an `If` neither kill nor are killed across the
//! scope boundary: the guard may differ between the two writes.

use super::OptStats;
use crate::rtl::{RExpr, RLvalue, RStmt, StorageId};

/// Removes provably shadowed writes; recurses into `If` bodies, each
/// of which is its own scope.
pub(super) fn eliminate(stmts: Vec<RStmt>, st: &mut OptStats, changed: &mut bool) -> Vec<RStmt> {
    let stmts: Vec<RStmt> = stmts
        .into_iter()
        .map(|s| match s {
            RStmt::If { cond, then_body, else_body } => RStmt::If {
                cond,
                then_body: eliminate(then_body, st, changed),
                else_body: eliminate(else_body, st, changed),
            },
            other => other,
        })
        .collect();

    let keys: Vec<Option<WriteKey<'_>>> = stmts.iter().map(write_key).collect();
    let mut keep = vec![true; stmts.len()];
    for i in 0..stmts.len() {
        let Some(ki) = &keys[i] else { continue };
        for kj in keys.iter().skip(i + 1).flatten() {
            if kj.covers(ki) {
                keep[i] = false;
                st.dead_writes += 1;
                *changed = true;
                break;
            }
        }
    }
    let mut keep = keep.into_iter();
    stmts.into_iter().filter(|_| keep.next().unwrap_or(true)).collect()
}

/// Where a write lands: the destination root plus the bit range
/// relative to it (`None` = the whole destination).
struct WriteKey<'a> {
    base: BaseKey<'a>,
    range: Option<(u32, u32)>,
}

#[derive(PartialEq)]
enum BaseKey<'a> {
    Storage(StorageId),
    Indexed(StorageId, &'a RExpr),
    Param(usize),
}

impl WriteKey<'_> {
    /// Does a write to `self` fully overwrite a write to `earlier`?
    fn covers(&self, earlier: &WriteKey<'_>) -> bool {
        if self.base != earlier.base {
            return false;
        }
        match (&self.range, &earlier.range) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some((hi, lo)), Some((ehi, elo))) => hi >= ehi && lo <= elo,
        }
    }
}

fn write_key(s: &RStmt) -> Option<WriteKey<'_>> {
    if let RStmt::Assign { lv, .. } = s {
        lvalue_key(lv)
    } else {
        None
    }
}

fn lvalue_key(lv: &RLvalue) -> Option<WriteKey<'_>> {
    match lv {
        RLvalue::Storage(id) => Some(WriteKey { base: BaseKey::Storage(*id), range: None }),
        RLvalue::StorageIndexed(id, idx) => {
            Some(WriteKey { base: BaseKey::Indexed(*id, idx), range: None })
        }
        RLvalue::Param(p) => Some(WriteKey { base: BaseKey::Param(*p), range: None }),
        RLvalue::Slice { base, hi, lo } => {
            let inner = lvalue_key(base)?;
            // Bit positions accumulate relative to the slice chain's
            // root, matching l-value resolution in the executor.
            let off = inner.range.map_or(0, |(_, l)| l);
            Some(WriteKey { base: inner.base, range: Some((off + hi, off + lo)) })
        }
    }
}
