//! Optimizing RTL middle-end shared by every backend.
//!
//! The paper's methodology hinges on one machine description driving
//! every generated tool; this module is the matching single *lowering*
//! point. XSIM's tree-walking core, the bytecode compiler, the
//! translated-block tier (transitively, through the bytecode cache),
//! and HGEN's datapath builder all feed operation RTL through one
//! [`Pipeline`] before consuming it, so a redundancy removed here
//! disappears from the hot simulation loop *and* the emitted netlist
//! at once.
//!
//! # Pass manager
//!
//! The middle-end is organized as a pass manager: each [`PassKind`]
//! names one rewrite with a stable CLI spelling, a [`Pipeline`] is an
//! ordered [`PassList`] (derived from an [`OptLevel`] or selected
//! explicitly via `--opt-passes=fold,prop,...`), and the driver runs
//! the *fixpoint group* — every pass for which
//! [`PassKind::is_fixpoint`] holds — repeatedly until a sweep changes
//! nothing (bounded by an iteration cap and tracked by a dirty bit),
//! then the remaining *post passes* exactly once, in schedule order.
//! The schedule is deterministic and printable ([`Pipeline`]
//! implements [`std::fmt::Display`]); `isdlc report` shows it next to
//! the per-pass elimination counts.
//!
//! # Passes
//!
//! Fixpoint group:
//!
//! * **fold** ([`PassKind::Fold`]): bit-true constant folding over
//!   [`bitv::BitVector`], algebraic identities, no-op
//!   width-conversion removal, and width narrowing — a truncation
//!   distributes through `+ - * & | ^ << ~ neg` and slices through a
//!   constant `>>`, so over-wide intermediates shrink to the width
//!   actually consumed. (Narrowing counters are attributed to this
//!   pass, which hosts the narrowing rewriter.)
//! * **prop** ([`PassKind::Prop`]): copy/constant propagation through
//!   [`RStmt::Let`] temporaries — leaf-valued bindings are inlined
//!   into their uses and unreferenced bindings are dropped.
//! * **strength** ([`PassKind::Strength`]): power-of-two multiply,
//!   unsigned divide, and remainder become shifts and masks, feeding
//!   the narrowing rules above.
//! * **fwd** ([`PassKind::Fwd`]): load-to-load forwarding — repeated
//!   indexed reads of the same cell collapse into one hoisted read.
//!   (Store-to-load forwarding would be unsound here: reads observe
//!   cycle-start state, never same-phase stores.)
//! * **dead** ([`PassKind::Dead`]): a staged write provably
//!   overwritten later in the same phase is dropped. Within a phase
//!   reads see cycle-start state, so an intervening read never
//!   observes the dropped write.
//!
//! Post passes (run once):
//!
//! * **cse** ([`PassKind::Cse`]): repeated subexpressions within one
//!   phase are hoisted into [`RStmt::Let`] temporaries referenced via
//!   [`RExprKind::Tmp`].
//! * **share** ([`PassKind::Share`]): maximal parameter-only decode
//!   subexpressions are named even at a single occurrence, so HGEN
//!   can content-address the resulting wires across operations.
//!
//! # Levels
//!
//! | Level | Schedule |
//! |-------|----------|
//! | 0 `none` | *(empty — the differential baseline)* |
//! | 1 `basic` | `fold,dead` |
//! | 2 `aggressive` *(default)* | `fold,dead,cse` |
//! | 3 `full` | `fold,prop,strength,fwd,dead,cse,share` |
//!
//! # Invariants
//!
//! * Optimized and unoptimized RTL are **bit-identical** under
//!   execution: same architectural state, same cycle count, on every
//!   machine and program. The differential suite
//!   (`tests/opt_differential.rs`) enforces this across the sample
//!   machines for both XSIM cores and the HGEN netlist simulator, at
//!   every level including 3.
//! * RTL expressions are pure and total (division by zero is defined:
//!   quotient all-ones, remainder = dividend), which is what licenses
//!   hoisting out of conditional arms and dropping shadowed writes.
//! * Per-pass node deltas **partition** the pipeline total: summing
//!   `nodes_in − nodes_out` (signed — a hoisting pass may grow the
//!   node count) over [`OptStats::passes`] yields exactly
//!   `nodes_before − nodes_after`.
//! * The machine description itself is never rewritten — consumers
//!   optimize their own view, so the canonical printed form (and with
//!   it exploration cache keys, round-trip tests, and hazard analysis)
//!   is untouched.
//! * The event trace is *not* part of the invariant: eliminating a
//!   dead write removes its `TraceWrite` event.

#![deny(clippy::unwrap_used)]

mod cse;
mod dead;
mod fold;
mod fwd;
mod narrow;
mod prop;
mod rewrite;
mod share;
mod strength;

pub use fold::{eval_binop, eval_ext, eval_unop};

use crate::rtl::{RExprKind, RStmt};

/// How hard the middle-end works.
///
/// Parsed from `--opt=0|1|2|3`; the default is
/// [`OptLevel::Aggressive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OptLevel {
    /// Pass RTL through untouched (`--opt=0`). The differential
    /// baseline.
    None,
    /// Folding, algebraic simplification, no-op-ext removal, width
    /// narrowing, and dead-write elimination (`--opt=1`).
    Basic,
    /// Everything in [`OptLevel::Basic`] plus common-subexpression
    /// elimination (`--opt=2`, the default).
    #[default]
    Aggressive,
    /// The whole pipeline: [`OptLevel::Aggressive`] plus copy
    /// propagation, strength reduction, load forwarding, and decode
    /// sharing (`--opt=3`).
    Full,
}

impl OptLevel {
    /// Parses a CLI spelling: `0`/`none`, `1`/`basic`,
    /// `2`/`aggressive`, `3`/`full`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "0" | "none" => Some(Self::None),
            "1" | "basic" => Some(Self::Basic),
            "2" | "aggressive" => Some(Self::Aggressive),
            "3" | "full" => Some(Self::Full),
            _ => None,
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = match self {
            Self::None => 0,
            Self::Basic => 1,
            Self::Aggressive => 2,
            Self::Full => 3,
        };
        write!(f, "{n}")
    }
}

/// One middle-end pass, with a stable CLI spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// Constant folding, algebraic identities, ext removal, width
    /// narrowing.
    Fold,
    /// Copy/constant propagation through `Let` temporaries.
    Prop,
    /// Power-of-two multiply/divide/remainder to shift/mask.
    Strength,
    /// Load-to-load forwarding of repeated indexed reads.
    Fwd,
    /// Dead staged-write elimination.
    Dead,
    /// Common-subexpression elimination (post pass).
    Cse,
    /// Decode-subexpression naming for cross-op sharing (post pass).
    Share,
}

impl PassKind {
    /// All passes, in canonical schedule order.
    pub const ALL: [Self; 7] =
        [Self::Fold, Self::Prop, Self::Strength, Self::Fwd, Self::Dead, Self::Cse, Self::Share];

    /// The CLI spelling (also the stats sub-block name).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Fold => "fold",
            Self::Prop => "prop",
            Self::Strength => "strength",
            Self::Fwd => "fwd",
            Self::Dead => "dead",
            Self::Cse => "cse",
            Self::Share => "share",
        }
    }

    /// Parses a CLI spelling.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Whether the pass runs in the iterated fixpoint group (`true`)
    /// or once, after the fixpoint converges (`false`). The post
    /// passes are the hoisting passes whose output is already in
    /// normal form — re-running them would re-name their own
    /// temporaries.
    #[must_use]
    pub fn is_fixpoint(self) -> bool {
        !matches!(self, Self::Cse | Self::Share)
    }
}

impl std::fmt::Display for PassKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Maximum number of passes in a [`PassList`].
pub const MAX_SCHEDULE: usize = 8;

/// A fixed-capacity ordered pass schedule.
///
/// `Copy` by design so simulator option structs
/// (`gensim::XsimOptions`, `hgen::HgenOptions`) can embed a custom
/// schedule without giving up their `Copy` derive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PassList {
    passes: [Option<PassKind>; MAX_SCHEDULE],
    len: u8,
}

impl PassList {
    /// Builds a list from a slice; `None` if it exceeds
    /// [`MAX_SCHEDULE`].
    #[must_use]
    pub fn from_slice(passes: &[PassKind]) -> Option<Self> {
        if passes.len() > MAX_SCHEDULE {
            return None;
        }
        let mut out = Self::default();
        for (i, &p) in passes.iter().enumerate() {
            out.passes[i] = Some(p);
        }
        out.len = passes.len() as u8;
        Some(out)
    }

    /// Parses a comma-separated schedule, e.g. `fold,prop,dead`.
    /// Rejects unknown names, the empty string, and over-long lists.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let passes: Option<Vec<PassKind>> = s.split(',').map(PassKind::parse).collect();
        let passes = passes?;
        if passes.is_empty() {
            return None;
        }
        Self::from_slice(&passes)
    }

    /// The scheduled passes, in order.
    #[must_use]
    pub fn as_vec(&self) -> Vec<PassKind> {
        self.passes[..self.len as usize].iter().map(|p| p.expect("within len")).collect()
    }

    /// Number of scheduled passes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::fmt::Display for PassList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return f.write_str("(none)");
        }
        for (i, p) in self.as_vec().into_iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// Per-pass statistics sub-block.
///
/// `nodes_in`/`nodes_out` accumulate over every run of the pass
/// (fixpoint passes run several times); because consecutive pass runs
/// chain — one run's output is the next run's input — the signed
/// deltas telescope, and summing [`PassStats::nodes_delta`] over
/// [`OptStats::passes`] yields exactly
/// `nodes_before − nodes_after` for the whole pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStats {
    /// Pass name ([`PassKind::name`]).
    pub name: &'static str,
    /// Number of times the pass ran.
    pub runs: u64,
    /// Expression nodes entering the pass, summed over runs.
    pub nodes_in: u64,
    /// Expression nodes leaving the pass, summed over runs.
    pub nodes_out: u64,
    /// Individual rewrites the pass performed (sum of its counter
    /// increments in [`OptStats`]).
    pub rewrites: u64,
}

impl PassStats {
    /// Net node change of this pass — positive when it shrank the
    /// program, negative when it grew it (hoisting passes may).
    #[must_use]
    pub fn nodes_delta(&self) -> i64 {
        i64::try_from(self.nodes_in).unwrap_or(i64::MAX)
            - i64::try_from(self.nodes_out).unwrap_or(i64::MAX)
    }
}

/// Counters describing what the pipeline did. Accumulated across
/// every phase a consumer optimizes; exported by XSIM under the
/// `"opt"` object of `xsim-stats/1` and surfaced by HGEN in its
/// synthesis report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Expression nodes over all statements before optimization.
    pub nodes_before: u64,
    /// Expression nodes after optimization (Let right-hand sides and
    /// `Tmp` references included).
    pub nodes_after: u64,
    /// Subtrees replaced by literals (constant folding, including
    /// statically decided `If`/`Cond` guards).
    pub folded: u64,
    /// Algebraic identity rewrites (`x+0`, `x&x`, slice-of-slice, …).
    pub algebraic: u64,
    /// No-op width conversions and full-width slices removed.
    pub ext_removed: u64,
    /// Operators rebuilt at a smaller width by the narrowing pass.
    pub narrowed: u64,
    /// Evaluations saved by temp reuse: for a subexpression occurring
    /// `n` times, `n - 1` hits.
    pub cse_hits: u64,
    /// Staged writes dropped because a later write in the same phase
    /// provably overwrites them.
    pub dead_writes: u64,
    /// Leaf bindings inlined into uses plus unused bindings dropped by
    /// the propagation pass.
    pub propagated: u64,
    /// Power-of-two multiplies/divides/remainders rewritten to
    /// shifts/masks.
    pub strength_reduced: u64,
    /// Repeated indexed loads collapsed: for a load occurring `n`
    /// times, `n - 1` forwards.
    pub loads_forwarded: u64,
    /// Uses of decode subexpressions routed through a named, shareable
    /// temporary.
    pub decode_shared: u64,
    /// Per-pass sub-blocks, in first-run order. Their signed node
    /// deltas partition `nodes_before - nodes_after` exactly.
    pub passes: Vec<PassStats>,
}

impl OptStats {
    /// Net expression-node reduction.
    #[must_use]
    pub fn nodes_eliminated(&self) -> u64 {
        self.nodes_before.saturating_sub(self.nodes_after)
    }

    /// Sum of every rewrite counter — the denominator a pass run's
    /// `rewrites` delta is carved from.
    #[must_use]
    pub fn rewrite_total(&self) -> u64 {
        self.folded
            + self.algebraic
            + self.ext_removed
            + self.narrowed
            + self.cse_hits
            + self.dead_writes
            + self.propagated
            + self.strength_reduced
            + self.loads_forwarded
            + self.decode_shared
    }

    /// Adds `other` into `self`. Per-pass sub-blocks merge by name,
    /// preserving `self`'s order and appending passes it has not seen.
    pub fn merge(&mut self, other: &Self) {
        self.nodes_before += other.nodes_before;
        self.nodes_after += other.nodes_after;
        self.folded += other.folded;
        self.algebraic += other.algebraic;
        self.ext_removed += other.ext_removed;
        self.narrowed += other.narrowed;
        self.cse_hits += other.cse_hits;
        self.dead_writes += other.dead_writes;
        self.propagated += other.propagated;
        self.strength_reduced += other.strength_reduced;
        self.loads_forwarded += other.loads_forwarded;
        self.decode_shared += other.decode_shared;
        for p in &other.passes {
            if let Some(mine) = self.passes.iter_mut().find(|m| m.name == p.name) {
                mine.runs += p.runs;
                mine.nodes_in += p.nodes_in;
                mine.nodes_out += p.nodes_out;
                mine.rewrites += p.rewrites;
            } else {
                self.passes.push(p.clone());
            }
        }
    }
}

/// Bound on fixpoint iteration. Every fixpoint pass either converges
/// or monotonically simplifies, so this is a safety rail, not a
/// tuning knob.
const MAX_FIXPOINT_ITERATIONS: usize = 8;

/// An ordered, deterministic middle-end schedule bound to the level it
/// reports as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pipeline {
    level: OptLevel,
    list: PassList,
}

impl Pipeline {
    /// The canonical schedule for `level` (see the module-level table).
    #[must_use]
    pub fn for_level(level: OptLevel) -> Self {
        use PassKind::*;
        let passes: &[PassKind] = match level {
            OptLevel::None => &[],
            OptLevel::Basic => &[Fold, Dead],
            OptLevel::Aggressive => &[Fold, Dead, Cse],
            OptLevel::Full => &[Fold, Prop, Strength, Fwd, Dead, Cse, Share],
        };
        Self { level, list: PassList::from_slice(passes).expect("canonical schedules fit") }
    }

    /// A custom schedule (`--opt-passes=...`). `level` is retained for
    /// reporting only; the list governs what runs.
    #[must_use]
    pub fn with_passes(level: OptLevel, list: PassList) -> Self {
        Self { level, list }
    }

    /// The level this pipeline reports as.
    #[must_use]
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// The scheduled passes, in order.
    #[must_use]
    pub fn schedule(&self) -> Vec<PassKind> {
        self.list.as_vec()
    }

    /// Whether the pipeline performs no work at all.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.list.is_empty()
    }

    /// Runs the pipeline over one phase's statement list and returns
    /// the optimized statements. `stats` is *accumulated into*
    /// (merged), so a consumer can thread one accumulator through
    /// every phase it optimizes.
    ///
    /// With an empty schedule the input is cloned untouched and only
    /// the node counters are recorded.
    #[must_use]
    pub fn run(&self, stmts: &[RStmt], stats: &mut OptStats) -> Vec<RStmt> {
        let mut local = OptStats { nodes_before: count_nodes(stmts), ..OptStats::default() };
        let mut out: Vec<RStmt> = stmts.to_vec();
        let schedule = self.list.as_vec();
        let fixpoint: Vec<PassKind> =
            schedule.iter().copied().filter(|p| p.is_fixpoint()).collect();
        let post: Vec<PassKind> = schedule.iter().copied().filter(|p| !p.is_fixpoint()).collect();
        if !fixpoint.is_empty() {
            for _ in 0..MAX_FIXPOINT_ITERATIONS {
                let mut changed = false;
                for &p in &fixpoint {
                    out = run_pass(p, out, &mut local, &mut changed);
                }
                if !changed {
                    break;
                }
            }
        }
        let mut post_changed = false;
        for &p in &post {
            out = run_pass(p, out, &mut local, &mut post_changed);
        }
        local.nodes_after = count_nodes(&out);
        debug_assert_eq!(
            local.passes.iter().map(PassStats::nodes_delta).sum::<i64>(),
            i64::try_from(local.nodes_before).unwrap_or(i64::MAX)
                - i64::try_from(local.nodes_after).unwrap_or(i64::MAX),
            "per-pass node deltas must partition the pipeline total"
        );
        stats.merge(&local);
        out
    }
}

impl std::fmt::Display for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.list)
    }
}

/// Runs one pass, attributing its node delta and rewrite count to its
/// [`PassStats`] sub-block.
fn run_pass(
    kind: PassKind,
    stmts: Vec<RStmt>,
    st: &mut OptStats,
    changed: &mut bool,
) -> Vec<RStmt> {
    let nodes_in = count_nodes(&stmts);
    let rewrites_before = st.rewrite_total();
    let out = match kind {
        PassKind::Fold => fold::simplify_stmts(&stmts, st, changed),
        PassKind::Prop => prop::propagate(stmts, st, changed),
        PassKind::Strength => strength::reduce_stmts(&stmts, st, changed),
        PassKind::Fwd => reorder_lets(fwd::forward(stmts, st, changed)),
        PassKind::Dead => dead::eliminate(stmts, st, changed),
        PassKind::Cse => reorder_lets(cse::hoist(stmts, st)),
        PassKind::Share => reorder_lets(share::name_decode_exprs(stmts, st)),
    };
    let nodes_out = count_nodes(&out);
    let rewrites = st.rewrite_total() - rewrites_before;
    if let Some(p) = st.passes.iter_mut().find(|p| p.name == kind.name()) {
        p.runs += 1;
        p.nodes_in += nodes_in;
        p.nodes_out += nodes_out;
        p.rewrites += rewrites;
    } else {
        st.passes.push(PassStats { name: kind.name(), runs: 1, nodes_in, nodes_out, rewrites });
    }
    out
}

/// Restores def-before-use order among the leading `Let` block.
///
/// Every hoisting pass prepends its temporaries, so after hoisting all
/// `Let`s form a prefix of the statement list — but a newly prepended
/// binding may reference a temporary defined *below* it (e.g. CSE
/// naming an expression that contains a load the forwarding pass
/// hoisted earlier). A stable topological sort of the prefix by
/// temporary dependency fixes that; dependency cycles cannot occur
/// because every binding references only previously existing
/// temporaries.
fn reorder_lets(mut stmts: Vec<RStmt>) -> Vec<RStmt> {
    let n_lead = stmts.iter().take_while(|s| matches!(s, RStmt::Let { .. })).count();
    if n_lead <= 1 {
        return stmts;
    }
    let rest = stmts.split_off(n_lead);
    let mut slots: Vec<Option<(usize, RStmt)>> = stmts
        .into_iter()
        .map(|s| match &s {
            RStmt::Let { tmp, .. } => Some((*tmp, s)),
            _ => None,
        })
        .collect();
    let defined: std::collections::HashSet<usize> =
        slots.iter().flatten().map(|(t, _)| *t).collect();
    let mut emitted: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut out: Vec<RStmt> = Vec::with_capacity(n_lead + rest.len());
    loop {
        let mut progress = false;
        for slot in &mut slots {
            let ready = slot.as_ref().is_some_and(|(_, s)| {
                let mut ok = true;
                s.walk_exprs(&mut |e| {
                    if let RExprKind::Tmp(t) = e.kind {
                        ok &= !defined.contains(&t) || emitted.contains(&t);
                    }
                });
                ok
            });
            if ready {
                if let Some((tmp, s)) = slot.take() {
                    emitted.insert(tmp);
                    out.push(s);
                    progress = true;
                }
            }
        }
        if !progress {
            break;
        }
    }
    // Unreachable in practice (no cycles); preserve order if it ever
    // happens rather than dropping statements.
    for (_, s) in slots.into_iter().flatten() {
        out.push(s);
    }
    out.extend(rest);
    out
}

/// Runs the canonical pipeline for `level` over one phase's statement
/// list. Compatibility entry point; see [`Pipeline::run`].
#[must_use]
pub fn optimize_stmts(stmts: &[RStmt], level: OptLevel, stats: &mut OptStats) -> Vec<RStmt> {
    Pipeline::for_level(level).run(stmts, stats)
}

/// What `--dump-rtl` shows for each (operation, phase) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DumpMode {
    /// Only the RTL as semantic analysis produced it.
    Before,
    /// Only the RTL after the pipeline ran.
    After,
    /// Both, side by side.
    Both,
}

impl DumpMode {
    /// Parses the CLI spelling: `before`, `after`, or `both`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "before" => Some(Self::Before),
            "after" => Some(Self::After),
            "both" => Some(Self::Both),
            _ => None,
        }
    }
}

/// Renders every operation's per-phase RTL in the canonical printed
/// form, before and/or after running `pipeline` over it — the engine
/// behind `isdlc opt --dump-rtl` and `xsim --dump-rtl`. Phases with no
/// statements are skipped.
#[must_use]
pub fn dump_rtl(machine: &crate::model::Machine, pipeline: &Pipeline, mode: DumpMode) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; machine {} -- opt level {} schedule {}",
        machine.name,
        pipeline.level(),
        pipeline
    );
    for f in &machine.fields {
        for op in &f.ops {
            for (phase_name, stmts) in [("action", &op.action), ("sideeffect", &op.side_effects)] {
                if stmts.is_empty() {
                    continue;
                }
                let _ = writeln!(out, "\n{}.{} {}:", f.name, op.name, phase_name);
                if matches!(mode, DumpMode::Before | DumpMode::Both) {
                    let _ = writeln!(out, "  before:");
                    for line in crate::printer::print_stmts(machine, op, stmts).lines() {
                        let _ = writeln!(out, "    {line}");
                    }
                }
                if matches!(mode, DumpMode::After | DumpMode::Both) {
                    let mut stats = OptStats::default();
                    let opt = pipeline.run(stmts, &mut stats);
                    let _ = writeln!(out, "  after:");
                    for line in crate::printer::print_stmts(machine, op, &opt).lines() {
                        let _ = writeln!(out, "    {line}");
                    }
                }
            }
        }
    }
    out
}

/// Counts expression nodes over a statement list (right-hand sides,
/// conditions, and l-value index expressions).
#[must_use]
pub fn count_nodes(stmts: &[RStmt]) -> u64 {
    let mut n = 0u64;
    for s in stmts {
        s.walk_exprs(&mut |_| n += 1);
    }
    n
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::ast::{BinOp, ExtKind, UnOp};
    use crate::rtl::{RExpr, RExprKind, RLvalue, StorageId};
    use bitv::BitVector;

    fn lit(v: u64, w: u32) -> RExpr {
        RExpr::lit(BitVector::from_u64(v, w))
    }

    fn st(id: usize, w: u32) -> RExpr {
        RExpr { kind: RExprKind::Storage(StorageId(id)), width: w }
    }

    fn mem(id: usize, idx: RExpr, w: u32) -> RExpr {
        RExpr { kind: RExprKind::StorageIndexed(StorageId(id), Box::new(idx)), width: w }
    }

    fn param(i: usize, w: u32) -> RExpr {
        RExpr { kind: RExprKind::Param(i), width: w }
    }

    fn bin(op: BinOp, a: RExpr, b: RExpr, w: u32) -> RExpr {
        RExpr { kind: RExprKind::Binary(op, Box::new(a), Box::new(b)), width: w }
    }

    fn assign(id: usize, rhs: RExpr) -> RStmt {
        RStmt::Assign { lv: RLvalue::Storage(StorageId(id)), rhs }
    }

    fn opt(stmts: &[RStmt], level: OptLevel) -> (Vec<RStmt>, OptStats) {
        let mut s = OptStats::default();
        let out = optimize_stmts(stmts, level, &mut s);
        (out, s)
    }

    fn run_passes(stmts: &[RStmt], passes: &[PassKind]) -> (Vec<RStmt>, OptStats) {
        let mut s = OptStats::default();
        let p = Pipeline::with_passes(OptLevel::Full, PassList::from_slice(passes).expect("fits"));
        let out = p.run(stmts, &mut s);
        (out, s)
    }

    #[test]
    fn folds_constants_bit_true() {
        let e = bin(BinOp::Add, lit(0xFF, 8), lit(1, 8), 8);
        let (out, s) = opt(&[assign(0, e)], OptLevel::Basic);
        match &out[..] {
            [RStmt::Assign { rhs, .. }] => {
                assert_eq!(rhs, &lit(0, 8), "0xFF + 1 wraps at width 8");
            }
            other => panic!("unexpected shape {other:?}"),
        }
        assert!(s.folded >= 1);
        assert!(s.nodes_eliminated() >= 2);
    }

    #[test]
    fn algebraic_identities() {
        let x = st(0, 16);
        let cases = [
            bin(BinOp::Add, x.clone(), lit(0, 16), 16),
            bin(BinOp::Or, x.clone(), lit(0, 16), 16),
            bin(BinOp::Xor, x.clone(), lit(0, 16), 16),
            bin(BinOp::And, x.clone(), lit(0xFFFF, 16), 16),
            bin(BinOp::Mul, x.clone(), lit(1, 16), 16),
            bin(BinOp::Shl, x.clone(), lit(0, 4), 16),
        ];
        for c in cases {
            let (out, _) = opt(&[assign(0, c.clone())], OptLevel::Basic);
            match &out[..] {
                [RStmt::Assign { rhs, .. }] => assert_eq!(rhs, &x, "identity on {c:?}"),
                other => panic!("unexpected shape {other:?}"),
            }
        }
        // Absorbing cases.
        let zero = [
            bin(BinOp::And, x.clone(), lit(0, 16), 16),
            bin(BinOp::Mul, x.clone(), lit(0, 16), 16),
            bin(BinOp::Sub, x.clone(), x.clone(), 16),
            bin(BinOp::Xor, x.clone(), x.clone(), 16),
            bin(BinOp::Shl, x.clone(), lit(16, 8), 16),
        ];
        for c in zero {
            let (out, _) = opt(&[assign(0, c.clone())], OptLevel::Basic);
            match &out[..] {
                [RStmt::Assign { rhs, .. }] => assert_eq!(rhs, &lit(0, 16), "zero on {c:?}"),
                other => panic!("unexpected shape {other:?}"),
            }
        }
    }

    #[test]
    fn static_if_is_flattened() {
        let body = assign(0, st(1, 8));
        let s = RStmt::If {
            cond: bin(BinOp::Eq, lit(3, 4), lit(3, 4), 1),
            then_body: vec![body.clone()],
            else_body: vec![assign(0, lit(9, 8))],
        };
        let (out, stats) = opt(&[s], OptLevel::Basic);
        assert_eq!(out, vec![body]);
        assert!(stats.folded >= 1);
    }

    #[test]
    fn noop_ext_removed_and_exts_collapse() {
        let x = st(0, 8);
        let same = RExpr { kind: RExprKind::Ext(ExtKind::Zext, Box::new(x.clone())), width: 8 };
        let (out, s) = opt(&[assign(0, same)], OptLevel::Basic);
        match &out[..] {
            [RStmt::Assign { rhs, .. }] => assert_eq!(rhs, &x),
            other => panic!("unexpected shape {other:?}"),
        }
        assert_eq!(s.ext_removed, 1);

        let zz = RExpr {
            kind: RExprKind::Ext(
                ExtKind::Zext,
                Box::new(RExpr {
                    kind: RExprKind::Ext(ExtKind::Zext, Box::new(x.clone())),
                    width: 16,
                }),
            ),
            width: 32,
        };
        let (out, _) = opt(&[assign(1, zz)], OptLevel::Basic);
        match &out[..] {
            [RStmt::Assign { rhs, .. }] => {
                assert_eq!(
                    rhs,
                    &RExpr { kind: RExprKind::Ext(ExtKind::Zext, Box::new(x)), width: 32 }
                );
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn narrowing_shrinks_a_wide_multiply() {
        // trunc(zext(a, 128) * zext(b, 128), 16): only the low 16 bits
        // are consumed, so the multiply must drop to width 16.
        let a = st(0, 16);
        let b = st(1, 16);
        let wide =
            |e: RExpr| RExpr { kind: RExprKind::Ext(ExtKind::Zext, Box::new(e)), width: 128 };
        let product = bin(BinOp::Mul, wide(a.clone()), wide(b.clone()), 128);
        let narrow = RExpr { kind: RExprKind::Ext(ExtKind::Trunc, Box::new(product)), width: 16 };
        let (out, s) = opt(&[assign(2, narrow)], OptLevel::Basic);
        match &out[..] {
            [RStmt::Assign { rhs, .. }] => {
                assert_eq!(rhs, &bin(BinOp::Mul, a, b, 16));
            }
            other => panic!("unexpected shape {other:?}"),
        }
        assert!(s.narrowed >= 1);
        let mut max_w = 0;
        out[0].walk_exprs(&mut |e| max_w = max_w.max(e.width));
        assert!(max_w <= 16, "no over-wide intermediate survives");
    }

    #[test]
    fn strength_reduction_then_narrowing_collapses_a_wide_division() {
        // trunc(zext(a, 128) / 128'd16, 16): at level 3 the division
        // becomes a constant right shift, the shift becomes a slice,
        // and the slice of the zext collapses — nothing wider than 16
        // bits (plus the slice source) survives, and no divider does.
        let a = st(0, 16);
        let wide = RExpr { kind: RExprKind::Ext(ExtKind::Zext, Box::new(a)), width: 128 };
        let q = bin(BinOp::UDiv, wide, lit(16, 128), 128);
        let e = RExpr { kind: RExprKind::Ext(ExtKind::Trunc, Box::new(q)), width: 16 };
        let (out, s) = opt(&[assign(1, e.clone())], OptLevel::Full);
        assert!(s.strength_reduced >= 1, "{s:?}");
        let mut has_div = false;
        let mut max_w = 0;
        for stmt in &out {
            stmt.walk_exprs(&mut |x| {
                has_div |= matches!(x.kind, RExprKind::Binary(BinOp::UDiv, _, _));
                max_w = max_w.max(x.width);
            });
        }
        assert!(!has_div, "division must be strength-reduced: {out:?}");
        assert!(max_w <= 16, "everything narrows to 16 bits: {out:?}");

        // Level 2 must leave the wide division alone (it cannot narrow
        // through a divide).
        let (out2, s2) = opt(&[assign(1, e)], OptLevel::Aggressive);
        assert_eq!(s2.strength_reduced, 0);
        let mut has_wide = false;
        for stmt in &out2 {
            stmt.walk_exprs(&mut |x| has_wide |= x.width > 64);
        }
        assert!(has_wide, "level 2 keeps the wide intermediate: {out2:?}");
    }

    #[test]
    fn strength_reduces_mul_rem_to_shift_mask() {
        let x = st(0, 16);
        let (out, s) = run_passes(
            &[assign(1, bin(BinOp::Mul, x.clone(), lit(8, 16), 16))],
            &[PassKind::Strength],
        );
        match &out[..] {
            [RStmt::Assign { rhs, .. }] => {
                assert_eq!(rhs, &bin(BinOp::Shl, x.clone(), lit(3, 16), 16));
            }
            other => panic!("unexpected shape {other:?}"),
        }
        assert_eq!(s.strength_reduced, 1);

        let (out, s) = run_passes(
            &[assign(1, bin(BinOp::URem, x.clone(), lit(16, 16), 16))],
            &[PassKind::Strength],
        );
        match &out[..] {
            [RStmt::Assign { rhs, .. }] => {
                assert_eq!(rhs, &bin(BinOp::And, x.clone(), lit(15, 16), 16));
            }
            other => panic!("unexpected shape {other:?}"),
        }
        assert_eq!(s.strength_reduced, 1);

        // Signed division must not reduce.
        let (out, s) = run_passes(
            &[assign(1, bin(BinOp::SDiv, x.clone(), lit(4, 16), 16))],
            &[PassKind::Strength],
        );
        match &out[..] {
            [RStmt::Assign { rhs, .. }] => {
                assert_eq!(rhs, &bin(BinOp::SDiv, x, lit(4, 16), 16));
            }
            other => panic!("unexpected shape {other:?}"),
        }
        assert_eq!(s.strength_reduced, 0);
    }

    #[test]
    fn load_forwarding_collapses_repeated_loads() {
        let load = mem(0, lit(3, 8), 16);
        let prog = vec![
            assign(1, bin(BinOp::Add, load.clone(), load.clone(), 16)),
            assign(2, load.clone()),
        ];
        let (out, s) = run_passes(&prog, &[PassKind::Fwd]);
        assert_eq!(s.loads_forwarded, 2, "three occurrences, one kept: {s:?}");
        match &out[..] {
            [RStmt::Let { tmp, rhs }, RStmt::Assign { rhs: r1, .. }, RStmt::Assign { rhs: r2, .. }] =>
            {
                assert_eq!(rhs, &load);
                let t = RExpr { kind: RExprKind::Tmp(*tmp), width: 16 };
                assert_eq!(r1, &bin(BinOp::Add, t.clone(), t.clone(), 16));
                assert_eq!(r2, &t);
            }
            other => panic!("unexpected shape {other:?}"),
        }
        // A store between the loads does not block forwarding: reads
        // observe cycle-start state.
        let prog = vec![
            assign(1, load.clone()),
            RStmt::Assign { lv: RLvalue::StorageIndexed(StorageId(0), lit(3, 8)), rhs: st(2, 16) },
            assign(3, load.clone()),
        ];
        let (_, s) = run_passes(&prog, &[PassKind::Fwd]);
        assert_eq!(s.loads_forwarded, 1);
        // A single load is left alone.
        let (out, s) = run_passes(&[assign(1, load.clone())], &[PassKind::Fwd]);
        assert_eq!(s.loads_forwarded, 0);
        assert_eq!(out, vec![assign(1, load)]);
    }

    #[test]
    fn propagation_inlines_leaf_lets_and_drops_unused() {
        let prog = vec![
            RStmt::Let { tmp: 0, rhs: st(4, 16) },
            RStmt::Let { tmp: 1, rhs: bin(BinOp::Add, st(5, 16), st(6, 16), 16) },
            assign(
                1,
                bin(
                    BinOp::Xor,
                    RExpr { kind: RExprKind::Tmp(0), width: 16 },
                    RExpr { kind: RExprKind::Tmp(0), width: 16 },
                    16,
                ),
            ),
        ];
        let (out, s) = run_passes(&prog, &[PassKind::Prop]);
        // tmp0 (a leaf) inlines into both uses and its binding drops;
        // tmp1 is unused and drops outright.
        assert!(s.propagated >= 4, "{s:?}");
        assert_eq!(out, vec![assign(1, bin(BinOp::Xor, st(4, 16), st(4, 16), 16))]);
        // A non-leaf binding with uses is left alone.
        let keep = vec![
            RStmt::Let { tmp: 0, rhs: bin(BinOp::Add, st(5, 16), st(6, 16), 16) },
            assign(1, RExpr { kind: RExprKind::Tmp(0), width: 16 }),
        ];
        let (out, s) = run_passes(&keep, &[PassKind::Prop]);
        assert_eq!(out, keep);
        assert_eq!(s.propagated, 0);
    }

    #[test]
    fn share_names_decode_subexpressions() {
        // zext(p0, 16) + ACC: the parameter-only zext is named, the
        // storage-dependent sum is not.
        let decode =
            RExpr { kind: RExprKind::Ext(ExtKind::Zext, Box::new(param(0, 8))), width: 16 };
        let prog = vec![assign(0, bin(BinOp::Add, decode.clone(), st(1, 16), 16))];
        let (out, s) = run_passes(&prog, &[PassKind::Share]);
        assert_eq!(s.decode_shared, 1, "{s:?}");
        match &out[..] {
            [RStmt::Let { tmp, rhs }, RStmt::Assign { rhs: r, .. }] => {
                assert_eq!(rhs, &decode);
                let t = RExpr { kind: RExprKind::Tmp(*tmp), width: 16 };
                assert_eq!(r, &bin(BinOp::Add, t, st(1, 16), 16));
            }
            other => panic!("unexpected shape {other:?}"),
        }
        // Maximality: only the outermost param-only expression is
        // named, not its subexpressions.
        let nested = bin(BinOp::Mul, bin(BinOp::Add, param(0, 8), lit(1, 8), 8), param(1, 8), 8);
        let (out, s) = run_passes(&[assign(0, nested.clone())], &[PassKind::Share]);
        assert_eq!(s.decode_shared, 1);
        let lets = out.iter().filter(|s| matches!(s, RStmt::Let { .. })).count();
        assert_eq!(lets, 1, "one maximal candidate: {out:?}");
    }

    #[test]
    fn per_pass_stats_partition_the_total() {
        // A phase that exercises every pass, then the telescoping
        // invariant: signed per-pass deltas sum to the pipeline total.
        let load = mem(0, lit(2, 8), 16);
        let prog = vec![
            assign(1, bin(BinOp::Add, lit(1, 16), lit(2, 16), 16)),
            assign(2, bin(BinOp::Mul, st(3, 16), lit(8, 16), 16)),
            assign(4, bin(BinOp::Add, load.clone(), load.clone(), 16)),
            assign(5, bin(BinOp::Add, param(0, 16), lit(3, 16), 16)),
            assign(5, bin(BinOp::Add, param(0, 16), lit(4, 16), 16)),
        ];
        let (_, s) = opt(&prog, OptLevel::Full);
        assert!(!s.passes.is_empty());
        let delta: i64 = s.passes.iter().map(PassStats::nodes_delta).sum();
        assert_eq!(
            delta,
            i64::try_from(s.nodes_before).unwrap() - i64::try_from(s.nodes_after).unwrap(),
            "per-pass deltas must partition the total: {s:?}"
        );
        assert!(s.dead_writes >= 1, "{s:?}");
        assert!(s.strength_reduced >= 1, "{s:?}");
        assert!(s.loads_forwarded >= 1, "{s:?}");
        // Merging preserves the partition.
        let mut merged = OptStats::default();
        merged.merge(&s);
        merged.merge(&s);
        let delta2: i64 = merged.passes.iter().map(PassStats::nodes_delta).sum();
        assert_eq!(
            delta2,
            i64::try_from(merged.nodes_before).unwrap()
                - i64::try_from(merged.nodes_after).unwrap()
        );
    }

    #[test]
    fn pipeline_is_deterministic() {
        let load = mem(0, lit(2, 8), 16);
        let prog = vec![
            assign(1, bin(BinOp::Add, load.clone(), load.clone(), 16)),
            assign(2, bin(BinOp::Mul, param(0, 16), param(1, 16), 16)),
        ];
        let (out1, s1) = opt(&prog, OptLevel::Full);
        let (out2, s2) = opt(&prog, OptLevel::Full);
        assert_eq!(out1, out2);
        assert_eq!(s1, s2);
        assert_eq!(
            Pipeline::for_level(OptLevel::Full).to_string(),
            "fold,prop,strength,fwd,dead,cse,share"
        );
        assert_eq!(Pipeline::for_level(OptLevel::Aggressive).to_string(), "fold,dead,cse");
        assert_eq!(Pipeline::for_level(OptLevel::Basic).to_string(), "fold,dead");
        assert_eq!(Pipeline::for_level(OptLevel::None).to_string(), "(none)");
    }

    #[test]
    fn dead_write_is_dropped_but_conditional_writes_are_kept() {
        let dead = assign(0, lit(1, 8));
        let live = assign(0, lit(2, 8));
        let (out, s) = opt(&[dead, live.clone()], OptLevel::Basic);
        assert_eq!(out, vec![live.clone()]);
        assert_eq!(s.dead_writes, 1);

        // A conditional write does not kill a preceding write.
        let guarded =
            RStmt::If { cond: st(1, 1), then_body: vec![assign(0, lit(2, 8))], else_body: vec![] };
        let first = assign(0, lit(1, 8));
        let (out, s) = opt(&[first.clone(), guarded.clone()], OptLevel::Basic);
        assert_eq!(out, vec![first, guarded]);
        assert_eq!(s.dead_writes, 0);
    }

    #[test]
    fn cse_hoists_repeated_subexpressions() {
        let sum = bin(BinOp::Add, st(0, 16), st(1, 16), 16);
        let prog =
            vec![assign(2, sum.clone()), assign(3, bin(BinOp::Xor, sum.clone(), st(4, 16), 16))];
        let (out, s) = opt(&prog, OptLevel::Aggressive);
        assert_eq!(s.cse_hits, 1);
        match &out[..] {
            [RStmt::Let { tmp, rhs }, RStmt::Assign { rhs: r1, .. }, RStmt::Assign { rhs: r2, .. }] =>
            {
                assert_eq!(rhs, &sum);
                let t = RExpr { kind: RExprKind::Tmp(*tmp), width: 16 };
                assert_eq!(r1, &t);
                assert_eq!(r2, &bin(BinOp::Xor, t, st(4, 16), 16));
            }
            other => panic!("unexpected shape {other:?}"),
        }
        // Basic level leaves the duplicates alone.
        let (out, s) = opt(&prog, OptLevel::Basic);
        assert_eq!(out, prog);
        assert_eq!(s.cse_hits, 0);
    }

    #[test]
    fn opt_level_none_is_identity() {
        let prog = vec![assign(0, bin(BinOp::Add, lit(1, 8), lit(2, 8), 8))];
        let (out, s) = opt(&prog, OptLevel::None);
        assert_eq!(out, prog);
        assert_eq!(s.nodes_eliminated(), 0);
        assert_eq!(s.folded, 0);
        assert!(s.passes.is_empty());
    }

    #[test]
    fn unary_fold_and_double_negation() {
        let neg =
            |e: RExpr, w: u32| RExpr { kind: RExprKind::Unary(UnOp::Neg, Box::new(e)), width: w };
        let (out, _) = opt(&[assign(0, neg(lit(1, 8), 8))], OptLevel::Basic);
        match &out[..] {
            [RStmt::Assign { rhs, .. }] => assert_eq!(rhs, &lit(0xFF, 8)),
            other => panic!("unexpected shape {other:?}"),
        }
        let x = st(0, 8);
        let (out, s) = opt(&[assign(1, neg(neg(x.clone(), 8), 8))], OptLevel::Basic);
        match &out[..] {
            [RStmt::Assign { rhs, .. }] => assert_eq!(rhs, &x),
            other => panic!("unexpected shape {other:?}"),
        }
        assert!(s.algebraic >= 1);
    }

    #[test]
    fn level_parsing_and_display() {
        assert_eq!(OptLevel::parse("0"), Some(OptLevel::None));
        assert_eq!(OptLevel::parse("1"), Some(OptLevel::Basic));
        assert_eq!(OptLevel::parse("2"), Some(OptLevel::Aggressive));
        assert_eq!(OptLevel::parse("aggressive"), Some(OptLevel::Aggressive));
        assert_eq!(OptLevel::parse("3"), Some(OptLevel::Full));
        assert_eq!(OptLevel::parse("full"), Some(OptLevel::Full));
        assert_eq!(OptLevel::parse("4"), None);
        assert_eq!(OptLevel::default(), OptLevel::Aggressive);
        assert_eq!(OptLevel::Aggressive.to_string(), "2");
        assert_eq!(OptLevel::Full.to_string(), "3");
    }

    #[test]
    fn pass_list_parsing_round_trips() {
        let list = PassList::parse("fold,prop,dead").unwrap();
        assert_eq!(list.as_vec(), vec![PassKind::Fold, PassKind::Prop, PassKind::Dead]);
        assert_eq!(list.to_string(), "fold,prop,dead");
        assert_eq!(PassList::parse(""), None);
        assert_eq!(PassList::parse("fold,bogus"), None);
        assert_eq!(PassList::parse("fold,fold,fold,fold,fold,fold,fold,fold,fold"), None);
        for p in PassKind::ALL {
            assert_eq!(PassKind::parse(p.name()), Some(p), "{p} round-trips");
        }
    }

    #[test]
    fn dump_rtl_renders_before_and_after() {
        let m = crate::load(crate::samples::WIDEMUL).expect("widemul loads");
        let p = Pipeline::for_level(OptLevel::Full);
        let both = dump_rtl(&m, &p, DumpMode::Both);
        assert!(both.contains("MAIN.wmul action:"), "{both}");
        assert!(both.contains("before:") && both.contains("after:"));
        assert!(both.contains("schedule fold,prop,strength,fwd,dead,cse,share"));
        let before = dump_rtl(&m, &p, DumpMode::Before);
        assert!(before.contains("before:") && !before.contains("after:"));
        let after = dump_rtl(&m, &p, DumpMode::After);
        assert!(after.contains("after:") && !after.contains("before:"));
        assert_eq!(DumpMode::parse("both"), Some(DumpMode::Both));
        assert_eq!(DumpMode::parse("sideways"), None);
    }

    #[test]
    fn reorder_lets_restores_def_before_use() {
        let t = |i: usize, w: u32| RExpr { kind: RExprKind::Tmp(i), width: w };
        let shuffled = vec![
            RStmt::Let { tmp: 1, rhs: bin(BinOp::Add, t(0, 16), lit(1, 16), 16) },
            RStmt::Let { tmp: 0, rhs: mem(0, lit(3, 8), 16) },
            assign(1, t(1, 16)),
        ];
        let fixed = reorder_lets(shuffled);
        match &fixed[..] {
            [RStmt::Let { tmp: a, .. }, RStmt::Let { tmp: b, .. }, RStmt::Assign { .. }] => {
                assert_eq!((*a, *b), (0, 1), "definition precedes use");
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }
}
