//! Optimizing RTL middle-end shared by every backend.
//!
//! The paper's methodology hinges on one machine description driving
//! every generated tool; this module is the matching single *lowering*
//! point. XSIM's tree-walking core, the bytecode compiler, and HGEN's
//! datapath builder all feed operation RTL through [`optimize_stmts`]
//! before consuming it, so a redundancy removed here disappears from
//! the hot simulation loop *and* the emitted netlist at once.
//!
//! # Passes
//!
//! In order, at [`OptLevel::Basic`] and above:
//!
//! 1. **Simplify** (`fold`): bit-true constant folding over
//!    [`bitv::BitVector`], algebraic identities (`x+0`, `x&0`,
//!    `x|ones`, shift-by-constant, conditionals with literal guards),
//!    no-op width-conversion removal, and width narrowing — a
//!    truncation distributes through `+ - * & | ^ << ~ neg`, so
//!    over-wide intermediates shrink to the width actually consumed.
//! 2. **Dead-write elimination** (`dead`): a staged write
//!    provably overwritten later in the same phase is dropped.
//!    Within a phase reads see cycle-start state, so an intervening
//!    read never observes the dropped write.
//!
//! Steps 1–2 repeat to a small fixpoint. At [`OptLevel::Aggressive`]
//! a final pass runs:
//!
//! 3. **Common-subexpression elimination** (`cse`): repeated
//!    subexpressions within one phase are hoisted into
//!    [`RStmt::Let`] temporaries referenced via
//!    [`RExprKind::Tmp`](crate::rtl::RExprKind::Tmp).
//!
//! # Invariants
//!
//! * Optimized and unoptimized RTL are **bit-identical** under
//!   execution: same architectural state, same cycle count, on every
//!   machine and program. The differential suite
//!   (`tests/opt_differential.rs`) enforces this across the sample
//!   machines for both XSIM cores and the HGEN netlist simulator.
//! * RTL expressions are pure and total (division by zero is defined:
//!   quotient all-ones, remainder = dividend), which is what makes
//!   hoisting out of conditional arms and dropping shadowed writes
//!   semantics-preserving.
//! * The machine description itself is never rewritten — consumers
//!   optimize their own view, so the canonical printed form (and with
//!   it exploration cache keys, round-trip tests, and hazard analysis)
//!   is untouched.
//! * The event trace is *not* part of the invariant: eliminating a
//!   dead write removes its `TraceWrite` event.

#![deny(clippy::unwrap_used)]

mod cse;
mod dead;
mod fold;
mod narrow;

pub use fold::{eval_binop, eval_ext, eval_unop};

use crate::rtl::RStmt;

/// How hard the middle-end works.
///
/// Parsed from `--opt=0|1|2`; the default is [`OptLevel::Aggressive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OptLevel {
    /// Pass RTL through untouched (`--opt=0`). The differential
    /// baseline.
    None,
    /// Folding, algebraic simplification, no-op-ext removal, width
    /// narrowing, and dead-write elimination (`--opt=1`).
    Basic,
    /// Everything in [`OptLevel::Basic`] plus common-subexpression
    /// elimination (`--opt=2`, the default).
    #[default]
    Aggressive,
}

impl OptLevel {
    /// Parses a CLI spelling: `0`/`none`, `1`/`basic`, `2`/`full`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "0" | "none" => Some(Self::None),
            "1" | "basic" => Some(Self::Basic),
            "2" | "full" | "aggressive" => Some(Self::Aggressive),
            _ => None,
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = match self {
            Self::None => 0,
            Self::Basic => 1,
            Self::Aggressive => 2,
        };
        write!(f, "{n}")
    }
}

/// Counters describing what the pipeline did. Accumulated across
/// every phase a consumer optimizes; exported by XSIM under the
/// `"opt"` object of `xsim-stats/1` and surfaced by HGEN in its
/// synthesis report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Expression nodes over all statements before optimization.
    pub nodes_before: u64,
    /// Expression nodes after optimization (Let right-hand sides and
    /// `Tmp` references included).
    pub nodes_after: u64,
    /// Subtrees replaced by literals (constant folding, including
    /// statically decided `If`/`Cond` guards).
    pub folded: u64,
    /// Algebraic identity rewrites (`x+0`, `x&x`, slice-of-slice, …).
    pub algebraic: u64,
    /// No-op width conversions and full-width slices removed.
    pub ext_removed: u64,
    /// Operators rebuilt at a smaller width by the narrowing pass.
    pub narrowed: u64,
    /// Evaluations saved by temp reuse: for a subexpression occurring
    /// `n` times, `n - 1` hits.
    pub cse_hits: u64,
    /// Staged writes dropped because a later write in the same phase
    /// provably overwrites them.
    pub dead_writes: u64,
}

impl OptStats {
    /// Net expression-node reduction.
    #[must_use]
    pub fn nodes_eliminated(&self) -> u64 {
        self.nodes_before.saturating_sub(self.nodes_after)
    }

    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &Self) {
        self.nodes_before += other.nodes_before;
        self.nodes_after += other.nodes_after;
        self.folded += other.folded;
        self.algebraic += other.algebraic;
        self.ext_removed += other.ext_removed;
        self.narrowed += other.narrowed;
        self.cse_hits += other.cse_hits;
        self.dead_writes += other.dead_writes;
    }
}

/// Bound on the simplify/dead-write fixpoint iteration. Each pass is
/// monotone (nodes shrink or stay), so this is a safety rail, not a
/// tuning knob.
const MAX_PASSES: usize = 4;

/// Runs the pipeline over one phase's statement list and returns the
/// optimized statements. `stats` is *accumulated into* (merged), so a
/// consumer can thread one accumulator through every phase it
/// optimizes.
///
/// At [`OptLevel::None`] the input is cloned untouched and only the
/// node counters are recorded.
#[must_use]
pub fn optimize_stmts(stmts: &[RStmt], level: OptLevel, stats: &mut OptStats) -> Vec<RStmt> {
    let mut local = OptStats { nodes_before: count_nodes(stmts), ..OptStats::default() };
    let mut out: Vec<RStmt> = stmts.to_vec();
    if level >= OptLevel::Basic {
        for _ in 0..MAX_PASSES {
            let mut changed = false;
            out = fold::simplify_stmts(&out, &mut local, &mut changed);
            out = dead::eliminate(out, &mut local, &mut changed);
            if !changed {
                break;
            }
        }
        if level >= OptLevel::Aggressive {
            out = cse::hoist(out, &mut local);
        }
    }
    local.nodes_after = count_nodes(&out);
    stats.merge(&local);
    out
}

/// Counts expression nodes over a statement list (right-hand sides,
/// conditions, and l-value index expressions).
#[must_use]
pub fn count_nodes(stmts: &[RStmt]) -> u64 {
    let mut n = 0u64;
    for s in stmts {
        s.walk_exprs(&mut |_| n += 1);
    }
    n
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::ast::{BinOp, ExtKind, UnOp};
    use crate::rtl::{RExpr, RExprKind, RLvalue, StorageId};
    use bitv::BitVector;

    fn lit(v: u64, w: u32) -> RExpr {
        RExpr::lit(BitVector::from_u64(v, w))
    }

    fn st(id: usize, w: u32) -> RExpr {
        RExpr { kind: RExprKind::Storage(StorageId(id)), width: w }
    }

    fn bin(op: BinOp, a: RExpr, b: RExpr, w: u32) -> RExpr {
        RExpr { kind: RExprKind::Binary(op, Box::new(a), Box::new(b)), width: w }
    }

    fn assign(id: usize, rhs: RExpr) -> RStmt {
        RStmt::Assign { lv: RLvalue::Storage(StorageId(id)), rhs }
    }

    fn opt(stmts: &[RStmt], level: OptLevel) -> (Vec<RStmt>, OptStats) {
        let mut s = OptStats::default();
        let out = optimize_stmts(stmts, level, &mut s);
        (out, s)
    }

    #[test]
    fn folds_constants_bit_true() {
        let e = bin(BinOp::Add, lit(0xFF, 8), lit(1, 8), 8);
        let (out, s) = opt(&[assign(0, e)], OptLevel::Basic);
        match &out[..] {
            [RStmt::Assign { rhs, .. }] => {
                assert_eq!(rhs, &lit(0, 8), "0xFF + 1 wraps at width 8");
            }
            other => panic!("unexpected shape {other:?}"),
        }
        assert!(s.folded >= 1);
        assert!(s.nodes_eliminated() >= 2);
    }

    #[test]
    fn algebraic_identities() {
        let x = st(0, 16);
        let cases = [
            bin(BinOp::Add, x.clone(), lit(0, 16), 16),
            bin(BinOp::Or, x.clone(), lit(0, 16), 16),
            bin(BinOp::Xor, x.clone(), lit(0, 16), 16),
            bin(BinOp::And, x.clone(), lit(0xFFFF, 16), 16),
            bin(BinOp::Mul, x.clone(), lit(1, 16), 16),
            bin(BinOp::Shl, x.clone(), lit(0, 4), 16),
        ];
        for c in cases {
            let (out, _) = opt(&[assign(0, c.clone())], OptLevel::Basic);
            match &out[..] {
                [RStmt::Assign { rhs, .. }] => assert_eq!(rhs, &x, "identity on {c:?}"),
                other => panic!("unexpected shape {other:?}"),
            }
        }
        // Absorbing cases.
        let zero = [
            bin(BinOp::And, x.clone(), lit(0, 16), 16),
            bin(BinOp::Mul, x.clone(), lit(0, 16), 16),
            bin(BinOp::Sub, x.clone(), x.clone(), 16),
            bin(BinOp::Xor, x.clone(), x.clone(), 16),
            bin(BinOp::Shl, x.clone(), lit(16, 8), 16),
        ];
        for c in zero {
            let (out, _) = opt(&[assign(0, c.clone())], OptLevel::Basic);
            match &out[..] {
                [RStmt::Assign { rhs, .. }] => assert_eq!(rhs, &lit(0, 16), "zero on {c:?}"),
                other => panic!("unexpected shape {other:?}"),
            }
        }
    }

    #[test]
    fn static_if_is_flattened() {
        let body = assign(0, st(1, 8));
        let s = RStmt::If {
            cond: bin(BinOp::Eq, lit(3, 4), lit(3, 4), 1),
            then_body: vec![body.clone()],
            else_body: vec![assign(0, lit(9, 8))],
        };
        let (out, stats) = opt(&[s], OptLevel::Basic);
        assert_eq!(out, vec![body]);
        assert!(stats.folded >= 1);
    }

    #[test]
    fn noop_ext_removed_and_exts_collapse() {
        let x = st(0, 8);
        let same = RExpr { kind: RExprKind::Ext(ExtKind::Zext, Box::new(x.clone())), width: 8 };
        let (out, s) = opt(&[assign(0, same)], OptLevel::Basic);
        match &out[..] {
            [RStmt::Assign { rhs, .. }] => assert_eq!(rhs, &x),
            other => panic!("unexpected shape {other:?}"),
        }
        assert_eq!(s.ext_removed, 1);

        let zz = RExpr {
            kind: RExprKind::Ext(
                ExtKind::Zext,
                Box::new(RExpr {
                    kind: RExprKind::Ext(ExtKind::Zext, Box::new(x.clone())),
                    width: 16,
                }),
            ),
            width: 32,
        };
        let (out, _) = opt(&[assign(1, zz)], OptLevel::Basic);
        match &out[..] {
            [RStmt::Assign { rhs, .. }] => {
                assert_eq!(
                    rhs,
                    &RExpr { kind: RExprKind::Ext(ExtKind::Zext, Box::new(x)), width: 32 }
                );
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn narrowing_shrinks_a_wide_multiply() {
        // trunc(zext(a, 128) * zext(b, 128), 16): only the low 16 bits
        // are consumed, so the multiply must drop to width 16.
        let a = st(0, 16);
        let b = st(1, 16);
        let wide =
            |e: RExpr| RExpr { kind: RExprKind::Ext(ExtKind::Zext, Box::new(e)), width: 128 };
        let product = bin(BinOp::Mul, wide(a.clone()), wide(b.clone()), 128);
        let narrow = RExpr { kind: RExprKind::Ext(ExtKind::Trunc, Box::new(product)), width: 16 };
        let (out, s) = opt(&[assign(2, narrow)], OptLevel::Basic);
        match &out[..] {
            [RStmt::Assign { rhs, .. }] => {
                assert_eq!(rhs, &bin(BinOp::Mul, a, b, 16));
            }
            other => panic!("unexpected shape {other:?}"),
        }
        assert!(s.narrowed >= 1);
        let mut max_w = 0;
        out[0].walk_exprs(&mut |e| max_w = max_w.max(e.width));
        assert!(max_w <= 16, "no over-wide intermediate survives");
    }

    #[test]
    fn dead_write_is_dropped_but_conditional_writes_are_kept() {
        let dead = assign(0, lit(1, 8));
        let live = assign(0, lit(2, 8));
        let (out, s) = opt(&[dead, live.clone()], OptLevel::Basic);
        assert_eq!(out, vec![live.clone()]);
        assert_eq!(s.dead_writes, 1);

        // A conditional write does not kill a preceding write.
        let guarded =
            RStmt::If { cond: st(1, 1), then_body: vec![assign(0, lit(2, 8))], else_body: vec![] };
        let first = assign(0, lit(1, 8));
        let (out, s) = opt(&[first.clone(), guarded.clone()], OptLevel::Basic);
        assert_eq!(out, vec![first, guarded]);
        assert_eq!(s.dead_writes, 0);
    }

    #[test]
    fn cse_hoists_repeated_subexpressions() {
        let sum = bin(BinOp::Add, st(0, 16), st(1, 16), 16);
        let prog =
            vec![assign(2, sum.clone()), assign(3, bin(BinOp::Xor, sum.clone(), st(4, 16), 16))];
        let (out, s) = opt(&prog, OptLevel::Aggressive);
        assert_eq!(s.cse_hits, 1);
        match &out[..] {
            [RStmt::Let { tmp, rhs }, RStmt::Assign { rhs: r1, .. }, RStmt::Assign { rhs: r2, .. }] =>
            {
                assert_eq!(rhs, &sum);
                let t = RExpr { kind: RExprKind::Tmp(*tmp), width: 16 };
                assert_eq!(r1, &t);
                assert_eq!(r2, &bin(BinOp::Xor, t, st(4, 16), 16));
            }
            other => panic!("unexpected shape {other:?}"),
        }
        // Basic level leaves the duplicates alone.
        let (out, s) = opt(&prog, OptLevel::Basic);
        assert_eq!(out, prog);
        assert_eq!(s.cse_hits, 0);
    }

    #[test]
    fn opt_level_none_is_identity() {
        let prog = vec![assign(0, bin(BinOp::Add, lit(1, 8), lit(2, 8), 8))];
        let (out, s) = opt(&prog, OptLevel::None);
        assert_eq!(out, prog);
        assert_eq!(s.nodes_eliminated(), 0);
        assert_eq!(s.folded, 0);
    }

    #[test]
    fn unary_fold_and_double_negation() {
        let neg =
            |e: RExpr, w: u32| RExpr { kind: RExprKind::Unary(UnOp::Neg, Box::new(e)), width: w };
        let (out, _) = opt(&[assign(0, neg(lit(1, 8), 8))], OptLevel::Basic);
        match &out[..] {
            [RStmt::Assign { rhs, .. }] => assert_eq!(rhs, &lit(0xFF, 8)),
            other => panic!("unexpected shape {other:?}"),
        }
        let x = st(0, 8);
        let (out, s) = opt(&[assign(1, neg(neg(x.clone(), 8), 8))], OptLevel::Basic);
        match &out[..] {
            [RStmt::Assign { rhs, .. }] => assert_eq!(rhs, &x),
            other => panic!("unexpected shape {other:?}"),
        }
        assert!(s.algebraic >= 1);
    }

    #[test]
    fn level_parsing_and_display() {
        assert_eq!(OptLevel::parse("0"), Some(OptLevel::None));
        assert_eq!(OptLevel::parse("1"), Some(OptLevel::Basic));
        assert_eq!(OptLevel::parse("2"), Some(OptLevel::Aggressive));
        assert_eq!(OptLevel::parse("full"), Some(OptLevel::Aggressive));
        assert_eq!(OptLevel::parse("3"), None);
        assert_eq!(OptLevel::default(), OptLevel::Aggressive);
        assert_eq!(OptLevel::Aggressive.to_string(), "2");
    }
}
