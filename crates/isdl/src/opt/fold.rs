//! Simplification: bit-true constant folding, algebraic identities,
//! and no-op width-conversion removal.
//!
//! This file is also the single source of truth for RTL *evaluation
//! semantics*: [`eval_binop`], [`eval_unop`], and [`eval_ext`] define
//! what every operator means on [`bitv::BitVector`] values. The
//! simulator cores delegate to these, so the folder can never drift
//! from the interpreter.

use super::{narrow, OptStats};
use crate::ast::{BinOp, ExtKind, UnOp};
use crate::rtl::{RExpr, RExprKind, RLvalue, RStmt};
use bitv::BitVector;

/// Applies a binary RTL operator to two values of equal width
/// (except shifts, where `b` supplies only the amount).
///
/// Total on all inputs: division and remainder by zero are defined
/// (quotient all-ones, remainder = dividend, per `bitv`), which is
/// what licenses speculative evaluation under optimization.
#[must_use]
pub fn eval_binop(op: BinOp, a: &BitVector, b: &BitVector) -> BitVector {
    use BinOp::*;
    match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Mul => a.wrapping_mul(b),
        UDiv => a.unsigned_div(b),
        URem => a.unsigned_rem(b),
        SDiv => a.signed_div(b),
        SRem => a.signed_rem(b),
        And => a.and(b),
        Or => a.or(b),
        Xor => a.xor(b),
        Shl => a.shl(shift_amount(b)),
        Lshr => a.lshr(shift_amount(b)),
        Ashr => a.ashr(shift_amount(b)),
        Eq => BitVector::from_bool(a == b),
        Ne => BitVector::from_bool(a != b),
        Ult => BitVector::from_bool(a.cmp_unsigned(b).is_lt()),
        Ule => BitVector::from_bool(a.cmp_unsigned(b).is_le()),
        Slt => BitVector::from_bool(a.cmp_signed(b).is_lt()),
        Sle => BitVector::from_bool(a.cmp_signed(b).is_le()),
        LAnd => BitVector::from_bool(!a.is_zero() && !b.is_zero()),
        LOr => BitVector::from_bool(!a.is_zero() || !b.is_zero()),
    }
}

/// Applies a unary RTL operator.
#[must_use]
pub fn eval_unop(op: UnOp, v: &BitVector) -> BitVector {
    match op {
        UnOp::Neg => v.wrapping_neg(),
        UnOp::Not => v.not(),
        UnOp::LNot => BitVector::from_bool(v.is_zero()),
    }
}

/// Applies a width conversion to `width` bits.
#[must_use]
pub fn eval_ext(kind: ExtKind, v: &BitVector, width: u32) -> BitVector {
    match kind {
        ExtKind::Zext => v.zext(width),
        ExtKind::Sext => v.sext(width),
        ExtKind::Trunc => v.trunc(width),
    }
}

fn shift_amount(b: &BitVector) -> u32 {
    b.to_u64().map_or(u32::MAX, |v| u32::try_from(v).unwrap_or(u32::MAX))
}

/// One simplification sweep over a statement list. Sets `changed`
/// when any rewrite fired; the driver iterates to a fixpoint.
pub(super) fn simplify_stmts(stmts: &[RStmt], st: &mut OptStats, changed: &mut bool) -> Vec<RStmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        simplify_stmt(s, &mut out, st, changed);
    }
    out
}

fn simplify_stmt(s: &RStmt, out: &mut Vec<RStmt>, st: &mut OptStats, changed: &mut bool) {
    match s {
        RStmt::Assign { lv, rhs } => out.push(RStmt::Assign {
            lv: simplify_lvalue(lv, st, changed),
            rhs: simplify(rhs, st, changed),
        }),
        RStmt::If { cond, then_body, else_body } => {
            let cond = simplify(cond, st, changed);
            if let RExprKind::Lit(v) = &cond.kind {
                // The guard is static: splice the taken arm in place.
                st.folded += 1;
                *changed = true;
                let body = if v.is_zero() { else_body } else { then_body };
                for inner in body {
                    simplify_stmt(inner, out, st, changed);
                }
                return;
            }
            let then_body = simplify_stmts(then_body, st, changed);
            let else_body = simplify_stmts(else_body, st, changed);
            if then_body.is_empty() && else_body.is_empty() {
                // Both arms are empty and the guard is pure: nothing
                // can happen.
                st.algebraic += 1;
                *changed = true;
                return;
            }
            out.push(RStmt::If { cond, then_body, else_body });
        }
        RStmt::Let { tmp, rhs } => {
            out.push(RStmt::Let { tmp: *tmp, rhs: simplify(rhs, st, changed) });
        }
    }
}

fn simplify_lvalue(lv: &RLvalue, st: &mut OptStats, changed: &mut bool) -> RLvalue {
    match lv {
        RLvalue::StorageIndexed(id, idx) => {
            RLvalue::StorageIndexed(*id, simplify(idx, st, changed))
        }
        RLvalue::Slice { base, hi, lo } => {
            RLvalue::Slice { base: Box::new(simplify_lvalue(base, st, changed)), hi: *hi, lo: *lo }
        }
        RLvalue::Storage(_) | RLvalue::Param(_) => lv.clone(),
    }
}

/// Bottom-up expression simplification.
pub(super) fn simplify(e: &RExpr, st: &mut OptStats, changed: &mut bool) -> RExpr {
    let w = e.width;
    match &e.kind {
        RExprKind::Lit(_) | RExprKind::Storage(_) | RExprKind::Param(_) | RExprKind::Tmp(_) => {
            e.clone()
        }
        RExprKind::StorageIndexed(id, idx) => RExpr {
            kind: RExprKind::StorageIndexed(*id, Box::new(simplify(idx, st, changed))),
            width: w,
        },
        RExprKind::Slice(inner, hi, lo) => {
            let inner = simplify(inner, st, changed);
            let (hi, lo) = (*hi, *lo);
            if let RExprKind::Lit(v) = &inner.kind {
                st.folded += 1;
                *changed = true;
                return RExpr::lit(v.slice(hi, lo));
            }
            if lo == 0 && hi == inner.width - 1 {
                // Full-width slice is the identity.
                st.ext_removed += 1;
                *changed = true;
                return inner;
            }
            if let RExprKind::Slice(base, _, l2) = &inner.kind {
                // x[h2:l2][hi:lo] = x[l2+hi : l2+lo].
                st.algebraic += 1;
                *changed = true;
                return RExpr { kind: RExprKind::Slice(base.clone(), l2 + hi, l2 + lo), width: w };
            }
            if let RExprKind::Ext(kind, x) = &inner.kind {
                // Slicing through a width extension: bits below the
                // source width come straight from the source, bits at
                // or above it are zero (zext) — so the slice either
                // drops the extension entirely, folds to zero, or
                // shrinks to the surviving low part.
                let xw = x.width;
                match kind {
                    ExtKind::Zext if lo >= xw => {
                        // Entirely inside the zero-fill.
                        st.folded += 1;
                        *changed = true;
                        return RExpr::lit(BitVector::zero(w));
                    }
                    ExtKind::Zext | ExtKind::Sext | ExtKind::Trunc if hi < xw => {
                        // Entirely inside the source (a truncation
                        // keeps low bits, so any slice below its width
                        // reads the source directly).
                        st.ext_removed += 1;
                        *changed = true;
                        return RExpr { kind: RExprKind::Slice(x.clone(), hi, lo), width: w };
                    }
                    ExtKind::Zext => {
                        // Straddles the boundary: zext of the
                        // surviving source bits.
                        st.narrowed += 1;
                        *changed = true;
                        let part = if lo == 0 {
                            (**x).clone()
                        } else {
                            RExpr { kind: RExprKind::Slice(x.clone(), xw - 1, lo), width: xw - lo }
                        };
                        return RExpr {
                            kind: RExprKind::Ext(ExtKind::Zext, Box::new(part)),
                            width: w,
                        };
                    }
                    ExtKind::Sext | ExtKind::Trunc => {}
                }
            }
            if lo == 0 {
                if let Some(n) = narrow::narrow(&inner, hi + 1, st) {
                    *changed = true;
                    return n;
                }
            }
            RExpr { kind: RExprKind::Slice(Box::new(inner), hi, lo), width: w }
        }
        RExprKind::Unary(op, inner) => {
            let inner = simplify(inner, st, changed);
            if let RExprKind::Lit(v) = &inner.kind {
                st.folded += 1;
                *changed = true;
                return RExpr::lit(eval_unop(*op, v));
            }
            if let RExprKind::Unary(op2, x) = &inner.kind {
                let cancels = matches!((op, op2), (UnOp::Neg, UnOp::Neg) | (UnOp::Not, UnOp::Not));
                if cancels {
                    st.algebraic += 1;
                    *changed = true;
                    return (**x).clone();
                }
            }
            RExpr { kind: RExprKind::Unary(*op, Box::new(inner)), width: w }
        }
        RExprKind::Binary(op, a, b) => {
            let a = simplify(a, st, changed);
            let b = simplify(b, st, changed);
            if let (RExprKind::Lit(x), RExprKind::Lit(y)) = (&a.kind, &b.kind) {
                let v = eval_binop(*op, x, y);
                debug_assert_eq!(v.width(), w, "sema guarantees operator result widths");
                if v.width() == w {
                    st.folded += 1;
                    *changed = true;
                    return RExpr::lit(v);
                }
            }
            if let Some(r) = algebraic(*op, &a, &b, w, st) {
                *changed = true;
                return r;
            }
            RExpr { kind: RExprKind::Binary(*op, Box::new(a), Box::new(b)), width: w }
        }
        RExprKind::Cond(c, t, f) => {
            let c = simplify(c, st, changed);
            let t = simplify(t, st, changed);
            let f = simplify(f, st, changed);
            if let RExprKind::Lit(v) = &c.kind {
                st.folded += 1;
                *changed = true;
                return if v.is_zero() { f } else { t };
            }
            if t == f {
                // Both arms equal and the guard is pure.
                st.algebraic += 1;
                *changed = true;
                return t;
            }
            RExpr { kind: RExprKind::Cond(Box::new(c), Box::new(t), Box::new(f)), width: w }
        }
        RExprKind::Ext(kind, inner) => {
            let inner = simplify(inner, st, changed);
            if let RExprKind::Lit(v) = &inner.kind {
                st.folded += 1;
                *changed = true;
                return RExpr::lit(eval_ext(*kind, v, w));
            }
            if inner.width == w {
                // Converting to the width we already have.
                st.ext_removed += 1;
                *changed = true;
                return inner;
            }
            match kind {
                ExtKind::Trunc => {
                    if let Some(n) = narrow::narrow(&inner, w, st) {
                        *changed = true;
                        return n;
                    }
                }
                ExtKind::Zext | ExtKind::Sext => {
                    if let RExprKind::Ext(k2, x) = &inner.kind {
                        // zext∘zext and sext∘sext collapse; sext of a
                        // zext that already widened has a zero sign
                        // bit, so it is a zext.
                        let collapsed = match (kind, k2) {
                            (ExtKind::Zext, ExtKind::Zext) => Some(ExtKind::Zext),
                            (ExtKind::Sext, ExtKind::Sext) => Some(ExtKind::Sext),
                            (ExtKind::Sext, ExtKind::Zext) if inner.width > x.width => {
                                Some(ExtKind::Zext)
                            }
                            _ => None,
                        };
                        if let Some(k) = collapsed {
                            st.ext_removed += 1;
                            *changed = true;
                            return RExpr { kind: RExprKind::Ext(k, x.clone()), width: w };
                        }
                    }
                }
            }
            RExpr { kind: RExprKind::Ext(*kind, Box::new(inner)), width: w }
        }
        RExprKind::Concat(parts) => {
            let parts: Vec<RExpr> = parts.iter().map(|p| simplify(p, st, changed)).collect();
            if let [only] = parts.as_slice() {
                st.ext_removed += 1;
                *changed = true;
                return only.clone();
            }
            let all_lit =
                !parts.is_empty() && parts.iter().all(|p| matches!(p.kind, RExprKind::Lit(_)));
            if all_lit {
                let mut acc: Option<BitVector> = None;
                for p in &parts {
                    if let RExprKind::Lit(v) = &p.kind {
                        acc = Some(match acc {
                            None => v.clone(),
                            Some(hi) => hi.concat(v),
                        });
                    }
                }
                if let Some(v) = acc {
                    st.folded += 1;
                    *changed = true;
                    return RExpr::lit(v);
                }
            }
            RExpr { kind: RExprKind::Concat(parts), width: w }
        }
    }
}

/// Identity and absorption rewrites for a binary operator whose
/// operands are already simplified. Returns `None` when nothing fires.
fn algebraic(op: BinOp, a: &RExpr, b: &RExpr, w: u32, st: &mut OptStats) -> Option<RExpr> {
    use BinOp::*;
    let hit = |st: &mut OptStats, e: RExpr| {
        st.algebraic += 1;
        Some(e)
    };
    let zero = |st: &mut OptStats| {
        st.algebraic += 1;
        Some(RExpr::lit(BitVector::zero(w)))
    };
    let bit = |st: &mut OptStats, v: bool| {
        st.algebraic += 1;
        Some(RExpr::lit(BitVector::from_bool(v)))
    };
    match op {
        Add => {
            if is_zero_lit(b) {
                return hit(st, a.clone());
            }
            if is_zero_lit(a) {
                return hit(st, b.clone());
            }
        }
        Sub => {
            if is_zero_lit(b) {
                return hit(st, a.clone());
            }
            if a == b {
                return zero(st);
            }
        }
        Mul => {
            if is_zero_lit(a) || is_zero_lit(b) {
                return zero(st);
            }
            if is_one_lit(b) {
                return hit(st, a.clone());
            }
            if is_one_lit(a) {
                return hit(st, b.clone());
            }
        }
        And => {
            if is_zero_lit(a) || is_zero_lit(b) {
                return zero(st);
            }
            if is_ones_lit(b) || a == b {
                return hit(st, a.clone());
            }
            if is_ones_lit(a) {
                return hit(st, b.clone());
            }
        }
        Or => {
            if is_ones_lit(a) || is_ones_lit(b) {
                st.algebraic += 1;
                return Some(RExpr::lit(BitVector::all_ones(w)));
            }
            if is_zero_lit(b) || a == b {
                return hit(st, a.clone());
            }
            if is_zero_lit(a) {
                return hit(st, b.clone());
            }
        }
        Xor => {
            if a == b {
                return zero(st);
            }
            if is_zero_lit(b) {
                return hit(st, a.clone());
            }
            if is_zero_lit(a) {
                return hit(st, b.clone());
            }
        }
        Shl | Lshr => {
            if let Some(n) = lit_u64(b) {
                if n == 0 {
                    return hit(st, a.clone());
                }
                if n >= u64::from(w) {
                    return zero(st);
                }
            }
        }
        Ashr => {
            if lit_u64(b) == Some(0) {
                return hit(st, a.clone());
            }
        }
        UDiv => {
            if is_one_lit(b) {
                return hit(st, a.clone());
            }
        }
        URem => {
            if is_one_lit(b) {
                return zero(st);
            }
        }
        Eq => {
            if a == b {
                return bit(st, true);
            }
        }
        Ne => {
            if a == b {
                return bit(st, false);
            }
        }
        LAnd => {
            if is_zero_lit(a) || is_zero_lit(b) {
                return bit(st, false);
            }
        }
        LOr => {
            if is_nonzero_lit(a) || is_nonzero_lit(b) {
                return bit(st, true);
            }
        }
        SDiv | SRem | Ult | Ule | Slt | Sle => {}
    }
    None
}

fn as_lit(e: &RExpr) -> Option<&BitVector> {
    if let RExprKind::Lit(v) = &e.kind {
        Some(v)
    } else {
        None
    }
}

fn is_zero_lit(e: &RExpr) -> bool {
    as_lit(e).is_some_and(BitVector::is_zero)
}

fn is_nonzero_lit(e: &RExpr) -> bool {
    as_lit(e).is_some_and(|v| !v.is_zero())
}

fn is_one_lit(e: &RExpr) -> bool {
    as_lit(e).and_then(BitVector::to_u64) == Some(1)
}

fn is_ones_lit(e: &RExpr) -> bool {
    as_lit(e).is_some_and(|v| *v == BitVector::all_ones(v.width()))
}

/// The value of a literal expression, when it fits in a `u64`.
pub(super) fn lit_u64(e: &RExpr) -> Option<u64> {
    as_lit(e).and_then(BitVector::to_u64)
}
