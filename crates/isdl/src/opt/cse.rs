//! Common-subexpression elimination within one operation phase.
//!
//! Expressions are pure and total, and reads within a phase observe
//! the same cycle-start state, so any subexpression occurring twice —
//! even in different `If` bodies or `Cond` arms — can be hoisted to a
//! single [`RStmt::Let`] at the top of the phase and referenced via
//! [`RExprKind::Tmp`]. Hoisting may *evaluate* an expression on paths
//! that previously skipped it; totality makes that unobservable.

use super::rewrite::hoist_where;
use super::OptStats;
use crate::rtl::{RExpr, RExprKind, RStmt};

/// Hoists repeated subexpressions into `Let` temporaries prepended to
/// the statement list.
pub(super) fn hoist(stmts: Vec<RStmt>, st: &mut OptStats) -> Vec<RStmt> {
    let (out, hoisted) = hoist_where(stmts, 2, &eligible);
    for h in &hoisted {
        st.cse_hits += h.occurrences - 1;
    }
    out
}

/// A subexpression worth naming: anything that performs work or a
/// read. Leaves (literals, parameter and storage references,
/// temporaries) are free.
fn eligible(e: &RExpr) -> bool {
    !matches!(
        e.kind,
        RExprKind::Lit(_) | RExprKind::Storage(_) | RExprKind::Param(_) | RExprKind::Tmp(_)
    )
}
