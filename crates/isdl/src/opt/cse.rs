//! Common-subexpression elimination within one operation phase.
//!
//! Expressions are pure and total, and reads within a phase observe
//! the same cycle-start state, so any subexpression occurring twice —
//! even in different `If` bodies or `Cond` arms — can be hoisted to a
//! single [`RStmt::Let`] at the top of the phase and referenced via
//! [`RExprKind::Tmp`]. Hoisting may *evaluate* an expression on paths
//! that previously skipped it; totality makes that unobservable.

use super::OptStats;
use crate::rtl::{RExpr, RExprKind, RLvalue, RStmt};
use std::collections::HashMap;

/// Hoists repeated subexpressions into `Let` temporaries prepended to
/// the statement list.
pub(super) fn hoist(stmts: Vec<RStmt>, st: &mut OptStats) -> Vec<RStmt> {
    let mut next_tmp = 0usize;
    for s in &stmts {
        if let RStmt::Let { tmp, .. } = s {
            next_tmp = next_tmp.max(tmp + 1);
        }
    }

    // Count structural occurrences of every hoistable subexpression.
    let mut counts: HashMap<String, (u64, RExpr)> = HashMap::new();
    for s in &stmts {
        s.walk_exprs(&mut |e| {
            if eligible(e) {
                counts
                    .entry(format!("{e:?}"))
                    .and_modify(|c| c.0 += 1)
                    .or_insert_with(|| (1, e.clone()));
            }
        });
    }
    let mut candidates: Vec<(String, RExpr, u64)> =
        counts.into_iter().filter(|(_, (n, _))| *n >= 2).map(|(k, (n, e))| (k, e, n)).collect();
    if candidates.is_empty() {
        return stmts;
    }
    // Smallest first so that a candidate's own subexpressions already
    // have temporaries when its `Let` right-hand side is built; the
    // key breaks ties deterministically.
    candidates.sort_by(|a, b| (size(&a.1), &a.0).cmp(&(size(&b.1), &b.0)));

    let mut tmp_of: HashMap<String, usize> = HashMap::new();
    let mut lets: Vec<RStmt> = Vec::with_capacity(candidates.len());
    for (key, e, n) in candidates {
        let rhs = replace_children(&e, &tmp_of);
        let tmp = next_tmp;
        next_tmp += 1;
        tmp_of.insert(key, tmp);
        lets.push(RStmt::Let { tmp, rhs });
        st.cse_hits += n - 1;
    }

    let mut out = lets;
    out.extend(stmts.into_iter().map(|s| replace_stmt(s, &tmp_of)));
    out
}

/// A subexpression worth naming: anything that performs work or a
/// read. Leaves (literals, parameter and storage references,
/// temporaries) are free.
fn eligible(e: &RExpr) -> bool {
    !matches!(
        e.kind,
        RExprKind::Lit(_) | RExprKind::Storage(_) | RExprKind::Param(_) | RExprKind::Tmp(_)
    )
}

fn size(e: &RExpr) -> u64 {
    let mut n = 0u64;
    e.walk(&mut |_| n += 1);
    n
}

fn replace_stmt(s: RStmt, tmp_of: &HashMap<String, usize>) -> RStmt {
    match s {
        RStmt::Assign { lv, rhs } => {
            RStmt::Assign { lv: replace_lvalue(lv, tmp_of), rhs: replace(&rhs, tmp_of) }
        }
        RStmt::If { cond, then_body, else_body } => RStmt::If {
            cond: replace(&cond, tmp_of),
            then_body: then_body.into_iter().map(|s| replace_stmt(s, tmp_of)).collect(),
            else_body: else_body.into_iter().map(|s| replace_stmt(s, tmp_of)).collect(),
        },
        RStmt::Let { tmp, rhs } => RStmt::Let { tmp, rhs: replace(&rhs, tmp_of) },
    }
}

fn replace_lvalue(lv: RLvalue, tmp_of: &HashMap<String, usize>) -> RLvalue {
    match lv {
        RLvalue::StorageIndexed(id, idx) => RLvalue::StorageIndexed(id, replace(&idx, tmp_of)),
        RLvalue::Slice { base, hi, lo } => {
            RLvalue::Slice { base: Box::new(replace_lvalue(*base, tmp_of)), hi, lo }
        }
        other @ (RLvalue::Storage(_) | RLvalue::Param(_)) => other,
    }
}

/// Top-down replacement: an expression matching a candidate becomes
/// its temporary; otherwise its children are rewritten.
fn replace(e: &RExpr, tmp_of: &HashMap<String, usize>) -> RExpr {
    if eligible(e) {
        if let Some(&tmp) = tmp_of.get(&format!("{e:?}")) {
            return RExpr { kind: RExprKind::Tmp(tmp), width: e.width };
        }
    }
    replace_children(e, tmp_of)
}

fn replace_children(e: &RExpr, tmp_of: &HashMap<String, usize>) -> RExpr {
    let kind = match &e.kind {
        k @ (RExprKind::Lit(_)
        | RExprKind::Storage(_)
        | RExprKind::Param(_)
        | RExprKind::Tmp(_)) => k.clone(),
        RExprKind::StorageIndexed(id, idx) => {
            RExprKind::StorageIndexed(*id, Box::new(replace(idx, tmp_of)))
        }
        RExprKind::Slice(x, hi, lo) => RExprKind::Slice(Box::new(replace(x, tmp_of)), *hi, *lo),
        RExprKind::Unary(op, x) => RExprKind::Unary(*op, Box::new(replace(x, tmp_of))),
        RExprKind::Binary(op, a, b) => {
            RExprKind::Binary(*op, Box::new(replace(a, tmp_of)), Box::new(replace(b, tmp_of)))
        }
        RExprKind::Cond(c, t, f) => RExprKind::Cond(
            Box::new(replace(c, tmp_of)),
            Box::new(replace(t, tmp_of)),
            Box::new(replace(f, tmp_of)),
        ),
        RExprKind::Ext(k, x) => RExprKind::Ext(*k, Box::new(replace(x, tmp_of))),
        RExprKind::Concat(parts) => {
            RExprKind::Concat(parts.iter().map(|p| replace(p, tmp_of)).collect())
        }
    };
    RExpr { kind, width: e.width }
}
