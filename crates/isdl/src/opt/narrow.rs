//! Width narrowing: push a truncation down through operators whose
//! low `w` result bits depend only on the low `w` operand bits.
//!
//! The payoff is twofold: the tree core manipulates smaller values,
//! and an operation whose widest intermediate drops to 64 bits or
//! fewer becomes eligible for gensim's fast u64 bytecode lane instead
//! of the `Wide` tree fallback.

use super::OptStats;
use crate::ast::{BinOp, ExtKind, UnOp};
use crate::rtl::{RExpr, RExprKind};

/// Tries to rewrite `e` (width > `w`) into an equivalent expression of
/// width `w` equal to the low `w` bits of `e`. Returns `None` when the
/// root operator does not distribute over truncation — the caller then
/// keeps the explicit `Trunc`/`Slice`.
pub(super) fn narrow(e: &RExpr, w: u32, st: &mut OptStats) -> Option<RExpr> {
    debug_assert!(w < e.width, "narrowing must shrink");
    match &e.kind {
        RExprKind::Lit(v) => {
            st.folded += 1;
            Some(RExpr::lit(v.trunc(w)))
        }
        // Carries, borrows, and partial products propagate strictly
        // upward, and bitwise ops are per-bit: the low `w` result bits
        // of these depend only on the low `w` operand bits.
        RExprKind::Binary(
            op @ (BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor),
            a,
            b,
        ) => {
            st.narrowed += 1;
            Some(RExpr {
                kind: RExprKind::Binary(
                    *op,
                    Box::new(narrow_or_trunc(a, w, st)),
                    Box::new(narrow_or_trunc(b, w, st)),
                ),
                width: w,
            })
        }
        // A left shift fills from zero: low bits of the wide shift
        // equal the narrow shift of the truncated value (amounts past
        // the narrow width produce zero either way). The amount
        // operand is left alone — it is an amount, not a value.
        RExprKind::Binary(BinOp::Shl, a, amount) => {
            st.narrowed += 1;
            Some(RExpr {
                kind: RExprKind::Binary(
                    BinOp::Shl,
                    Box::new(narrow_or_trunc(a, w, st)),
                    amount.clone(),
                ),
                width: w,
            })
        }
        RExprKind::Unary(op @ (UnOp::Neg | UnOp::Not), a) => {
            st.narrowed += 1;
            Some(RExpr {
                kind: RExprKind::Unary(*op, Box::new(narrow_or_trunc(a, w, st))),
                width: w,
            })
        }
        RExprKind::Ext(ExtKind::Trunc, x) => {
            // Truncating twice: keep only the final width.
            st.ext_removed += 1;
            Some(narrow_or_trunc(x, w, st))
        }
        RExprKind::Ext(kind @ (ExtKind::Zext | ExtKind::Sext), x) => {
            if w <= x.width {
                // The extension bits are entirely discarded.
                st.ext_removed += 1;
                Some(narrow_or_trunc(x, w, st))
            } else {
                // Still an extension, just to a smaller width.
                st.narrowed += 1;
                Some(RExpr { kind: RExprKind::Ext(*kind, x.clone()), width: w })
            }
        }
        RExprKind::Cond(c, t, f) => {
            st.narrowed += 1;
            Some(RExpr {
                kind: RExprKind::Cond(
                    c.clone(),
                    Box::new(narrow_or_trunc(t, w, st)),
                    Box::new(narrow_or_trunc(f, w, st)),
                ),
                width: w,
            })
        }
        RExprKind::Slice(x, _, lo) => {
            // Low `w` bits of x[hi:lo] are x[lo+w-1:lo].
            st.narrowed += 1;
            Some(RExpr { kind: RExprKind::Slice(x.clone(), lo + w - 1, *lo), width: w })
        }
        // A logical right shift by a *constant* is bit selection: the
        // low `w` bits of `x >> c` are `x[c+w-1 : c]` (zero-filled
        // when the range runs past the top of `x`). This is what lets
        // a strength-reduced power-of-two division narrow all the way
        // down; a variable shift amount stays opaque.
        RExprKind::Binary(BinOp::Lshr, x, amount) => {
            let c = match &amount.kind {
                RExprKind::Lit(v) => u32::try_from(v.to_u64()?).ok()?,
                _ => return None,
            };
            st.narrowed += 1;
            if c >= x.width {
                // Shifted entirely past the value: all zeros.
                return Some(RExpr::lit(bitv::BitVector::zero(w)));
            }
            let hi = (c + w - 1).min(x.width - 1);
            let part_w = hi - c + 1;
            let part = RExpr { kind: RExprKind::Slice(x.clone(), hi, c), width: part_w };
            Some(if part_w == w {
                part
            } else {
                RExpr { kind: RExprKind::Ext(ExtKind::Zext, Box::new(part)), width: w }
            })
        }
        // Arithmetic right shifts, division, remainder, comparisons,
        // reads, parameters, concatenations: high operand bits can
        // reach the low result bits (or the node is opaque) — keep the
        // explicit truncation.
        _ => None,
    }
}

/// Narrows `a` to `w` bits, falling back to an explicit truncation
/// when the structure does not distribute. Width-preserving calls
/// return the expression unchanged.
fn narrow_or_trunc(a: &RExpr, w: u32, st: &mut OptStats) -> RExpr {
    if w == a.width {
        return a.clone();
    }
    narrow(a, w, st).unwrap_or_else(|| RExpr {
        kind: RExprKind::Ext(ExtKind::Trunc, Box::new(a.clone())),
        width: w,
    })
}
