//! Shared subexpression-hoisting machinery.
//!
//! Three passes hoist expressions into [`RStmt::Let`] temporaries —
//! CSE ([`super::cse`]), load forwarding ([`super::fwd`]) and decode
//! sharing ([`super::share`]). They differ only in which expressions
//! they consider and how many occurrences justify a temporary; the
//! counting, deterministic ordering, `Let` construction, and top-down
//! replacement live here so all three behave identically.

use crate::rtl::{RExpr, RExprKind, RLvalue, RStmt};
use std::collections::HashMap;

/// One hoisted expression: its structural key, the expression, and how
/// often it occurred.
pub(super) struct Hoisted {
    /// Number of structural occurrences in the input.
    pub occurrences: u64,
}

/// Hoists every subexpression matched by `pred` that occurs at least
/// `min_count` times into a `Let` prepended to the statement list.
///
/// Candidates are built smallest-first so a candidate's own
/// subexpressions already have temporaries when its right-hand side is
/// constructed; the structural key breaks ties, making the result
/// deterministic. Returns the rewritten statements and one [`Hoisted`]
/// record per new temporary (empty when nothing matched).
pub(super) fn hoist_where(
    stmts: Vec<RStmt>,
    min_count: u64,
    pred: &dyn Fn(&RExpr) -> bool,
) -> (Vec<RStmt>, Vec<Hoisted>) {
    let mut next_tmp = next_tmp_index(&stmts);

    // Count structural occurrences of every matching subexpression.
    let mut counts: HashMap<String, (u64, RExpr)> = HashMap::new();
    for s in &stmts {
        s.walk_exprs(&mut |e| {
            if pred(e) {
                counts
                    .entry(format!("{e:?}"))
                    .and_modify(|c| c.0 += 1)
                    .or_insert_with(|| (1, e.clone()));
            }
        });
    }
    let mut candidates: Vec<(String, RExpr, u64)> = counts
        .into_iter()
        .filter(|(_, (n, _))| *n >= min_count)
        .map(|(k, (n, e))| (k, e, n))
        .collect();
    if candidates.is_empty() {
        return (stmts, Vec::new());
    }
    candidates.sort_by(|a, b| (size(&a.1), &a.0).cmp(&(size(&b.1), &b.0)));

    let mut tmp_of: HashMap<String, usize> = HashMap::new();
    let mut lets: Vec<RStmt> = Vec::with_capacity(candidates.len());
    let mut hoisted = Vec::with_capacity(candidates.len());
    for (key, e, n) in candidates {
        let rhs = replace_children(&e, &tmp_of);
        let tmp = next_tmp;
        next_tmp += 1;
        tmp_of.insert(key, tmp);
        lets.push(RStmt::Let { tmp, rhs });
        hoisted.push(Hoisted { occurrences: n });
    }

    let mut out = lets;
    out.extend(stmts.into_iter().map(|s| replace_stmt(s, &tmp_of)));
    (out, hoisted)
}

/// The first unused temporary index in `stmts`.
pub(super) fn next_tmp_index(stmts: &[RStmt]) -> usize {
    let mut next = 0usize;
    for s in stmts {
        if let RStmt::Let { tmp, .. } = s {
            next = next.max(tmp + 1);
        }
    }
    next
}

/// Expression-node count of one expression tree.
pub(super) fn size(e: &RExpr) -> u64 {
    let mut n = 0u64;
    e.walk(&mut |_| n += 1);
    n
}

fn replace_stmt(s: RStmt, tmp_of: &HashMap<String, usize>) -> RStmt {
    match s {
        RStmt::Assign { lv, rhs } => {
            RStmt::Assign { lv: replace_lvalue(lv, tmp_of), rhs: replace(&rhs, tmp_of) }
        }
        RStmt::If { cond, then_body, else_body } => RStmt::If {
            cond: replace(&cond, tmp_of),
            then_body: then_body.into_iter().map(|s| replace_stmt(s, tmp_of)).collect(),
            else_body: else_body.into_iter().map(|s| replace_stmt(s, tmp_of)).collect(),
        },
        RStmt::Let { tmp, rhs } => RStmt::Let { tmp, rhs: replace(&rhs, tmp_of) },
    }
}

fn replace_lvalue(lv: RLvalue, tmp_of: &HashMap<String, usize>) -> RLvalue {
    match lv {
        RLvalue::StorageIndexed(id, idx) => RLvalue::StorageIndexed(id, replace(&idx, tmp_of)),
        RLvalue::Slice { base, hi, lo } => {
            RLvalue::Slice { base: Box::new(replace_lvalue(*base, tmp_of)), hi, lo }
        }
        other @ (RLvalue::Storage(_) | RLvalue::Param(_)) => other,
    }
}

/// Top-down replacement: an expression matching a candidate becomes
/// its temporary; otherwise its children are rewritten.
fn replace(e: &RExpr, tmp_of: &HashMap<String, usize>) -> RExpr {
    if !matches!(
        e.kind,
        RExprKind::Lit(_) | RExprKind::Storage(_) | RExprKind::Param(_) | RExprKind::Tmp(_)
    ) {
        if let Some(&tmp) = tmp_of.get(&format!("{e:?}")) {
            return RExpr { kind: RExprKind::Tmp(tmp), width: e.width };
        }
    }
    replace_children(e, tmp_of)
}

fn replace_children(e: &RExpr, tmp_of: &HashMap<String, usize>) -> RExpr {
    let kind = match &e.kind {
        k @ (RExprKind::Lit(_)
        | RExprKind::Storage(_)
        | RExprKind::Param(_)
        | RExprKind::Tmp(_)) => k.clone(),
        RExprKind::StorageIndexed(id, idx) => {
            RExprKind::StorageIndexed(*id, Box::new(replace(idx, tmp_of)))
        }
        RExprKind::Slice(x, hi, lo) => RExprKind::Slice(Box::new(replace(x, tmp_of)), *hi, *lo),
        RExprKind::Unary(op, x) => RExprKind::Unary(*op, Box::new(replace(x, tmp_of))),
        RExprKind::Binary(op, a, b) => {
            RExprKind::Binary(*op, Box::new(replace(a, tmp_of)), Box::new(replace(b, tmp_of)))
        }
        RExprKind::Cond(c, t, f) => RExprKind::Cond(
            Box::new(replace(c, tmp_of)),
            Box::new(replace(t, tmp_of)),
            Box::new(replace(f, tmp_of)),
        ),
        RExprKind::Ext(k, x) => RExprKind::Ext(*k, Box::new(replace(x, tmp_of))),
        RExprKind::Concat(parts) => {
            RExprKind::Concat(parts.iter().map(|p| replace(p, tmp_of)).collect())
        }
    };
    RExpr { kind, width: e.width }
}
