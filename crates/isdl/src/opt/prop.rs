//! Copy and constant propagation through `Let` temporaries.
//!
//! Semantic analysis never emits [`RStmt::Let`] — temporaries exist
//! only where the optimizer (or a caller-selected pass schedule) puts
//! them — so propagation here is the middle-end cleaning up after
//! itself: a binding whose value is a *leaf* (literal, storage read,
//! parameter, or another temporary) is inlined into every use, and a
//! binding nobody references is dropped. Both are sound because
//! expressions are pure and reads within a phase observe cycle-start
//! state: duplicating a storage read cannot observe a different value,
//! and dropping an unused pure binding stages no writes.
//!
//! Propagation is deliberately *not* performed across storage
//! assignments — `R <- x; y <- R` must keep reading `R`'s cycle-start
//! value, which the assignment does not change within the phase, so
//! rewriting uses of `R` would be meaningless; rewriting them to `x`
//! would be wrong.

use super::OptStats;
use crate::rtl::{RExpr, RExprKind, RLvalue, RStmt};
use std::collections::{HashMap, HashSet};

/// Inlines leaf-valued `Let` bindings and drops unused ones.
pub(super) fn propagate(stmts: Vec<RStmt>, st: &mut OptStats, changed: &mut bool) -> Vec<RStmt> {
    // Forward substitution of leaf bindings.
    let mut env: HashMap<usize, RExpr> = HashMap::new();
    let mut out: Vec<RStmt> = Vec::with_capacity(stmts.len());
    for s in stmts {
        out.push(subst_stmt(s, &mut env, st, changed));
    }

    // Drop bindings that are never referenced; removing one can orphan
    // another (its value may have been the only use), so iterate.
    loop {
        let mut used: HashSet<usize> = HashSet::new();
        for s in &out {
            s.walk_exprs(&mut |e| {
                if let RExprKind::Tmp(t) = e.kind {
                    used.insert(t);
                }
            });
        }
        let before = out.len();
        out.retain(|s| match s {
            RStmt::Let { tmp, .. } => {
                let keep = used.contains(tmp);
                if !keep {
                    st.propagated += 1;
                    *changed = true;
                }
                keep
            }
            _ => true,
        });
        if out.len() == before {
            break;
        }
    }
    out
}

/// Substitutes the environment into one statement; `Let` statements
/// with (post-substitution) leaf values extend the environment.
/// Bindings made inside an `If` body stay scoped to that body.
fn subst_stmt(
    s: RStmt,
    env: &mut HashMap<usize, RExpr>,
    st: &mut OptStats,
    changed: &mut bool,
) -> RStmt {
    match s {
        RStmt::Assign { lv, rhs } => RStmt::Assign {
            lv: subst_lvalue(lv, env, st, changed),
            rhs: subst(&rhs, env, st, changed),
        },
        RStmt::If { cond, then_body, else_body } => {
            let cond = subst(&cond, env, st, changed);
            let mut then_env = env.clone();
            let then_body =
                then_body.into_iter().map(|s| subst_stmt(s, &mut then_env, st, changed)).collect();
            let mut else_env = env.clone();
            let else_body =
                else_body.into_iter().map(|s| subst_stmt(s, &mut else_env, st, changed)).collect();
            RStmt::If { cond, then_body, else_body }
        }
        RStmt::Let { tmp, rhs } => {
            let rhs = subst(&rhs, env, st, changed);
            if is_leaf(&rhs) {
                env.insert(tmp, rhs.clone());
            }
            RStmt::Let { tmp, rhs }
        }
    }
}

fn subst_lvalue(
    lv: RLvalue,
    env: &HashMap<usize, RExpr>,
    st: &mut OptStats,
    changed: &mut bool,
) -> RLvalue {
    match lv {
        RLvalue::StorageIndexed(id, idx) => {
            RLvalue::StorageIndexed(id, subst(&idx, env, st, changed))
        }
        RLvalue::Slice { base, hi, lo } => {
            RLvalue::Slice { base: Box::new(subst_lvalue(*base, env, st, changed)), hi, lo }
        }
        other @ (RLvalue::Storage(_) | RLvalue::Param(_)) => other,
    }
}

fn subst(e: &RExpr, env: &HashMap<usize, RExpr>, st: &mut OptStats, changed: &mut bool) -> RExpr {
    if let RExprKind::Tmp(t) = e.kind {
        if let Some(v) = env.get(&t) {
            st.propagated += 1;
            *changed = true;
            return v.clone();
        }
        return e.clone();
    }
    let kind = match &e.kind {
        k @ (RExprKind::Lit(_)
        | RExprKind::Storage(_)
        | RExprKind::Param(_)
        | RExprKind::Tmp(_)) => k.clone(),
        RExprKind::StorageIndexed(id, idx) => {
            RExprKind::StorageIndexed(*id, Box::new(subst(idx, env, st, changed)))
        }
        RExprKind::Slice(x, hi, lo) => {
            RExprKind::Slice(Box::new(subst(x, env, st, changed)), *hi, *lo)
        }
        RExprKind::Unary(op, x) => RExprKind::Unary(*op, Box::new(subst(x, env, st, changed))),
        RExprKind::Binary(op, a, b) => RExprKind::Binary(
            *op,
            Box::new(subst(a, env, st, changed)),
            Box::new(subst(b, env, st, changed)),
        ),
        RExprKind::Cond(c, t, f) => RExprKind::Cond(
            Box::new(subst(c, env, st, changed)),
            Box::new(subst(t, env, st, changed)),
            Box::new(subst(f, env, st, changed)),
        ),
        RExprKind::Ext(k, x) => RExprKind::Ext(*k, Box::new(subst(x, env, st, changed))),
        RExprKind::Concat(parts) => {
            RExprKind::Concat(parts.iter().map(|p| subst(p, env, st, changed)).collect())
        }
    };
    RExpr { kind, width: e.width }
}

/// A value free to duplicate: no work, no indirection worth naming.
fn is_leaf(e: &RExpr) -> bool {
    matches!(
        e.kind,
        RExprKind::Lit(_) | RExprKind::Storage(_) | RExprKind::Param(_) | RExprKind::Tmp(_)
    )
}
