//! Strength reduction: power-of-two multiply, divide, and remainder
//! become shifts and masks.
//!
//! The rewrites are bit-true at any width — `x * 2^k` is `x << k`,
//! `x / 2^k` is `x >> k`, and `x % 2^k` is `x & (2^k - 1)` for
//! *unsigned* division and remainder, which is what the RTL `/` and
//! `%` operators denote. Signed variants round toward zero and do not
//! reduce this way, so they are left alone.
//!
//! Beyond replacing hardware multipliers and dividers with wiring,
//! this pass is the width-narrowing pass's door-opener: narrowing
//! ([`super::narrow`]) cannot see through a division, but it *can*
//! slice through the logical right shift this pass produces — so a
//! front-end-style `trunc(zext(x, 128) / 128'd16, 16)` collapses all
//! the way back into the simulator's 64-bit bytecode lane once both
//! passes have run.

use super::fold::lit_u64;
use super::OptStats;
use crate::rtl::{BinOp, RExpr, RExprKind, RLvalue, RStmt};
use bitv::BitVector;

/// Rewrites power-of-two multiplies, divides, and remainders across a
/// statement list.
pub(super) fn reduce_stmts(stmts: &[RStmt], st: &mut OptStats, changed: &mut bool) -> Vec<RStmt> {
    stmts.iter().map(|s| reduce_stmt(s, st, changed)).collect()
}

fn reduce_stmt(s: &RStmt, st: &mut OptStats, changed: &mut bool) -> RStmt {
    match s {
        RStmt::Assign { lv, rhs } => {
            RStmt::Assign { lv: reduce_lvalue(lv, st, changed), rhs: reduce(rhs, st, changed) }
        }
        RStmt::If { cond, then_body, else_body } => RStmt::If {
            cond: reduce(cond, st, changed),
            then_body: reduce_stmts(then_body, st, changed),
            else_body: reduce_stmts(else_body, st, changed),
        },
        RStmt::Let { tmp, rhs } => RStmt::Let { tmp: *tmp, rhs: reduce(rhs, st, changed) },
    }
}

fn reduce_lvalue(lv: &RLvalue, st: &mut OptStats, changed: &mut bool) -> RLvalue {
    match lv {
        RLvalue::StorageIndexed(id, idx) => RLvalue::StorageIndexed(*id, reduce(idx, st, changed)),
        RLvalue::Slice { base, hi, lo } => {
            RLvalue::Slice { base: Box::new(reduce_lvalue(base, st, changed)), hi: *hi, lo: *lo }
        }
        other @ (RLvalue::Storage(_) | RLvalue::Param(_)) => other.clone(),
    }
}

/// Bottom-up rewrite of one expression tree.
fn reduce(e: &RExpr, st: &mut OptStats, changed: &mut bool) -> RExpr {
    let kind = match &e.kind {
        k @ (RExprKind::Lit(_)
        | RExprKind::Storage(_)
        | RExprKind::Param(_)
        | RExprKind::Tmp(_)) => k.clone(),
        RExprKind::StorageIndexed(id, idx) => {
            RExprKind::StorageIndexed(*id, Box::new(reduce(idx, st, changed)))
        }
        RExprKind::Slice(x, hi, lo) => RExprKind::Slice(Box::new(reduce(x, st, changed)), *hi, *lo),
        RExprKind::Unary(op, x) => RExprKind::Unary(*op, Box::new(reduce(x, st, changed))),
        RExprKind::Binary(op, a, b) => {
            let a = reduce(a, st, changed);
            let b = reduce(b, st, changed);
            if let Some(k) = rewrite(*op, &a, &b, st, changed) {
                k
            } else {
                RExprKind::Binary(*op, Box::new(a), Box::new(b))
            }
        }
        RExprKind::Cond(c, t, f) => RExprKind::Cond(
            Box::new(reduce(c, st, changed)),
            Box::new(reduce(t, st, changed)),
            Box::new(reduce(f, st, changed)),
        ),
        RExprKind::Ext(k, x) => RExprKind::Ext(*k, Box::new(reduce(x, st, changed))),
        RExprKind::Concat(parts) => {
            RExprKind::Concat(parts.iter().map(|p| reduce(p, st, changed)).collect())
        }
    };
    RExpr { kind, width: e.width }
}

/// The power-of-two rewrites. `k == 0` cases (multiply or divide by
/// one) are identities the algebraic pass already removes, so they are
/// skipped to keep each rewrite attributable to exactly one pass.
fn rewrite(
    op: BinOp,
    a: &RExpr,
    b: &RExpr,
    st: &mut OptStats,
    changed: &mut bool,
) -> Option<RExprKind> {
    let shift = |x: &RExpr, amount_width: u32, k: u32, op: BinOp| {
        RExprKind::Binary(
            op,
            Box::new(x.clone()),
            Box::new(RExpr::lit(BitVector::from_u64(u64::from(k), amount_width))),
        )
    };
    let out = match op {
        BinOp::Mul => {
            if let Some(k) = power_of_two(b) {
                shift(a, b.width, k, BinOp::Shl)
            } else if let Some(k) = power_of_two(a) {
                shift(b, a.width, k, BinOp::Shl)
            } else {
                return None;
            }
        }
        BinOp::UDiv => shift(a, b.width, power_of_two(b)?, BinOp::Lshr),
        BinOp::URem => {
            let k = power_of_two(b)?;
            // The mask 2^k - 1 must fit the operand width; k < width
            // always holds because 2^k itself fit as a literal.
            if k > 63 {
                return None;
            }
            RExprKind::Binary(
                BinOp::And,
                Box::new(a.clone()),
                Box::new(RExpr::lit(BitVector::from_u64((1u64 << k) - 1, a.width))),
            )
        }
        _ => return None,
    };
    st.strength_reduced += 1;
    *changed = true;
    Some(out)
}

/// `Some(k)` iff `e` is the literal `2^k` with `k >= 1`.
fn power_of_two(e: &RExpr) -> Option<u32> {
    let v = lit_u64(e)?;
    (v.is_power_of_two() && v > 1).then(|| v.trailing_zeros())
}
