//! Resolved, width-annotated RTL intermediate representation.
//!
//! [`crate::sema`] lowers the raw AST expressions into these types:
//! every name is resolved to a storage or parameter index and every node
//! carries its bit width, so the simulator ([`gensim`](https://docs.rs))
//! and the hardware synthesizer can consume them without re-checking.

pub use crate::ast::{BinOp, ExtKind, UnOp};
use bitv::BitVector;

/// Identifier of a storage element (index into [`crate::model::Machine::storages`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StorageId(pub usize);

/// A width-annotated RTL expression.
#[derive(Debug, Clone, PartialEq)]
pub struct RExpr {
    /// The node.
    pub kind: RExprKind,
    /// Width of the produced value in bits.
    pub width: u32,
}

/// Expression node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum RExprKind {
    /// A constant.
    Lit(BitVector),
    /// Read of a non-addressed storage element (register, PC, …).
    Storage(StorageId),
    /// Read of one cell of an addressed storage (`DM[addr]`).
    StorageIndexed(StorageId, Box<RExpr>),
    /// Value of the `i`-th operation parameter: for a token parameter,
    /// its return value; for a non-terminal parameter, the selected
    /// option's `value` expression.
    Param(usize),
    /// Bit slice `e[hi:lo]`.
    Slice(Box<RExpr>, u32, u32),
    /// Unary operation.
    Unary(UnOp, Box<RExpr>),
    /// Binary operation.
    Binary(BinOp, Box<RExpr>, Box<RExpr>),
    /// Conditional `c ? t : f` (condition true iff non-zero).
    Cond(Box<RExpr>, Box<RExpr>, Box<RExpr>),
    /// Width conversion.
    Ext(ExtKind, Box<RExpr>),
    /// Concatenation, first element most significant.
    Concat(Vec<RExpr>),
    /// Reference to a temporary introduced by [`RStmt::Let`].
    ///
    /// Never produced by semantic analysis — only the optimizer
    /// ([`crate::opt`]) introduces temporaries, so machine descriptions
    /// as loaded never contain this node.
    Tmp(usize),
}

impl RExpr {
    /// Convenience constructor for a literal expression.
    #[must_use]
    pub fn lit(v: BitVector) -> Self {
        let width = v.width();
        Self { kind: RExprKind::Lit(v), width }
    }

    /// Iterates over the direct children of this expression.
    pub fn children(&self) -> Vec<&RExpr> {
        match &self.kind {
            RExprKind::Lit(_) | RExprKind::Storage(_) | RExprKind::Param(_) | RExprKind::Tmp(_) => {
                Vec::new()
            }
            RExprKind::StorageIndexed(_, e)
            | RExprKind::Slice(e, _, _)
            | RExprKind::Unary(_, e)
            | RExprKind::Ext(_, e) => vec![e],
            RExprKind::Binary(_, a, b) => vec![a, b],
            RExprKind::Cond(c, t, f) => vec![c, t, f],
            RExprKind::Concat(es) => es.iter().collect(),
        }
    }

    /// Visits this expression and all descendants, pre-order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a RExpr)) {
        f(self);
        for c in self.children() {
            c.walk(f);
        }
    }
}

/// A resolved assignment destination.
#[derive(Debug, Clone, PartialEq)]
pub enum RLvalue {
    /// Whole non-addressed storage element.
    Storage(StorageId),
    /// One cell of an addressed storage.
    StorageIndexed(StorageId, RExpr),
    /// Bit range `hi..=lo` of another l-value.
    Slice {
        /// The underlying destination.
        base: Box<RLvalue>,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
    },
    /// A non-terminal parameter used as a destination; the selected
    /// option's `value` clause supplies the concrete l-value.
    Param(usize),
}

impl RLvalue {
    /// Width in bits of the destination, given a resolver for storage
    /// and parameter widths.
    pub fn width_with(
        &self,
        storage_width: &impl Fn(StorageId) -> u32,
        param_width: &impl Fn(usize) -> u32,
    ) -> u32 {
        match self {
            Self::Storage(id) | Self::StorageIndexed(id, _) => storage_width(*id),
            Self::Slice { hi, lo, .. } => hi - lo + 1,
            Self::Param(i) => param_width(*i),
        }
    }
}

/// A resolved RTL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum RStmt {
    /// `lv <- rhs`.
    Assign {
        /// Destination.
        lv: RLvalue,
        /// Value; its width equals the destination width (checked by
        /// semantic analysis).
        rhs: RExpr,
    },
    /// Conditional execution.
    If {
        /// Condition; true iff non-zero.
        cond: RExpr,
        /// Statements executed when true.
        then_body: Vec<RStmt>,
        /// Statements executed when false.
        else_body: Vec<RStmt>,
    },
    /// Binds a temporary to a value for the rest of the phase.
    ///
    /// Introduced only by the optimizer ([`crate::opt`]) when it hoists
    /// a common subexpression; machine descriptions as loaded never
    /// contain this statement. Expressions are pure, so a `Let` stages
    /// no writes — it only names a value that later [`RExprKind::Tmp`]
    /// nodes reference.
    Let {
        /// Temporary index (phase-scoped, dense from zero).
        tmp: usize,
        /// The bound value.
        rhs: RExpr,
    },
}

impl RStmt {
    /// Visits every expression in this statement tree (conditions,
    /// right-hand sides, and index expressions of destinations).
    pub fn walk_exprs<'a>(&'a self, f: &mut impl FnMut(&'a RExpr)) {
        match self {
            Self::Assign { lv, rhs } => {
                rhs.walk(f);
                lv.walk_index_exprs(f);
            }
            Self::If { cond, then_body, else_body } => {
                cond.walk(f);
                for s in then_body.iter().chain(else_body) {
                    s.walk_exprs(f);
                }
            }
            Self::Let { rhs, .. } => rhs.walk(f),
        }
    }
}

impl RLvalue {
    /// Visits index expressions inside this l-value.
    pub fn walk_index_exprs<'a>(&'a self, f: &mut impl FnMut(&'a RExpr)) {
        match self {
            Self::StorageIndexed(_, idx) => idx.walk(f),
            Self::Slice { base, .. } => base.walk_index_exprs(f),
            Self::Storage(_) | Self::Param(_) => {}
        }
    }

    /// The storage ultimately written, unless the destination is a
    /// non-terminal parameter (which depends on the selected option).
    #[must_use]
    pub fn root_storage(&self) -> Option<StorageId> {
        match self {
            Self::Storage(id) | Self::StorageIndexed(id, _) => Some(*id),
            Self::Slice { base, .. } => base.root_storage(),
            Self::Param(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u64, w: u32) -> RExpr {
        RExpr::lit(BitVector::from_u64(v, w))
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = RExpr {
            kind: RExprKind::Binary(BinOp::Add, Box::new(lit(1, 8)), Box::new(lit(2, 8))),
            width: 8,
        };
        let mut n = 0;
        e.walk(&mut |_| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn lvalue_width() {
        let lv = RLvalue::Slice { base: Box::new(RLvalue::Storage(StorageId(0))), hi: 7, lo: 4 };
        assert_eq!(lv.width_with(&|_| 32, &|_| 0), 4);
        assert_eq!(RLvalue::Storage(StorageId(0)).width_with(&|_| 32, &|_| 0), 32);
    }

    #[test]
    fn root_storage_through_slices() {
        let lv = RLvalue::Slice {
            base: Box::new(RLvalue::StorageIndexed(StorageId(3), lit(0, 4))),
            hi: 3,
            lo: 0,
        };
        assert_eq!(lv.root_storage(), Some(StorageId(3)));
        assert_eq!(RLvalue::Param(0).root_storage(), None);
    }
}
