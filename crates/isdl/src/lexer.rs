//! Hand-written lexer for ISDL source text.
//!
//! Produces a flat token stream with positions. Comments are `//` to end
//! of line and `/* ... */` (non-nesting). Integer literals may be plain
//! decimal, `0x…` hex, `0b…` binary, `0o…` octal, or Verilog-style sized
//! literals such as `8'hFF` (kept as [`Tok::Sized`]).

use crate::error::{ErrorKind, IsdlError, Pos};
use bitv::BitVector;

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// An unsized integer literal.
    Int(u64),
    /// A sized literal such as `8'hFF`.
    Sized(BitVector),
    /// A double-quoted string (no escapes beyond `\"` and `\\`).
    Str(String),
    /// Punctuation or operator, e.g. `{`, `<-`, `>>>`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl Tok {
    /// Returns the punctuation string if this is a [`Tok::Punct`].
    #[must_use]
    pub fn as_punct(&self) -> Option<&'static str> {
        match self {
            Self::Punct(p) => Some(p),
            _ => None,
        }
    }
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Ident(s) => write!(f, "identifier `{s}`"),
            Self::Int(v) => write!(f, "integer `{v}`"),
            Self::Sized(v) => write!(f, "sized literal `{v}`"),
            Self::Str(s) => write!(f, "string {s:?}"),
            Self::Punct(p) => write!(f, "`{p}`"),
            Self::Eof => write!(f, "end of input"),
        }
    }
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// All multi-character punctuation, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<->", "<-", "<=s", "<s", ">=s", ">>>", "<<", ">>", ">s", "==", "!=", "<=", ">=", "&&", "||",
    "/s", "%s", "{", "}", "(", ")", "[", "]", ";", ",", ":", "=", "<", ">", "+", "-", "*", "/",
    "%", "&", "|", "^", "~", "!", ".", "?", "@",
];

/// Tokenizes `src` completely.
///
/// # Errors
///
/// Returns a [`IsdlError`] with [`ErrorKind::Lex`] on malformed literals,
/// unterminated strings or comments, or stray characters.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, IsdlError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src: src.as_bytes(), i: 0, line: 1, col: 1 }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> IsdlError {
        IsdlError::new(ErrorKind::Lex, self.pos(), msg)
    }

    fn run(mut self) -> Result<Vec<SpannedTok>, IsdlError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let pos = self.pos();
            let Some(c) = self.peek() else {
                out.push(SpannedTok { tok: Tok::Eof, pos });
                return Ok(out);
            };
            let tok = if c.is_ascii_alphabetic() || c == b'_' {
                self.lex_ident()
            } else if c.is_ascii_digit() {
                self.lex_number()?
            } else if c == b'"' {
                self.lex_string()?
            } else {
                self.lex_punct()?
            };
            out.push(SpannedTok { tok, pos });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), IsdlError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => {
                                return Err(IsdlError::new(
                                    ErrorKind::Lex,
                                    start,
                                    "unterminated block comment",
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_ident(&mut self) -> Tok {
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.src[start..self.i])
            .expect("identifier bytes are ASCII")
            .to_owned();
        Tok::Ident(s)
    }

    fn lex_number(&mut self) -> Result<Tok, IsdlError> {
        let start = self.i;
        // Consume leading digits.
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        // Sized literal: digits followed by a tick.
        if self.peek() == Some(b'\'') {
            self.bump(); // tick
                         // base char + digits/underscores
            while self.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[start..self.i]).expect("ASCII");
            let bv: BitVector =
                text.parse().map_err(|e| self.err(format!("bad sized literal `{text}`: {e}")))?;
            return Ok(Tok::Sized(bv));
        }
        // 0x / 0b / 0o prefixes.
        let first = self.src[start];
        if first == b'0' && self.i == start + 1 {
            if let Some(base_c) = self.peek() {
                let radix = match base_c {
                    b'x' | b'X' => Some(16),
                    b'b' | b'B' => Some(2),
                    b'o' | b'O' => Some(8),
                    _ => None,
                };
                if let Some(radix) = radix {
                    self.bump();
                    let dstart = self.i;
                    while self.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                        self.bump();
                    }
                    let digits: String = std::str::from_utf8(&self.src[dstart..self.i])
                        .expect("ASCII")
                        .chars()
                        .filter(|&c| c != '_')
                        .collect();
                    if digits.is_empty() {
                        return Err(self.err("missing digits after base prefix"));
                    }
                    let v = u64::from_str_radix(&digits, radix)
                        .map_err(|e| self.err(format!("bad integer literal: {e}")))?;
                    return Ok(Tok::Int(v));
                }
            }
        }
        // Plain decimal (allow underscores in the tail).
        while self.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            self.bump();
        }
        let digits: String = std::str::from_utf8(&self.src[start..self.i])
            .expect("ASCII")
            .chars()
            .filter(|&c| c != '_')
            .collect();
        let v: u64 = digits.parse().map_err(|e| self.err(format!("bad integer literal: {e}")))?;
        Ok(Tok::Int(v))
    }

    fn lex_string(&mut self) -> Result<Tok, IsdlError> {
        let start = self.pos();
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(Tok::Str(s)),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'n') => s.push('\n'),
                    other => return Err(self.err(format!("unsupported string escape {other:?}"))),
                },
                Some(c) => s.push(c as char),
                None => return Err(IsdlError::new(ErrorKind::Lex, start, "unterminated string")),
            }
        }
    }

    fn lex_punct(&mut self) -> Result<Tok, IsdlError> {
        let rest = &self.src[self.i..];
        for p in PUNCTS {
            if rest.starts_with(p.as_bytes()) {
                for _ in 0..p.len() {
                    self.bump();
                }
                return Ok(Tok::Punct(p));
            }
        }
        Err(self.err(format!("unexpected character {:?}", self.peek().map(|c| c as char))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).expect("lexes").into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_and_ints() {
        assert_eq!(
            toks("foo 42 0xFF 0b101 0o17 1_000"),
            vec![
                Tok::Ident("foo".into()),
                Tok::Int(42),
                Tok::Int(0xFF),
                Tok::Int(0b101),
                Tok::Int(0o17),
                Tok::Int(1000),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn sized_literals() {
        assert_eq!(
            toks("8'hFF 4'b1010"),
            vec![
                Tok::Sized(BitVector::from_u64(0xFF, 8)),
                Tok::Sized(BitVector::from_u64(0b1010, 4)),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn puncts_maximal_munch() {
        assert_eq!(
            toks("<- <= < <=s >>> >> ="),
            vec![
                Tok::Punct("<-"),
                Tok::Punct("<="),
                Tok::Punct("<"),
                Tok::Punct("<=s"),
                Tok::Punct(">>>"),
                Tok::Punct(">>"),
                Tok::Punct("="),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // line\n b /* block\n still */ c"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Ident("c".into()), Tok::Eof]
        );
    }

    #[test]
    fn strings() {
        assert_eq!(
            toks(r#""hi" "a\"b""#),
            vec![Tok::Str("hi".into()), Tok::Str("a\"b".into()), Tok::Eof]
        );
    }

    #[test]
    fn positions_track_lines() {
        let ts = lex("a\n  b").expect("lexes");
        assert_eq!(ts[0].pos, Pos::new(1, 1));
        assert_eq!(ts[1].pos, Pos::new(2, 3));
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("0x").is_err());
        assert!(lex("5'q3").is_err());
        assert!(lex("`").is_err());
    }
}
