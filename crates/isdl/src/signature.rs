//! Operation signatures (Figure 3 of the paper).
//!
//! A signature is an image of the instruction word with one symbol per
//! bit: a *don't-care* (the operation's assembly function does not set
//! the bit), a constant `0`/`1`, or a *parameter symbol* — the bit is a
//! function of (one bit of) a single parameter's encoded value.
//!
//! The paper's **Axiom 1** — every parameter symbol is a function of a
//! single parameter only — holds by construction here because the ISDL
//! dialect restricts bitfield right-hand sides to
//! `const | param | param[h:l]`. It makes the assembly function
//! symbolically reversible: the disassembler (Figure 4) matches the
//! constant part of each signature against the instruction word and
//! reads parameter values straight out of the parameter-symbol bits,
//! and the HGEN decode logic (§4.2) turns the constant part into a
//! two-level decode equation.

use crate::error::{ErrorKind, IsdlError, Pos};
use crate::model::{BitAssign, BitRhs};
use bitv::BitVector;

/// One bit of a signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SigBit {
    /// The assembly function does not set this bit.
    DontCare,
    /// The bit is the given constant.
    Const(bool),
    /// The bit equals bit `bit` of parameter `param`'s encoded value.
    Param {
        /// Parameter index within the operation.
        param: usize,
        /// Bit of that parameter's encoded value.
        bit: u32,
    },
}

/// The signature of one operation or non-terminal option.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    bits: Vec<SigBit>,
}

impl Signature {
    /// Builds the signature of an encoding over `width` bits.
    ///
    /// # Errors
    ///
    /// Returns an error if an assignment is out of range, two
    /// assignments overlap, or a constant's width does not match its
    /// bit range.
    pub fn from_encoding(assigns: &[BitAssign], width: u32) -> Result<Self, IsdlError> {
        let mut bits = vec![SigBit::DontCare; width as usize];
        for a in assigns {
            if a.hi < a.lo || a.hi >= width {
                return Err(IsdlError::new(
                    ErrorKind::Encoding,
                    Pos::unknown(),
                    format!("bitfield range {}:{} out of range for width {width}", a.hi, a.lo),
                ));
            }
            let span = a.hi - a.lo + 1;
            for off in 0..span {
                let pos = (a.lo + off) as usize;
                if bits[pos] != SigBit::DontCare {
                    return Err(IsdlError::new(
                        ErrorKind::Encoding,
                        Pos::unknown(),
                        format!("instruction bit {pos} assigned twice"),
                    ));
                }
                bits[pos] = match &a.rhs {
                    BitRhs::Const(c) => {
                        if c.width() != span {
                            return Err(IsdlError::new(
                                ErrorKind::Width,
                                Pos::unknown(),
                                format!(
                                    "constant width {} does not match bit range {}:{}",
                                    c.width(),
                                    a.hi,
                                    a.lo
                                ),
                            ));
                        }
                        SigBit::Const(c.bit(off))
                    }
                    BitRhs::Param { index, hi, lo } => {
                        if hi < lo || hi - lo + 1 != span {
                            return Err(IsdlError::new(
                                ErrorKind::Width,
                                Pos::unknown(),
                                format!(
                                    "parameter slice {hi}:{lo} does not match bit range {}:{}",
                                    a.hi, a.lo
                                ),
                            ));
                        }
                        SigBit::Param { param: *index, bit: lo + off }
                    }
                };
            }
        }
        Ok(Self { bits })
    }

    /// The signature width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.bits.len() as u32
    }

    /// The symbol at bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bit(&self, i: u32) -> SigBit {
        self.bits[i as usize]
    }

    /// Iterates over `(bit_index, symbol)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, SigBit)> + '_ {
        self.bits.iter().enumerate().map(|(i, &b)| (i as u32, b))
    }

    /// The constant part as `(mask, value)`: `mask` has a 1 wherever
    /// the signature has a constant, and `value` holds those constants.
    #[must_use]
    pub fn const_mask_value(&self) -> (BitVector, BitVector) {
        let w = self.width();
        let mut mask = BitVector::zero(w);
        let mut value = BitVector::zero(w);
        for (i, b) in self.iter() {
            if let SigBit::Const(c) = b {
                mask = mask.with_bit(i, true);
                value = value.with_bit(i, c);
            }
        }
        (mask, value)
    }

    /// Whether `word` matches the constant part of this signature.
    /// Only the low `self.width()` bits of `word` are examined; `word`
    /// must be at least as wide.
    ///
    /// # Panics
    ///
    /// Panics if `word` is narrower than the signature.
    #[must_use]
    pub fn matches(&self, word: &BitVector) -> bool {
        assert!(word.width() >= self.width(), "word narrower than signature");
        self.iter().all(|(i, b)| match b {
            SigBit::Const(c) => word.bit(i) == c,
            _ => true,
        })
    }

    /// Reverses the encoding of parameter `param`: reads its value
    /// (of `enc_width` bits) out of the parameter-symbol bits of `word`.
    /// Parameter bits never placed in the word read as zero.
    ///
    /// # Panics
    ///
    /// Panics if `word` is narrower than the signature.
    #[must_use]
    pub fn extract_param(&self, word: &BitVector, param: usize, enc_width: u32) -> BitVector {
        assert!(word.width() >= self.width(), "word narrower than signature");
        let mut out = BitVector::zero(enc_width);
        for (i, b) in self.iter() {
            if let SigBit::Param { param: p, bit } = b {
                if p == param && bit < enc_width && word.bit(i) {
                    out = out.with_bit(bit, true);
                }
            }
        }
        out
    }

    /// Encodes: applies constants and parameter values onto `word`
    /// (which must be at least as wide as the signature).
    ///
    /// # Panics
    ///
    /// Panics if `word` is narrower than the signature or a parameter
    /// value is missing / too narrow for a referenced bit.
    #[must_use]
    pub fn apply(&self, word: &BitVector, params: &[BitVector]) -> BitVector {
        assert!(word.width() >= self.width(), "word narrower than signature");
        let mut out = word.clone();
        for (i, b) in self.iter() {
            match b {
                SigBit::DontCare => {}
                SigBit::Const(c) => out = out.with_bit(i, c),
                SigBit::Param { param, bit } => {
                    let v = &params[param];
                    out = out.with_bit(i, bit < v.width() && v.bit(bit));
                }
            }
        }
        out
    }

    /// Whether two signatures are *distinguishable*: some bit is a
    /// constant in both and the constants differ. The disassembler's
    /// unique-match guarantee (and the field-level decodability check)
    /// relies on every same-field pair being distinguishable.
    #[must_use]
    pub fn distinguishable_from(&self, other: &Self) -> bool {
        let n = self.width().min(other.width());
        (0..n).any(|i| match (self.bit(i), other.bit(i)) {
            (SigBit::Const(a), SigBit::Const(b)) => a != b,
            _ => false,
        })
    }

    /// The set of bit positions this signature assigns (constant or
    /// parameter), as a mask.
    #[must_use]
    pub fn assigned_mask(&self) -> BitVector {
        let mut m = BitVector::zero(self.width());
        for (i, b) in self.iter() {
            if b != SigBit::DontCare {
                m = m.with_bit(i, true);
            }
        }
        m
    }

    /// The decode-equation literals (§4.2): `(bit, polarity)` pairs —
    /// the two-level AND that recognises this operation. `polarity`
    /// true means the plain bit, false the complemented bit.
    #[must_use]
    pub fn decode_literals(&self) -> Vec<(u32, bool)> {
        self.iter()
            .filter_map(|(i, b)| match b {
                SigBit::Const(c) => Some((i, c)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BitAssign, BitRhs};

    fn const_assign(hi: u32, lo: u32, v: u64) -> BitAssign {
        BitAssign { hi, lo, rhs: BitRhs::Const(BitVector::from_u64(v, hi - lo + 1)) }
    }

    fn param_assign(hi: u32, lo: u32, index: usize) -> BitAssign {
        BitAssign { hi, lo, rhs: BitRhs::Param { index, hi: hi - lo, lo: 0 } }
    }

    /// The `op2` example from Figure 3: constants in the top bits,
    /// a parameter in the low byte.
    fn fig3_like() -> Signature {
        Signature::from_encoding(&[const_assign(9, 5, 0b10110), param_assign(4, 0, 0)], 10)
            .expect("valid encoding")
    }

    #[test]
    fn constants_and_params_placed() {
        let s = fig3_like();
        assert_eq!(s.bit(9), SigBit::Const(true));
        assert_eq!(s.bit(8), SigBit::Const(false));
        assert_eq!(s.bit(0), SigBit::Param { param: 0, bit: 0 });
        assert_eq!(s.bit(4), SigBit::Param { param: 0, bit: 4 });
    }

    #[test]
    fn match_and_extract() {
        let s = fig3_like();
        let word = BitVector::from_u64(0b10110_10101, 10);
        assert!(s.matches(&word));
        assert_eq!(s.extract_param(&word, 0, 5), BitVector::from_u64(0b10101, 5));
        let bad = BitVector::from_u64(0b10111_10101, 10);
        assert!(!s.matches(&bad));
    }

    #[test]
    fn apply_is_inverse_of_extract() {
        let s = fig3_like();
        let p = BitVector::from_u64(0b01101, 5);
        let word = s.apply(&BitVector::zero(10), std::slice::from_ref(&p));
        assert!(s.matches(&word));
        assert_eq!(s.extract_param(&word, 0, 5), p);
    }

    #[test]
    fn overlap_rejected() {
        let r = Signature::from_encoding(&[const_assign(3, 0, 5), const_assign(2, 1, 1)], 8);
        assert!(r.is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Signature::from_encoding(&[const_assign(8, 0, 0)], 8).is_err());
    }

    #[test]
    fn const_width_mismatch_rejected() {
        let bad = BitAssign { hi: 3, lo: 0, rhs: BitRhs::Const(BitVector::from_u64(1, 2)) };
        assert!(Signature::from_encoding(&[bad], 8).is_err());
    }

    #[test]
    fn distinguishable() {
        let a = Signature::from_encoding(&[const_assign(3, 0, 0b0001)], 4).expect("ok");
        let b = Signature::from_encoding(&[const_assign(3, 0, 0b0010)], 4).expect("ok");
        assert!(a.distinguishable_from(&b));
        let c = Signature::from_encoding(&[param_assign(3, 0, 0)], 4).expect("ok");
        assert!(!a.distinguishable_from(&c));
    }

    #[test]
    fn mask_value_and_literals() {
        let s = fig3_like();
        let (mask, value) = s.const_mask_value();
        assert_eq!(mask, BitVector::from_u64(0b11111_00000, 10));
        assert_eq!(value, BitVector::from_u64(0b10110_00000, 10));
        let lits = s.decode_literals();
        assert_eq!(lits.len(), 5);
        assert!(lits.contains(&(9, true)));
        assert!(lits.contains(&(8, false)));
    }

    #[test]
    fn assigned_mask_covers_params_too() {
        let s = fig3_like();
        assert_eq!(s.assigned_mask(), BitVector::all_ones(10));
        let partial = Signature::from_encoding(&[const_assign(9, 8, 0b01)], 10).expect("ok");
        assert_eq!(partial.assigned_mask(), BitVector::from_u64(0b11_0000_0000, 10));
    }

    #[test]
    fn param_slice_placement() {
        // word[7:4] = p[11:8] — upper nibble of a 12-bit parameter.
        let a = BitAssign { hi: 7, lo: 4, rhs: BitRhs::Param { index: 0, hi: 11, lo: 8 } };
        let s = Signature::from_encoding(&[a], 8).expect("ok");
        assert_eq!(s.bit(4), SigBit::Param { param: 0, bit: 8 });
        assert_eq!(s.bit(7), SigBit::Param { param: 0, bit: 11 });
        let p = BitVector::from_u64(0xA00, 12);
        let word = s.apply(&BitVector::zero(8), &[p]);
        assert_eq!(word.slice(7, 4).to_u64_lossy(), 0xA);
    }
}
