//! Systematic negative coverage of the ISDL front-end: every
//! diagnostic class has at least one test proving the rule fires, with
//! the position or message a user would need.

use isdl::error::ErrorKind;

fn load_err(src: &str) -> isdl::IsdlError {
    isdl::load(src).expect_err("source must be rejected")
}

/// Minimal valid scaffolding to splice fragments into.
fn with_field(field_body: &str) -> String {
    format!(
        r#"machine "t" {{ format {{ word 16; }} }}
           storage {{ register A 16; imem IM 16 x 16; pc PC 4; dmem DM 16 x 8; regfile RF 16 x 4; }}
           tokens {{ token REG reg("R", 4); token U4 imm(4, unsigned); }}
           field F {{ {field_body} op nop() {{ encode {{ word[15:12] = 0b0000; }} }} }}"#
    )
}

// ---- lexical ----

#[test]
fn stray_character_reports_position() {
    let e = load_err("machine \"m\" { format { word 8; } }\n  ` junk");
    assert_eq!(e.kind(), ErrorKind::Lex);
    assert_eq!(e.pos().line, 2);
}

#[test]
fn bad_sized_literal() {
    let e = load_err(&with_field("op x() { encode { word[7:0] = 8'q12; } }"));
    assert_eq!(e.kind(), ErrorKind::Lex);
}

// ---- syntactic ----

#[test]
fn missing_semicolon() {
    let e = load_err(r#"machine "m" { format { word 8 } }"#);
    assert_eq!(e.kind(), ErrorKind::Syntax);
}

#[test]
fn unknown_section() {
    let e = load_err("pipeline { }");
    assert_eq!(e.kind(), ErrorKind::Syntax);
    assert!(e.message().contains("section"));
}

#[test]
fn unknown_operation_part() {
    let e = load_err(&with_field("op x() { behavior { } }"));
    assert_eq!(e.kind(), ErrorKind::Syntax);
    assert!(e.message().contains("operation part"));
}

// ---- name resolution ----

#[test]
fn undefined_storage_in_rtl() {
    let e =
        load_err(&with_field("op x() { encode { word[15:12] = 0b0001; } action { GHOST <- A; } }"));
    assert_eq!(e.kind(), ErrorKind::Semantic);
    assert!(e.message().contains("GHOST"));
}

#[test]
fn undefined_token_type() {
    let e = load_err(&with_field("op x(p: NOPE) { encode { word[15:12] = 0b0001; } }"));
    assert_eq!(e.kind(), ErrorKind::Undefined);
}

#[test]
fn undefined_param_in_encode() {
    let e = load_err(&with_field("op x() { encode { word[15:12] = q; } }"));
    assert_eq!(e.kind(), ErrorKind::Undefined);
}

// ---- widths ----

#[test]
fn assignment_width_mismatch() {
    let e = load_err(&with_field(
        "op x(p: U4) { encode { word[15:12] = 0b0001; word[3:0] = p; } action { A <- p; } }",
    ));
    assert_eq!(e.kind(), ErrorKind::Width);
}

#[test]
fn slice_out_of_range_in_rtl() {
    let e = load_err(&with_field(
        "op x() { encode { word[15:12] = 0b0001; } action { A <- (A)[16:0]; } }",
    ));
    assert_eq!(e.kind(), ErrorKind::Width);
}

#[test]
fn unsized_literal_without_context() {
    // A bare integer in a slice position has no width to adopt.
    let e = load_err(&with_field(
        "op x() { encode { word[15:12] = 0b0001; } action { A <- (3)[1:0]; } }",
    ));
    assert_eq!(e.kind(), ErrorKind::Width);
    assert!(e.message().contains("sized literal"));
}

#[test]
fn trunc_cannot_widen() {
    let e = load_err(&with_field(
        "op x() { encode { word[15:12] = 0b0001; } action { A <- trunc(A, 20); } }",
    ));
    assert_eq!(e.kind(), ErrorKind::Width);
}

// ---- encoding / Axiom 1 ----

#[test]
fn overlapping_bit_assignments() {
    let e =
        load_err(&with_field("op x() { encode { word[15:12] = 0b0001; word[13:10] = 0b0000; } }"));
    assert_eq!(e.kind(), ErrorKind::Encoding);
    assert!(e.message().contains("twice"));
}

#[test]
fn parameter_bits_must_all_be_encoded() {
    let e = load_err(&with_field(
        "op x(p: U4) { encode { word[15:12] = 0b0001; word[1:0] = p[1:0]; } }",
    ));
    assert_eq!(e.kind(), ErrorKind::Encoding);
    assert!(e.message().contains("never encoded"));
}

#[test]
fn parameter_bit_encoded_twice() {
    let e = load_err(&with_field(
        "op x(p: U4) { encode { word[15:12] = 0b0001; word[3:0] = p; word[7:4] = p; } }",
    ));
    assert_eq!(e.kind(), ErrorKind::Encoding);
}

// ---- decodability ----

#[test]
fn indistinguishable_ops_rejected() {
    let e = load_err(&with_field(
        "op x(p: U4) { encode { word[15:12] = 0b0001; word[3:0] = p; } }
         op y(q: U4) { encode { word[15:12] = 0b0001; word[3:0] = q; } }",
    ));
    assert_eq!(e.kind(), ErrorKind::Decode);
}

#[test]
fn single_bit_difference_is_decodable() {
    let src = with_field(
        "op x() { encode { word[15:12] = 0b0001; } }
         op y() { encode { word[15:12] = 0b0011; } }",
    );
    assert!(isdl::load(&src).is_ok(), "one differing constant bit suffices");
}

// ---- structural ----

#[test]
fn register_with_depth_rejected() {
    let e = load_err(
        r#"machine "m" { format { word 8; } }
           storage { register A 8 x 4; }
           field F { op nop() { encode { word[0] = 1; } } }"#,
    );
    assert_eq!(e.kind(), ErrorKind::Semantic);
}

#[test]
fn memory_without_depth_rejected() {
    let e = load_err(
        r#"machine "m" { format { word 8; } }
           storage { dmem DM 8; }
           field F { op nop() { encode { word[0] = 1; } } }"#,
    );
    assert_eq!(e.kind(), ErrorKind::Semantic);
    assert!(e.message().contains("depth"));
}

#[test]
fn empty_field_rejected() {
    let e = load_err(
        r#"machine "m" { format { word 8; } }
           field F { }"#,
    );
    assert_eq!(e.kind(), ErrorKind::Semantic);
}

#[test]
fn no_fields_rejected() {
    let e = load_err(r#"machine "m" { format { word 8; } } storage { register A 8; }"#);
    assert_eq!(e.kind(), ErrorKind::Semantic);
}

#[test]
fn alias_index_out_of_range() {
    let e = load_err(
        r#"machine "m" { format { word 8; } }
           storage { regfile RF 8 x 4; alias SP = RF[4]; }
           field F { op nop() { encode { word[0] = 1; } } }"#,
    );
    assert_eq!(e.kind(), ErrorKind::Semantic);
    assert!(e.message().contains("out of range"));
}

#[test]
fn nonterminal_cycle_impossible() {
    // Forward references between non-terminals are rejected, which is
    // what rules out recursive non-terminals.
    let e = load_err(
        r#"machine "m" { format { word 8; } }
           nonterminals {
               nonterminal A width 2 {
                   option viaB(x: B) { encode { val[1:0] = x; } }
               }
               nonterminal B width 2 {
                   option viaA(x: A) { encode { val[1:0] = x; } }
               }
           }
           field F { op nop() { encode { word[0] = 1; } } }"#,
    );
    assert_eq!(e.kind(), ErrorKind::Undefined);
}

#[test]
fn token_param_not_assignable() {
    let e = load_err(&with_field(
        "op x(p: U4) { encode { word[15:12] = 0b0001; word[3:0] = p; } action { p <- 4'd1; } }",
    ));
    assert_eq!(e.kind(), ErrorKind::Semantic);
    assert!(e.message().contains("token"));
}

#[test]
fn error_positions_point_into_the_source() {
    let src = r#"machine "m" { format { word 8; } }
storage { register A 8; }
field F {
    op x() {
        encode { word[9:0] = 10'd0; }
    }
}"#;
    let e = load_err(src);
    assert_eq!(e.kind(), ErrorKind::Encoding);
    assert_eq!(e.pos().line, 5, "points at the offending encode line");
}
