//! `BENCH_*.json` entry extraction from the observability reports.
//!
//! The harness binaries write flat benchmark records — one
//! `{name, value, unit}` triple per measured quantity — that trend
//! dashboards can ingest without knowing the richer source schemas.
//! This module converts the simulator's `xsim-stats/1` report and the
//! explorer's `archex-explore/1` trace into those entries and renders
//! the versioned `bench/1` payload.

use obs::Json;

/// Schema identifier emitted by [`bench_json`].
pub const BENCH_SCHEMA: &str = "bench/1";

/// One flat benchmark record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Dotted metric name, e.g. `acc16.cycles`.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit, e.g. `cycles`, `ratio`, `us`.
    pub unit: &'static str,
}

impl BenchEntry {
    fn new(name: String, value: f64, unit: &'static str) -> Self {
        Self { name, value, unit }
    }
}

/// Checks the schema string of a parsed report against what the
/// extractor understands.
fn check_schema(json: &Json, expected: &str) -> Result<(), String> {
    match json.get_str("schema") {
        Some(s) if s == expected => Ok(()),
        Some(s) => Err(format!("unsupported schema `{s}` (expected `{expected}`)")),
        None => Err(format!("missing `schema` key (expected `{expected}`)")),
    }
}

/// Extracts benchmark entries from an `xsim-stats/1` report
/// ([`gensim::stats_json`] output): the cycle/instruction/stall
/// totals, the IPC, one utilization entry per field, and — when the
/// report carries them — the middle-end's `opt` block and the
/// translation tier's `translate` block, all prefixed with the
/// machine name.
///
/// Tolerant by design: reports written before the `opt`, `timing_us`,
/// or `translate` blocks existed (and even before the totals
/// stabilized) still extract — any missing or malformed field is
/// skipped rather than an error, so a trend dashboard can ingest an
/// archive spanning schema history.
///
/// # Errors
///
/// Fails when `text` is not valid JSON or its `schema` key is not
/// `xsim-stats/1`.
pub fn entries_from_stats_json(text: &str) -> Result<Vec<BenchEntry>, String> {
    let json = Json::parse(text)?;
    check_schema(&json, gensim::STATS_SCHEMA)?;
    let machine = json.get_str("machine").unwrap_or("unknown");
    let mut out = Vec::new();
    for (key, unit) in [
        ("cycles", "cycles"),
        ("instructions", "instructions"),
        ("stall_cycles", "cycles"),
        ("ipc", "ratio"),
    ] {
        if let Some(v) = json.get_f64(key) {
            out.push(BenchEntry::new(format!("{machine}.{key}"), v, unit));
        }
    }
    if let Some(Json::Arr(fields)) = json.get("fields") {
        for field in fields {
            let (Some(name), Some(util)) = (field.get_str("name"), field.get_f64("utilization"))
            else {
                continue; // legacy or truncated row — skip, don't fail
            };
            out.push(BenchEntry::new(format!("{machine}.field.{name}.utilization"), util, "ratio"));
        }
    }
    if let Some(t) = json.get("translate") {
        for (key, unit) in [
            ("blocks", "blocks"),
            ("invalidations", "blocks"),
            ("block_instructions", "instructions"),
            ("interp_instructions", "instructions"),
            ("fused_ops_removed", "ops"),
        ] {
            if let Some(v) = t.get_f64(key) {
                out.push(BenchEntry::new(format!("{machine}.translate.{key}"), v, unit));
            }
        }
    }
    if let Some(opt) = json.get("opt") {
        for key in ["nodes_before", "nodes_after", "nodes_eliminated", "narrowed", "cse_hits"] {
            if let Some(v) = opt.get_f64(key) {
                out.push(BenchEntry::new(format!("{machine}.opt.{key}"), v, "nodes"));
            }
        }
        if let Some(v) = opt.get_f64("wide_fallbacks") {
            out.push(BenchEntry::new(format!("{machine}.opt.wide_fallbacks"), v, "plans"));
        }
        // Per-pass rows from the pass-manager's `passes` array
        // (`<machine>.opt.<pass>.rewrites` / `.eliminated`). Reports
        // written before the pass manager existed have no array and
        // contribute no rows.
        if let Some(Json::Arr(passes)) = opt.get("passes") {
            for pass in passes {
                let (Some(name), Some(rewrites)) = (pass.get_str("name"), pass.get_f64("rewrites"))
                else {
                    continue; // malformed row — skip, don't fail
                };
                out.push(BenchEntry::new(
                    format!("{machine}.opt.{name}.rewrites"),
                    rewrites,
                    "rewrites",
                ));
                if let (Some(nodes_in), Some(nodes_out)) =
                    (pass.get_f64("nodes_in"), pass.get_f64("nodes_out"))
                {
                    out.push(BenchEntry::new(
                        format!("{machine}.opt.{name}.eliminated"),
                        nodes_in - nodes_out,
                        "nodes",
                    ));
                }
            }
        }
    }
    // The `xsim` CLI attaches its phase timings under `timing_us`
    // (load/assemble/generate/run); the library report never carries
    // the key, so its absence is not an error.
    if let Some(timing) = json.get("timing_us") {
        for key in ["load", "assemble", "generate", "run"] {
            if let Some(v) = timing.get_f64(key) {
                out.push(BenchEntry::new(format!("{machine}.timing.{key}_us"), v, "us"));
            }
        }
    }
    // `xsim --log` attaches the structured-log accounting under
    // `log` (`{events, dropped}` — see `xsim-log/1` in
    // docs/OBSERVABILITY.md); reports written without the flag, and
    // every report written before the log existed, have no block and
    // contribute no rows.
    if let Some(log) = json.get("log") {
        for key in ["events", "dropped"] {
            if let Some(v) = log.get_f64(key) {
                out.push(BenchEntry::new(format!("{machine}.log.{key}"), v, "events"));
            }
        }
    }
    // `xsim --netlist-sim` attaches the netlist cross-check's
    // `vlog-stats/1` block under `netlist`. Rows are keyed by backend
    // (`<machine>.netlist.<event|levelized>.*`) so both backends can
    // coexist in one trend archive; reports written before the block
    // existed simply contribute nothing.
    if let Some(nl) = json.get("netlist") {
        let backend = nl.get_str("backend").unwrap_or("unknown");
        for (key, unit) in
            [("cycles", "cycles"), ("events", "events"), ("evals_per_clock", "ratio")]
        {
            if let Some(v) = nl.get_f64(key) {
                out.push(BenchEntry::new(format!("{machine}.netlist.{backend}.{key}"), v, unit));
            }
        }
        if let Some(lev) = nl.get("levelized") {
            for (key, unit) in [
                ("levels", "levels"),
                ("partitions", "partitions"),
                ("partitions_evaluated", "partitions"),
                ("partitions_skipped", "partitions"),
                ("skip_rate", "ratio"),
            ] {
                if let Some(v) = lev.get_f64(key) {
                    out.push(BenchEntry::new(
                        format!("{machine}.netlist.{backend}.{key}"),
                        v,
                        unit,
                    ));
                }
            }
        }
    }
    Ok(out)
}

/// Extracts benchmark entries from an `xsim-profile/1` report
/// ([`gensim::profile_json`] output): the `top` regions by cycle count
/// (`<machine>.profile.region.<label>.cycles` / `.stall_cycles`) and
/// the `top` stalling PCs
/// (`<machine>.profile.pc<addr>.stall_cycles`), so a trend dashboard
/// tracks the hot spots without ingesting the full table.
///
/// # Errors
///
/// Fails when `text` is not valid JSON or its `schema` key is not
/// `xsim-profile/1`.
pub fn entries_from_profile_json(text: &str, top: usize) -> Result<Vec<BenchEntry>, String> {
    let json = Json::parse(text)?;
    check_schema(&json, gensim::PROFILE_SCHEMA)?;
    let machine = json.get_str("machine").unwrap_or("unknown");
    let mut out = Vec::new();

    let mut regions: Vec<&Json> =
        json.get("regions").and_then(Json::as_arr).map(|a| a.iter().collect()).unwrap_or_default();
    regions.sort_by_key(|r| std::cmp::Reverse(r.get_u64("cycles").unwrap_or(0)));
    for r in regions.into_iter().take(top) {
        // Rows from older writers may lack keys — skip, don't fail.
        let (Some(name), Some(cycles), Some(stalls)) =
            (r.get_str("name"), r.get_f64("cycles"), r.get_f64("stall_cycles"))
        else {
            continue;
        };
        out.push(BenchEntry::new(
            format!("{machine}.profile.region.{name}.cycles"),
            cycles,
            "cycles",
        ));
        out.push(BenchEntry::new(
            format!("{machine}.profile.region.{name}.stall_cycles"),
            stalls,
            "cycles",
        ));
    }

    let mut pcs: Vec<&Json> =
        json.get("pcs").and_then(Json::as_arr).map(|a| a.iter().collect()).unwrap_or_default();
    pcs.retain(|p| p.get_u64("stall_cycles").is_some_and(|n| n > 0));
    pcs.sort_by_key(|p| std::cmp::Reverse(p.get_u64("stall_cycles").unwrap_or(0)));
    for p in pcs.into_iter().take(top) {
        let (Some(pc), Some(stalls)) = (p.get_u64("pc"), p.get_f64("stall_cycles")) else {
            continue; // legacy row — skip, don't fail
        };
        out.push(BenchEntry::new(
            format!("{machine}.profile.pc{pc}.stall_cycles"),
            stalls,
            "cycles",
        ));
    }
    Ok(out)
}

/// Extracts benchmark entries from an `archex-explore/1` trace
/// ([`archex::explore::Trace::to_json`] output): candidate counts,
/// accepted steps, the final objective score, and the evaluation
/// latency/wall-time measurements.
///
/// # Errors
///
/// Fails when `text` is not valid JSON or its `schema` key is not
/// `archex-explore/1`.
pub fn entries_from_explore_json(text: &str) -> Result<Vec<BenchEntry>, String> {
    let json = Json::parse(text)?;
    check_schema(&json, archex::EXPLORE_SCHEMA)?;
    let machine = json.get_str("machine").unwrap_or("unknown");
    let num = |key: &str| json.get_f64(key).ok_or_else(|| format!("missing numeric `{key}` key"));
    let mut out = vec![
        BenchEntry::new(format!("{machine}.explore.evaluated"), num("evaluated")?, "candidates"),
        BenchEntry::new(format!("{machine}.explore.cache_hits"), num("cache_hits")?, "candidates"),
    ];
    // Supervision counters arrived with the retry runtime; traces
    // written before it simply contribute no rows.
    if let Some(attempts) = json.get_f64("attempts") {
        out.push(BenchEntry::new(format!("{machine}.explore.attempts"), attempts, "attempts"));
    }
    if let Some(retried) = json.get_f64("retried") {
        out.push(BenchEntry::new(format!("{machine}.explore.retried"), retried, "attempts"));
    }
    if let Some(Json::Obj(kinds)) = json.get("error_histogram") {
        for (kind, n) in kinds {
            let Some(n) = n.as_u64() else { continue }; // legacy row — skip, don't fail
            out.push(BenchEntry::new(
                format!("{machine}.explore.errors.{kind}"),
                n as f64,
                "errors",
            ));
        }
    }
    if let Some(Json::Arr(steps)) = json.get("steps") {
        out.push(BenchEntry::new(format!("{machine}.explore.steps"), steps.len() as f64, "steps"));
        if let Some(score) = steps.last().and_then(|s| s.get_f64("score")) {
            out.push(BenchEntry::new(format!("{machine}.explore.final_score"), score, "score"));
        }
    }
    if let Some(obs) = json.get("obs") {
        if let Some(mean) = obs.get("eval_latency_us").and_then(|s| s.get_f64("mean")) {
            out.push(BenchEntry::new(format!("{machine}.explore.eval_latency_mean"), mean, "us"));
        }
        if let Some(wall) = obs.get_f64("wall_s") {
            out.push(BenchEntry::new(format!("{machine}.explore.wall"), wall, "s"));
        }
        // Telemetry counters from the live-progress PR: traces written
        // before heartbeats or the flight recorder existed have
        // neither key and contribute no rows.
        if let Some(beats) = obs.get_f64("heartbeats") {
            out.push(BenchEntry::new(format!("{machine}.explore.heartbeats"), beats, "beats"));
        }
        if let Some(dumps) = obs.get_f64("flight_dumps") {
            out.push(BenchEntry::new(format!("{machine}.flight.dumps"), dumps, "dumps"));
        }
    }
    Ok(out)
}

/// Renders entries as the `bench/1` JSON payload written to
/// `BENCH_*.json` files.
#[must_use]
pub fn bench_json(entries: &[BenchEntry]) -> String {
    let arr: Vec<Json> = entries
        .iter()
        .map(|e| {
            Json::obj().with("name", e.name.as_str()).with("value", e.value).with("unit", e.unit)
        })
        .collect();
    Json::obj().with("schema", BENCH_SCHEMA).with("entries", Json::Arr(arr)).to_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_report_round_trips() {
        let machine = isdl::load(isdl::samples::ACC16).expect("loads");
        let program = xasm::Assembler::new(&machine)
            .assemble("ldi 7\naddm ten\nsta 0\nhalt\n.data\n.org 20\nten: .word 10\n")
            .expect("assembles");
        let mut sim = gensim::Xsim::generate(&machine).expect("generates");
        sim.load_program(&program);
        assert_eq!(sim.run(1_000), gensim::StopReason::Halted);
        let text = gensim::stats_json(&sim).to_pretty();
        let entries = entries_from_stats_json(&text).expect("extracts");
        let by_name = |n: &str| {
            entries.iter().find(|e| e.name == n).unwrap_or_else(|| panic!("entry {n}")).value
        };
        assert_eq!(by_name("acc16.cycles"), 4.0);
        assert_eq!(by_name("acc16.instructions"), 4.0);
        assert_eq!(by_name("acc16.ipc"), 1.0);
        assert_eq!(by_name("acc16.field.MAIN.utilization"), 1.0);
        assert_eq!(by_name("acc16.opt.wide_fallbacks"), 0.0);
        assert_eq!(
            by_name("acc16.opt.nodes_eliminated"),
            by_name("acc16.opt.nodes_before") - by_name("acc16.opt.nodes_after"),
        );
        assert!(by_name("acc16.translate.blocks") >= 1.0, "translated rows extracted");
        assert_eq!(
            by_name("acc16.translate.block_instructions")
                + by_name("acc16.translate.interp_instructions"),
            by_name("acc16.instructions"),
            "dispatch mix partitions the retire count"
        );
        let payload = bench_json(&entries);
        let parsed = obs::Json::parse(&payload).expect("bench payload parses");
        assert_eq!(parsed.get_str("schema"), Some(BENCH_SCHEMA));
    }

    /// The pass-manager's `passes` array becomes per-pass trend rows,
    /// and their eliminated-node deltas partition the block total —
    /// the same invariant `xsim-stats/1` documents.
    #[test]
    fn per_pass_rows_extract_and_partition_the_totals() {
        let machine = isdl::load(isdl::samples::WIDEMUL).expect("loads");
        let program = xasm::Assembler::new(&machine)
            .assemble("lia 255\nlib 255\nwmul\nwdiv\nwrem\ndsum 3\nsqs\nhalt\n")
            .expect("assembles");
        let options = gensim::XsimOptions {
            opt: isdl::opt::OptLevel::Full,
            ..gensim::XsimOptions::default()
        };
        let mut sim = gensim::Xsim::generate_with(&machine, options).expect("generates");
        sim.load_program(&program);
        assert_eq!(sim.run(1_000), gensim::StopReason::Halted);
        let text = gensim::stats_json(&sim).to_pretty();
        let entries = entries_from_stats_json(&text).expect("extracts");
        let by_name = |n: &str| {
            entries.iter().find(|e| e.name == n).unwrap_or_else(|| panic!("entry {n}")).value
        };
        let pass_delta: f64 = ["fold", "prop", "strength", "fwd", "dead", "cse", "share"]
            .iter()
            .map(|p| by_name(&format!("widemul.opt.{p}.eliminated")))
            .sum();
        assert_eq!(
            pass_delta,
            by_name("widemul.opt.nodes_before") - by_name("widemul.opt.nodes_after"),
            "per-pass rows partition the pipeline total"
        );
        assert!(by_name("widemul.opt.strength.rewrites") > 0.0, "wdiv/wrem strength-reduce");
        assert!(by_name("widemul.opt.fwd.rewrites") > 0.0, "dsum's repeated load forwards");

        // A report whose opt block predates the pass manager (no
        // `passes` array) contributes no per-pass rows.
        let text = r#"{
            "schema": "xsim-stats/1", "machine": "spam",
            "opt": {"level": "2", "nodes_before": 12, "nodes_after": 9}
        }"#;
        let entries = entries_from_stats_json(text).expect("legacy report extracts");
        assert!(
            !entries
                .iter()
                .any(|e| e.name.ends_with(".rewrites") || e.name.ends_with(".eliminated")),
            "absent passes array adds nothing: {entries:?}"
        );
    }

    #[test]
    fn explore_trace_round_trips() {
        let start = isdl::load(isdl::samples::TOY).expect("loads");
        let trace = crate::run_exploration(&start, archex::Strategy::Greedy, 1);
        let text = trace.to_json().to_pretty();
        let entries = entries_from_explore_json(&text).expect("extracts");
        let by_name = |n: &str| {
            entries.iter().find(|e| e.name == n).unwrap_or_else(|| panic!("entry {n}")).value
        };
        assert_eq!(by_name("toy.explore.evaluated"), trace.evaluated as f64);
        assert_eq!(by_name("toy.explore.steps"), trace.steps.len() as f64);
        assert!(by_name("toy.explore.wall") > 0.0, "instrumented run records wall time");
        assert_eq!(by_name("toy.explore.attempts"), trace.attempts as f64);
        assert_eq!(by_name("toy.explore.retried"), trace.retried as f64);
    }

    #[test]
    fn explore_error_histogram_becomes_per_kind_rows() {
        let text = r#"{
            "schema": "archex-explore/1", "machine": "toy",
            "evaluated": 5, "cache_hits": 1, "attempts": 8, "retried": 3,
            "error_histogram": {"toolchain_panic": 2, "deadline_exceeded": 1}
        }"#;
        let entries = entries_from_explore_json(text).expect("extracts");
        let by_name = |n: &str| {
            entries.iter().find(|e| e.name == n).unwrap_or_else(|| panic!("entry {n}")).value
        };
        assert_eq!(by_name("toy.explore.attempts"), 8.0);
        assert_eq!(by_name("toy.explore.retried"), 3.0);
        assert_eq!(by_name("toy.explore.errors.toolchain_panic"), 2.0);
        assert_eq!(by_name("toy.explore.errors.deadline_exceeded"), 1.0);

        // Traces written before the supervision counters still extract.
        let legacy = r#"{
            "schema": "archex-explore/1", "machine": "toy",
            "evaluated": 5, "cache_hits": 1
        }"#;
        let entries = entries_from_explore_json(legacy).expect("legacy trace extracts");
        assert!(
            !entries.iter().any(|e| e.name.contains("attempts") || e.name.contains("errors.")),
            "absent supervision counters add no rows"
        );
    }

    /// The `log` accounting block attached by `xsim --log` becomes
    /// `<machine>.log.*` rows, and every report vintage without it —
    /// which is every report written before the structured log
    /// existed, plus every run without the flag — contributes none.
    #[test]
    fn log_block_is_extracted_and_optional() {
        let text = r#"{
            "schema": "xsim-stats/1", "machine": "spam",
            "cycles": 10, "instructions": 8, "stall_cycles": 2, "ipc": 0.8,
            "log": {"events": 14, "dropped": 3}
        }"#;
        let entries = entries_from_stats_json(text).expect("extracts");
        let by_name =
            |n: &str| entries.iter().find(|e| e.name == n).unwrap_or_else(|| panic!("entry {n}"));
        assert_eq!(by_name("spam.log.events").value, 14.0);
        assert_eq!(by_name("spam.log.dropped").value, 3.0);
        assert_eq!(by_name("spam.log.events").unit, "events");

        // Pre-log vintage: the absent block adds nothing.
        let legacy = r#"{"schema": "xsim-stats/1", "machine": "spam", "cycles": 10}"#;
        let entries = entries_from_stats_json(legacy).expect("legacy report extracts");
        assert!(!entries.iter().any(|e| e.name.contains(".log.")), "{entries:?}");
    }

    /// The heartbeat and flight-dump counters in `trace.obs` become
    /// trend rows; traces from before the telemetry PR (an `obs` block
    /// with neither key) still extract, contributing none.
    #[test]
    fn explore_telemetry_counters_extract_with_legacy_skip() {
        let text = r#"{
            "schema": "archex-explore/1", "machine": "toy",
            "evaluated": 5, "cache_hits": 1,
            "obs": {"wall_s": 0.5, "heartbeats": 4, "flight_dumps": 2}
        }"#;
        let entries = entries_from_explore_json(text).expect("extracts");
        let by_name =
            |n: &str| entries.iter().find(|e| e.name == n).unwrap_or_else(|| panic!("entry {n}"));
        assert_eq!(by_name("toy.explore.heartbeats").value, 4.0);
        assert_eq!(by_name("toy.explore.heartbeats").unit, "beats");
        assert_eq!(by_name("toy.flight.dumps").value, 2.0);
        assert_eq!(by_name("toy.flight.dumps").unit, "dumps");

        // Pre-telemetry vintage: an obs block without the counters.
        let legacy = r#"{
            "schema": "archex-explore/1", "machine": "toy",
            "evaluated": 5, "cache_hits": 1, "obs": {"wall_s": 0.5}
        }"#;
        let entries = entries_from_explore_json(legacy).expect("legacy trace extracts");
        assert!(
            !entries.iter().any(|e| e.name.contains("heartbeats") || e.name.contains("flight")),
            "absent telemetry counters add no rows: {entries:?}"
        );
    }

    #[test]
    fn cli_timing_block_is_extracted() {
        let text = r#"{
            "schema": "xsim-stats/1", "machine": "spam",
            "cycles": 10, "instructions": 8, "stall_cycles": 2, "ipc": 0.8,
            "timing_us": {"load": 120.5, "assemble": 800.0, "generate": 1500.25, "run": 90.0}
        }"#;
        let entries = entries_from_stats_json(text).expect("extracts");
        let by_name =
            |n: &str| entries.iter().find(|e| e.name == n).unwrap_or_else(|| panic!("entry {n}"));
        assert_eq!(by_name("spam.timing.load_us").value, 120.5);
        assert_eq!(by_name("spam.timing.assemble_us").value, 800.0);
        assert_eq!(by_name("spam.timing.generate_us").value, 1500.25);
        assert_eq!(by_name("spam.timing.run_us").value, 90.0);
        assert!(entries.iter().all(|e| !e.name.contains("timing") || e.unit == "us"));
    }

    #[test]
    fn profile_report_flattens_top_rows() {
        let machine = crate::spam_machine();
        let program = crate::fir_program(&machine);
        let mut sim = gensim::Xsim::generate(&machine).expect("generates");
        sim.load_program(&program);
        sim.enable_profile();
        assert_eq!(sim.run(100_000), gensim::StopReason::Halted);
        let text = gensim::profile_json(&sim).to_pretty();
        let entries = entries_from_profile_json(&text, 3).expect("extracts");
        assert!(
            entries.iter().any(|e| e.name.starts_with("spam.profile.region.")),
            "top regions flattened: {entries:?}"
        );
        assert!(
            entries.iter().filter(|e| e.name.contains(".profile.pc")).count() <= 3,
            "top-N bound respected"
        );
        // Regions arrive hottest-first, so the first region entry
        // carries the largest cycle count of all region entries.
        let region_cycles: Vec<f64> = entries
            .iter()
            .filter(|e| e.name.ends_with(".cycles") && e.name.contains(".region."))
            .map(|e| e.value)
            .collect();
        assert!(region_cycles.windows(2).all(|w| w[0] >= w[1]), "sorted desc: {region_cycles:?}");
    }

    /// The netlist cross-check block lands as backend-keyed rows, and
    /// a report without it (every report written before the levelized
    /// backend existed) contributes no netlist rows at all.
    #[test]
    fn netlist_block_is_extracted_and_optional() {
        let text = r#"{
            "schema": "xsim-stats/1", "machine": "spam",
            "cycles": 103, "instructions": 73, "stall_cycles": 30, "ipc": 0.7,
            "netlist": {
                "schema": "vlog-stats/1", "backend": "levelized",
                "cycles": 428, "events": 58494, "evals_per_clock": 136.7,
                "levelized": {
                    "levels": 12, "partitions": 9,
                    "partitions_evaluated": 561, "partitions_skipped": 3291,
                    "skip_rate": 0.854
                }
            }
        }"#;
        let entries = entries_from_stats_json(text).expect("extracts");
        let by_name =
            |n: &str| entries.iter().find(|e| e.name == n).unwrap_or_else(|| panic!("entry {n}"));
        assert_eq!(by_name("spam.netlist.levelized.cycles").value, 428.0);
        assert_eq!(by_name("spam.netlist.levelized.events").value, 58494.0);
        assert_eq!(by_name("spam.netlist.levelized.partitions").value, 9.0);
        assert_eq!(by_name("spam.netlist.levelized.skip_rate").value, 0.854);
        assert_eq!(by_name("spam.netlist.levelized.skip_rate").unit, "ratio");

        // Event backend: no levelized sub-block, only the totals.
        let text = r#"{
            "schema": "xsim-stats/1", "machine": "spam", "cycles": 103,
            "netlist": {"schema": "vlog-stats/1", "backend": "event",
                        "cycles": 428, "events": 120000, "evals_per_clock": 280.4}
        }"#;
        let entries = entries_from_stats_json(text).expect("extracts");
        assert!(entries.iter().any(|e| e.name == "spam.netlist.event.events"));
        assert!(!entries.iter().any(|e| e.name.contains("partitions")));

        // Legacy report: the absent block adds nothing.
        let text = r#"{"schema": "xsim-stats/1", "machine": "spam", "cycles": 10}"#;
        let entries = entries_from_stats_json(text).expect("legacy report extracts");
        assert!(!entries.iter().any(|e| e.name.contains("netlist")), "{entries:?}");
    }

    /// A pre-PR-4 stats report: no `opt`, no `timing_us`, no
    /// `translate`, no `fields`. Extraction must succeed with just the
    /// totals.
    #[test]
    fn legacy_pre_opt_stats_report_is_tolerated() {
        let text = r#"{
            "schema": "xsim-stats/1", "machine": "spam",
            "cycles": 10, "instructions": 8, "stall_cycles": 2, "ipc": 0.8
        }"#;
        let entries = entries_from_stats_json(text).expect("legacy report extracts");
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            ["spam.cycles", "spam.instructions", "spam.stall_cycles", "spam.ipc"],
            "exactly the totals, nothing invented"
        );
    }

    /// A pre-PR-5 report (opt block but no timing/translate) with a
    /// truncated field row and a partially-populated opt block.
    #[test]
    fn legacy_pre_profile_stats_report_is_tolerated() {
        let text = r#"{
            "schema": "xsim-stats/1", "machine": "spam",
            "cycles": 10, "instructions": 8,
            "opt": {"level": "2", "nodes_before": 12, "nodes_after": 9},
            "fields": [{"name": "MAIN"}, {"name": "F", "utilization": 0.5}]
        }"#;
        let entries = entries_from_stats_json(text).expect("legacy report extracts");
        let by_name =
            |n: &str| entries.iter().find(|e| e.name == n).unwrap_or_else(|| panic!("entry {n}"));
        assert_eq!(by_name("spam.opt.nodes_before").value, 12.0);
        assert_eq!(by_name("spam.field.F.utilization").value, 0.5);
        assert!(
            !entries.iter().any(|e| e.name.contains("MAIN") || e.name.contains("translate")),
            "rows missing keys are skipped, absent blocks add nothing: {entries:?}"
        );
        assert!(!entries.iter().any(|e| e.name.ends_with(".ipc")), "missing totals are skipped");
    }

    /// A legacy profile report whose region/pc tables predate the
    /// `stall_cycles` split: malformed rows skip instead of erroring.
    #[test]
    fn legacy_profile_rows_are_tolerated() {
        let text = r#"{
            "schema": "xsim-profile/1", "machine": "spam",
            "regions": [
                {"name": "old", "cycles": 9},
                {"name": "new", "cycles": 7, "stall_cycles": 1}
            ],
            "pcs": [
                {"pc": 3, "stall_cycles": 2},
                {"stall_cycles": 5}
            ]
        }"#;
        let entries = entries_from_profile_json(text, 8).expect("legacy profile extracts");
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"spam.profile.region.new.cycles"), "{names:?}");
        assert!(names.contains(&"spam.profile.pc3.stall_cycles"), "{names:?}");
        assert!(!names.iter().any(|n| n.contains("old")), "row without stall_cycles skipped");
        assert_eq!(entries.len(), 3, "one region pair plus one pc row");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let err = entries_from_stats_json(r#"{"schema":"xsim-stats/9"}"#).expect_err("rejects");
        assert!(err.contains("unsupported schema"), "{err}");
        assert!(entries_from_stats_json("not json").is_err());
        let err = entries_from_explore_json(r#"{"cycles":1}"#).expect_err("rejects");
        assert!(err.contains("missing `schema`"), "{err}");
    }
}
